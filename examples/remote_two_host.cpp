// Remote-instantiation quickstart: every tree node is a separate OS process
// connected only by TCP, launched the way a real multi-host MRNet deployment
// would be.  The same binary plays front-end and node: relaunched copies
// carry `--tbon-node=<id> --tbon-bootstrap=<host:port>` and are diverted
// into the node runtime by net::maybe_run_remote_node before main() does
// anything else.
//
//   ./remote_two_host                         # all nodes on this machine
//   ./remote_two_host host2=db42 bind=10.0.0.1
//       # the root's last subtree runs on db42 (passwordless ssh; this
//       # binary must exist at the same path there), everything else here;
//       # bind= is the address db42 can reach this machine at.
//
//   topology=bal:2x2   tree shape (see TopologyOptions::from_spec)
//   ssh_bin=ssh        launcher for the host2 subtree
#include <unistd.h>

#include <climits>
#include <cstdio>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "core/network.hpp"
#include "net/remote.hpp"

using namespace tbon;

namespace {

// Runs inside every back-end node process, wherever it was launched.
void backend_main(BackEnd& be) {
  char host[HOST_NAME_MAX + 1] = {};
  ::gethostname(host, sizeof(host) - 1);
  be.send(1, kFirstAppTag, "vi64 vstr",
          {std::vector<std::int64_t>{::getpid()},
           std::vector<std::string>{std::string(host) + "/rank-" +
                                    std::to_string(be.rank())}});
}

// Nodes in the subtree rooted at the root's last child: the slice of the
// tree the example places on the second host.
std::vector<NodeId> last_subtree(const Topology& topology) {
  const auto& children = topology.node(topology.root()).children;
  std::vector<NodeId> subtree;
  if (children.empty()) return subtree;
  const NodeId head = children.back();
  for (NodeId id = 0; id < topology.num_nodes(); ++id) {
    const auto path = topology.path_to_root(id);
    for (const NodeId hop : path) {
      if (hop == head) {
        subtree.push_back(id);
        break;
      }
    }
  }
  return subtree;
}

}  // namespace

int main(int argc, char** argv) {
  // Relaunched copies become tree nodes here and never reach the code below.
  if (net::maybe_run_remote_node(argc, argv, {.backend_main = backend_main})) {
    return 0;
  }

  const Config config(argc, argv);
  Topology topology =
      TopologyOptions::from_spec(config.get("topology", "bal:2x2")).build();
  const std::string host2 = config.get("host2", "");

  NetworkOptions options;
  options.mode = NetworkMode::kRemote;
  options.backend_main = backend_main;
  if (!host2.empty()) {
    // Place the root's last subtree on the second machine and launch those
    // nodes over ssh; the rest keep the default fork launcher.  A real
    // deployment would drop the fork fallback and exec/ssh everything.
    std::vector<std::pair<NodeId, std::string>> placements;
    for (const NodeId id : last_subtree(topology)) {
      placements.emplace_back(id, host2);
    }
    topology = topology.with_placements(placements);
    options.remote.bind_host = config.get("bind", "127.0.0.1");
    const std::vector<std::string> command = {argv[0]};
    auto local = net::exec_spawn(command);
    auto remote = net::ssh_spawn(command, config.get("ssh_bin", "ssh"));
    options.remote.spawn = [local, remote,
                            host2](const RemoteSpawnRequest& request) {
      const bool off_host = request.host.rfind(host2, 0) == 0;
      (off_host ? remote : local)(request);
    };
  } else {
    // Single-machine stand-in: exec this very binary for every node, which
    // exercises the full --tbon-node relaunch path without ssh.
    options.remote.spawn = net::exec_spawn({argv[0]});
  }
  options.topology = topology;

  std::printf("launching %zu node processes over TCP (front-end pid %d)...\n",
              topology.num_nodes() - 1, static_cast<int>(::getpid()));
  auto net = Network::create(std::move(options));

  Stream& stream = net->front_end().open_stream({.up_transform = "concat"});
  const auto result = stream.recv_for(std::chrono::seconds(15));
  if (result) {
    const auto& pids = (*result)->get_vi64(0);
    const auto& names = (*result)->get_vstr(1);
    std::set<std::string> hosts;
    for (const auto& name : names) hosts.insert(name.substr(0, name.find('/')));
    std::printf("gathered from %zu back-end processes on %zu host(s):\n",
                pids.size(), hosts.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
      std::printf("  %-24s pid %lld\n", names[i].c_str(),
                  static_cast<long long>(pids[i]));
    }
  } else {
    std::printf("no packet within the deadline\n");
  }
  net->shutdown();
  std::printf("all node processes reaped; done\n");
  return 0;
}
