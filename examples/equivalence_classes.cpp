// Paradyn-style startup aggregation with equivalence classes (paper §2.2).
//
//   ./equivalence_classes [daemons=64] [fanout=8] [functions=32] [variants=3]
//
// Each "daemon" (back-end) reports its table of instrumented functions at
// startup.  Most daemons run identical binaries, so reports fall into a few
// equivalence classes; the filter collapses them in-flight, and the
// front-end receives the classes instead of `daemons` near-identical
// reports.  The demo prints the achieved compression, the mechanism behind
// the paper's 3.4x Paradyn startup speedup.
#include <cstdio>

#include "common/config.hpp"
#include "core/network.hpp"
#include "filters/equivalence.hpp"
#include "filters/register.hpp"

using namespace tbon;

int main(int argc, char** argv) {
  const Config config(argc, argv);
  const auto daemons = static_cast<std::size_t>(config.get_int("daemons", 64));
  const auto fanout = static_cast<std::size_t>(config.get_int("fanout", 8));
  const auto functions = static_cast<int>(config.get_int("functions", 32));
  const auto variants = static_cast<std::uint32_t>(config.get_int("variants", 3));

  filters::register_all(FilterRegistry::instance());
  const Topology topology = Topology::balanced_for_leaves(fanout, daemons);
  auto net = Network::create({.topology = topology});
  Stream& stream = net->front_end().open_stream({.up_transform = "equivalence_class"});

  std::atomic<std::size_t> raw_bytes{0};
  net->run_backends([&](BackEnd& be) {
    // A daemon's report: the canonical rendering of its function table.
    // Daemons running the same binary variant produce identical reports.
    const std::uint32_t variant = be.rank() % variants;
    std::string report = "binary-v" + std::to_string(variant) + ":";
    for (int fn = 0; fn < functions; ++fn) {
      report += "fn" + std::to_string(fn) + "@" + std::to_string(0x400000 + fn * 64 + variant) + ";";
    }
    raw_bytes.fetch_add(report.size());
    EquivalenceClasses mine;
    mine.add(report, be.rank());
    be.send(stream.id(), kFirstAppTag, EquivalenceClasses::kFormat, mine.to_values());
  });

  const auto result = stream.recv_for(std::chrono::seconds(30));
  if (!result) {
    std::fprintf(stderr, "no result\n");
    return 1;
  }
  const auto classes = EquivalenceClasses::from_values(**result);
  const std::size_t filtered_bytes = (*result)->payload_bytes();
  net->shutdown();

  std::printf("daemons            : %zu (tree fan-out %zu, depth %zu)\n", daemons,
              fanout, topology.depth());
  std::printf("distinct classes   : %zu\n", classes.num_classes());
  std::printf("members accounted  : %zu\n", classes.num_members());
  std::printf("raw report bytes   : %zu (what one-to-many would push at the FE)\n",
              raw_bytes.load());
  std::printf("filtered bytes     : %zu at the front-end\n", filtered_bytes);
  std::printf("compression        : %.1fx\n",
              static_cast<double>(raw_bytes.load()) /
                  static_cast<double>(filtered_bytes));
  for (const auto& [key, members] : classes.classes()) {
    std::printf("  class '%.24s...' -> %zu daemons\n", key.c_str(), members.size());
  }
  return 0;
}
