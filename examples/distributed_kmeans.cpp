// Distributed k-means over a TBON (paper §2.3 / Figure 2).
//
//   ./distributed_kmeans [topology=bal:4x2] [k=4] [dim=3] [points=300]
//
// The data set is partitioned across the back-ends; every Lloyd round is one
// broadcast (centroids down) and one `sum` reduction (per-centroid partial
// sums up) — per-edge traffic is O(k*dim) per round regardless of data size.
#include <cmath>
#include <cstdio>

#include "common/config.hpp"
#include "core/network.hpp"
#include "meanshift/kmeans.hpp"

using namespace tbon;
using namespace tbon::km;

int main(int argc, char** argv) {
  const Config config(argc, argv);
  const Topology topology = TopologyOptions::from_spec(config.get("topology", "bal:4x2"));
  const auto dim = static_cast<std::size_t>(config.get_int("dim", 3));

  ms::nd::SynthNdParams synth;
  synth.dim = dim;
  synth.num_clusters = static_cast<std::size_t>(config.get_int("k", 4));
  synth.points_per_cluster = static_cast<std::size_t>(config.get_int("points", 300));
  synth.noise_points = synth.points_per_cluster / 10;
  const auto coords = ms::nd::generate(synth);
  const std::size_t total_points = coords.size() / dim;

  // Partition round-robin across the back-ends.
  std::vector<std::vector<double>> leaf_coords(topology.num_leaves());
  for (std::size_t p = 0; p < total_points; ++p) {
    auto& block = leaf_coords[p % leaf_coords.size()];
    block.insert(block.end(), coords.begin() + static_cast<std::ptrdiff_t>(p * dim),
                 coords.begin() + static_cast<std::ptrdiff_t>((p + 1) * dim));
  }

  KMeansParams params;
  params.k = synth.num_clusters;
  params.epsilon = 1e-4;

  auto net = Network::create({.topology = topology});
  const KMeansResult result = kmeans_distributed(*net, dim, params, leaf_coords);
  net->shutdown();

  std::printf("%zu points in %zu-D over %zu back-ends: k=%zu, %zu rounds, %s\n",
              total_points, dim, topology.num_leaves(), params.k, result.rounds,
              result.converged ? "converged" : "hit round limit");
  std::printf("final SSE: %.1f (avg %.2f per point)\n", result.sse,
              result.sse / static_cast<double>(total_points));

  const auto centers = ms::nd::true_centers(synth);
  std::printf("centroids vs true centers (nearest-match distance):\n");
  for (std::size_t c = 0; c < params.k; ++c) {
    std::span<const double> centroid(result.centroids.data() + c * dim, dim);
    double nearest = 1e300;
    for (const auto& center : centers) {
      nearest = std::min(nearest, ms::nd::distance_squared(centroid, center));
    }
    std::printf("  centroid %zu: (", c);
    for (std::size_t d = 0; d < dim; ++d) {
      std::printf("%s%.1f", d ? ", " : "", centroid[d]);
    }
    std::printf(")  off by %.2f\n", std::sqrt(nearest));
  }
  return 0;
}
