// Quickstart: build a TBON, broadcast a command, reduce the replies.
//
//   ./quickstart [topology=bal:4x2]
//
// Demonstrates the core API surface: topology construction, network
// instantiation, stream creation with a built-in reduction filter,
// downstream multicast, upstream aggregation and orderly shutdown.
#include <cstdio>

#include "common/config.hpp"
#include "core/network.hpp"

using namespace tbon;

int main(int argc, char** argv) {
  const Config config(argc, argv);
  const Topology topology = TopologyOptions::from_spec(config.get("topology", "bal:4x2"));
  std::printf("topology: %zu nodes, %zu back-ends, %zu internal, depth %zu\n",
              topology.num_nodes(), topology.num_leaves(), topology.num_internal(),
              topology.depth());

  // One thread per communication process inside this program.
  auto net = Network::create({.topology = topology});

  // A stream whose upstream packets are summed field-wise at every level and
  // delivered in waves (one packet per back-end per wave).
  Stream& sums = net->front_end().open_stream({.up_transform = "sum"});
  // A second, concurrent stream computing the max (streams may overlap).
  Stream& maxima = net->front_end().open_stream({.up_transform = "max"});

  // Broadcast a command downstream; each back-end replies on both streams.
  constexpr std::int32_t kGo = kFirstAppTag;
  sums.send(kGo, "str", {std::string("report")});

  net->run_backends([&](BackEnd& be) {
    const auto command = be.recv_for(std::chrono::milliseconds(2000));
    if (!command) return;
    const auto value = static_cast<std::int64_t>(be.rank()) * 10;
    be.send(sums.id(), kGo, "i64 vf64",
            {value, std::vector<double>{1.0, static_cast<double>(be.rank())}});
    be.send(maxima.id(), kGo, "f64", {static_cast<double>(be.rank() % 7)});
  });

  if (const auto result = sums.recv_for(std::chrono::milliseconds(5000))) {
    std::printf("sum reduction : %s\n", (*result)->to_string().c_str());
  }
  if (const auto result = maxima.recv_for(std::chrono::milliseconds(5000))) {
    std::printf("max reduction : %s\n", (*result)->to_string().c_str());
  }

  net->shutdown();
  std::printf("front-end metrics: %llu packets up, %llu waves\n",
              static_cast<unsigned long long>(net->node_metrics(0).packets_up),
              static_cast<unsigned long long>(net->node_metrics(0).waves));
  return 0;
}
