// Multi-process quickstart: one OS process per tree node (fork +
// socketpairs + serialized packets), the closest analogue to a real MRNet
// deployment on one host.
//
//   ./process_mode [topology=bal:3x2]
#include <unistd.h>

#include <cstdio>

#include "common/config.hpp"
#include "core/process_network.hpp"

using namespace tbon;

int main(int argc, char** argv) {
  const Config config(argc, argv);
  const Topology topology = TopologyOptions::from_spec(config.get("topology", "bal:3x2"));
  std::printf("spawning %zu processes (front-end pid %d)...\n",
              topology.num_nodes() - 1, static_cast<int>(::getpid()));

  // Stream ids are assigned in order, so the back-ends can rely on id 1.
  auto net = Network::create({.mode = NetworkMode::kProcess,
                              .topology = topology,
                              .backend_main = [](BackEnd& be) {
                                be.send(1, kFirstAppTag, "vi64 vstr",
                                        {std::vector<std::int64_t>{::getpid()},
                                         std::vector<std::string>{
                                             "rank-" + std::to_string(be.rank())}});
                              }});
  Stream& stream = net->front_end().open_stream({.up_transform = "concat"});

  const auto result = stream.recv_for(std::chrono::seconds(10));
  if (result) {
    const auto& pids = (*result)->get_vi64(0);
    std::set<std::int64_t> distinct(pids.begin(), pids.end());
    std::printf("gathered from %zu back-ends in %zu distinct OS processes:\n",
                pids.size(), distinct.size());
    std::printf("  %s\n", (*result)->to_string().c_str());
  }
  net->shutdown();
  std::printf("all children reaped; done\n");
  return 0;
}
