// Tree-based clock-skew detection (paper §1/§2.2).
//
//   ./clock_skew [topology=bal:4x2] [seed=42]
//
// Runs the probe/reply protocol with injected virtual per-node clock skews
// and prints estimated vs true offsets for every back-end.  On a cluster the
// same code estimates real skews; here the virtual clocks make the result
// verifiable (see src/filters/clockskew.hpp).
#include <cstdio>

#include "common/config.hpp"
#include "core/network.hpp"
#include "filters/clockskew.hpp"
#include "filters/register.hpp"

using namespace tbon;

int main(int argc, char** argv) {
  const Config config(argc, argv);
  const Topology topology = TopologyOptions::from_spec(config.get("topology", "bal:4x2"));
  const auto seed = static_cast<std::uint64_t>(config.get_int("seed", 42));

  filters::register_all(FilterRegistry::instance());
  auto net = Network::create({.topology = topology});
  Stream& stream = net->front_end().open_stream(
      StreamSpec().up("clock_skew").down("clock_probe").with_params(
          FilterParams().set("skew_seed", static_cast<std::int64_t>(seed))));

  // The probe carries the front-end's (unskewed reference) clock.
  stream.send(kFirstAppTag, "vf64",
              {std::vector<double>{virtual_now_seconds(1'000'000u, 0)}});

  net->run_backends([&, seed](BackEnd& be) {
    const auto probe = be.recv_for(std::chrono::seconds(5));
    if (!probe) return;
    const PacketPtr reply = make_clock_reply(**probe, be.rank(), seed);
    be.send(stream.id(), kFirstAppTag, "vi64 vf64",
            {reply->get_vi64(0), reply->get_vf64(1)});
  });

  const auto result = stream.recv_for(std::chrono::seconds(10));
  if (!result) {
    std::fprintf(stderr, "no result\n");
    return 1;
  }
  const auto& ranks = (*result)->get_vi64(0);
  const auto& offsets = (*result)->get_vf64(1);
  net->shutdown();

  std::printf("%-8s  %-14s  %-14s  %s\n", "backend", "estimated (s)", "true (s)",
              "error (us)");
  double worst = 0.0;
  for (std::size_t i = 0; i < ranks.size(); ++i) {
    const double truth =
        virtual_skew(static_cast<std::uint32_t>(ranks[i]) + 1'000'000u, seed);
    const double error = offsets[i] - truth;
    worst = std::max(worst, std::abs(error));
    std::printf("%-8lld  %-14.6f  %-14.6f  %.1f\n",
                static_cast<long long>(ranks[i]), offsets[i], truth, error * 1e6);
  }
  std::printf("worst error: %.1f us (bounded by one-way path latency)\n", worst * 1e6);
  return 0;
}
