// Topology inspection tool: build a tree from a compact spec or an
// MRNet-style config file, print its statistics, and export DOT/MRNet
// renderings — handy when sizing a deployment (cf. the §3.2 overhead table).
//
//   ./topology_tool spec=bal:16x2
//   ./topology_tool spec=auto:8:300 dot=1
//   ./topology_tool config=/path/to/topology.cfg mrnet=1
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/config.hpp"
#include "topology/mrnet_config.hpp"
#include "topology/topology.hpp"

using namespace tbon;

int main(int argc, char** argv) {
  const Config config(argc, argv);

  Topology topology = [&] {
    const std::string path = config.get("config");
    if (!path.empty()) {
      std::ifstream in(path);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
      }
      std::ostringstream text;
      text << in.rdbuf();
      return parse_mrnet_config(text.str());
    }
    return TopologyOptions::from_spec(config.get("spec", "bal:4x2")).build();
  }();

  std::printf("nodes        : %zu\n", topology.num_nodes());
  std::printf("back-ends    : %zu\n", topology.num_leaves());
  std::printf("internal     : %zu (%.2f%% overhead)\n", topology.num_internal(),
              topology.internal_overhead() * 100.0);
  std::printf("depth        : %zu\n", topology.depth());
  std::printf("max fan-out  : %zu\n", topology.max_fanout());

  // Per-level widths.
  std::vector<std::size_t> width;
  for (NodeId id = 0; id < topology.num_nodes(); ++id) {
    const std::size_t level = topology.path_to_root(id).size() - 1;
    if (width.size() <= level) width.resize(level + 1, 0);
    ++width[level];
  }
  std::printf("level widths :");
  for (const std::size_t w : width) std::printf(" %zu", w);
  std::printf("\n");

  if (config.get_bool("dot")) {
    std::printf("\n%s", topology.to_dot().c_str());
  }
  if (config.get_bool("mrnet")) {
    std::printf("\n%s", to_mrnet_config(topology).c_str());
  }
  return 0;
}
