// A Ganglia/Supermon-style distributed system monitor (paper §2.3,
// "Distributed System Tools").
//
//   ./system_monitor [topology=bal:4x2] [rounds=5]
//
// Every back-end plays a monitoring daemon producing one metric sample per
// round: load average, free memory, and a latency reading.  Three concurrent
// streams aggregate them differently:
//   * time-aligned sums of (load, free-mem) per round — avg at the front-end,
//   * a cluster-wide latency histogram (exact tree merge),
//   * the top-3 most loaded hosts per round.
#include <cstdio>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"
#include "filters/histogram_filter.hpp"
#include "filters/register.hpp"
#include "filters/time_aligned.hpp"
#include "filters/topk.hpp"

using namespace tbon;

int main(int argc, char** argv) {
  const Config config(argc, argv);
  const Topology topology = TopologyOptions::from_spec(config.get("topology", "bal:4x2"));
  const auto rounds = static_cast<std::uint64_t>(config.get_int("rounds", 5));
  const std::size_t hosts = topology.num_leaves();

  filters::register_all(FilterRegistry::instance());
  auto net = Network::create({.topology = topology});

  Stream& aligned = net->front_end().open_stream(
      {.up_transform = "time_aligned", .up_sync = "null"});
  Stream& latency = net->front_end().open_stream({.up_transform = "histogram_merge"});
  Stream& hogs = net->front_end().open_stream(
      StreamSpec().up("topk").with_params(FilterParams().set("k", 3)));

  net->run_backends([&](BackEnd& be) {
    Rng rng(1000 + be.rank());
    Histogram local_latency(0.0, 20.0, 20);
    for (std::uint64_t round = 0; round < rounds; ++round) {
      const double load = std::max(0.0, rng.gaussian(1.0 + 0.1 * (be.rank() % 4), 0.3));
      const double free_mb = rng.uniform(200.0, 1800.0);
      // Per-round aligned sample: [load, free memory].
      be.send(aligned.id(), kFirstAppTag, TimeAlignedFilter::kFormat,
              {round, std::vector<double>{load, free_mb}});
      // Top-3 most loaded hosts this round.
      be.send(hogs.id(), kFirstAppTag, TopKFilter::kFormat,
              {std::vector<double>{load},
               std::vector<std::string>{"host-" + std::to_string(be.rank())}});
      for (int probe = 0; probe < 16; ++probe) {
        local_latency.add(std::max(0.1, rng.gaussian(5.0, 2.5)));
      }
    }
    be.send(latency.id(), kFirstAppTag, HistogramCodec::kFormat,
            HistogramCodec::to_values(local_latency));
  });

  std::printf("%-6s  %-12s  %-12s  %s\n", "round", "avg load", "avg free MB",
              "top loaded hosts");
  for (std::uint64_t round = 0; round < rounds; ++round) {
    const auto sample = aligned.recv_for(std::chrono::seconds(5));
    const auto top = hogs.recv_for(std::chrono::seconds(5));
    if (!sample || !top) break;
    const auto& sums = (*sample)->get_vf64(1);
    const auto& names = (*top)->get_vstr(1);
    std::string top_list;
    for (const auto& name : names) top_list += name + " ";
    std::printf("%-6llu  %-12.3f  %-12.1f  %s\n",
                static_cast<unsigned long long>((*sample)->get_u64(0)),
                sums[0] / static_cast<double>(hosts),
                sums[1] / static_cast<double>(hosts), top_list.c_str());
  }

  if (const auto merged = latency.recv_for(std::chrono::seconds(5))) {
    const Histogram h = HistogramCodec::from_values(**merged);
    std::printf("\ncluster latency histogram (%llu probes): p50=%.2f ms  p95=%.2f ms\n",
                static_cast<unsigned long long>(h.total()), h.quantile(0.5),
                h.quantile(0.95));
  }

  net->shutdown();
  return 0;
}
