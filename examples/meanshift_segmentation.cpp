// Distributed mean-shift clustering — the paper's case study as a demo.
//
//   ./meanshift_segmentation [topology=bal:4x2] [clusters=6] [points=400]
//                            [bandwidth=50] [kernel=gaussian]
//
// Every back-end "captures" one tile of synthetic image-like feature data
// (the same Gaussian mixture with slightly shifted centers per leaf, as in
// §3.1), runs mean-shift locally, and the tree merges and refines peaks on
// the way to the front-end, which prints the recovered segmentation.
#include <cstdio>

#include "common/config.hpp"
#include "core/network.hpp"
#include "meanshift/distributed.hpp"
#include "meanshift/synth.hpp"

using namespace tbon;
using namespace tbon::ms;

int main(int argc, char** argv) {
  const Config config(argc, argv);
  const Topology topology = TopologyOptions::from_spec(config.get("topology", "bal:4x2"));

  SynthParams synth;
  synth.num_clusters = static_cast<std::size_t>(config.get_int("clusters", 6));
  synth.points_per_cluster = static_cast<std::size_t>(config.get_int("points", 400));

  DistributedParams params;
  params.shift.bandwidth = config.get_double("bandwidth", 50.0);
  params.shift.kernel = parse_kernel(config.get("kernel", "gaussian"));
  params.shift.density_threshold = config.get_double("density_threshold", 10.0);

  register_mean_shift_filter();
  auto net = Network::create({.topology = topology});
  Stream& stream = net->front_end().open_stream(
      StreamSpec().up("mean_shift").with_params(to_filter_params(params)));

  net->run_backends([&](BackEnd& be) {
    const auto data = generate_leaf_data(be.rank(), synth);
    const LocalResult local = leaf_compute(data, params);
    be.send(stream.id(), kFirstAppTag, MeanShiftCodec::kFormat,
            MeanShiftCodec::to_values(local));
  });

  const auto result = stream.recv_for(std::chrono::seconds(60));
  if (!result) {
    std::fprintf(stderr, "no result from the tree\n");
    return 1;
  }
  const LocalResult merged = MeanShiftCodec::from_values(**result);
  net->shutdown();

  const auto centers = true_centers(synth);
  std::printf("true cluster centers (%zu):\n", centers.size());
  for (const auto& center : centers) {
    std::printf("  (%8.2f, %8.2f)\n", center.x, center.y);
  }
  std::printf("peaks found by the tree (%zu):\n", merged.peaks.size());
  for (const auto& peak : merged.peaks) {
    std::printf("  (%8.2f, %8.2f)  support %llu\n", peak.position.x, peak.position.y,
                static_cast<unsigned long long>(peak.support));
  }
  std::printf("match fraction within 15 units: %.2f\n",
              match_fraction(merged.peaks, centers, 15.0));

  // Segment one leaf's data against the global peaks (image segmentation
  // use-case from §3: "segment the input image into layers").
  const auto tile = generate_leaf_data(0, synth);
  const auto labels = assign_clusters(tile, merged.peaks, params.shift);
  std::vector<std::size_t> sizes(merged.peaks.size(), 0);
  std::size_t noise = 0;
  for (const auto label : labels) {
    if (label < 0) {
      ++noise;
    } else {
      ++sizes[static_cast<std::size_t>(label)];
    }
  }
  std::printf("segmentation of leaf 0's tile (%zu points):\n", tile.size());
  for (std::size_t k = 0; k < sizes.size(); ++k) {
    std::printf("  layer %zu: %zu points\n", k, sizes[k]);
  }
  std::printf("  noise  : %zu points\n", noise);
  return 0;
}
