# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "topology=bal:2x2")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_meanshift "/root/repo/build/examples/meanshift_segmentation" "topology=bal:2x2" "clusters=3" "points=120")
set_tests_properties(example_meanshift PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_monitor "/root/repo/build/examples/system_monitor" "topology=bal:2x2" "rounds=3")
set_tests_properties(example_monitor PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_equivalence "/root/repo/build/examples/equivalence_classes" "daemons=16" "fanout=4")
set_tests_properties(example_equivalence PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_clock_skew "/root/repo/build/examples/clock_skew" "topology=bal:2x2")
set_tests_properties(example_clock_skew PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_process_mode "/root/repo/build/examples/process_mode" "topology=bal:2x2")
set_tests_properties(example_process_mode PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_kmeans "/root/repo/build/examples/distributed_kmeans" "topology=bal:2x2" "k=3" "dim=2" "points=150")
set_tests_properties(example_kmeans PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_topology_tool "/root/repo/build/examples/topology_tool" "spec=auto:8:100" "dot=1" "mrnet=1")
set_tests_properties(example_topology_tool PROPERTIES  TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
