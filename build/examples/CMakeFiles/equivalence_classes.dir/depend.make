# Empty dependencies file for equivalence_classes.
# This may be replaced when dependencies are built.
