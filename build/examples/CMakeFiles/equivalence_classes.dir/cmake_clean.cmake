file(REMOVE_RECURSE
  "CMakeFiles/equivalence_classes.dir/equivalence_classes.cpp.o"
  "CMakeFiles/equivalence_classes.dir/equivalence_classes.cpp.o.d"
  "equivalence_classes"
  "equivalence_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
