# Empty compiler generated dependencies file for system_monitor.
# This may be replaced when dependencies are built.
