
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/system_monitor.cpp" "examples/CMakeFiles/system_monitor.dir/system_monitor.cpp.o" "gcc" "examples/CMakeFiles/system_monitor.dir/system_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/filters/CMakeFiles/tbon_filters.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tbon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tbon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tbon_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tbon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
