# Empty dependencies file for distributed_kmeans.
# This may be replaced when dependencies are built.
