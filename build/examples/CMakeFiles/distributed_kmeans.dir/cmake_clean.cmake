file(REMOVE_RECURSE
  "CMakeFiles/distributed_kmeans.dir/distributed_kmeans.cpp.o"
  "CMakeFiles/distributed_kmeans.dir/distributed_kmeans.cpp.o.d"
  "distributed_kmeans"
  "distributed_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distributed_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
