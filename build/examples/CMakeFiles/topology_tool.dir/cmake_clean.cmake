file(REMOVE_RECURSE
  "CMakeFiles/topology_tool.dir/topology_tool.cpp.o"
  "CMakeFiles/topology_tool.dir/topology_tool.cpp.o.d"
  "topology_tool"
  "topology_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
