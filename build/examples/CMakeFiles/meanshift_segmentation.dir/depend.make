# Empty dependencies file for meanshift_segmentation.
# This may be replaced when dependencies are built.
