file(REMOVE_RECURSE
  "CMakeFiles/meanshift_segmentation.dir/meanshift_segmentation.cpp.o"
  "CMakeFiles/meanshift_segmentation.dir/meanshift_segmentation.cpp.o.d"
  "meanshift_segmentation"
  "meanshift_segmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meanshift_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
