file(REMOVE_RECURSE
  "CMakeFiles/meanshift_ablation.dir/meanshift_ablation.cpp.o"
  "CMakeFiles/meanshift_ablation.dir/meanshift_ablation.cpp.o.d"
  "meanshift_ablation"
  "meanshift_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meanshift_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
