# Empty dependencies file for meanshift_ablation.
# This may be replaced when dependencies are built.
