# Empty compiler generated dependencies file for tree_sweep.
# This may be replaced when dependencies are built.
