file(REMOVE_RECURSE
  "CMakeFiles/tree_sweep.dir/tree_sweep.cpp.o"
  "CMakeFiles/tree_sweep.dir/tree_sweep.cpp.o.d"
  "tree_sweep"
  "tree_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
