# Empty dependencies file for topology_cost.
# This may be replaced when dependencies are built.
