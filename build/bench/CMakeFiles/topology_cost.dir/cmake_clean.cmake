file(REMOVE_RECURSE
  "CMakeFiles/topology_cost.dir/topology_cost.cpp.o"
  "CMakeFiles/topology_cost.dir/topology_cost.cpp.o.d"
  "topology_cost"
  "topology_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
