# Empty compiler generated dependencies file for sync_filters.
# This may be replaced when dependencies are built.
