file(REMOVE_RECURSE
  "CMakeFiles/sync_filters.dir/sync_filters.cpp.o"
  "CMakeFiles/sync_filters.dir/sync_filters.cpp.o.d"
  "sync_filters"
  "sync_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sync_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
