file(REMOVE_RECURSE
  "CMakeFiles/paradyn_startup.dir/paradyn_startup.cpp.o"
  "CMakeFiles/paradyn_startup.dir/paradyn_startup.cpp.o.d"
  "paradyn_startup"
  "paradyn_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradyn_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
