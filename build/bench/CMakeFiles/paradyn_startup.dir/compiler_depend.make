# Empty compiler generated dependencies file for paradyn_startup.
# This may be replaced when dependencies are built.
