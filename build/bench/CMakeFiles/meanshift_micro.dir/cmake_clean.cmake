file(REMOVE_RECURSE
  "CMakeFiles/meanshift_micro.dir/meanshift_micro.cpp.o"
  "CMakeFiles/meanshift_micro.dir/meanshift_micro.cpp.o.d"
  "meanshift_micro"
  "meanshift_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meanshift_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
