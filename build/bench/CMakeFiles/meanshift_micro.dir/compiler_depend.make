# Empty compiler generated dependencies file for meanshift_micro.
# This may be replaced when dependencies are built.
