file(REMOVE_RECURSE
  "CMakeFiles/fig4_meanshift.dir/fig4_meanshift.cpp.o"
  "CMakeFiles/fig4_meanshift.dir/fig4_meanshift.cpp.o.d"
  "fig4_meanshift"
  "fig4_meanshift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_meanshift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
