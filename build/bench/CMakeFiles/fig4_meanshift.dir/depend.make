# Empty dependencies file for fig4_meanshift.
# This may be replaced when dependencies are built.
