# Empty dependencies file for frontend_throughput.
# This may be replaced when dependencies are built.
