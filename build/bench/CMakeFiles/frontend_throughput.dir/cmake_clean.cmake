file(REMOVE_RECURSE
  "CMakeFiles/frontend_throughput.dir/frontend_throughput.cpp.o"
  "CMakeFiles/frontend_throughput.dir/frontend_throughput.cpp.o.d"
  "frontend_throughput"
  "frontend_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
