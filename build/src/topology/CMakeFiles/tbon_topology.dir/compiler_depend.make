# Empty compiler generated dependencies file for tbon_topology.
# This may be replaced when dependencies are built.
