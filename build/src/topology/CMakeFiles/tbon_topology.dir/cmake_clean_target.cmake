file(REMOVE_RECURSE
  "libtbon_topology.a"
)
