file(REMOVE_RECURSE
  "CMakeFiles/tbon_topology.dir/mrnet_config.cpp.o"
  "CMakeFiles/tbon_topology.dir/mrnet_config.cpp.o.d"
  "CMakeFiles/tbon_topology.dir/topology.cpp.o"
  "CMakeFiles/tbon_topology.dir/topology.cpp.o.d"
  "libtbon_topology.a"
  "libtbon_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
