
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/builtin_filters.cpp" "src/core/CMakeFiles/tbon_core.dir/builtin_filters.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/builtin_filters.cpp.o.d"
  "/root/repo/src/core/fd_link.cpp" "src/core/CMakeFiles/tbon_core.dir/fd_link.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/fd_link.cpp.o.d"
  "/root/repo/src/core/network.cpp" "src/core/CMakeFiles/tbon_core.dir/network.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/network.cpp.o.d"
  "/root/repo/src/core/node.cpp" "src/core/CMakeFiles/tbon_core.dir/node.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/node.cpp.o.d"
  "/root/repo/src/core/packet.cpp" "src/core/CMakeFiles/tbon_core.dir/packet.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/packet.cpp.o.d"
  "/root/repo/src/core/process_network.cpp" "src/core/CMakeFiles/tbon_core.dir/process_network.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/process_network.cpp.o.d"
  "/root/repo/src/core/protocol.cpp" "src/core/CMakeFiles/tbon_core.dir/protocol.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/protocol.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/core/CMakeFiles/tbon_core.dir/registry.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/registry.cpp.o.d"
  "/root/repo/src/core/sync.cpp" "src/core/CMakeFiles/tbon_core.dir/sync.cpp.o" "gcc" "src/core/CMakeFiles/tbon_core.dir/sync.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tbon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tbon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tbon_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
