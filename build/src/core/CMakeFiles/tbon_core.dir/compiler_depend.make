# Empty compiler generated dependencies file for tbon_core.
# This may be replaced when dependencies are built.
