file(REMOVE_RECURSE
  "libtbon_core.a"
)
