file(REMOVE_RECURSE
  "CMakeFiles/tbon_core.dir/builtin_filters.cpp.o"
  "CMakeFiles/tbon_core.dir/builtin_filters.cpp.o.d"
  "CMakeFiles/tbon_core.dir/fd_link.cpp.o"
  "CMakeFiles/tbon_core.dir/fd_link.cpp.o.d"
  "CMakeFiles/tbon_core.dir/network.cpp.o"
  "CMakeFiles/tbon_core.dir/network.cpp.o.d"
  "CMakeFiles/tbon_core.dir/node.cpp.o"
  "CMakeFiles/tbon_core.dir/node.cpp.o.d"
  "CMakeFiles/tbon_core.dir/packet.cpp.o"
  "CMakeFiles/tbon_core.dir/packet.cpp.o.d"
  "CMakeFiles/tbon_core.dir/process_network.cpp.o"
  "CMakeFiles/tbon_core.dir/process_network.cpp.o.d"
  "CMakeFiles/tbon_core.dir/protocol.cpp.o"
  "CMakeFiles/tbon_core.dir/protocol.cpp.o.d"
  "CMakeFiles/tbon_core.dir/registry.cpp.o"
  "CMakeFiles/tbon_core.dir/registry.cpp.o.d"
  "CMakeFiles/tbon_core.dir/sync.cpp.o"
  "CMakeFiles/tbon_core.dir/sync.cpp.o.d"
  "libtbon_core.a"
  "libtbon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
