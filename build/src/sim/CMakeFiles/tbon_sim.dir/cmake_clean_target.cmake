file(REMOVE_RECURSE
  "libtbon_sim.a"
)
