file(REMOVE_RECURSE
  "CMakeFiles/tbon_sim.dir/critical_path.cpp.o"
  "CMakeFiles/tbon_sim.dir/critical_path.cpp.o.d"
  "CMakeFiles/tbon_sim.dir/des.cpp.o"
  "CMakeFiles/tbon_sim.dir/des.cpp.o.d"
  "CMakeFiles/tbon_sim.dir/models.cpp.o"
  "CMakeFiles/tbon_sim.dir/models.cpp.o.d"
  "libtbon_sim.a"
  "libtbon_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
