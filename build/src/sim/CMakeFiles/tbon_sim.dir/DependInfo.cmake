
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/critical_path.cpp" "src/sim/CMakeFiles/tbon_sim.dir/critical_path.cpp.o" "gcc" "src/sim/CMakeFiles/tbon_sim.dir/critical_path.cpp.o.d"
  "/root/repo/src/sim/des.cpp" "src/sim/CMakeFiles/tbon_sim.dir/des.cpp.o" "gcc" "src/sim/CMakeFiles/tbon_sim.dir/des.cpp.o.d"
  "/root/repo/src/sim/models.cpp" "src/sim/CMakeFiles/tbon_sim.dir/models.cpp.o" "gcc" "src/sim/CMakeFiles/tbon_sim.dir/models.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/tbon_common.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tbon_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
