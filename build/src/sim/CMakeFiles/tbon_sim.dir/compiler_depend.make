# Empty compiler generated dependencies file for tbon_sim.
# This may be replaced when dependencies are built.
