
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/filters/calltree.cpp" "src/filters/CMakeFiles/tbon_filters.dir/calltree.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/calltree.cpp.o.d"
  "/root/repo/src/filters/clockskew.cpp" "src/filters/CMakeFiles/tbon_filters.dir/clockskew.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/clockskew.cpp.o.d"
  "/root/repo/src/filters/equivalence.cpp" "src/filters/CMakeFiles/tbon_filters.dir/equivalence.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/equivalence.cpp.o.d"
  "/root/repo/src/filters/histogram_filter.cpp" "src/filters/CMakeFiles/tbon_filters.dir/histogram_filter.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/histogram_filter.cpp.o.d"
  "/root/repo/src/filters/register.cpp" "src/filters/CMakeFiles/tbon_filters.dir/register.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/register.cpp.o.d"
  "/root/repo/src/filters/super.cpp" "src/filters/CMakeFiles/tbon_filters.dir/super.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/super.cpp.o.d"
  "/root/repo/src/filters/time_aligned.cpp" "src/filters/CMakeFiles/tbon_filters.dir/time_aligned.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/time_aligned.cpp.o.d"
  "/root/repo/src/filters/topk.cpp" "src/filters/CMakeFiles/tbon_filters.dir/topk.cpp.o" "gcc" "src/filters/CMakeFiles/tbon_filters.dir/topk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tbon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tbon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tbon_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tbon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
