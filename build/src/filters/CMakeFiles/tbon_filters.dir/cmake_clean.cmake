file(REMOVE_RECURSE
  "CMakeFiles/tbon_filters.dir/calltree.cpp.o"
  "CMakeFiles/tbon_filters.dir/calltree.cpp.o.d"
  "CMakeFiles/tbon_filters.dir/clockskew.cpp.o"
  "CMakeFiles/tbon_filters.dir/clockskew.cpp.o.d"
  "CMakeFiles/tbon_filters.dir/equivalence.cpp.o"
  "CMakeFiles/tbon_filters.dir/equivalence.cpp.o.d"
  "CMakeFiles/tbon_filters.dir/histogram_filter.cpp.o"
  "CMakeFiles/tbon_filters.dir/histogram_filter.cpp.o.d"
  "CMakeFiles/tbon_filters.dir/register.cpp.o"
  "CMakeFiles/tbon_filters.dir/register.cpp.o.d"
  "CMakeFiles/tbon_filters.dir/super.cpp.o"
  "CMakeFiles/tbon_filters.dir/super.cpp.o.d"
  "CMakeFiles/tbon_filters.dir/time_aligned.cpp.o"
  "CMakeFiles/tbon_filters.dir/time_aligned.cpp.o.d"
  "CMakeFiles/tbon_filters.dir/topk.cpp.o"
  "CMakeFiles/tbon_filters.dir/topk.cpp.o.d"
  "libtbon_filters.a"
  "libtbon_filters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
