# Empty dependencies file for tbon_filters.
# This may be replaced when dependencies are built.
