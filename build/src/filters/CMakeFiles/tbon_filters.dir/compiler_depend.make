# Empty compiler generated dependencies file for tbon_filters.
# This may be replaced when dependencies are built.
