file(REMOVE_RECURSE
  "libtbon_filters.a"
)
