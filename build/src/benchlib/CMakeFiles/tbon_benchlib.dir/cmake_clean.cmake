file(REMOVE_RECURSE
  "CMakeFiles/tbon_benchlib.dir/table.cpp.o"
  "CMakeFiles/tbon_benchlib.dir/table.cpp.o.d"
  "libtbon_benchlib.a"
  "libtbon_benchlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_benchlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
