# Empty compiler generated dependencies file for tbon_benchlib.
# This may be replaced when dependencies are built.
