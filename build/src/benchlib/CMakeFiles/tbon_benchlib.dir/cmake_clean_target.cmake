file(REMOVE_RECURSE
  "libtbon_benchlib.a"
)
