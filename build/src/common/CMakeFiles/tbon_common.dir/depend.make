# Empty dependencies file for tbon_common.
# This may be replaced when dependencies are built.
