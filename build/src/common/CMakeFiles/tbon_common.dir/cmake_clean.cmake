file(REMOVE_RECURSE
  "CMakeFiles/tbon_common.dir/config.cpp.o"
  "CMakeFiles/tbon_common.dir/config.cpp.o.d"
  "CMakeFiles/tbon_common.dir/datavalue.cpp.o"
  "CMakeFiles/tbon_common.dir/datavalue.cpp.o.d"
  "CMakeFiles/tbon_common.dir/log.cpp.o"
  "CMakeFiles/tbon_common.dir/log.cpp.o.d"
  "CMakeFiles/tbon_common.dir/trace.cpp.o"
  "CMakeFiles/tbon_common.dir/trace.cpp.o.d"
  "libtbon_common.a"
  "libtbon_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
