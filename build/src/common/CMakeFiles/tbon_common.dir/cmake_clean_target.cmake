file(REMOVE_RECURSE
  "libtbon_common.a"
)
