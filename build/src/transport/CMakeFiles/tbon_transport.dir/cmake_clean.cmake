file(REMOVE_RECURSE
  "CMakeFiles/tbon_transport.dir/fd.cpp.o"
  "CMakeFiles/tbon_transport.dir/fd.cpp.o.d"
  "CMakeFiles/tbon_transport.dir/tcp.cpp.o"
  "CMakeFiles/tbon_transport.dir/tcp.cpp.o.d"
  "libtbon_transport.a"
  "libtbon_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
