# Empty compiler generated dependencies file for tbon_transport.
# This may be replaced when dependencies are built.
