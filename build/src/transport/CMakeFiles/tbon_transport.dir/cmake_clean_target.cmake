file(REMOVE_RECURSE
  "libtbon_transport.a"
)
