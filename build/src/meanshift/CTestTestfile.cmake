# CMake generated Testfile for 
# Source directory: /root/repo/src/meanshift
# Build directory: /root/repo/build/src/meanshift
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
