
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/meanshift/agglomerative.cpp" "src/meanshift/CMakeFiles/tbon_meanshift.dir/agglomerative.cpp.o" "gcc" "src/meanshift/CMakeFiles/tbon_meanshift.dir/agglomerative.cpp.o.d"
  "/root/repo/src/meanshift/distributed.cpp" "src/meanshift/CMakeFiles/tbon_meanshift.dir/distributed.cpp.o" "gcc" "src/meanshift/CMakeFiles/tbon_meanshift.dir/distributed.cpp.o.d"
  "/root/repo/src/meanshift/kmeans.cpp" "src/meanshift/CMakeFiles/tbon_meanshift.dir/kmeans.cpp.o" "gcc" "src/meanshift/CMakeFiles/tbon_meanshift.dir/kmeans.cpp.o.d"
  "/root/repo/src/meanshift/meanshift.cpp" "src/meanshift/CMakeFiles/tbon_meanshift.dir/meanshift.cpp.o" "gcc" "src/meanshift/CMakeFiles/tbon_meanshift.dir/meanshift.cpp.o.d"
  "/root/repo/src/meanshift/nd.cpp" "src/meanshift/CMakeFiles/tbon_meanshift.dir/nd.cpp.o" "gcc" "src/meanshift/CMakeFiles/tbon_meanshift.dir/nd.cpp.o.d"
  "/root/repo/src/meanshift/synth.cpp" "src/meanshift/CMakeFiles/tbon_meanshift.dir/synth.cpp.o" "gcc" "src/meanshift/CMakeFiles/tbon_meanshift.dir/synth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tbon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/tbon_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tbon_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/tbon_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
