# Empty dependencies file for tbon_meanshift.
# This may be replaced when dependencies are built.
