file(REMOVE_RECURSE
  "CMakeFiles/tbon_meanshift.dir/agglomerative.cpp.o"
  "CMakeFiles/tbon_meanshift.dir/agglomerative.cpp.o.d"
  "CMakeFiles/tbon_meanshift.dir/distributed.cpp.o"
  "CMakeFiles/tbon_meanshift.dir/distributed.cpp.o.d"
  "CMakeFiles/tbon_meanshift.dir/kmeans.cpp.o"
  "CMakeFiles/tbon_meanshift.dir/kmeans.cpp.o.d"
  "CMakeFiles/tbon_meanshift.dir/meanshift.cpp.o"
  "CMakeFiles/tbon_meanshift.dir/meanshift.cpp.o.d"
  "CMakeFiles/tbon_meanshift.dir/nd.cpp.o"
  "CMakeFiles/tbon_meanshift.dir/nd.cpp.o.d"
  "CMakeFiles/tbon_meanshift.dir/synth.cpp.o"
  "CMakeFiles/tbon_meanshift.dir/synth.cpp.o.d"
  "libtbon_meanshift.a"
  "libtbon_meanshift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_meanshift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
