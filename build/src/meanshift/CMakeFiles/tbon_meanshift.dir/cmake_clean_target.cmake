file(REMOVE_RECURSE
  "libtbon_meanshift.a"
)
