# Empty compiler generated dependencies file for tbon_meanshift.
# This may be replaced when dependencies are built.
