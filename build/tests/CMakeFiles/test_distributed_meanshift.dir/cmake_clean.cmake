file(REMOVE_RECURSE
  "CMakeFiles/test_distributed_meanshift.dir/test_distributed_meanshift.cpp.o"
  "CMakeFiles/test_distributed_meanshift.dir/test_distributed_meanshift.cpp.o.d"
  "test_distributed_meanshift"
  "test_distributed_meanshift.pdb"
  "test_distributed_meanshift[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_distributed_meanshift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
