# Empty dependencies file for test_distributed_meanshift.
# This may be replaced when dependencies are built.
