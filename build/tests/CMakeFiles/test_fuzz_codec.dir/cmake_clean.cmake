file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_codec.dir/test_fuzz_codec.cpp.o"
  "CMakeFiles/test_fuzz_codec.dir/test_fuzz_codec.cpp.o.d"
  "test_fuzz_codec"
  "test_fuzz_codec.pdb"
  "test_fuzz_codec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
