# Empty dependencies file for test_fuzz_codec.
# This may be replaced when dependencies are built.
