# Empty dependencies file for test_network_streams.
# This may be replaced when dependencies are built.
