file(REMOVE_RECURSE
  "CMakeFiles/test_network_streams.dir/test_network_streams.cpp.o"
  "CMakeFiles/test_network_streams.dir/test_network_streams.cpp.o.d"
  "test_network_streams"
  "test_network_streams.pdb"
  "test_network_streams[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_streams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
