# Empty dependencies file for test_agglomerative.
# This may be replaced when dependencies are built.
