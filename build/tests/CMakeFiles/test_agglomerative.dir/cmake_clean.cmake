file(REMOVE_RECURSE
  "CMakeFiles/test_agglomerative.dir/test_agglomerative.cpp.o"
  "CMakeFiles/test_agglomerative.dir/test_agglomerative.cpp.o.d"
  "test_agglomerative"
  "test_agglomerative.pdb"
  "test_agglomerative[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agglomerative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
