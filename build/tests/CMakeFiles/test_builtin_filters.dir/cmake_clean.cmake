file(REMOVE_RECURSE
  "CMakeFiles/test_builtin_filters.dir/test_builtin_filters.cpp.o"
  "CMakeFiles/test_builtin_filters.dir/test_builtin_filters.cpp.o.d"
  "test_builtin_filters"
  "test_builtin_filters.pdb"
  "test_builtin_filters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_builtin_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
