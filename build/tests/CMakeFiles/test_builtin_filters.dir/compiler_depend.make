# Empty compiler generated dependencies file for test_builtin_filters.
# This may be replaced when dependencies are built.
