file(REMOVE_RECURSE
  "CMakeFiles/test_complex_filters.dir/test_complex_filters.cpp.o"
  "CMakeFiles/test_complex_filters.dir/test_complex_filters.cpp.o.d"
  "test_complex_filters"
  "test_complex_filters.pdb"
  "test_complex_filters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_complex_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
