# Empty dependencies file for test_complex_filters.
# This may be replaced when dependencies are built.
