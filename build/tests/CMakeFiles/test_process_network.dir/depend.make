# Empty dependencies file for test_process_network.
# This may be replaced when dependencies are built.
