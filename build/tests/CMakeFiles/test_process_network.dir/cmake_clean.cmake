file(REMOVE_RECURSE
  "CMakeFiles/test_process_network.dir/test_process_network.cpp.o"
  "CMakeFiles/test_process_network.dir/test_process_network.cpp.o.d"
  "test_process_network"
  "test_process_network.pdb"
  "test_process_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_process_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
