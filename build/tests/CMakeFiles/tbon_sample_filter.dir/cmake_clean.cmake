file(REMOVE_RECURSE
  "CMakeFiles/tbon_sample_filter.dir/sample_filter_lib.cpp.o"
  "CMakeFiles/tbon_sample_filter.dir/sample_filter_lib.cpp.o.d"
  "libtbon_sample_filter.pdb"
  "libtbon_sample_filter.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbon_sample_filter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
