# Empty dependencies file for tbon_sample_filter.
# This may be replaced when dependencies are built.
