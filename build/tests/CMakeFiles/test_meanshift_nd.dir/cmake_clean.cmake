file(REMOVE_RECURSE
  "CMakeFiles/test_meanshift_nd.dir/test_meanshift_nd.cpp.o"
  "CMakeFiles/test_meanshift_nd.dir/test_meanshift_nd.cpp.o.d"
  "test_meanshift_nd"
  "test_meanshift_nd.pdb"
  "test_meanshift_nd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_meanshift_nd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
