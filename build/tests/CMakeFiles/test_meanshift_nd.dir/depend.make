# Empty dependencies file for test_meanshift_nd.
# This may be replaced when dependencies are built.
