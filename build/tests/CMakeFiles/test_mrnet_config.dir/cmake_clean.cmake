file(REMOVE_RECURSE
  "CMakeFiles/test_mrnet_config.dir/test_mrnet_config.cpp.o"
  "CMakeFiles/test_mrnet_config.dir/test_mrnet_config.cpp.o.d"
  "test_mrnet_config"
  "test_mrnet_config.pdb"
  "test_mrnet_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrnet_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
