# Empty dependencies file for test_peer_routing.
# This may be replaced when dependencies are built.
