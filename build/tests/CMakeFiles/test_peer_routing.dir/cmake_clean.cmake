file(REMOVE_RECURSE
  "CMakeFiles/test_peer_routing.dir/test_peer_routing.cpp.o"
  "CMakeFiles/test_peer_routing.dir/test_peer_routing.cpp.o.d"
  "test_peer_routing"
  "test_peer_routing.pdb"
  "test_peer_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_peer_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
