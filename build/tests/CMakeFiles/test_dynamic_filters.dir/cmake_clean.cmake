file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_filters.dir/test_dynamic_filters.cpp.o"
  "CMakeFiles/test_dynamic_filters.dir/test_dynamic_filters.cpp.o.d"
  "test_dynamic_filters"
  "test_dynamic_filters.pdb"
  "test_dynamic_filters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_filters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
