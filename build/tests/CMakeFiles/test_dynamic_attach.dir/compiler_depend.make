# Empty compiler generated dependencies file for test_dynamic_attach.
# This may be replaced when dependencies are built.
