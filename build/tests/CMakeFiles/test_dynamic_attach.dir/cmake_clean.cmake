file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_attach.dir/test_dynamic_attach.cpp.o"
  "CMakeFiles/test_dynamic_attach.dir/test_dynamic_attach.cpp.o.d"
  "test_dynamic_attach"
  "test_dynamic_attach.pdb"
  "test_dynamic_attach[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_attach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
