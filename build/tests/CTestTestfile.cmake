# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_packet[1]_include.cmake")
include("/root/repo/build/tests/test_builtin_filters[1]_include.cmake")
include("/root/repo/build/tests/test_sync[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_complex_filters[1]_include.cmake")
include("/root/repo/build/tests/test_meanshift[1]_include.cmake")
include("/root/repo/build/tests/test_distributed_meanshift[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_process_network[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_filters[1]_include.cmake")
include("/root/repo/build/tests/test_peer_routing[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_attach[1]_include.cmake")
include("/root/repo/build/tests/test_meanshift_nd[1]_include.cmake")
include("/root/repo/build/tests/test_stress[1]_include.cmake")
include("/root/repo/build/tests/test_kmeans[1]_include.cmake")
include("/root/repo/build/tests/test_agglomerative[1]_include.cmake")
include("/root/repo/build/tests/test_mrnet_config[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_codec[1]_include.cmake")
include("/root/repo/build/tests/test_network_streams[1]_include.cmake")
include("/root/repo/build/tests/test_misc[1]_include.cmake")
