#include "filters/register.hpp"

#include "core/registry.hpp"
#include "filters/calltree.hpp"
#include "filters/clockskew.hpp"
#include "filters/equivalence.hpp"
#include "filters/histogram_filter.hpp"
#include "filters/super.hpp"
#include "filters/time_aligned.hpp"
#include "filters/topk.hpp"

namespace tbon::filters {
namespace {

template <typename F>
void add_simple(FilterRegistry& registry, const char* name) {
  if (registry.has_transform(name)) return;
  registry.register_transform(name, [](const FilterContext&) {
    return std::unique_ptr<TransformFilter>(std::make_unique<F>());
  });
}

template <typename F>
void add_with_context(FilterRegistry& registry, const char* name) {
  if (registry.has_transform(name)) return;
  registry.register_transform(name, [](const FilterContext& ctx) {
    return std::unique_ptr<TransformFilter>(std::make_unique<F>(ctx));
  });
}

}  // namespace

void register_all(FilterRegistry& registry) {
  add_simple<EquivalenceClassFilter>(registry, "equivalence_class");
  add_simple<HistogramMergeFilter>(registry, "histogram_merge");
  add_simple<SubGraphFoldFilter>(registry, "sgfa");
  add_simple<ClockSkewFilter>(registry, "clock_skew");
  add_with_context<TimeAlignedFilter>(registry, "time_aligned");
  add_with_context<TopKFilter>(registry, "topk");
  add_with_context<ClockProbeFilter>(registry, "clock_probe");
  if (!registry.has_transform("super")) {
    registry.register_transform("super", [&registry](const FilterContext& ctx) {
      return std::unique_ptr<TransformFilter>(
          std::make_unique<SuperFilter>(ctx, registry));
    });
  }
}

}  // namespace tbon::filters
