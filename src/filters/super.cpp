#include "filters/super.hpp"

#include <string>

#include "common/error.hpp"
#include "core/registry.hpp"

namespace tbon {

SuperFilter::SuperFilter(const FilterContext& ctx, const FilterRegistry& registry) {
  const std::string chain = ctx.params.get("chain");
  if (chain.empty()) {
    throw FilterError("super filter requires a 'chain=a,b,...' stream parameter");
  }
  std::size_t pos = 0;
  while (pos <= chain.size()) {
    auto end = chain.find(',', pos);
    if (end == std::string::npos) end = chain.size();
    const std::string name = chain.substr(pos, end - pos);
    if (name == "super") throw FilterError("super filter cannot nest itself");
    if (!name.empty()) stages_.push_back(registry.make_transform(name, ctx));
    pos = end + 1;
  }
  if (stages_.empty()) throw FilterError("super filter chain is empty");
}

void SuperFilter::filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                            FilterContext& ctx) {
  std::vector<PacketPtr> current(in.begin(), in.end());
  for (auto& stage : stages_) {
    std::vector<PacketPtr> next;
    if (!current.empty()) stage->filter(current, next, ctx);
    current = std::move(next);
  }
  out.insert(out.end(), current.begin(), current.end());
}

void SuperFilter::membership_changed(const MembershipChange& change,
                                       std::vector<PacketPtr>& out,
                                       FilterContext& ctx) {
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    std::vector<PacketPtr> emitted;
    stages_[i]->membership_changed(change, emitted, ctx);
    for (std::size_t j = i + 1; j < stages_.size() && !emitted.empty(); ++j) {
      std::vector<PacketPtr> next;
      stages_[j]->filter(emitted, next, ctx);
      emitted = std::move(next);
    }
    out.insert(out.end(), emitted.begin(), emitted.end());
  }
}

void SuperFilter::flush(std::vector<PacketPtr>& out, FilterContext& ctx) {
  // Flush each stage in order, feeding its finals through the rest of the
  // chain so stateful stages compose correctly.
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    std::vector<PacketPtr> finals;
    stages_[i]->flush(finals, ctx);
    for (std::size_t j = i + 1; j < stages_.size() && !finals.empty(); ++j) {
      std::vector<PacketPtr> next;
      stages_[j]->filter(finals, next, ctx);
      finals = std::move(next);
    }
    out.insert(out.end(), finals.begin(), finals.end());
  }
}

}  // namespace tbon
