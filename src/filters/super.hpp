// Super filter — filter chaining via composition.
//
// "MRNet does not support filter chaining where a sequence of filters are
// applied at each communication process.  A single 'super filter' that
// propagates the packet flow to a sequence of filters could seamlessly
// mimic this functionality." (paper §2.2)  This is that super filter.
//
// Configure with the stream parameter `chain`, a comma-separated list of
// registered transform filter names applied left to right, e.g.
//   params = "chain=sum,passthrough"
// The output packets of stage i become the input batch of stage i+1.
#pragma once

#include <memory>
#include <vector>

#include "core/filter.hpp"

namespace tbon {

class FilterRegistry;

class SuperFilter final : public TransformFilter {
 public:
  SuperFilter(const FilterContext& ctx, const FilterRegistry& registry);

  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;
  void flush(std::vector<PacketPtr>& out, FilterContext& ctx) override;

  /// Forward the change to every stage; packets a stage emits in response
  /// (e.g. a time_aligned bucket the failure completed) flow through the
  /// remaining stages, mirroring finish().
  void membership_changed(const MembershipChange& change,
                            std::vector<PacketPtr>& out,
                            FilterContext& ctx) override;

 private:
  std::vector<std::unique_ptr<TransformFilter>> stages_;
};

}  // namespace tbon
