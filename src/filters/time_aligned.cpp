#include "filters/time_aligned.hpp"

#include "common/error.hpp"

namespace tbon {

void TimeAlignedFilter::filter(std::span<const PacketPtr> in,
                                  std::vector<PacketPtr>& out, FilterContext&) {
  static const DataFormat kExpected{kFormat};
  for (const PacketPtr& packet : in) {
    if (packet->format() != kExpected) {
      throw CodecError("time_aligned expects packets of format 'u64 vf64'");
    }
    stream_id_ = packet->stream_id();
    tag_ = packet->tag();

    const std::uint64_t bucket_id = packet->get_u64(0);
    const auto& values = packet->get_vf64(1);
    const auto [slot, inserted] = buckets_.try_emplace(bucket_id);
    Bucket& bucket = slot->second;
    if (inserted) bucket.expected = expected_children_;
    if (bucket.sums.empty()) {
      bucket.sums = values;
    } else {
      if (bucket.sums.size() != values.size()) {
        throw CodecError("time_aligned sample width changed within a bucket");
      }
      for (std::size_t i = 0; i < values.size(); ++i) bucket.sums[i] += values[i];
    }
    ++bucket.contributions;
  }

  emit_complete(out);
}

void TimeAlignedFilter::emit_complete(std::vector<PacketPtr>& out) {
  // Emit every bucket that is now complete, in bucket order.  Completion is
  // judged against the bucket's own expectation (membership at creation),
  // not the current one: a child that joined later never saw this bucket.
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (it->second.contributions >= it->second.expected) {
      emit(it->first, it->second, out);
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

void TimeAlignedFilter::membership_changed(const MembershipChange& change,
                                             std::vector<PacketPtr>& out,
                                             FilterContext&) {
  expected_children_ = change.num_children;
  if (change.added) {
    // Growth affects only buckets opened from now on; in-flight buckets keep
    // their snapshotted expectation (the newcomer's replayed stream starts
    // at the next bucket it samples, not at buckets already in flight).
    return;
  }
  // Shrink: the departed child contributes nothing further, so pending
  // buckets can expect at most the surviving membership.  Emit whatever that
  // just completed instead of letting it hang.
  for (auto& [bucket_id, bucket] : buckets_) {
    bucket.expected = std::min(bucket.expected, expected_children_);
  }
  if (expected_children_ > 0) emit_complete(out);
}

void TimeAlignedFilter::flush(std::vector<PacketPtr>& out, FilterContext&) {
  for (const auto& [bucket_id, bucket] : buckets_) emit(bucket_id, bucket, out);
  buckets_.clear();
}

void TimeAlignedFilter::emit(std::uint64_t bucket_id, const Bucket& bucket,
                             std::vector<PacketPtr>& out) {
  out.push_back(Packet::make(stream_id_, tag_, kFrontEndRank, kFormat,
                             {bucket_id, bucket.sums}));
}

}  // namespace tbon
