#include "filters/time_aligned.hpp"

#include "common/error.hpp"

namespace tbon {

void TimeAlignedFilter::filter(std::span<const PacketPtr> in,
                                  std::vector<PacketPtr>& out, FilterContext&) {
  static const DataFormat kExpected{kFormat};
  for (const PacketPtr& packet : in) {
    if (packet->format() != kExpected) {
      throw CodecError("time_aligned expects packets of format 'u64 vf64'");
    }
    stream_id_ = packet->stream_id();
    tag_ = packet->tag();

    const std::uint64_t bucket_id = packet->get_u64(0);
    const auto& values = packet->get_vf64(1);
    Bucket& bucket = buckets_[bucket_id];
    if (bucket.sums.empty()) {
      bucket.sums = values;
    } else {
      if (bucket.sums.size() != values.size()) {
        throw CodecError("time_aligned sample width changed within a bucket");
      }
      for (std::size_t i = 0; i < values.size(); ++i) bucket.sums[i] += values[i];
    }
    ++bucket.contributions;
  }

  emit_complete(out);
}

void TimeAlignedFilter::emit_complete(std::vector<PacketPtr>& out) {
  // Emit every bucket that is now complete, in bucket order.
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    if (it->second.contributions >= expected_children_) {
      emit(it->first, it->second, out);
      it = buckets_.erase(it);
    } else {
      ++it;
    }
  }
}

void TimeAlignedFilter::membership_changed(const MembershipChange& change,
                                             std::vector<PacketPtr>& out,
                                             FilterContext&) {
  expected_children_ = change.num_children;
  // A shrink may have completed buckets the dead child never reached.  (On
  // growth nothing is emitted; future buckets simply expect more
  // contributions.  Buckets already partially filled before the newcomer
  // joined will wait for it too — its replayed stream sees all buckets the
  // adopted subtree still produces, so the accounting stays consistent.)
  if (!change.added && expected_children_ > 0) emit_complete(out);
}

void TimeAlignedFilter::flush(std::vector<PacketPtr>& out, FilterContext&) {
  for (const auto& [bucket_id, bucket] : buckets_) emit(bucket_id, bucket, out);
  buckets_.clear();
}

void TimeAlignedFilter::emit(std::uint64_t bucket_id, const Bucket& bucket,
                             std::vector<PacketPtr>& out) {
  out.push_back(Packet::make(stream_id_, tag_, kFrontEndRank, kFormat,
                             {bucket_id, bucket.sums}));
}

}  // namespace tbon
