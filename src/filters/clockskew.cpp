#include "filters/clockskew.hpp"

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace tbon {

double virtual_skew(std::uint32_t node_id, std::uint64_t seed) {
  if (seed == 0) return 0.0;
  // Deterministic pseudo-random skew in (-0.5s, 0.5s) per node.
  std::uint64_t state = seed * 0x9e3779b97f4a7c15ULL + node_id;
  const std::uint64_t bits = splitmix64(state);
  return (static_cast<double>(bits >> 11) * 0x1.0p-53 - 0.5);
}

double virtual_now_seconds(std::uint32_t node_id, std::uint64_t seed) {
  return static_cast<double>(now_ns()) * 1e-9 + virtual_skew(node_id, seed);
}

void ClockProbeFilter::filter(std::span<const PacketPtr> in,
                                 std::vector<PacketPtr>& out, FilterContext& ctx) {
  static const DataFormat kProbe{"vf64"};
  for (const PacketPtr& packet : in) {
    if (packet->format() != kProbe) throw CodecError("clock probe must be 'vf64'");
    std::vector<double> path = packet->get_vf64(0);
    path.push_back(virtual_now_seconds(ctx.node_id, seed_));
    out.push_back(Packet::make(packet->stream_id(), packet->tag(), packet->src_rank(),
                               "vf64", {std::move(path)}));
  }
}

PacketPtr make_clock_reply(const Packet& probe, std::uint32_t rank,
                           std::uint64_t skew_seed) {
  const auto& path = probe.get_vf64(0);
  if (path.empty()) throw CodecError("clock probe carried no timestamps");
  // Offset estimate: this back-end's virtual clock minus the front-end's
  // stamp.  Biased by the one-way downstream latency (see header).
  // The back-end's *node id* is unknown here, so virtual skew is keyed by
  // rank offset past the front-end's id space: callers pass node-id-derived
  // ranks when they want per-node virtual clocks.
  const double mine = virtual_now_seconds(rank + 1'000'000u, skew_seed);
  const double offset = mine - path.front();
  return Packet::make(probe.stream_id(), probe.tag(), rank, "vi64 vf64",
                      {std::vector<std::int64_t>{rank}, std::vector<double>{offset}});
}

void ClockSkewFilter::filter(std::span<const PacketPtr> in,
                                std::vector<PacketPtr>& out, FilterContext&) {
  static const DataFormat kReply{"vi64 vf64"};
  if (in.size() == 1) {
    // Concatenating one reply is the identity; validate and forward.
    if (in.front()->format() != kReply) throw CodecError("clock reply must be 'vi64 vf64'");
    out.push_back(in.front());
    return;
  }
  std::vector<std::int64_t> ranks;
  std::vector<double> offsets;
  for (const PacketPtr& packet : in) {
    if (packet->format() != kReply) throw CodecError("clock reply must be 'vi64 vf64'");
    const auto& r = packet->get_vi64(0);
    const auto& o = packet->get_vf64(1);
    if (r.size() != o.size()) throw CodecError("clock reply shape mismatch");
    ranks.insert(ranks.end(), r.begin(), r.end());
    offsets.insert(offsets.end(), o.begin(), o.end());
  }
  const Packet& first = *in.front();
  out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(),
                             "vi64 vf64", {std::move(ranks), std::move(offsets)}));
}

}  // namespace tbon
