// Registration of the complex-filter library.
#pragma once

namespace tbon {
class FilterRegistry;

namespace filters {

/// Register the complex filters under their canonical names:
///   "equivalence_class", "histogram_merge", "time_aligned", "sgfa",
///   "topk", "clock_probe", "clock_skew", "super".
/// Idempotent: names already present are left untouched.
void register_all(FilterRegistry& registry);

}  // namespace filters
}  // namespace tbon
