// Top-k selection filter.
//
// A classic tree-friendly reduction: each level keeps only the k largest
// (score, label) pairs of its children's candidates, so per-level traffic is
// O(k) regardless of fan-out or back-end count.  Top-k is the shape of many
// of the paper's motivating data-mining queries ("frequencies and other
// statistics of classes of elements", §2.3).
//
// Payload format: "vf64 vstr" = (scores, labels), sorted descending.
// Parameter: k (default 10) via stream params.
#pragma once

#include "core/filter.hpp"

namespace tbon {

class TopKFilter final : public TransformFilter {
 public:
  static constexpr const char* kFormat = "vf64 vstr";

  explicit TopKFilter(const FilterContext& ctx)
      : k_(static_cast<std::size_t>(ctx.params.get_int("k", 10))) {}

  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;

 private:
  std::size_t k_;
};

}  // namespace tbon
