#include "filters/histogram_filter.hpp"

#include "common/error.hpp"

namespace tbon {

std::vector<DataValue> HistogramCodec::to_values(const Histogram& histogram) {
  std::vector<std::int64_t> counts;
  counts.reserve(histogram.bin_count() + 2);
  counts.push_back(static_cast<std::int64_t>(histogram.underflow()));
  counts.push_back(static_cast<std::int64_t>(histogram.overflow()));
  for (const std::uint64_t c : histogram.bins()) {
    counts.push_back(static_cast<std::int64_t>(c));
  }
  return {histogram.lo(), histogram.hi(), std::move(counts)};
}

Histogram HistogramCodec::from_values(const Packet& packet, std::size_t first_field) {
  const double lo = packet.get_f64(first_field);
  const double hi = packet.get_f64(first_field + 1);
  const auto& counts = packet.get_vi64(first_field + 2);
  if (counts.size() < 3) throw CodecError("histogram payload too small");
  Histogram histogram(lo, hi, counts.size() - 2);
  // Reconstruct by re-adding weighted bin midpoints (exact: weights land in
  // the same bins) and the out-of-range sentinels.
  const double width = (hi - lo) / static_cast<double>(counts.size() - 2);
  histogram.add(lo - 1.0, static_cast<std::uint64_t>(counts[0]));  // underflow
  histogram.add(hi + 1.0, static_cast<std::uint64_t>(counts[1]));  // overflow
  for (std::size_t bin = 0; bin + 2 < counts.size(); ++bin) {
    const auto weight = static_cast<std::uint64_t>(counts[bin + 2]);
    if (weight > 0) histogram.add(lo + (static_cast<double>(bin) + 0.5) * width, weight);
  }
  return histogram;
}

void HistogramMergeFilter::filter(std::span<const PacketPtr> in,
                                     std::vector<PacketPtr>& out, FilterContext&) {
  if (in.size() == 1) {
    // Merging one histogram is the identity: forward verbatim, no
    // decode/re-encode round-trip.
    out.push_back(in.front());
    return;
  }
  Histogram merged = HistogramCodec::from_values(*in.front());
  for (std::size_t i = 1; i < in.size(); ++i) {
    merged.merge(HistogramCodec::from_values(*in[i]));
  }
  const Packet& first = *in.front();
  out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(),
                             HistogramCodec::kFormat, HistogramCodec::to_values(merged)));
}

}  // namespace tbon
