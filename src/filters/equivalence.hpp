// Equivalence-class reduction — the paper's canonical "complex" TBON filter.
//
// Figure 2 of the paper maps data-clustering algorithms onto "a TBON
// equivalence class filter computation, where the inputs are elements to
// classify, the computation is the application of data model or statistics
// to classify the data into the classes they represent, and the output is
// the classified data (or summary of the classified data)".
//
// An EquivalenceClasses value maps a class key (an arbitrary string — for
// Paradyn this is the canonical rendering of a daemon's report) to the set
// of back-end ranks that produced an equivalent report.  Merging unions the
// member sets; the merge is associative and commutative, so aggregation
// through any tree yields the same classes as a flat gather, while the data
// volume per level stays proportional to the number of *distinct* classes
// rather than the number of back-ends — exactly the compression that made
// Paradyn's startup scale (paper §2.2).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/filter.hpp"
#include "core/packet.hpp"

namespace tbon {

class EquivalenceClasses {
 public:
  /// Record that back-end `rank` produced a report in class `key`.
  void add(const std::string& key, std::uint32_t rank) { classes_[key].insert(rank); }

  /// Union the classes of another instance into this one.
  void merge(const EquivalenceClasses& other);

  std::size_t num_classes() const noexcept { return classes_.size(); }
  std::size_t num_members() const noexcept;
  const std::map<std::string, std::set<std::uint32_t>>& classes() const noexcept {
    return classes_;
  }
  const std::set<std::uint32_t>& members(const std::string& key) const;

  /// Packet payload encoding: format "vstr vi64 vi64" =
  /// (keys, members-per-key counts, flattened member ranks).
  static constexpr const char* kFormat = "vstr vi64 vi64";
  std::vector<DataValue> to_values() const;
  static EquivalenceClasses from_values(const Packet& packet, std::size_t first_field = 0);

  friend bool operator==(const EquivalenceClasses&, const EquivalenceClasses&) = default;

 private:
  std::map<std::string, std::set<std::uint32_t>> classes_;
};

/// Transformation filter: merges EquivalenceClasses payloads.
/// Register under "equivalence_class" via filters::register_all().
class EquivalenceClassFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;
};

}  // namespace tbon
