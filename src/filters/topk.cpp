#include "filters/topk.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace tbon {

void TopKFilter::filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                           FilterContext&) {
  static const DataFormat kExpected{kFormat};
  std::vector<std::pair<double, std::string>> candidates;
  for (const PacketPtr& packet : in) {
    if (packet->format() != kExpected) {
      throw CodecError("topk expects packets of format 'vf64 vstr'");
    }
    const auto& scores = packet->get_vf64(0);
    const auto& labels = packet->get_vstr(1);
    if (scores.size() != labels.size()) throw CodecError("topk score/label mismatch");
    for (std::size_t i = 0; i < scores.size(); ++i) {
      candidates.emplace_back(scores[i], labels[i]);
    }
  }
  // Sort descending by score, ties broken by label for determinism.
  std::sort(candidates.begin(), candidates.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  if (candidates.size() > k_) candidates.resize(k_);

  std::vector<double> scores;
  std::vector<std::string> labels;
  scores.reserve(candidates.size());
  labels.reserve(candidates.size());
  for (auto& [score, label] : candidates) {
    scores.push_back(score);
    labels.push_back(std::move(label));
  }
  const Packet& first = *in.front();
  out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(), kFormat,
                             {std::move(scores), std::move(labels)}));
}

}  // namespace tbon
