// Histogram merging as a TBON filter — "creating ... data histograms" is one
// of the complex tree-based computations the paper lists (§1, §4).
//
// Each back-end builds a Histogram over its local samples; the filter merges
// bucket-compatible histograms level by level.  Merge is exact (associative,
// commutative), so the front-end receives the histogram of the union of all
// samples while per-level traffic stays O(bins), independent of sample count.
#pragma once

#include "common/histogram.hpp"
#include "core/filter.hpp"
#include "core/packet.hpp"

namespace tbon {

/// Packet payload codec for Histogram.
/// Format "f64 f64 vi64" = (lo, hi, [underflow, overflow, bin counts...]).
struct HistogramCodec {
  static constexpr const char* kFormat = "f64 f64 vi64";
  static std::vector<DataValue> to_values(const Histogram& histogram);
  static Histogram from_values(const Packet& packet, std::size_t first_field = 0);
};

/// Transformation filter merging histogram payloads.
/// Register under "histogram_merge" via filters::register_all().
class HistogramMergeFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;
};

}  // namespace tbon
