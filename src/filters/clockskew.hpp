// Tree-based clock-skew detection (paper §1/§2.2: "MRNet filters were used
// to implement an efficient tree-based clock-skew detection algorithm").
//
// The algorithm estimates, for every back-end, the offset of its clock
// relative to the front-end's clock by composing per-edge offsets along the
// tree path, instead of having the front-end probe every back-end directly
// (which is the O(n) pattern TBONs exist to avoid).
//
// Protocol (one round):
//   1. The front-end multicasts a PROBE packet carrying its local send time.
//   2. The downstream ClockProbeFilter at each node appends the node's local
//      time to the probe's timestamp path as it passes — so a probe arriving
//      at a back-end carries [t_fe, t_n1, t_n2, ...].
//   3. Each back-end replies with the stamped path plus its own receive time.
//   4. The upstream ClockSkewFilter at each node computes the per-edge offset
//      estimate for each child reply (child_stamp - own_stamp ≈ skew + hop
//      latency) and aggregates the per-back-end path sums.
//   5. The front-end receives one packet with (rank, estimated offset) pairs.
//
// Under the half-RTT assumption the per-edge latency bias is bounded by the
// one-way hop time; composing L edges bounds the error by the path latency.
// On one host all clocks agree, so tests inject *virtual* per-node skews via
// the stream parameter `skew_seed`: each node's virtual clock is
// now_ns() + virtual_skew(node_id, seed), and the recovered offsets must
// match virtual_skew(be) - virtual_skew(root) within the latency bound.
//
// Packet formats:
//   PROBE (down): "vf64"         — timestamp path, seconds, FE first.
//   REPLY (up):   "vi64 vf64"    — back-end ranks, estimated offsets (s).
#pragma once

#include <cstdint>

#include "core/filter.hpp"

namespace tbon {

/// Deterministic virtual skew for node `id` (seconds); seed 0 disables.
double virtual_skew(std::uint32_t node_id, std::uint64_t seed);

/// Node-local virtual-clock reading in seconds.
double virtual_now_seconds(std::uint32_t node_id, std::uint64_t seed);

/// Downstream filter: appends this node's virtual clock to the probe path.
class ClockProbeFilter final : public TransformFilter {
 public:
  explicit ClockProbeFilter(const FilterContext& ctx)
      : seed_(static_cast<std::uint64_t>(ctx.params.get_int("skew_seed", 0))) {}

  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;

 private:
  std::uint64_t seed_;
};

/// Builds a back-end's REPLY from the PROBE it received.
PacketPtr make_clock_reply(const Packet& probe, std::uint32_t rank,
                           std::uint64_t skew_seed);

/// Upstream filter: merges children's (rank, offset) estimates.
class ClockSkewFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;
};

}  // namespace tbon
