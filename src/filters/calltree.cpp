#include "filters/calltree.hpp"

#include "common/error.hpp"

namespace tbon {

void CallTree::add_path(std::span<const std::string> path, std::uint32_t rank) {
  Node* node = root_.get();
  node->hosts.insert(rank);
  for (const std::string& label : path) {
    auto& child = node->children[label];
    if (!child) {
      child = std::make_unique<Node>();
      child->label = label;
    }
    child->hosts.insert(rank);
    node = child.get();
  }
}

void CallTree::merge(const CallTree& other) { merge_node(*root_, *other.root_); }

void CallTree::merge_node(Node& into, const Node& from) {
  into.hosts.insert(from.hosts.begin(), from.hosts.end());
  for (const auto& [label, from_child] : from.children) {
    auto& into_child = into.children[label];
    if (!into_child) {
      into_child = std::make_unique<Node>();
      into_child->label = label;
    }
    merge_node(*into_child, *from_child);
  }
}

std::size_t CallTree::num_nodes() const noexcept {
  std::size_t count = 0;
  // Iterative DFS to avoid recursion limits on deep trees.
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    ++count;
    for (const auto& [label, child] : node->children) stack.push_back(child.get());
  }
  return count - 1;  // exclude the synthetic root
}

std::set<std::uint32_t> CallTree::all_hosts() const { return root_->hosts; }

std::vector<std::pair<std::string, std::set<std::uint32_t>>> CallTree::paths() const {
  std::vector<std::pair<std::string, std::set<std::uint32_t>>> result;
  std::vector<std::pair<const Node*, std::string>> stack;
  // Seed with the root's children so paths start at real nodes.  Reverse
  // order keeps the output sorted because children are map-ordered.
  for (auto it = root_->children.rbegin(); it != root_->children.rend(); ++it) {
    stack.emplace_back(it->second.get(), "/" + it->first);
  }
  while (!stack.empty()) {
    const auto [node, path] = stack.back();
    stack.pop_back();
    result.emplace_back(path, node->hosts);
    for (auto it = node->children.rbegin(); it != node->children.rend(); ++it) {
      stack.emplace_back(it->second.get(), path + "/" + it->first);
    }
  }
  return result;
}

bool CallTree::equal(const Node& a, const Node& b) {
  if (a.label != b.label || a.hosts != b.hosts ||
      a.children.size() != b.children.size()) {
    return false;
  }
  auto ita = a.children.begin();
  auto itb = b.children.begin();
  for (; ita != a.children.end(); ++ita, ++itb) {
    if (ita->first != itb->first || !equal(*ita->second, *itb->second)) return false;
  }
  return true;
}

std::vector<DataValue> CallTree::to_values() const {
  std::vector<std::string> labels;
  std::vector<std::int64_t> child_counts;
  std::vector<std::int64_t> host_counts;
  std::vector<std::int64_t> flat_hosts;

  // Preorder walk (children in map order, pushed reversed to preserve it).
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    labels.push_back(node->label);
    child_counts.push_back(static_cast<std::int64_t>(node->children.size()));
    host_counts.push_back(static_cast<std::int64_t>(node->hosts.size()));
    for (const std::uint32_t host : node->hosts) flat_hosts.push_back(host);
    for (auto it = node->children.rbegin(); it != node->children.rend(); ++it) {
      stack.push_back(it->second.get());
    }
  }
  return {std::move(labels), std::move(child_counts), std::move(host_counts),
          std::move(flat_hosts)};
}

CallTree CallTree::from_values(const Packet& packet, std::size_t first_field) {
  const auto& labels = packet.get_vstr(first_field);
  const auto& child_counts = packet.get_vi64(first_field + 1);
  const auto& host_counts = packet.get_vi64(first_field + 2);
  const auto& flat_hosts = packet.get_vi64(first_field + 3);
  if (labels.empty() || labels.size() != child_counts.size() ||
      labels.size() != host_counts.size()) {
    throw CodecError("call tree payload shape mismatch");
  }

  CallTree tree;
  std::size_t index = 0;
  std::size_t host_cursor = 0;
  // Recursive descent over the preorder encoding.
  auto build = [&](auto&& self, Node& node) -> void {
    if (index >= labels.size()) throw CodecError("call tree preorder underrun");
    node.label = labels[index];
    const auto nchildren = child_counts[index];
    const auto nhosts = host_counts[index];
    ++index;
    if (host_cursor + static_cast<std::size_t>(nhosts) > flat_hosts.size()) {
      throw CodecError("call tree host overflow");
    }
    for (std::int64_t i = 0; i < nhosts; ++i) {
      node.hosts.insert(static_cast<std::uint32_t>(flat_hosts[host_cursor++]));
    }
    for (std::int64_t i = 0; i < nchildren; ++i) {
      // Peek the child's label to key the map.
      if (index >= labels.size()) throw CodecError("call tree preorder underrun");
      auto child = std::make_unique<Node>();
      Node& ref = *child;
      self(self, ref);
      node.children.emplace(ref.label, std::move(child));
    }
  };
  build(build, *tree.root_);
  if (index != labels.size()) throw CodecError("call tree preorder overrun");
  return tree;
}

void SubGraphFoldFilter::filter(std::span<const PacketPtr> in,
                                   std::vector<PacketPtr>& out, FilterContext&) {
  if (in.size() == 1) {
    // A fold of one tree is that tree: forward the packet verbatim instead
    // of decoding and re-encoding it (keeps a wire-backed payload aliased).
    out.push_back(in.front());
    return;
  }
  CallTree merged = CallTree::from_values(*in.front());
  for (std::size_t i = 1; i < in.size(); ++i) {
    merged.merge(CallTree::from_values(*in[i]));
  }
  const Packet& first = *in.front();
  out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(),
                             CallTree::kFormat, merged.to_values()));
}

}  // namespace tbon
