// Time-aligned data aggregation — one of the paper's headline complex
// filters ("time-aligned data synchronization", §1/§4).
//
// Back-ends emit samples tagged with a time bucket.  Children's packets may
// arrive arbitrarily interleaved across buckets, so wave-based sync filters
// cannot align them; this filter instead keeps *persistent state* (the
// paper's filter-state feature) holding per-bucket partial aggregates and
// emits a bucket only once every participating child has contributed to it
// (each child produces exactly one packet per bucket) — producing one
// time-aligned, element-wise-summed sample vector per bucket.
//
// Use with up_sync = "null".  Payload format: "u64 vf64" = (bucket, values).
// finish() flushes incomplete trailing buckets (e.g. after a child failure)
// at stream teardown.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/filter.hpp"

namespace tbon {

class TimeAlignedFilter final : public TransformFilter {
 public:
  static constexpr const char* kFormat = "u64 vf64";

  explicit TimeAlignedFilter(const FilterContext& ctx)
      : expected_children_(ctx.num_children) {}

  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;
  void flush(std::vector<PacketPtr>& out, FilterContext& ctx) override;

  /// Re-baseline on membership change.  Shrink (failure or planned detach):
  /// the departed child will never contribute to pending buckets, so their
  /// expectation is capped and any bucket the change just completed is
  /// emitted instead of hanging.  Growth (planned attach): only buckets
  /// opened *after* the join expect the newcomer — in-flight buckets keep
  /// the expectation snapshotted at creation, so a join mid-wave cannot
  /// stall them waiting for a contributor that never saw their bucket.
  void membership_changed(const MembershipChange& change,
                            std::vector<PacketPtr>& out,
                            FilterContext& ctx) override;

 private:
  /// Emit and erase every bucket with >= its own expected contributions.
  void emit_complete(std::vector<PacketPtr>& out);

  struct Bucket {
    std::vector<double> sums;
    std::size_t contributions = 0;
    std::size_t expected = 0;  ///< membership when the bucket opened
  };

  void emit(std::uint64_t bucket_id, const Bucket& bucket, std::vector<PacketPtr>& out);

  std::size_t expected_children_;
  std::map<std::uint64_t, Bucket> buckets_;  ///< persistent filter state
  std::uint32_t stream_id_ = 0;
  std::int32_t tag_ = 0;  // adopted from the first packet seen
};

}  // namespace tbon
