#include "filters/equivalence.hpp"

#include "common/error.hpp"

namespace tbon {

void EquivalenceClasses::merge(const EquivalenceClasses& other) {
  for (const auto& [key, members] : other.classes_) {
    classes_[key].insert(members.begin(), members.end());
  }
}

std::size_t EquivalenceClasses::num_members() const noexcept {
  std::size_t total = 0;
  for (const auto& [key, members] : classes_) total += members.size();
  return total;
}

const std::set<std::uint32_t>& EquivalenceClasses::members(const std::string& key) const {
  const auto it = classes_.find(key);
  if (it == classes_.end()) throw Error("unknown equivalence class '" + key + "'");
  return it->second;
}

std::vector<DataValue> EquivalenceClasses::to_values() const {
  std::vector<std::string> keys;
  std::vector<std::int64_t> counts;
  std::vector<std::int64_t> flat_members;
  keys.reserve(classes_.size());
  counts.reserve(classes_.size());
  for (const auto& [key, members] : classes_) {
    keys.push_back(key);
    counts.push_back(static_cast<std::int64_t>(members.size()));
    for (const std::uint32_t rank : members) flat_members.push_back(rank);
  }
  return {std::move(keys), std::move(counts), std::move(flat_members)};
}

EquivalenceClasses EquivalenceClasses::from_values(const Packet& packet,
                                                   std::size_t first_field) {
  const auto& keys = packet.get_vstr(first_field);
  const auto& counts = packet.get_vi64(first_field + 1);
  const auto& flat_members = packet.get_vi64(first_field + 2);
  if (keys.size() != counts.size()) throw CodecError("equivalence class shape mismatch");
  EquivalenceClasses classes;
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (cursor + static_cast<std::size_t>(counts[i]) > flat_members.size()) {
      throw CodecError("equivalence class member overflow");
    }
    for (std::int64_t j = 0; j < counts[i]; ++j) {
      classes.add(keys[i], static_cast<std::uint32_t>(flat_members[cursor++]));
    }
  }
  return classes;
}

void EquivalenceClassFilter::filter(std::span<const PacketPtr> in,
                                       std::vector<PacketPtr>& out,
                                       FilterContext&) {
  if (in.size() == 1) {
    // Merging a single contribution is the identity: forward verbatim, no
    // decode/re-encode round-trip.
    out.push_back(in.front());
    return;
  }
  EquivalenceClasses merged = EquivalenceClasses::from_values(*in.front());
  for (std::size_t i = 1; i < in.size(); ++i) {
    merged.merge(EquivalenceClasses::from_values(*in[i]));
  }
  const Packet& first = *in.front();
  out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(),
                             EquivalenceClasses::kFormat, merged.to_values()));
}

}  // namespace tbon
