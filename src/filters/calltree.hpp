// Labeled call trees and the Sub-Graph Folding Algorithm (SGFA).
//
// Paradyn's Distributed Performance Consultant uses MRNet filters to run a
// "sub-graph folding algorithm ... for combining sub-graphs of similar
// qualitative structure into a composite sub-graph" (paper §2.2, [24]).
// Each back-end produces a rooted, labeled tree (e.g. the call paths its
// daemon found interesting); the filter merges children's trees by folding
// nodes with the same label under the same parent into one composite node
// whose host set records which back-ends exhibited that path.
//
// Folding is associative and commutative over the merge operation, so a
// TBON computes the same composite graph as a central merge while shipping
// only the *distinct* structure upward.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/filter.hpp"
#include "core/packet.hpp"

namespace tbon {

/// A rooted tree whose nodes carry a label and the set of back-end ranks
/// that contributed the node.  Children are keyed (and ordered) by label.
class CallTree {
 public:
  struct Node {
    std::string label;
    std::set<std::uint32_t> hosts;
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  CallTree() : root_(std::make_unique<Node>()) { root_->label = "<root>"; }

  CallTree(CallTree&&) noexcept = default;
  CallTree& operator=(CallTree&&) noexcept = default;
  CallTree(const CallTree& other) : CallTree() { merge(other); }

  /// Insert one path of labels from the root, attributed to `rank`.
  void add_path(std::span<const std::string> path, std::uint32_t rank);

  /// Fold `other` into this tree (SGFA merge step).
  void merge(const CallTree& other);

  /// Number of composite nodes (excluding the synthetic root).
  std::size_t num_nodes() const noexcept;

  /// Hosts present anywhere in the tree.
  std::set<std::uint32_t> all_hosts() const;

  /// Every root-to-node path with the hosts that exhibit it; for tests and
  /// front-end display.  Paths are "/a/b/c" strings in sorted order.
  std::vector<std::pair<std::string, std::set<std::uint32_t>>> paths() const;

  const Node& root() const noexcept { return *root_; }

  /// Packet payload codec.  Format "vstr vi64 vi64 vi64" = preorder labels,
  /// per-node child counts, per-node host-set sizes, flattened host ranks.
  static constexpr const char* kFormat = "vstr vi64 vi64 vi64";
  std::vector<DataValue> to_values() const;
  static CallTree from_values(const Packet& packet, std::size_t first_field = 0);

  bool operator==(const CallTree& other) const { return equal(*root_, *other.root_); }

 private:
  static void merge_node(Node& into, const Node& from);
  static bool equal(const Node& a, const Node& b);

  std::unique_ptr<Node> root_;
};

/// Transformation filter folding CallTree payloads (register name "sgfa").
class SubGraphFoldFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;
};

}  // namespace tbon
