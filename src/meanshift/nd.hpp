// N-dimensional mean-shift.
//
// The paper's case study is two-dimensional, but its motivation is general:
// "the computation becomes prohibitively expensive as the size and
// complexity (dimensionality) of the data space increases" (§3, citing
// Cheng).  This module generalizes the algorithm to arbitrary dimension so
// the repository can quantify that cost growth (bench/meanshift_micro) and
// serve feature spaces such as color+position (5-D) segmentation.
//
// Data layout: row-major flat array, `dim` doubles per point.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "meanshift/meanshift.hpp"

namespace tbon::ms::nd {

/// A borrowed view of n points in d dimensions (row-major).
class DatasetView {
 public:
  DatasetView(std::span<const double> coords, std::size_t dim);

  std::size_t dim() const noexcept { return dim_; }
  std::size_t size() const noexcept { return coords_.size() / dim_; }
  std::span<const double> point(std::size_t index) const {
    return coords_.subspan(index * dim_, dim_);
  }
  std::span<const double> coords() const noexcept { return coords_; }

 private:
  std::span<const double> coords_;
  std::size_t dim_;
};

/// Squared Euclidean distance between two d-dimensional points.
double distance_squared(std::span<const double> a, std::span<const double> b);

/// Points within the window (radius = bandwidth) around `center`.
std::size_t window_population(const DatasetView& data, std::span<const double> center,
                              double bandwidth);

/// One mean-shift search from `start`; same stopping rules as the 2-D core.
struct ShiftResultN {
  std::vector<double> mode;
  std::size_t iterations = 0;
  bool converged = false;
};
ShiftResultN shift_to_mode(const DatasetView& data, std::span<const double> start,
                           const MeanShiftParams& params);

/// One discovered peak with its window population.
struct PeakN {
  std::vector<double> position;
  std::uint64_t support = 0;
};

/// Seed selection for high dimension: a bandwidth-spaced grid is exponential
/// in d, so instead every `stride`-th data point whose window population
/// meets the density threshold becomes a seed (standard practice for
/// mean-shift in feature spaces).
std::vector<std::vector<double>> find_seeds(const DatasetView& data,
                                            const MeanShiftParams& params,
                                            std::size_t stride = 16);

/// Merge modes within the merge radius (support-weighted centroids), sorted
/// by descending support.
std::vector<PeakN> merge_modes(std::span<const std::vector<double>> modes,
                               std::span<const std::uint64_t> supports,
                               const MeanShiftParams& params);

/// Full clustering from explicit seeds.
std::vector<PeakN> mean_shift(const DatasetView& data,
                              std::span<const std::vector<double>> seeds,
                              const MeanShiftParams& params);

/// Density-seeded single-node clustering (the N-D analogue of
/// cluster_single_node).
std::vector<PeakN> cluster(const DatasetView& data, const MeanShiftParams& params,
                           std::size_t seed_stride = 16);

/// Nearest-peak labels within one bandwidth; -1 = noise.
std::vector<std::int32_t> assign_clusters(const DatasetView& data,
                                          std::span<const PeakN> peaks,
                                          const MeanShiftParams& params);

/// Synthetic d-dimensional Gaussian mixture (deterministic in seed).
struct SynthNdParams {
  std::uint64_t seed = 42;
  std::size_t dim = 3;
  std::size_t num_clusters = 4;
  std::size_t points_per_cluster = 300;
  double domain = 1000.0;
  double cluster_stddev = 18.0;
  std::size_t noise_points = 100;
};
std::vector<std::vector<double>> true_centers(const SynthNdParams& params);
std::vector<double> generate(const SynthNdParams& params);  ///< flat row-major

}  // namespace tbon::ms::nd
