#include "meanshift/meanshift.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace tbon::ms {

double distance_squared(Point2 a, Point2 b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double distance(Point2 a, Point2 b) { return std::sqrt(distance_squared(a, b)); }

Kernel parse_kernel(const std::string& name) {
  if (name == "gaussian") return Kernel::kGaussian;
  if (name == "uniform") return Kernel::kUniform;
  if (name == "epanechnikov" || name == "quadratic") return Kernel::kEpanechnikov;
  if (name == "triangular") return Kernel::kTriangular;
  throw ParseError("unknown kernel '" + name + "'");
}

const char* kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kGaussian:
      return "gaussian";
    case Kernel::kUniform:
      return "uniform";
    case Kernel::kEpanechnikov:
      return "epanechnikov";
    case Kernel::kTriangular:
      return "triangular";
  }
  return "?";
}

double kernel_weight(Kernel kernel, double u) {
  if (u > 1.0) return 0.0;
  switch (kernel) {
    case Kernel::kGaussian:
      // exp(-u/(2*sigma^2)) with sigma = 1/3: ~3-sigma support inside the
      // window, giving the smoothing behaviour the paper chose for noisy data.
      return std::exp(-4.5 * u);
    case Kernel::kUniform:
      return 1.0;
    case Kernel::kEpanechnikov:
      return 1.0 - u;
    case Kernel::kTriangular:
      return 1.0 - std::sqrt(u);
  }
  return 0.0;
}

ShiftResult shift_to_mode(std::span<const Point2> data, Point2 start,
                          const MeanShiftParams& params) {
  const double h2 = params.bandwidth * params.bandwidth;
  const double eps2 = params.convergence_eps * params.convergence_eps;
  ShiftResult result{.mode = start, .iterations = 0, .converged = false};

  // Figure 3 of the paper:
  //   do
  //     for all points in window around current centroid
  //       calculate euclidean distance from current centroid
  //       use distances to calculate mean-shift vector toward higher density
  //   while mean-shift vector is non-zero
  while (result.iterations < params.max_iterations) {
    double wx = 0.0, wy = 0.0, wsum = 0.0;
    for (const Point2& p : data) {
      const double u = distance_squared(p, result.mode) / h2;
      const double w = kernel_weight(params.kernel, u);
      if (w > 0.0) {
        wx += w * p.x;
        wy += w * p.y;
        wsum += w;
      }
    }
    ++result.iterations;
    if (wsum <= 0.0) break;  // empty window: nowhere to go
    const Point2 next{wx / wsum, wy / wsum};
    const double moved2 = distance_squared(next, result.mode);
    result.mode = next;
    if (moved2 < eps2) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::size_t window_population(std::span<const Point2> data, Point2 center,
                              double bandwidth) {
  const double h2 = bandwidth * bandwidth;
  std::size_t count = 0;
  for (const Point2& p : data) {
    if (distance_squared(p, center) <= h2) ++count;
  }
  return count;
}

std::vector<Point2> find_seeds(std::span<const Point2> data,
                               const MeanShiftParams& params) {
  std::vector<Point2> seeds;
  if (data.empty()) return seeds;

  double min_x = data[0].x, max_x = data[0].x;
  double min_y = data[0].y, max_y = data[0].y;
  for (const Point2& p : data) {
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }

  // Scan a bandwidth-spaced grid ("we scan across the data and calculate the
  // density of the data using a fixed window", §3.1).
  const double step = params.bandwidth;
  for (double y = min_y; y <= max_y + step * 0.5; y += step) {
    for (double x = min_x; x <= max_x + step * 0.5; x += step) {
      const Point2 center{x, y};
      if (static_cast<double>(window_population(data, center, params.bandwidth)) >=
          params.density_threshold) {
        seeds.push_back(center);
      }
    }
  }
  return seeds;
}

std::vector<Peak> merge_modes(std::span<const Point2> modes,
                              std::span<const std::uint64_t> supports,
                              const MeanShiftParams& params) {
  const double radius =
      params.merge_radius > 0.0 ? params.merge_radius : params.bandwidth * 0.5;
  const double radius2 = radius * radius;

  std::vector<Peak> peaks;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const std::uint64_t support = supports.empty() ? 1 : supports[i];
    bool absorbed = false;
    for (Peak& peak : peaks) {
      if (distance_squared(peak.position, modes[i]) <= radius2) {
        // Support-weighted centroid keeps the merge order-insensitive.
        const double total = static_cast<double>(peak.support + support);
        peak.position.x =
            (peak.position.x * static_cast<double>(peak.support) +
             modes[i].x * static_cast<double>(support)) / total;
        peak.position.y =
            (peak.position.y * static_cast<double>(peak.support) +
             modes[i].y * static_cast<double>(support)) / total;
        peak.support += support;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) peaks.push_back(Peak{modes[i], support});
  }
  std::sort(peaks.begin(), peaks.end(), [](const Peak& a, const Peak& b) {
    if (a.support != b.support) return a.support > b.support;
    if (a.position.x != b.position.x) return a.position.x < b.position.x;
    return a.position.y < b.position.y;
  });
  return peaks;
}

std::vector<Peak> mean_shift(std::span<const Point2> data, std::span<const Point2> seeds,
                             const MeanShiftParams& params) {
  std::vector<Point2> modes;
  std::vector<std::uint64_t> supports;
  modes.reserve(seeds.size());
  for (const Point2& seed : seeds) {
    const ShiftResult result = shift_to_mode(data, seed, params);
    const std::size_t population =
        window_population(data, result.mode, params.bandwidth);
    if (population == 0) continue;  // drifted into emptiness
    modes.push_back(result.mode);
    supports.push_back(population);
  }
  return merge_modes(modes, supports, params);
}

std::vector<Peak> cluster_single_node(std::span<const Point2> data,
                                      const MeanShiftParams& params) {
  const std::vector<Point2> seeds = find_seeds(data, params);
  return mean_shift(data, seeds, params);
}

std::vector<std::int32_t> assign_clusters(std::span<const Point2> data,
                                          std::span<const Peak> peaks,
                                          const MeanShiftParams& params) {
  std::vector<std::int32_t> labels(data.size(), -1);
  const double h2 = params.bandwidth * params.bandwidth;
  for (std::size_t i = 0; i < data.size(); ++i) {
    double best = h2;
    for (std::size_t k = 0; k < peaks.size(); ++k) {
      const double d2 = distance_squared(data[i], peaks[k].position);
      if (d2 <= best) {
        best = d2;
        labels[i] = static_cast<std::int32_t>(k);
      }
    }
  }
  return labels;
}

}  // namespace tbon::ms
