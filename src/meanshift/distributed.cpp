#include "meanshift/distributed.hpp"

#include <sstream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"
#include "core/registry.hpp"

namespace tbon::ms {

DistributedParams params_from_config(const Config& config) {
  DistributedParams params;
  params.shift.bandwidth = config.get_double("bandwidth", params.shift.bandwidth);
  params.shift.kernel = parse_kernel(config.get("kernel", "gaussian"));
  params.shift.max_iterations = static_cast<std::size_t>(
      config.get_int("max_iterations", static_cast<std::int64_t>(params.shift.max_iterations)));
  params.shift.convergence_eps =
      config.get_double("convergence_eps", params.shift.convergence_eps);
  params.shift.density_threshold =
      config.get_double("density_threshold", params.shift.density_threshold);
  params.shift.merge_radius = config.get_double("merge_radius", params.shift.merge_radius);
  params.keep_factor = config.get_double("keep_factor", params.keep_factor);
  params.max_forward = static_cast<std::size_t>(
      config.get_int("max_forward", static_cast<std::int64_t>(params.max_forward)));
  params.trace = config.get_bool("trace", false);
  return params;
}

FilterParams to_filter_params(const DistributedParams& params) {
  return FilterParams()
      .set("bandwidth", params.shift.bandwidth)
      .set("kernel", kernel_name(params.shift.kernel))
      .set("max_iterations", static_cast<std::int64_t>(params.shift.max_iterations))
      .set("convergence_eps", params.shift.convergence_eps)
      .set("density_threshold", params.shift.density_threshold)
      .set("merge_radius", params.shift.merge_radius)
      .set("keep_factor", params.keep_factor)
      .set("max_forward", static_cast<std::int64_t>(params.max_forward))
      .set("trace", params.trace);
}

std::vector<DataValue> MeanShiftCodec::to_values(const LocalResult& result) {
  std::vector<double> xs, ys, peak_xs, peak_ys;
  std::vector<std::int64_t> supports;
  xs.reserve(result.points.size());
  ys.reserve(result.points.size());
  for (const Point2& p : result.points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  peak_xs.reserve(result.peaks.size());
  peak_ys.reserve(result.peaks.size());
  supports.reserve(result.peaks.size());
  for (const Peak& peak : result.peaks) {
    peak_xs.push_back(peak.position.x);
    peak_ys.push_back(peak.position.y);
    supports.push_back(static_cast<std::int64_t>(peak.support));
  }
  return {std::move(xs), std::move(ys), std::move(peak_xs), std::move(peak_ys),
          std::move(supports)};
}

LocalResult MeanShiftCodec::from_values(const Packet& packet, std::size_t first_field) {
  const auto& xs = packet.get_vf64(first_field);
  const auto& ys = packet.get_vf64(first_field + 1);
  const auto& peak_xs = packet.get_vf64(first_field + 2);
  const auto& peak_ys = packet.get_vf64(first_field + 3);
  const auto& supports = packet.get_vi64(first_field + 4);
  if (xs.size() != ys.size() || peak_xs.size() != peak_ys.size() ||
      peak_xs.size() != supports.size()) {
    throw CodecError("mean-shift payload shape mismatch");
  }
  LocalResult result;
  result.points.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) result.points.push_back({xs[i], ys[i]});
  result.peaks.reserve(peak_xs.size());
  for (std::size_t i = 0; i < peak_xs.size(); ++i) {
    result.peaks.push_back(Peak{{peak_xs[i], peak_ys[i]},
                                static_cast<std::uint64_t>(supports[i])});
  }
  return result;
}

namespace {

/// Keep points near any peak, thinned uniformly to at most max_forward.
std::vector<Point2> reduce_points(std::span<const Point2> data,
                                  std::span<const Peak> peaks,
                                  const DistributedParams& params) {
  const double radius = params.keep_factor * params.shift.bandwidth;
  const double radius2 = radius * radius;
  std::vector<Point2> kept;
  for (const Point2& p : data) {
    for (const Peak& peak : peaks) {
      if (distance_squared(p, peak.position) <= radius2) {
        kept.push_back(p);
        break;
      }
    }
  }
  if (kept.size() > params.max_forward) {
    // Uniform stride thinning preserves spatial distribution.
    std::vector<Point2> thinned;
    thinned.reserve(params.max_forward);
    const double stride =
        static_cast<double>(kept.size()) / static_cast<double>(params.max_forward);
    for (std::size_t i = 0; i < params.max_forward; ++i) {
      thinned.push_back(kept[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
    }
    kept = std::move(thinned);
  }
  return kept;
}

std::uint64_t result_bytes(const LocalResult& result) {
  return result.points.size() * 16 + result.peaks.size() * 24;
}

/// Record one execution.  The duration is the *thread CPU time* consumed,
/// not wall time: node threads time-share the host's cores, and the
/// critical-path analysis needs each node's true compute cost (DESIGN.md §5).
void record_trace(bool enabled, std::uint32_t node_id, std::int64_t wall_start_ns,
                  std::int64_t cpu_start_ns, const char* label,
                  const LocalResult& result) {
  if (!enabled) return;
  const std::int64_t cpu_ns = thread_cpu_ns() - cpu_start_ns;
  TraceRecorder::instance().record(TraceEvent{
      .node_id = node_id,
      .start_ns = wall_start_ns,
      .end_ns = wall_start_ns + cpu_ns,
      .bytes_out = result_bytes(result),
      .label = label,
  });
}

}  // namespace

LocalResult leaf_compute(std::span<const Point2> data, const DistributedParams& params,
                         std::uint32_t node_id_for_trace) {
  const auto start = now_ns();
  const auto cpu_start = thread_cpu_ns();
  LocalResult result;
  result.peaks = cluster_single_node(data, params.shift);
  result.points = reduce_points(data, result.peaks, params);
  record_trace(params.trace, node_id_for_trace, start, cpu_start, "leaf_compute",
               result);
  return result;
}

LocalResult merge_compute(std::span<const LocalResult> children,
                          const DistributedParams& params,
                          std::uint32_t node_id_for_trace) {
  const auto start = now_ns();
  const auto cpu_start = thread_cpu_ns();
  // "Each parent node merges the data sets of its children..."
  std::vector<Point2> merged_points;
  std::vector<Point2> child_modes;
  std::vector<std::uint64_t> child_supports;
  for (const LocalResult& child : children) {
    merged_points.insert(merged_points.end(), child.points.begin(), child.points.end());
    for (const Peak& peak : child.peaks) {
      child_modes.push_back(peak.position);
      child_supports.push_back(peak.support);
    }
  }
  // "...then applies the mean shift procedure to the new data set using the
  //  peaks determined by child nodes as the starting points."  Children see
  //  (nearly) the same modes, so their peaks cluster tightly; deduplicate
  //  them first so the number of shift searches stays proportional to the
  //  number of distinct modes, not to the fan-in.  This is what keeps the
  //  per-node merge cost linear in its input — and the deep-tree runtime
  //  proportional to the fan-out, as the paper observes (§3.2).
  const std::vector<Peak> deduped =
      merge_modes(child_modes, child_supports, params.shift);
  std::vector<Point2> seeds;
  seeds.reserve(deduped.size());
  for (const Peak& peak : deduped) seeds.push_back(peak.position);
  LocalResult result;
  result.peaks = mean_shift(merged_points, seeds, params.shift);
  result.points = reduce_points(merged_points, result.peaks, params);
  record_trace(params.trace, node_id_for_trace, start, cpu_start, "merge_shift",
               result);
  return result;
}

void MeanShiftFilter::filter(std::span<const PacketPtr> in,
                                std::vector<PacketPtr>& out, FilterContext& ctx) {
  std::vector<LocalResult> children;
  children.reserve(in.size());
  for (const PacketPtr& packet : in) {
    children.push_back(MeanShiftCodec::from_values(*packet));
  }
  const LocalResult merged = merge_compute(children, params_, ctx.node_id);
  const Packet& first = *in.front();
  out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(),
                             MeanShiftCodec::kFormat, MeanShiftCodec::to_values(merged)));
}

void register_mean_shift_filter() {
  auto& registry = FilterRegistry::instance();
  if (registry.has_transform("mean_shift")) return;
  registry.register_transform("mean_shift", [](const FilterContext& ctx) {
    return std::unique_ptr<TransformFilter>(std::make_unique<MeanShiftFilter>(ctx));
  });
}

}  // namespace tbon::ms
