#include "meanshift/nd.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace tbon::ms::nd {

DatasetView::DatasetView(std::span<const double> coords, std::size_t dim)
    : coords_(coords), dim_(dim) {
  if (dim == 0) throw Error("dataset dimension must be positive");
  if (coords.size() % dim != 0) throw Error("coordinate count not divisible by dim");
}

double distance_squared(std::span<const double> a, std::span<const double> b) {
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double delta = a[i] - b[i];
    total += delta * delta;
  }
  return total;
}

std::size_t window_population(const DatasetView& data, std::span<const double> center,
                              double bandwidth) {
  const double h2 = bandwidth * bandwidth;
  std::size_t count = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (distance_squared(data.point(i), center) <= h2) ++count;
  }
  return count;
}

ShiftResultN shift_to_mode(const DatasetView& data, std::span<const double> start,
                           const MeanShiftParams& params) {
  const double h2 = params.bandwidth * params.bandwidth;
  const double eps2 = params.convergence_eps * params.convergence_eps;
  ShiftResultN result;
  result.mode.assign(start.begin(), start.end());

  std::vector<double> next(data.dim(), 0.0);
  while (result.iterations < params.max_iterations) {
    std::fill(next.begin(), next.end(), 0.0);
    double weight_sum = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto point = data.point(i);
      const double u = distance_squared(point, result.mode) / h2;
      const double w = kernel_weight(params.kernel, u);
      if (w > 0.0) {
        for (std::size_t d = 0; d < next.size(); ++d) next[d] += w * point[d];
        weight_sum += w;
      }
    }
    ++result.iterations;
    if (weight_sum <= 0.0) break;
    for (double& coordinate : next) coordinate /= weight_sum;
    const double moved2 = distance_squared(next, result.mode);
    result.mode.assign(next.begin(), next.end());
    if (moved2 < eps2) {
      result.converged = true;
      break;
    }
  }
  return result;
}

std::vector<std::vector<double>> find_seeds(const DatasetView& data,
                                            const MeanShiftParams& params,
                                            std::size_t stride) {
  std::vector<std::vector<double>> seeds;
  if (stride == 0) stride = 1;
  for (std::size_t i = 0; i < data.size(); i += stride) {
    const auto point = data.point(i);
    if (static_cast<double>(window_population(data, point, params.bandwidth)) >=
        params.density_threshold) {
      seeds.emplace_back(point.begin(), point.end());
    }
  }
  return seeds;
}

std::vector<PeakN> merge_modes(std::span<const std::vector<double>> modes,
                               std::span<const std::uint64_t> supports,
                               const MeanShiftParams& params) {
  const double radius =
      params.merge_radius > 0.0 ? params.merge_radius : params.bandwidth * 0.5;
  const double radius2 = radius * radius;
  std::vector<PeakN> peaks;
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const std::uint64_t support = supports.empty() ? 1 : supports[i];
    bool absorbed = false;
    for (PeakN& peak : peaks) {
      if (distance_squared(peak.position, modes[i]) <= radius2) {
        const double total = static_cast<double>(peak.support + support);
        for (std::size_t d = 0; d < peak.position.size(); ++d) {
          peak.position[d] = (peak.position[d] * static_cast<double>(peak.support) +
                              modes[i][d] * static_cast<double>(support)) /
                             total;
        }
        peak.support += support;
        absorbed = true;
        break;
      }
    }
    if (!absorbed) peaks.push_back(PeakN{modes[i], support});
  }
  std::sort(peaks.begin(), peaks.end(), [](const PeakN& a, const PeakN& b) {
    if (a.support != b.support) return a.support > b.support;
    return a.position < b.position;
  });
  return peaks;
}

std::vector<PeakN> mean_shift(const DatasetView& data,
                              std::span<const std::vector<double>> seeds,
                              const MeanShiftParams& params) {
  std::vector<std::vector<double>> modes;
  std::vector<std::uint64_t> supports;
  for (const auto& seed : seeds) {
    ShiftResultN result = shift_to_mode(data, seed, params);
    const std::size_t population = window_population(data, result.mode, params.bandwidth);
    if (population == 0) continue;
    modes.push_back(std::move(result.mode));
    supports.push_back(population);
  }
  return merge_modes(modes, supports, params);
}

std::vector<PeakN> cluster(const DatasetView& data, const MeanShiftParams& params,
                           std::size_t seed_stride) {
  const auto seeds = find_seeds(data, params, seed_stride);
  return mean_shift(data, seeds, params);
}

std::vector<std::int32_t> assign_clusters(const DatasetView& data,
                                          std::span<const PeakN> peaks,
                                          const MeanShiftParams& params) {
  std::vector<std::int32_t> labels(data.size(), -1);
  const double h2 = params.bandwidth * params.bandwidth;
  for (std::size_t i = 0; i < data.size(); ++i) {
    double best = h2;
    for (std::size_t k = 0; k < peaks.size(); ++k) {
      const double d2 = distance_squared(data.point(i), peaks[k].position);
      if (d2 <= best) {
        best = d2;
        labels[i] = static_cast<std::int32_t>(k);
      }
    }
  }
  return labels;
}

std::vector<std::vector<double>> true_centers(const SynthNdParams& params) {
  Rng rng(params.seed * 7919 + 3);
  std::vector<std::vector<double>> centers;
  centers.reserve(params.num_clusters);
  // Rejection-sample centers at pairwise distance >= 6 bandwidth-ish units
  // so clusters stay separable in any dimension.
  const double min_separation = 8.0 * params.cluster_stddev;
  while (centers.size() < params.num_clusters) {
    std::vector<double> candidate(params.dim);
    for (double& c : candidate) c = rng.uniform(0.15, 0.85) * params.domain;
    const bool clear = std::all_of(centers.begin(), centers.end(), [&](const auto& c) {
      return distance_squared(c, candidate) >= min_separation * min_separation;
    });
    if (clear) centers.push_back(std::move(candidate));
  }
  return centers;
}

std::vector<double> generate(const SynthNdParams& params) {
  const auto centers = true_centers(params);
  Rng rng(params.seed * 104729 + 11);
  std::vector<double> coords;
  coords.reserve((params.num_clusters * params.points_per_cluster + params.noise_points) *
                 params.dim);
  for (const auto& center : centers) {
    for (std::size_t i = 0; i < params.points_per_cluster; ++i) {
      for (std::size_t d = 0; d < params.dim; ++d) {
        coords.push_back(rng.gaussian(center[d], params.cluster_stddev));
      }
    }
  }
  for (std::size_t i = 0; i < params.noise_points; ++i) {
    for (std::size_t d = 0; d < params.dim; ++d) {
      coords.push_back(rng.uniform(0.0, params.domain));
    }
  }
  return coords;
}

}  // namespace tbon::ms::nd
