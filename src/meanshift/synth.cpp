#include "meanshift/synth.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace tbon::ms {

std::vector<Point2> true_centers(const SynthParams& params) {
  // Centers on a jittered sqrt(n) x sqrt(n) grid keeps them separated by
  // several bandwidths for any cluster count.
  Rng rng(params.seed * 7919 + 1);
  const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(
      static_cast<double>(params.num_clusters))));
  const double cell = params.domain / static_cast<double>(side);
  std::vector<Point2> centers;
  centers.reserve(params.num_clusters);
  for (std::size_t i = 0; i < params.num_clusters; ++i) {
    const double cx = (static_cast<double>(i % side) + 0.5) * cell;
    const double cy = (static_cast<double>(i / side) + 0.5) * cell;
    centers.push_back(Point2{cx + rng.uniform(-0.1, 0.1) * cell,
                             cy + rng.uniform(-0.1, 0.1) * cell});
  }
  return centers;
}

std::vector<Point2> generate_leaf_data(std::uint32_t leaf_rank,
                                       const SynthParams& params) {
  const std::vector<Point2> centers = true_centers(params);
  Rng rng(params.seed * 104729 + leaf_rank * 31 + 17);

  std::vector<Point2> data;
  data.reserve(params.num_clusters * params.points_per_cluster + params.noise_points);
  for (const Point2& center : centers) {
    // "The cluster centers are slightly shifted in each leaf node."
    const Point2 shifted{center.x + rng.uniform(-params.leaf_shift, params.leaf_shift),
                         center.y + rng.uniform(-params.leaf_shift, params.leaf_shift)};
    for (std::size_t i = 0; i < params.points_per_cluster; ++i) {
      data.push_back(Point2{rng.gaussian(shifted.x, params.cluster_stddev),
                            rng.gaussian(shifted.y, params.cluster_stddev)});
    }
  }
  for (std::size_t i = 0; i < params.noise_points; ++i) {
    data.push_back(Point2{rng.uniform(0.0, params.domain),
                          rng.uniform(0.0, params.domain)});
  }
  return data;
}

std::vector<Point2> generate_union(std::size_t leaves, const SynthParams& params) {
  std::vector<Point2> all;
  for (std::uint32_t rank = 0; rank < leaves; ++rank) {
    const auto part = generate_leaf_data(rank, params);
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

double match_fraction(std::span<const Peak> peaks, std::span<const Point2> centers,
                      double tolerance) {
  if (centers.empty()) return 1.0;
  const double tol2 = tolerance * tolerance;
  std::vector<bool> used(peaks.size(), false);
  std::size_t matched = 0;
  for (const Point2& center : centers) {
    double best = tol2;
    std::size_t best_peak = peaks.size();
    for (std::size_t i = 0; i < peaks.size(); ++i) {
      if (used[i]) continue;
      const double d2 = distance_squared(peaks[i].position, center);
      if (d2 <= best) {
        best = d2;
        best_peak = i;
      }
    }
    if (best_peak < peaks.size()) {
      used[best_peak] = true;
      ++matched;
    }
  }
  return static_cast<double>(matched) / static_cast<double>(centers.size());
}

}  // namespace tbon::ms
