// Mean-shift mode seeking (Fukunaga & Hostetler 1975; Cheng 1995) — the
// paper's case-study algorithm, for two-dimensional data as in §3.1.
//
// "Mean-shift is an iterative procedure that shifts the center of a search
// window in the direction of greatest increase in the density of the data
// set being explored ... until the window is centered on a region of
// maximum density."
//
// The implementation mirrors the paper's choices:
//   * a shape function weights points in the window — Gaussian by default
//     ("greater weight to points nearer to the center; this effectively
//     smooths the data"), with Uniform, Epanechnikov (quadratic) and
//     Triangular as the alternatives the paper lists;
//   * a fixed bandwidth (the paper uses 50 for its synthetic data);
//   * a minimum-density threshold selects the starting points of searches
//     ("low density areas are poor candidates for modes");
//   * iteration stops when the shift vector vanishes or a maximum iteration
//     threshold is reached.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace tbon::ms {

struct Point2 {
  double x = 0.0;
  double y = 0.0;

  friend Point2 operator+(Point2 a, Point2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Point2 operator-(Point2 a, Point2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Point2 operator*(Point2 a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(const Point2&, const Point2&) = default;
};

double distance_squared(Point2 a, Point2 b);
double distance(Point2 a, Point2 b);

/// Shape functions weighting window points by normalized squared distance
/// u = d^2 / h^2 (paper §3.1: Gaussian, uniform, quadratic, triangular).
enum class Kernel : std::uint8_t { kGaussian, kUniform, kEpanechnikov, kTriangular };

Kernel parse_kernel(const std::string& name);
const char* kernel_name(Kernel kernel);

/// Kernel weight for normalized squared distance `u` in [0, inf).
/// Support is compact (u <= 1) for all kernels; the Gaussian is truncated at
/// the window edge, matching a windowed mean-shift implementation.
double kernel_weight(Kernel kernel, double u);

struct MeanShiftParams {
  double bandwidth = 50.0;          ///< window radius h (paper's value)
  Kernel kernel = Kernel::kGaussian;
  std::size_t max_iterations = 100; ///< iteration threshold (paper §3.1)
  double convergence_eps = 1e-2;    ///< "mean-shift vector is non-zero" cutoff
  double density_threshold = 8.0;   ///< min points per window to seed a search
  double merge_radius = 0.0;        ///< peak merge distance; 0 => bandwidth/2
};

/// One discovered density peak.
struct Peak {
  Point2 position;
  std::uint64_t support = 0;  ///< points that converged to / seeded this peak

  friend bool operator==(const Peak&, const Peak&) = default;
};

/// Run the mean-shift procedure from one starting point; returns the mode
/// location and the number of iterations used.
struct ShiftResult {
  Point2 mode;
  std::size_t iterations = 0;
  bool converged = false;
};
ShiftResult shift_to_mode(std::span<const Point2> data, Point2 start,
                          const MeanShiftParams& params);

/// Number of points within the window (radius = bandwidth) around `center`.
std::size_t window_population(std::span<const Point2> data, Point2 center,
                              double bandwidth);

/// Density-threshold seed selection: scan a bandwidth-spaced grid over the
/// data's bounding box and keep cell centers whose window population meets
/// params.density_threshold (paper §3.1: "the regions where the density is
/// above our chosen threshold are used as the starting points").
std::vector<Point2> find_seeds(std::span<const Point2> data,
                               const MeanShiftParams& params);

/// Merge modes closer than the merge radius into peaks, pooling support.
std::vector<Peak> merge_modes(std::span<const Point2> modes,
                              std::span<const std::uint64_t> supports,
                              const MeanShiftParams& params);

/// Full mean-shift clustering from explicit seeds: shift every seed to its
/// mode, then merge nearby modes into peaks (sorted by descending support).
std::vector<Peak> mean_shift(std::span<const Point2> data, std::span<const Point2> seeds,
                             const MeanShiftParams& params);

/// The single-node baseline of §3.1: density scan for seeds, then mean_shift.
std::vector<Peak> cluster_single_node(std::span<const Point2> data,
                                      const MeanShiftParams& params);

/// Assign every point to the nearest peak within `bandwidth` (label -1 for
/// unassigned noise); used for segmentation-style output.
std::vector<std::int32_t> assign_clusters(std::span<const Point2> data,
                                          std::span<const Peak> peaks,
                                          const MeanShiftParams& params);

}  // namespace tbon::ms
