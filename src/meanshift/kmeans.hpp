// Distributed k-means over a TBON (paper §2.3).
//
// The paper's Figure 2 maps data-clustering algorithms onto TBON reductions:
// "K-means ... defines and iteratively refines k centroids, one for each
// cluster, associating each data point with its nearest centroid".  Each
// Lloyd round decomposes perfectly:
//
//   down:  the front-end multicasts the current centroids,
//   leaf:  every back-end assigns its local points and produces per-centroid
//          (coordinate sums, counts) plus its partial SSE,
//   up:    the tree reduces the partials element-wise — which is exactly the
//          built-in `sum` filter on a "vf64 vi64 f64" packet; no custom
//          filter code is needed,
//   FE:    divides sums by counts to get the new centroids and tests
//          convergence.
//
// Per-round traffic is O(k·d) per edge regardless of data size — the data
// reduction property of §2.3.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/packet.hpp"
#include "meanshift/nd.hpp"

namespace tbon {
class Network;
}

namespace tbon::km {

struct KMeansParams {
  std::size_t k = 4;
  std::size_t max_rounds = 64;
  double epsilon = 1e-3;      ///< stop when max centroid movement < epsilon
  std::uint64_t seed = 1;     ///< deterministic initialization
};

/// One node's (or one round's global) sufficient statistics.
struct PartialSums {
  std::vector<double> sums;            ///< k*dim coordinate sums, row-major
  std::vector<std::int64_t> counts;    ///< k assignment counts
  double sse = 0.0;                    ///< sum of squared distances

  /// Element-wise accumulate (associative & commutative — tree-safe).
  void merge(const PartialSums& other);

  static constexpr const char* kFormat = "vf64 vi64 f64";
  std::vector<DataValue> to_values() const;
  static PartialSums from_values(const Packet& packet, std::size_t first_field = 0);
};

/// Deterministic initialization: k points sampled without replacement.
std::vector<double> initial_centroids(const ms::nd::DatasetView& data,
                                      const KMeansParams& params);

/// The back-end step: assign every local point to its nearest centroid.
PartialSums assign_and_sum(const ms::nd::DatasetView& data,
                           std::span<const double> centroids, std::size_t k);

/// The front-end step: new centroid = sum/count (empty clusters keep their
/// previous position).  Returns the maximum centroid displacement.
double update_centroids(const PartialSums& totals, std::span<double> centroids,
                        std::size_t dim);

struct KMeansResult {
  std::vector<double> centroids;  ///< k*dim
  double sse = 0.0;
  std::size_t rounds = 0;
  bool converged = false;
};

/// Single-node Lloyd baseline.
KMeansResult kmeans_single_node(const ms::nd::DatasetView& data,
                                const KMeansParams& params);

/// Distributed driver: runs Lloyd rounds over an instantiated threaded
/// network.  `leaf_data(rank)` supplies each back-end's flat coordinates;
/// the reduction stream uses the built-in `sum` filter.
KMeansResult kmeans_distributed(Network& network, std::size_t dim,
                                const KMeansParams& params,
                                const std::vector<std::vector<double>>& leaf_coords);

}  // namespace tbon::km
