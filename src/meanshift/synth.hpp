// Synthetic workload generation for the case study (paper §3.1):
//
//   "The data at the leaf nodes is synthetically generated.  The data about
//    each cluster center is generated using a random Gaussian distribution.
//    The cluster centers are slightly shifted in each leaf node as they
//    might be in feature tracking in video processing or when processing
//    images with non-uniform illumination."
//
// Cluster centers live on a jittered grid inside a square domain; every leaf
// samples the same mixture with its own deterministic center shift and adds
// uniform background noise.  Generation is fully deterministic in
// (seed, leaf_rank), so distributed and single-node runs see identical data.
#pragma once

#include <cstdint>
#include <vector>

#include "meanshift/meanshift.hpp"

namespace tbon::ms {

struct SynthParams {
  std::uint64_t seed = 42;
  double domain = 1000.0;            ///< data lives in [0, domain)^2
  std::size_t num_clusters = 6;
  std::size_t points_per_cluster = 400;
  double cluster_stddev = 18.0;      ///< well-separated at bandwidth 50
  std::size_t noise_points = 200;    ///< uniform background clutter
  double leaf_shift = 6.0;           ///< max per-leaf center displacement
};

/// The mixture's true cluster centers (shared by all leaves, pre-shift).
std::vector<Point2> true_centers(const SynthParams& params);

/// Data observed by `leaf_rank`: the mixture with that leaf's center shift,
/// plus background noise.  Deterministic in (params.seed, leaf_rank).
std::vector<Point2> generate_leaf_data(std::uint32_t leaf_rank, const SynthParams& params);

/// Union of all leaves' data [0, leaves) — what the single-node baseline
/// processes when the experiment scales input with back-end count (§3.2:
/// "each back-end generates input data of the same size and distribution;
/// the input size scales with the number of back-ends").
std::vector<Point2> generate_union(std::size_t leaves, const SynthParams& params);

/// Greedy matching distance between found peaks and true centers; returns
/// the fraction of true centers matched within `tolerance`.
double match_fraction(std::span<const Peak> peaks, std::span<const Point2> centers,
                      double tolerance);

}  // namespace tbon::ms
