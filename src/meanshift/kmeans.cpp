#include "meanshift/kmeans.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/network.hpp"

namespace tbon::km {

void PartialSums::merge(const PartialSums& other) {
  if (sums.empty()) {
    *this = other;
    return;
  }
  if (other.sums.size() != sums.size() || other.counts.size() != counts.size()) {
    throw Error("k-means partials have mismatched shapes");
  }
  for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += other.sums[i];
  for (std::size_t i = 0; i < counts.size(); ++i) counts[i] += other.counts[i];
  sse += other.sse;
}

std::vector<DataValue> PartialSums::to_values() const {
  return {sums, counts, sse};
}

PartialSums PartialSums::from_values(const Packet& packet, std::size_t first_field) {
  PartialSums partial;
  partial.sums = packet.get_vf64(first_field);
  partial.counts = packet.get_vi64(first_field + 1);
  partial.sse = packet.get_f64(first_field + 2);
  return partial;
}

std::vector<double> initial_centroids(const ms::nd::DatasetView& data,
                                      const KMeansParams& params) {
  if (data.size() < params.k) throw Error("fewer points than clusters");
  Rng rng(params.seed * 6364136223846793005ULL + 1);
  std::vector<std::size_t> chosen;
  while (chosen.size() < params.k) {
    const std::size_t candidate = rng.next_below(data.size());
    if (std::find(chosen.begin(), chosen.end(), candidate) == chosen.end()) {
      chosen.push_back(candidate);
    }
  }
  std::vector<double> centroids;
  centroids.reserve(params.k * data.dim());
  for (const std::size_t index : chosen) {
    const auto point = data.point(index);
    centroids.insert(centroids.end(), point.begin(), point.end());
  }
  return centroids;
}

PartialSums assign_and_sum(const ms::nd::DatasetView& data,
                           std::span<const double> centroids, std::size_t k) {
  const std::size_t dim = data.dim();
  if (centroids.size() != k * dim) throw Error("centroid shape mismatch");
  PartialSums partial;
  partial.sums.assign(k * dim, 0.0);
  partial.counts.assign(k, 0);

  for (std::size_t i = 0; i < data.size(); ++i) {
    const auto point = data.point(i);
    double best = 1e300;
    std::size_t best_cluster = 0;
    for (std::size_t c = 0; c < k; ++c) {
      const double d2 =
          ms::nd::distance_squared(point, centroids.subspan(c * dim, dim));
      if (d2 < best) {
        best = d2;
        best_cluster = c;
      }
    }
    for (std::size_t d = 0; d < dim; ++d) {
      partial.sums[best_cluster * dim + d] += point[d];
    }
    ++partial.counts[best_cluster];
    partial.sse += best;
  }
  return partial;
}

double update_centroids(const PartialSums& totals, std::span<double> centroids,
                        std::size_t dim) {
  const std::size_t k = totals.counts.size();
  double worst_shift2 = 0.0;
  for (std::size_t c = 0; c < k; ++c) {
    if (totals.counts[c] == 0) continue;  // empty cluster keeps its position
    double shift2 = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double updated = totals.sums[c * dim + d] /
                             static_cast<double>(totals.counts[c]);
      const double delta = updated - centroids[c * dim + d];
      shift2 += delta * delta;
      centroids[c * dim + d] = updated;
    }
    worst_shift2 = std::max(worst_shift2, shift2);
  }
  return std::sqrt(worst_shift2);
}

KMeansResult kmeans_single_node(const ms::nd::DatasetView& data,
                                const KMeansParams& params) {
  KMeansResult result;
  result.centroids = initial_centroids(data, params);
  for (result.rounds = 1; result.rounds <= params.max_rounds; ++result.rounds) {
    const PartialSums totals = assign_and_sum(data, result.centroids, params.k);
    result.sse = totals.sse;
    const double shift = update_centroids(totals, result.centroids, data.dim());
    if (shift < params.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

KMeansResult kmeans_distributed(Network& network, std::size_t dim,
                                const KMeansParams& params,
                                const std::vector<std::vector<double>>& leaf_coords) {
  if (leaf_coords.size() != network.num_backends()) {
    throw Error("need one coordinate block per back-end");
  }
  // Initialize from the first leaf's data (any deterministic choice works;
  // both drivers must only agree when comparing — tests use the same data).
  const ms::nd::DatasetView first_leaf(leaf_coords[0], dim);
  KMeansResult result;
  result.centroids = initial_centroids(first_leaf, params);

  // The per-round reduction is the built-in element-wise sum.
  Stream& stream = network.front_end().open_stream({.up_transform = "sum"});

  for (result.rounds = 1; result.rounds <= params.max_rounds; ++result.rounds) {
    // Multicast the centroids; every back-end answers with its partials.
    stream.send(kFirstAppTag, "vf64", {result.centroids});
    network.run_backends([&](BackEnd& be) {
      const auto packet = be.recv_for(std::chrono::seconds(30));
      if (!packet) return;
      const ms::nd::DatasetView local(leaf_coords[be.rank()], dim);
      const PartialSums partial =
          assign_and_sum(local, (*packet)->get_vf64(0), params.k);
      be.send(stream.id(), kFirstAppTag, PartialSums::kFormat, partial.to_values());
    });
    const auto reduced = stream.recv_for(std::chrono::seconds(60));
    if (!reduced) throw Error("k-means round lost its reduction");
    const PartialSums totals = PartialSums::from_values(**reduced);
    result.sse = totals.sse;
    const double shift = update_centroids(totals, result.centroids, dim);
    if (shift < params.epsilon) {
      result.converged = true;
      break;
    }
  }
  return result;
}

}  // namespace tbon::km
