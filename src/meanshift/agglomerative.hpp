// Distributed agglomerative clustering over a TBON (paper §2.3).
//
// "In agglomerative clustering, a data set with N elements is initially
// partitioned into N clusters each containing a single element.  Larger
// clusters are formed by iteratively merging nearest-neighbor clusters."
//
// The distributed decomposition follows the paper's general recipe
// (Figure 2): every back-end agglomerates its local points bottom-up until
// no two clusters are closer than the stop distance, then ships the
// surviving *cluster summaries* (centroid, size) upward; each internal node
// merges its children's summaries and agglomerates again.  Because a
// summary stands for all the points it absorbed (sizes weight the centroid
// updates), the tree computes the same dendrogram cut a central
// agglomeration would — up to ties — while shipping only O(clusters) per
// edge: a textbook §2.3 data reduction.
//
// Linkage: centroid linkage (clusters merge when their size-weighted
// centroids are nearest), the variant that composes exactly through
// summaries.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/filter.hpp"
#include "meanshift/meanshift.hpp"

namespace tbon::ms::agg {

/// A cluster summary: size-weighted centroid.
struct Cluster {
  Point2 centroid;
  std::uint64_t size = 1;

  friend bool operator==(const Cluster&, const Cluster&) = default;
};

struct AggloParams {
  /// Stop merging when the nearest pair is farther apart than this.
  double stop_distance = 40.0;
  /// Optional cap on the number of clusters a node forwards (0 = no cap);
  /// when capped, the largest clusters survive.
  std::size_t max_clusters = 0;
};

/// Turn raw points into singleton clusters.
std::vector<Cluster> singletons(std::span<const Point2> points);

/// Greedy centroid-linkage agglomeration: repeatedly merge the globally
/// nearest pair until the nearest distance exceeds params.stop_distance,
/// then apply the forwarding cap.  O(n^2) per round — fine at summary scale.
std::vector<Cluster> agglomerate(std::vector<Cluster> clusters,
                                 const AggloParams& params);

/// Packet codec.  Format "vf64 vf64 vi64" = (xs, ys, sizes).
struct AggloCodec {
  static constexpr const char* kFormat = "vf64 vf64 vi64";
  static std::vector<DataValue> to_values(std::span<const Cluster> clusters);
  static std::vector<Cluster> from_values(const Packet& packet,
                                          std::size_t first_field = 0);
};

/// The TBON filter: concatenates children's summaries and re-agglomerates.
/// Stream params: stop_distance, max_clusters.  Register as "agglomerative"
/// via register_agglomerative_filter().
class AgglomerativeFilter final : public TransformFilter {
 public:
  explicit AgglomerativeFilter(const FilterContext& ctx);

  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;

 private:
  AggloParams params_;
};

/// Idempotent registration with the global registry.
void register_agglomerative_filter();

}  // namespace tbon::ms::agg
