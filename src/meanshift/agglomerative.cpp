#include "meanshift/agglomerative.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/registry.hpp"

namespace tbon::ms::agg {

std::vector<Cluster> singletons(std::span<const Point2> points) {
  std::vector<Cluster> clusters;
  clusters.reserve(points.size());
  for (const Point2& p : points) clusters.push_back(Cluster{p, 1});
  return clusters;
}

namespace {

Cluster merge_pair(const Cluster& a, const Cluster& b) {
  const double total = static_cast<double>(a.size + b.size);
  return Cluster{
      Point2{(a.centroid.x * static_cast<double>(a.size) +
              b.centroid.x * static_cast<double>(b.size)) / total,
             (a.centroid.y * static_cast<double>(a.size) +
              b.centroid.y * static_cast<double>(b.size)) / total},
      a.size + b.size};
}

}  // namespace

std::vector<Cluster> agglomerate(std::vector<Cluster> clusters,
                                 const AggloParams& params) {
  const double stop2 = params.stop_distance * params.stop_distance;
  // Greedy nearest-pair merging.  The O(n^2) pair scan per merge is
  // acceptable because TBON nodes operate on summaries, not raw points.
  while (clusters.size() > 1) {
    double best = 1e300;
    std::size_t best_i = 0, best_j = 0;
    for (std::size_t i = 0; i < clusters.size(); ++i) {
      for (std::size_t j = i + 1; j < clusters.size(); ++j) {
        const double d2 = distance_squared(clusters[i].centroid, clusters[j].centroid);
        if (d2 < best) {
          best = d2;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best > stop2) break;  // "nearest neighbors" are now too far apart
    clusters[best_i] = merge_pair(clusters[best_i], clusters[best_j]);
    clusters.erase(clusters.begin() + static_cast<std::ptrdiff_t>(best_j));
  }

  // Deterministic order: largest first, ties by coordinates.
  std::sort(clusters.begin(), clusters.end(), [](const Cluster& a, const Cluster& b) {
    if (a.size != b.size) return a.size > b.size;
    if (a.centroid.x != b.centroid.x) return a.centroid.x < b.centroid.x;
    return a.centroid.y < b.centroid.y;
  });
  if (params.max_clusters > 0 && clusters.size() > params.max_clusters) {
    clusters.resize(params.max_clusters);
  }
  return clusters;
}

std::vector<DataValue> AggloCodec::to_values(std::span<const Cluster> clusters) {
  std::vector<double> xs, ys;
  std::vector<std::int64_t> sizes;
  xs.reserve(clusters.size());
  ys.reserve(clusters.size());
  sizes.reserve(clusters.size());
  for (const Cluster& cluster : clusters) {
    xs.push_back(cluster.centroid.x);
    ys.push_back(cluster.centroid.y);
    sizes.push_back(static_cast<std::int64_t>(cluster.size));
  }
  return {std::move(xs), std::move(ys), std::move(sizes)};
}

std::vector<Cluster> AggloCodec::from_values(const Packet& packet,
                                             std::size_t first_field) {
  const auto& xs = packet.get_vf64(first_field);
  const auto& ys = packet.get_vf64(first_field + 1);
  const auto& sizes = packet.get_vi64(first_field + 2);
  if (xs.size() != ys.size() || xs.size() != sizes.size()) {
    throw CodecError("agglomerative payload shape mismatch");
  }
  std::vector<Cluster> clusters;
  clusters.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    clusters.push_back(Cluster{{xs[i], ys[i]}, static_cast<std::uint64_t>(sizes[i])});
  }
  return clusters;
}

AgglomerativeFilter::AgglomerativeFilter(const FilterContext& ctx) {
  params_.stop_distance = ctx.params.get_double("stop_distance", params_.stop_distance);
  params_.max_clusters = static_cast<std::size_t>(
      ctx.params.get_int("max_clusters", static_cast<std::int64_t>(params_.max_clusters)));
}

void AgglomerativeFilter::filter(std::span<const PacketPtr> in,
                                    std::vector<PacketPtr>& out, FilterContext&) {
  std::vector<Cluster> merged;
  for (const PacketPtr& packet : in) {
    const auto clusters = AggloCodec::from_values(*packet);
    merged.insert(merged.end(), clusters.begin(), clusters.end());
  }
  merged = agglomerate(std::move(merged), params_);
  const Packet& first = *in.front();
  out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(),
                             AggloCodec::kFormat, AggloCodec::to_values(merged)));
}

void register_agglomerative_filter() {
  auto& registry = FilterRegistry::instance();
  if (registry.has_transform("agglomerative")) return;
  registry.register_transform("agglomerative", [](const FilterContext& ctx) {
    return std::unique_ptr<TransformFilter>(std::make_unique<AgglomerativeFilter>(ctx));
  });
}

}  // namespace tbon::ms::agg
