// Distributed mean-shift as a TBON filter — the paper's case study (§3.1):
//
//   "Each leaf node gets a part of the data set.  Each node applies the mean
//    shift procedure then sends the resulting data set and the list of peaks
//    to the next higher node in the network.  Each parent node merges the
//    data sets of its children and then applies the mean shift procedure to
//    the new data set using the peaks determined by child nodes as the
//    starting points."
//
// The "resulting data set" a node forwards is the density-relevant reduction
// of its input: points within `keep_factor * bandwidth` of a discovered
// peak, capped at `max_forward` points (uniformly thinned).  This is what
// makes the computation a *data reduction* in the paper's §2.3 sense —
// output smaller than input, same form as input — while preserving enough
// mass around each mode for parents to re-estimate peak positions.
//
// Stream parameters (all optional):
//   bandwidth, kernel, density_threshold, max_iterations, keep_factor,
//   max_forward, trace (=1 records TraceEvents for critical-path analysis).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "core/filter.hpp"
#include "core/filter_params.hpp"
#include "meanshift/meanshift.hpp"

namespace tbon::ms {

/// Parameters of the distributed protocol on top of MeanShiftParams.
struct DistributedParams {
  MeanShiftParams shift;
  double keep_factor = 1.0;        ///< forward points within keep_factor * h of a peak
  std::size_t max_forward = 4000;  ///< cap on forwarded points per node
  bool trace = false;              ///< record TraceEvents
};

/// Parse stream params ("bandwidth=50 kernel=gaussian ...").
DistributedParams params_from_config(const Config& config);
/// Render as typed stream params (inverse of params_from_config); pass the
/// result as StreamOptions::params.
FilterParams to_filter_params(const DistributedParams& params);

/// What one node sends upward: reduced data set + peak list.
struct LocalResult {
  std::vector<Point2> points;
  std::vector<Peak> peaks;
};

/// Payload codec.  Format "vf64 vf64 vf64 vf64 vi64" =
/// (point xs, point ys, peak xs, peak ys, peak supports).
struct MeanShiftCodec {
  static constexpr const char* kFormat = "vf64 vf64 vf64 vf64 vi64";
  static std::vector<DataValue> to_values(const LocalResult& result);
  static LocalResult from_values(const Packet& packet, std::size_t first_field = 0);
};

/// The leaf-side step: run mean-shift on local data (density-scan seeding)
/// and reduce the data set for forwarding.
LocalResult leaf_compute(std::span<const Point2> data, const DistributedParams& params,
                         std::uint32_t node_id_for_trace = 0);

/// The internal/root step: merge child results, re-shift from child peaks.
LocalResult merge_compute(std::span<const LocalResult> children,
                          const DistributedParams& params,
                          std::uint32_t node_id_for_trace = 0);

/// The TBON transformation filter (register name "mean_shift"; use with
/// up_sync = "wait_for_all").
class MeanShiftFilter final : public TransformFilter {
 public:
  explicit MeanShiftFilter(const FilterContext& ctx)
      : params_(params_from_config(ctx.params)) {}

  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                 FilterContext& ctx) override;

 private:
  DistributedParams params_;
};

/// Register "mean_shift" with a registry (idempotent).
void register_mean_shift_filter();

}  // namespace tbon::ms
