#include "net/wire.hpp"

#include "common/error.hpp"

namespace tbon::net {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw CodecError(what);
}

// The deprecated inline-dispatch knob still ships to remote nodes so a
// front-end that sets it keeps its old behaviour tree-wide.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::size_t inline_cutoff(const ExecutionOptions& options) noexcept {
  return options.inline_below_bytes;
}
void set_inline_cutoff(ExecutionOptions& options, std::size_t bytes) noexcept {
  options.inline_below_bytes = bytes;
}
#pragma GCC diagnostic pop

BinaryReader open_reader(std::span<const std::byte> bytes, std::size_t min_size,
                         const char* what) {
  require(bytes.size() >= min_size, what);
  return BinaryReader(bytes);
}

}  // namespace

std::optional<std::uint8_t> negotiate_version(std::uint8_t a_min, std::uint8_t a_max,
                                              std::uint8_t b_min, std::uint8_t b_max) {
  const std::uint8_t best = std::min(a_max, b_max);
  if (best < a_min || best < b_min) return std::nullopt;
  return best;
}

// ---- link handshake ---------------------------------------------------------

Bytes encode_link_hello(const LinkHello& hello) {
  BinaryWriter writer;
  writer.put(kLinkMagic);
  writer.put(hello.ver_min);
  writer.put(hello.ver_max);
  writer.put(hello.node);
  writer.put(hello.epoch);
  writer.put(hello.credit_window);
  return writer.take();
}

LinkHello decode_link_hello(std::span<const std::byte> bytes) {
  BinaryReader reader = open_reader(bytes, 18, "short link hello");
  require(reader.get<std::uint32_t>() == kLinkMagic, "bad link hello magic");
  LinkHello hello;
  hello.ver_min = reader.get<std::uint8_t>();
  hello.ver_max = reader.get<std::uint8_t>();
  hello.node = reader.get<std::uint32_t>();
  hello.epoch = reader.get<std::uint32_t>();
  hello.credit_window = reader.get<std::uint32_t>();
  require(hello.ver_min <= hello.ver_max, "inverted link hello version range");
  return hello;
}

Bytes encode_link_welcome(const LinkWelcome& welcome) {
  BinaryWriter writer;
  writer.put(kLinkMagic);
  writer.put(welcome.version);
  writer.put(welcome.node);
  writer.put(welcome.slot);
  writer.put(welcome.credit_window);
  return writer.take();
}

LinkWelcome decode_link_welcome(std::span<const std::byte> bytes) {
  BinaryReader reader = open_reader(bytes, 17, "short link welcome");
  require(reader.get<std::uint32_t>() == kLinkMagic, "bad link welcome magic");
  LinkWelcome welcome;
  welcome.version = reader.get<std::uint8_t>();
  welcome.node = reader.get<std::uint32_t>();
  welcome.slot = reader.get<std::uint32_t>();
  welcome.credit_window = reader.get<std::uint32_t>();
  return welcome;
}

// ---- bootstrap protocol -----------------------------------------------------

BootFrame boot_frame_type(std::span<const std::byte> bytes) {
  require(!bytes.empty(), "empty bootstrap frame");
  const auto tag = static_cast<std::uint8_t>(bytes[0]);
  require(tag >= 1 && tag <= 4, "unknown bootstrap frame type");
  return static_cast<BootFrame>(tag);
}

Bytes encode_boot_hello(const BootHello& hello) {
  BinaryWriter writer;
  writer.put(static_cast<std::uint8_t>(BootFrame::kHello));
  writer.put(kBootMagic);
  writer.put(hello.ver_min);
  writer.put(hello.ver_max);
  writer.put(hello.node);
  return writer.take();
}

BootHello decode_boot_hello(std::span<const std::byte> bytes) {
  BinaryReader reader = open_reader(bytes, 11, "short bootstrap hello");
  require(reader.get<std::uint8_t>() ==
              static_cast<std::uint8_t>(BootFrame::kHello),
          "not a bootstrap hello");
  require(reader.get<std::uint32_t>() == kBootMagic, "bad bootstrap magic");
  BootHello hello;
  hello.ver_min = reader.get<std::uint8_t>();
  hello.ver_max = reader.get<std::uint8_t>();
  hello.node = reader.get<std::uint32_t>();
  require(hello.ver_min <= hello.ver_max, "inverted bootstrap version range");
  return hello;
}

Bytes encode_node_config(const NodeConfig& config) {
  BinaryWriter writer;
  writer.put(static_cast<std::uint8_t>(BootFrame::kConfig));
  writer.put(config.version);
  config.topology.serialize(writer);
  writer.put(static_cast<std::uint8_t>(config.flow_control.enabled));
  writer.put(config.flow_control.capacity);
  writer.put(config.flow_control.high_watermark);
  writer.put(config.flow_control.low_watermark);
  writer.put(static_cast<std::uint8_t>(config.flow_control.policy));
  writer.put(static_cast<std::int32_t>(config.flow_control.block_timeout_ms));
  writer.put(static_cast<std::uint32_t>(config.execution.num_workers));
  writer.put(static_cast<std::uint64_t>(config.execution.stream_queue_capacity));
  writer.put(static_cast<std::uint64_t>(inline_cutoff(config.execution)));
  config.batching.serialize(writer);
  writer.put(config.heartbeat.interval_ns);
  writer.put(config.heartbeat.timeout_ns);
  writer.put(static_cast<std::uint8_t>(config.zero_copy));
  writer.put(static_cast<std::int32_t>(config.handshake_timeout_ms));
  writer.put_string(config.rendezvous);
  writer.put_string(config.parent);
  return writer.take();
}

NodeConfig decode_node_config(std::span<const std::byte> bytes) {
  BinaryReader reader = open_reader(bytes, 2, "short node config");
  require(reader.get<std::uint8_t>() ==
              static_cast<std::uint8_t>(BootFrame::kConfig),
          "not a node config");
  NodeConfig config;
  config.version = reader.get<std::uint8_t>();
  // Topology::deserialize validates structure (parent links, fanout) and
  // throws TopologyError; surface it as the CodecError this decoder
  // promises so a corrupt frame is indistinguishable from a short one.
  try {
    config.topology = Topology::deserialize(reader);
  } catch (const CodecError&) {
    throw;
  } catch (const Error& error) {
    throw CodecError(std::string("bad topology in node config: ") + error.what());
  }
  config.flow_control.enabled = reader.get<std::uint8_t>() != 0;
  config.flow_control.capacity = reader.get<std::uint32_t>();
  config.flow_control.high_watermark = reader.get<std::uint32_t>();
  config.flow_control.low_watermark = reader.get<std::uint32_t>();
  config.flow_control.policy =
      static_cast<FlowControlPolicy>(reader.get<std::uint8_t>());
  config.flow_control.block_timeout_ms = reader.get<std::int32_t>();
  config.execution.num_workers = reader.get<std::uint32_t>();
  config.execution.stream_queue_capacity =
      static_cast<std::size_t>(reader.get<std::uint64_t>());
  set_inline_cutoff(config.execution,
                    static_cast<std::size_t>(reader.get<std::uint64_t>()));
  config.batching = BatchingOptions::deserialize(reader);
  config.heartbeat.interval_ns = reader.get<std::int64_t>();
  config.heartbeat.timeout_ns = reader.get<std::int64_t>();
  config.zero_copy = reader.get<std::uint8_t>() != 0;
  config.handshake_timeout_ms = reader.get<std::int32_t>();
  config.rendezvous = reader.get_string();
  config.parent = reader.get_string();
  return config;
}

Bytes encode_boot_listen(const BootListen& listen) {
  BinaryWriter writer;
  writer.put(static_cast<std::uint8_t>(BootFrame::kListen));
  writer.put(listen.port);
  return writer.take();
}

BootListen decode_boot_listen(std::span<const std::byte> bytes) {
  BinaryReader reader = open_reader(bytes, 3, "short bootstrap listen");
  require(reader.get<std::uint8_t>() ==
              static_cast<std::uint8_t>(BootFrame::kListen),
          "not a bootstrap listen");
  BootListen listen;
  listen.port = reader.get<std::uint16_t>();
  return listen;
}

Bytes encode_boot_ready(const BootReady& ready) {
  BinaryWriter writer;
  writer.put(static_cast<std::uint8_t>(BootFrame::kReady));
  writer.put(static_cast<std::uint8_t>(ready.ok));
  writer.put_string(ready.error);
  return writer.take();
}

BootReady decode_boot_ready(std::span<const std::byte> bytes) {
  BinaryReader reader = open_reader(bytes, 2, "short bootstrap ready");
  require(reader.get<std::uint8_t>() ==
              static_cast<std::uint8_t>(BootFrame::kReady),
          "not a bootstrap ready");
  BootReady ready;
  ready.ok = reader.get<std::uint8_t>() != 0;
  ready.error = reader.get_string();
  return ready;
}

}  // namespace tbon::net
