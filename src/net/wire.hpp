// Wire format of the remote connection subsystem's two handshakes.
//
// Everything here is a length-framed message (the fd.hpp 4-byte-prefix
// codec) exchanged *before* a socket joins the packet plane, so the
// structures are tiny, versioned and defensive: decode functions throw
// CodecError on malformed or short input and callers cap pre-handshake
// frames at kMaxHandshakeFrame so a hostile length prefix cannot balloon
// memory or wedge the event loop.
//
// Link handshake (child dials parent, one round trip):
//   child -> parent: LinkHello   { magic, version range, node id,
//                                  topology epoch, credit window }
//   parent -> child: LinkWelcome { negotiated version, parent id,
//                                  child slot, credit window }
//
// Bootstrap protocol (every spawned node dials the front-end's bootstrap
// listener; see docs/remote.md for the full ladder):
//   node -> FE: BootHello  — who am I, which protocol versions I speak
//   FE -> node: NodeConfig — topology + runtime options + where to connect
//   node -> FE: BootListen — the ephemeral port my child listener bound
//   node -> FE: BootReady  — my subtree edge is wired, runtime running
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "common/archive.hpp"
#include "core/coalesce.hpp"
#include "core/executor.hpp"
#include "core/flow_control.hpp"
#include "recovery/heartbeat.hpp"
#include "topology/topology.hpp"

namespace tbon::net {

inline constexpr std::uint32_t kLinkMagic = 0x544C4E4Bu;  // "TLNK"
inline constexpr std::uint32_t kBootMagic = 0x54424F4Fu;  // "TBOO"
inline constexpr std::uint8_t kProtoMin = 1;
inline constexpr std::uint8_t kProtoMax = 1;

/// Upper bound on any frame read before a handshake completes.  The packet
/// plane allows frames up to 1 GiB; an unauthenticated peer does not.
inline constexpr std::size_t kMaxHandshakeFrame = 4096;

/// Pick the protocol version two ranges agree on (the highest both speak);
/// nullopt when the ranges are disjoint.
std::optional<std::uint8_t> negotiate_version(std::uint8_t a_min, std::uint8_t a_max,
                                              std::uint8_t b_min, std::uint8_t b_max);

// ---- link handshake ---------------------------------------------------------

struct LinkHello {
  std::uint8_t ver_min = kProtoMin;
  std::uint8_t ver_max = kProtoMax;
  std::uint32_t node = 0;           ///< the dialing (child) node's id
  std::uint32_t epoch = 0;          ///< parent-channel epoch (0 at first contact)
  std::uint32_t credit_window = 0;  ///< sender's credit baseline; 0 = fc off
};

Bytes encode_link_hello(const LinkHello& hello);
LinkHello decode_link_hello(std::span<const std::byte> bytes);

struct LinkWelcome {
  std::uint8_t version = kProtoMax;  ///< negotiated protocol version
  std::uint32_t node = 0;            ///< the accepting (parent) node's id
  std::uint32_t slot = 0;            ///< child slot the dialer was assigned
  std::uint32_t credit_window = 0;   ///< parent's baseline; must match hello's
};

Bytes encode_link_welcome(const LinkWelcome& welcome);
LinkWelcome decode_link_welcome(std::span<const std::byte> bytes);

// ---- bootstrap protocol -----------------------------------------------------

enum class BootFrame : std::uint8_t {
  kHello = 1,
  kConfig = 2,
  kListen = 3,
  kReady = 4,
};

/// The leading type tag of a bootstrap frame; throws CodecError when empty.
BootFrame boot_frame_type(std::span<const std::byte> bytes);

struct BootHello {
  std::uint8_t ver_min = kProtoMin;
  std::uint8_t ver_max = kProtoMax;
  std::uint32_t node = 0;
};

Bytes encode_boot_hello(const BootHello& hello);
BootHello decode_boot_hello(std::span<const std::byte> bytes);

/// Everything a freshly exec'd node process needs to take its place in the
/// tree.  Forked nodes could inherit most of this, but shipping it keeps
/// the fork and ssh/exec launch paths on identical code.
struct NodeConfig {
  std::uint8_t version = kProtoMax;  ///< negotiated bootstrap version
  Topology topology = Topology::single();
  FlowControlOptions flow_control;
  ExecutionOptions execution;
  BatchingOptions batching;
  HeartbeatConfig heartbeat;
  bool zero_copy = true;          ///< the front-end's fd_zero_copy() toggle
  int handshake_timeout_ms = 10'000;
  std::string rendezvous;         ///< "host:port" for re-adoption; "" = off
  std::string parent;             ///< "host:port" of this node's parent listener
};

Bytes encode_node_config(const NodeConfig& config);
NodeConfig decode_node_config(std::span<const std::byte> bytes);

struct BootListen {
  std::uint16_t port = 0;  ///< child-facing listener port; 0 for leaves
};

Bytes encode_boot_listen(const BootListen& listen);
BootListen decode_boot_listen(std::span<const std::byte> bytes);

struct BootReady {
  bool ok = true;
  std::string error;  ///< set when ok is false
};

Bytes encode_boot_ready(const BootReady& ready);
BootReady decode_boot_ready(std::span<const std::byte> bytes);

}  // namespace tbon::net
