#include "net/event_loop.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/coalesce.hpp"
#include "core/flow_control.hpp"
#include "core/protocol.hpp"

namespace tbon::net {
namespace {

/// Per-connection cap on bytes a sender may queue behind the socket before
/// NetLink::send blocks — the userspace analogue of a full SO_SNDBUF.
constexpr std::size_t kSendBudget = std::size_t{4} << 20;

/// Packet-plane frame ceiling (matches the fd.hpp codec's kMaxFrame).
constexpr std::size_t kMaxWireFrame = std::size_t{1} << 30;

/// How often the loop refreshes the net_threads gauge from /proc.
constexpr std::int64_t kThreadSampleNs = 250'000'000;

/// iovec entries per writev call (comfortably under IOV_MAX).
constexpr std::size_t kIovBatch = 64;

std::string errno_string(int err) { return std::strerror(err); }

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw TransportError("fcntl(O_NONBLOCK) failed: " + errno_string(errno));
  }
}

/// OS threads in this process, from /proc/self/task (Linux); 0 on failure.
std::uint64_t count_process_threads() {
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return 0;
  std::uint64_t count = 0;
  while (const dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] != '.') ++count;
  }
  ::closedir(dir);
  return count;
}

thread_local int t_loop_marker = 0;

}  // namespace

// ---- NetLink ----------------------------------------------------------------

bool NetLink::send(const PacketPtr& packet) {
  if (!packet || conn_ == nullptr || conn_->loop_ == nullptr) return false;
  NetConn::SendItem item;
  item.packet = packet;
  // Budget charge is an O(1) estimate (payload + a small header allowance);
  // exact frame bytes are accounted when the frame is built and written.
  item.charge = packet->payload_bytes() + 64;
  // Control and telemetry packets bypass the budget the same way they
  // bypass credit gates: blocking the control plane behind a data backlog
  // would deadlock shutdown and starve heartbeats.
  const bool may_block = !flow_control_exempt(*packet);
  return conn_->loop_->enqueue(conn_, std::move(item), may_block);
}

bool NetLink::send_batch(std::span<const PacketPtr> packets) {
  if (packets.empty()) return true;
  // A one-packet batch keeps the plain single-frame path (and with it the
  // zero-copy writev lanes), byte-identical to the pre-batching wire form.
  if (packets.size() == 1) return send(packets.front());
  if (conn_ == nullptr || conn_->loop_ == nullptr) return false;
  NetConn::SendItem item;
  item.batch.assign(packets.begin(), packets.end());
  for (const PacketPtr& packet : packets) {
    item.charge += packet->payload_bytes() + 64;
  }
  // Batches only ever carry data packets (the coalescer exempts control and
  // telemetry), so they always count against the send budget.
  return conn_->loop_->enqueue(conn_, std::move(item), /*may_block=*/true);
}

void NetLink::close() {
  if (conn_ == nullptr || conn_->loop_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(conn_->mutex_);
    conn_->close_after_flush_ = true;
  }
  conn_->loop_->wake();
}

// ---- EventLoop: lifecycle ---------------------------------------------------

EventLoop::EventLoop(MetricsRegistry* metrics)
    : epoll_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)),
      metrics_(metrics) {
  if (!epoll_.valid() || !wake_fd_.valid()) {
    throw TransportError("event loop setup failed: " + errno_string(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_.get();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) != 0) {
    throw TransportError("epoll_ctl(wake) failed: " + errno_string(errno));
  }
}

EventLoop::~EventLoop() { stop(); }

void EventLoop::start() {
  if (started_.exchange(true, std::memory_order_acq_rel)) return;
  thread_ = std::thread([this] { run(); });
}

void EventLoop::stop() {
  const bool first = !stopping_.exchange(true, std::memory_order_acq_rel);
  wake();
  if (thread_.joinable()) thread_.join();
  if (!first) return;
  // Loop thread is gone; tear down on the caller's thread.  Blocked senders
  // are woken and fail; EOF envelopes are best-effort (the runtimes are
  // usually being torn down alongside us).
  for (auto& [fd, conn] : conns_) {
    conn->closed_.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(conn->mutex_);
    conn->queue_.clear();
    conn->queued_bytes_ = 0;
    conn->budget_.notify_all();
    if (conn->channel_ && !conn->eof_notified_ && conn->inbox_) {
      if (conn->inbox_->try_push(Envelope{conn->origin_, conn->slot_, nullptr})) {
        conn->eof_notified_ = true;
      }
    }
  }
  conns_.clear();
  listeners_.clear();
  timers_.clear();
  parked_.clear();
  pending_eof_.clear();
}

bool EventLoop::drain(std::int64_t timeout_ms) {
  // Pre-start every send was written inline by the caller; on the loop
  // thread we cannot wait for ourselves.  Either way there is nothing to do.
  if (!started_.load(std::memory_order_acquire) || on_loop_thread()) return true;
  const std::int64_t deadline = now_ns() + timeout_ms * 1'000'000;
  for (;;) {
    if (stopping_.load(std::memory_order_acquire)) return false;
    auto flushed = std::make_shared<std::promise<bool>>();
    std::future<bool> verdict = flushed->get_future();
    post([this, flushed] {
      bool busy = false;
      for (auto& [fd, conn] : conns_) {
        if (conn->outgoing_.has_value()) {
          busy = true;
          break;
        }
        std::lock_guard<std::mutex> lock(conn->mutex_);
        if (!conn->queue_.empty()) {
          busy = true;
          break;
        }
      }
      flushed->set_value(!busy);
    });
    // Bounded wait: if the loop stops underneath us the op never runs and
    // an unbounded get() would hang.
    if (verdict.wait_for(std::chrono::milliseconds(50)) ==
            std::future_status::ready &&
        verdict.get()) {
      return true;
    }
    if (now_ns() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

bool EventLoop::on_loop_thread() const noexcept {
  return loop_thread_id_.load(std::memory_order_acquire) == &t_loop_marker;
}

void EventLoop::submit(std::function<void()> fn) {
  // Before start() the caller is the only thread touching loop state;
  // afterwards all mutation funnels through the ops queue.
  if (!started_.load(std::memory_order_acquire) || on_loop_thread()) {
    fn();
    return;
  }
  post(std::move(fn));
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    ops_.push_back(std::move(fn));
  }
  wake();
}

void EventLoop::post_at(std::int64_t deadline_ns, std::function<void()> fn) {
  submit([this, deadline_ns, fn = std::move(fn)]() mutable {
    timers_.emplace(deadline_ns, std::move(fn));
  });
}

// ---- EventLoop: registration ------------------------------------------------

ConnRef EventLoop::add_connection(Fd fd, ConnectionOptions options) {
  auto conn = std::make_shared<NetConn>();
  conn->fd_ = std::move(fd);
  conn->loop_ = this;
  conn->on_frame_ = std::move(options.on_frame);
  conn->on_close_ = std::move(options.on_close);
  conn->max_frame_ = options.max_frame;
  conn->deadline_ns_ = options.deadline_ns;
  submit([this, conn] { register_conn(conn); });
  return conn;
}

std::shared_ptr<Link> EventLoop::add_channel(Fd fd, ChannelOptions options,
                                             ConnRef* out_conn) {
  auto conn = std::make_shared<NetConn>();
  conn->fd_ = std::move(fd);
  conn->loop_ = this;
  apply_channel_options(*conn, std::move(options));
  if (out_conn != nullptr) *out_conn = conn;
  submit([this, conn] { register_conn(conn); });
  return std::make_shared<NetLink>(conn);
}

void EventLoop::resume(const ConnRef& conn) {
  submit([this, conn] {
    if (conn->closed() || conn->read_enabled_) return;
    conn->read_enabled_ = true;
    update_interest(*conn);
    handle_readable(conn);
  });
}

void EventLoop::apply_channel_options(NetConn& conn, ChannelOptions options) {
  conn.channel_ = true;
  conn.inbox_ = std::move(options.inbox);
  conn.origin_ = options.origin;
  conn.slot_ = options.slot;
  conn.credits_ = std::move(options.credits);
  conn.framing_ = std::move(options.framing);
  conn.max_frame_ = options.max_frame;
  if (options.paused) conn.read_enabled_ = false;
  conn.on_frame_ = nullptr;
  conn.on_close_ = nullptr;
  conn.deadline_ns_ = 0;
}

void EventLoop::promote(const ConnRef& conn, ChannelOptions options) {
  apply_channel_options(*conn, std::move(options));
}

std::shared_ptr<Link> EventLoop::link(const ConnRef& conn) {
  return std::make_shared<NetLink>(conn);
}

void EventLoop::register_conn(const ConnRef& conn) {
  if (conn->closed()) return;
  if (stopping_.load(std::memory_order_acquire)) {
    // Late registration during shutdown: stop()'s wake pass only covers
    // conns_ members, so a silently dropped conn would leave any sender
    // blocked on its budget condvar hanging forever.  Tear it down properly
    // (marks it closed, clears the queue, notifies budget_, surfaces EOF).
    connection_dead(conn, false);
    return;
  }
  try {
    set_nonblocking(conn->fd());
  } catch (const std::exception& error) {
    TBON_DEBUG("net conn setup failed: " << error.what());
    connection_dead(conn, !conn->channel_);
    return;
  }
  epoll_event ev{};
  ev.events = conn->read_enabled_ ? EPOLLIN : 0u;
  ev.data.fd = conn->fd();
  if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, conn->fd(), &ev) != 0) {
    TBON_DEBUG("epoll add failed: " << errno_string(errno));
    connection_dead(conn, !conn->channel_);
    return;
  }
  conn->registered_ = true;
  conns_.emplace(conn->fd(), conn);
  if (metrics_ != nullptr) {
    metrics_->net_connections.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn->deadline_ns_ > 0) {
    timers_.emplace(conn->deadline_ns_, [this, weak = std::weak_ptr<NetConn>(conn)] {
      ConnRef locked = weak.lock();
      // Still un-promoted when the deadline fires: the peer never finished
      // (or never started) its handshake.
      if (locked && !locked->closed() && !locked->channel_) {
        TBON_DEBUG("handshake deadline expired on fd " << locked->fd());
        connection_dead(locked, true);
      }
    });
  }
}

void EventLoop::add_listener(Fd fd, std::function<void(Fd)> on_accept) {
  auto shared = std::make_shared<ListenerState>();
  shared->fd = std::move(fd);
  shared->on_accept = std::move(on_accept);
  submit([this, shared] {
    if (stopping_.load(std::memory_order_acquire)) return;
    set_nonblocking(shared->fd.get());
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = shared->fd.get();
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, shared->fd.get(), &ev) != 0) {
      throw TransportError("epoll add listener failed: " + errno_string(errno));
    }
    const int key = shared->fd.get();
    listeners_.emplace(key, std::move(*shared));
  });
}

void EventLoop::close_connection(const ConnRef& conn) {
  submit([this, conn] { connection_dead(conn, false); });
}

// ---- EventLoop: send path ---------------------------------------------------

bool EventLoop::enqueue(const ConnRef& conn, NetConn::SendItem item, bool may_block) {
  {
    std::unique_lock<std::mutex> lock(conn->mutex_);
    if (conn->closed() || conn->close_after_flush_) return false;
    if (may_block && conn->queued_bytes_ > 0 &&
        conn->queued_bytes_ + item.charge > kSendBudget) {
      // An empty queue always admits one item: a single frame can legally be
      // larger than the whole budget (kMaxWireFrame >> kSendBudget), and
      // waiting for `queued + charge <= budget` on such a frame would never
      // be satisfied.
      conn->budget_.wait(lock, [&] {
        return conn->closed() || conn->queued_bytes_ == 0 ||
               conn->queued_bytes_ + item.charge <= kSendBudget;
      });
      if (conn->closed()) return false;
    }
    conn->queued_bytes_ += item.charge;
    if (metrics_ != nullptr) {
      update_max(metrics_->net_send_queue_peak, conn->queued_bytes_);
    }
    const bool was_empty = conn->queue_.empty();
    conn->queue_.push_back(std::move(item));
    // A non-empty queue means a previous wake is still pending or the loop
    // is actively draining this connection and re-checks the queue before
    // sleeping — either way another eventfd write would only add a syscall
    // per packet to the hot path.
    if (!was_empty) return true;
  }
  wake();
  return true;
}

void EventLoop::send_frame(const ConnRef& conn, Bytes frame) {
  NetConn::SendItem item;
  item.charge = frame.size() + 4;
  item.raw = std::move(frame);
  enqueue(conn, std::move(item), /*may_block=*/false);
}

bool EventLoop::build_outgoing(const ConnRef& conn) {
  NetConn::SendItem item;
  {
    std::lock_guard<std::mutex> lock(conn->mutex_);
    if (conn->queue_.empty()) return false;
    item = std::move(conn->queue_.front());
    conn->queue_.pop_front();
  }
  NetConn::Outgoing out;
  out.charge = item.charge;
  try {
    if (!item.batch.empty()) {
      // A coalesced run: one multi-packet batch frame.  Always flattened —
      // the batch encoding interleaves per-packet headers, so there is no
      // verbatim-relay segment list to preserve.
      Bytes frame = encode_batch_frame(item.batch);
      if (conn->framing_ && !conn->framing_->transparent()) {
        out.flat = conn->framing_->encode(frame);
      } else {
        out.flat = std::move(frame);
      }
      out.frame_size = static_cast<std::uint32_t>(out.flat.size());
      out.segments.push_back({out.flat.data(), out.flat.size()});
    } else if (item.packet != nullptr) {
      const bool transparent = !conn->framing_ || conn->framing_->transparent();
      if (transparent && fd_zero_copy()) {
        // The PR 3 lanes: wire-backed relays go out verbatim, owned packets
        // as header scratch + in-place payload segments.  The Outgoing holds
        // the packet and the writer so the segment pointers stay valid
        // across however many writev calls the frame takes.
        out.packet = item.packet;
        out.writer = std::make_unique<SegmentWriter>();
        item.packet->serialize_segments(*out.writer);
        out.segments = out.writer->segments();
        out.frame_size = out.writer->size();
      } else {
        BinaryWriter writer;
        item.packet->serialize(writer);
        if (conn->framing_ && !conn->framing_->transparent()) {
          out.flat = conn->framing_->encode(writer.bytes());
        } else {
          out.flat = writer.take();
        }
        out.frame_size = out.flat.size();
        out.segments.push_back({out.flat.data(), out.flat.size()});
      }
    } else {
      // Raw handshake frame: framed with the length prefix but never passed
      // through the Framing (handshakes travel in the clear).
      out.flat = std::move(item.raw);
      out.frame_size = out.flat.size();
      out.segments.push_back({out.flat.data(), out.flat.size()});
    }
  } catch (const std::exception& error) {
    TBON_DEBUG("net frame build failed: " << error.what());
    connection_dead(conn, !conn->channel_);
    return false;
  }
  if (out.frame_size > kMaxWireFrame) {
    TBON_DEBUG("oversized outgoing frame dropped (" << out.frame_size << " bytes)");
    connection_dead(conn, !conn->channel_);
    return false;
  }
  const auto prefix = static_cast<std::uint32_t>(out.frame_size);
  std::memcpy(conn->out_header_.data(), &prefix, sizeof(prefix));
  out.segments.insert(out.segments.begin(),
                      {conn->out_header_.data(), conn->out_header_.size()});
  out.segment_index = 0;
  out.segment_offset = 0;
  conn->outgoing_ = std::move(out);
  return true;
}

void EventLoop::finish_outgoing(NetConn& conn) {
  if (metrics_ != nullptr) {
    metrics_->wire_bytes_out.fetch_add(conn.outgoing_->frame_size,
                                       std::memory_order_relaxed);
    metrics_->net_frames_out.fetch_add(1, std::memory_order_relaxed);
  }
  const std::size_t charge = conn.outgoing_->charge;
  conn.outgoing_.reset();
  std::lock_guard<std::mutex> lock(conn.mutex_);
  conn.queued_bytes_ -= std::min(conn.queued_bytes_, charge);
  conn.budget_.notify_all();
}

void EventLoop::handle_writable(const ConnRef& conn) {
  if (conn->closed()) return;
  while (true) {
    if (!conn->outgoing_ && !build_outgoing(conn)) break;
    if (conn->closed()) return;  // build_outgoing may have killed the conn
    NetConn::Outgoing& out = *conn->outgoing_;
    iovec iov[kIovBatch];
    std::size_t iovcnt = 0;
    for (std::size_t i = out.segment_index;
         i < out.segments.size() && iovcnt < kIovBatch; ++i) {
      const auto& seg = out.segments[i];
      const std::size_t skip = (i == out.segment_index) ? out.segment_offset : 0;
      iov[iovcnt].iov_base = const_cast<std::byte*>(seg.data) + skip;
      iov[iovcnt].iov_len = seg.size - skip;
      ++iovcnt;
    }
    const ssize_t n = ::writev(conn->fd(), iov, static_cast<int>(iovcnt));
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel buffer full mid-frame: keep the cursor, ask for EPOLLOUT.
        if (metrics_ != nullptr) {
          metrics_->net_partial_writes.fetch_add(1, std::memory_order_relaxed);
        }
        if (!conn->want_write_) {
          conn->want_write_ = true;
          update_interest(*conn);
        }
        return;
      }
      TBON_DEBUG("net write failed: " << errno_string(errno));
      connection_dead(conn, !conn->channel_);
      return;
    }
    std::size_t advanced = static_cast<std::size_t>(n);
    while (advanced > 0) {
      const auto& seg = out.segments[out.segment_index];
      const std::size_t remain = seg.size - out.segment_offset;
      if (advanced >= remain) {
        advanced -= remain;
        ++out.segment_index;
        out.segment_offset = 0;
      } else {
        out.segment_offset += advanced;
        advanced = 0;
      }
    }
    if (out.segment_index == out.segments.size()) finish_outgoing(*conn);
  }
  // Queue fully drained.
  if (conn->want_write_) {
    conn->want_write_ = false;
    update_interest(*conn);
  }
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex_);
    close_now = conn->close_after_flush_ && conn->queue_.empty();
  }
  if (close_now && !conn->outgoing_) {
    // Half-close like FdLink::close(): the peer's reader sees EOF, and our
    // read side stays open until it does the same.
    shutdown_write(conn->fd());
  }
}

// ---- EventLoop: receive path ------------------------------------------------

void EventLoop::handle_readable(const ConnRef& conn) {
  while (!conn->closed() && conn->read_enabled_) {
    if (!conn->reading_payload_) {
      // The header may already be complete from a previous readv's spillover
      // (see the payload branch); only hit the kernel when it is not.
      if (conn->header_have_ < conn->header_.size()) {
        const ssize_t n = ::read(conn->fd(), conn->header_.data() + conn->header_have_,
                                 conn->header_.size() - conn->header_have_);
        if (n == 0) {
          connection_dead(conn, !conn->channel_);
          return;
        }
        if (n < 0) {
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) return;
          connection_dead(conn, !conn->channel_);
          return;
        }
        conn->header_have_ += static_cast<std::size_t>(n);
        if (conn->header_have_ < conn->header_.size()) continue;
      }
      std::uint32_t size = 0;
      std::memcpy(&size, conn->header_.data(), sizeof(size));
      if (size == 0 || size > conn->max_frame_) {
        // A hostile or garbage length prefix: drop the connection instead
        // of allocating whatever it claims.
        TBON_DEBUG("bad frame size " << size << " on fd " << conn->fd());
        connection_dead(conn, !conn->channel_);
        return;
      }
      conn->payload_.resize(size);
      conn->payload_have_ = 0;
      conn->reading_payload_ = true;
    } else {
      // Pull the next frame's length prefix in the same syscall as the
      // payload tail: in steady-state bulk relay this halves the reads per
      // frame (the separate 4-byte header read disappears).
      iovec iov[2];
      iov[0].iov_base = conn->payload_.data() + conn->payload_have_;
      iov[0].iov_len = conn->payload_.size() - conn->payload_have_;
      iov[1].iov_base = conn->header_.data();
      iov[1].iov_len = conn->header_.size();
      const ssize_t n = ::readv(conn->fd(), iov, 2);
      if (n == 0) {
        connection_dead(conn, !conn->channel_);
        return;
      }
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        connection_dead(conn, !conn->channel_);
        return;
      }
      const std::size_t got = static_cast<std::size_t>(n);
      const std::size_t payload_part = std::min(got, iov[0].iov_len);
      conn->payload_have_ += payload_part;
      if (conn->payload_have_ < conn->payload_.size()) continue;
      Bytes frame = std::move(conn->payload_);
      conn->payload_ = Bytes{};
      conn->reading_payload_ = false;
      conn->header_have_ = got - payload_part;  // next frame's prefix spillover
      if (!deliver_frame(conn, std::move(frame))) return;
    }
  }
}

bool EventLoop::deliver_frame(const ConnRef& conn, Bytes frame) {
  if (metrics_ != nullptr) {
    metrics_->wire_bytes_in.fetch_add(frame.size(), std::memory_order_relaxed);
    metrics_->net_frames_in.fetch_add(1, std::memory_order_relaxed);
  }
  if (!conn->channel_) {
    if (conn->on_frame_) {
      // Keep the callback alive across the call: it may promote the
      // connection, which replaces conn->on_frame_ under our feet.
      const auto callback = conn->on_frame_;
      try {
        callback(conn, std::move(frame));
      } catch (const std::exception& error) {
        // A malformed handshake frame (CodecError from the wire decoders,
        // or a validation failure in the callback) costs exactly one
        // connection, never the loop.
        TBON_DEBUG("handshake frame rejected: " << error.what());
        connection_dead(conn, true);
        return false;
      }
    }
    return !conn->closed();
  }
  try {
    if (conn->framing_ && !conn->framing_->transparent()) {
      conn->framing_->decode(frame);
    }
    if (is_batch_frame(frame)) {
      std::vector<PacketPtr> packets;
      try {
        packets = decode_batch_frame(std::move(frame), fd_zero_copy());
      } catch (const CodecError& error) {
        // Frame boundaries are intact (length-prefixed stream), so a
        // malformed batch is dropped whole — no envelopes, no credits — and
        // the connection lives on.
        TBON_DEBUG("dropping malformed batch frame: " << error.what());
        if (metrics_ != nullptr) {
          metrics_->batch_frames_rejected.fetch_add(1, std::memory_order_relaxed);
        }
        return !conn->closed();
      }
      if (metrics_ != nullptr) {
        metrics_->batch_frames_in.fetch_add(1, std::memory_order_relaxed);
        metrics_->batch_packets_in.fetch_add(packets.size(),
                                             std::memory_order_relaxed);
      }
      return deliver_envelope(
          conn, Envelope{conn->origin_, conn->slot_, nullptr,
                         std::make_shared<const std::vector<PacketPtr>>(
                             std::move(packets))});
    }
    PacketPtr packet;
    if (fd_zero_copy()) {
      auto buffer = std::make_shared<const Buffer>(std::move(frame));
      packet = Packet::deserialize_view(BufferView(buffer, 0, buffer->size()));
    } else {
      BinaryReader reader(frame);
      packet = Packet::deserialize(reader);
    }
    if (packet->stream_id() == kControlStream && packet->tag() == kTagCredit) {
      consume_credit(*conn, *packet);
      return true;
    }
    return deliver_envelope(conn, Envelope{conn->origin_, conn->slot_, packet});
  } catch (const std::exception& error) {
    TBON_DEBUG("net frame decode failed: " << error.what());
    connection_dead(conn, false);
    return false;
  }
}

void EventLoop::consume_credit(NetConn& conn, const Packet& packet) {
  // Mirrors the fd reader's consume_credit_frame.  Applying grants here is
  // safe because the loop never *waits* for credits: blocking acquisition
  // happens in FlowControlledLink on sender threads, which grant() wakes.
  try {
    const std::uint32_t count = credit_packet_count(packet);
    const std::uint32_t channel = credit_packet_channel(packet);
    if (!conn.credits_.gate || channel != conn.credits_.channel_id) {
      throw CodecError("stale or unsinkable credit grant");
    }
    conn.credits_.gate->grant(count);
  } catch (const std::exception& error) {
    TBON_DEBUG("rejecting credit grant: " << error.what());
    if (metrics_ != nullptr) {
      metrics_->fc_invalid_grants.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

bool EventLoop::deliver_envelope(const ConnRef& conn, Envelope envelope) {
  if (conn->inbox_->try_push(envelope)) return true;
  // Inbox full: park the envelope and mask EPOLLIN so the kernel buffer
  // (and then the peer's credit window) absorbs the backlog.  retry_parked
  // re-enables reads once the runtime drains.
  conn->parked_ = std::move(envelope);
  conn->read_enabled_ = false;
  update_interest(*conn);
  parked_.push_back(conn);
  return false;
}

void EventLoop::retry_parked() {
  if (!parked_.empty()) {
    std::vector<ConnRef> still;
    std::vector<ConnRef> ready;
    for (ConnRef& conn : parked_) {
      if (conn->closed() || !conn->parked_) continue;
      if (conn->inbox_->try_push(*conn->parked_)) {
        conn->parked_.reset();
        conn->read_enabled_ = true;
        update_interest(*conn);
        ready.push_back(std::move(conn));
      } else {
        still.push_back(std::move(conn));
      }
    }
    parked_ = std::move(still);
    // Drain whatever accumulated in the kernel while reads were masked.
    for (const ConnRef& conn : ready) handle_readable(conn);
  }
  if (!pending_eof_.empty()) {
    std::vector<PendingEof> still;
    for (PendingEof& eof : pending_eof_) {
      if (!eof.inbox->try_push(Envelope{eof.origin, eof.slot, nullptr})) {
        still.push_back(std::move(eof));
      }
    }
    pending_eof_ = std::move(still);
  }
}

// ---- EventLoop: teardown of one connection ----------------------------------

void EventLoop::connection_dead(const ConnRef& conn, bool handshake_failure) {
  if (conn->closed_.exchange(true, std::memory_order_acq_rel)) return;
  {
    std::lock_guard<std::mutex> lock(conn->mutex_);
    conn->queue_.clear();
    conn->queued_bytes_ = 0;
    conn->budget_.notify_all();
  }
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, conn->fd(), nullptr);
  conn->registered_ = false;
  conns_.erase(conn->fd());
  if (metrics_ != nullptr) {
    if (handshake_failure) {
      metrics_->net_handshakes_failed.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (conn->channel_) {
    if (!conn->eof_notified_) {
      conn->eof_notified_ = true;
      // The EOF envelope is what triggers recovery; it must not be lost,
      // and it must not block the loop — best effort now, retried from the
      // loop until the inbox has room.
      if (!conn->inbox_->try_push(Envelope{conn->origin_, conn->slot_, nullptr})) {
        pending_eof_.push_back(PendingEof{conn->inbox_, conn->origin_, conn->slot_});
      }
    }
  } else if (conn->on_close_) {
    const auto callback = std::move(conn->on_close_);
    conn->on_close_ = nullptr;
    try {
      callback(conn);
    } catch (const std::exception& error) {
      TBON_DEBUG("net on_close failed: " << error.what());
    }
  }
  conn->parked_.reset();
  conn->outgoing_.reset();
  conn->fd_.reset();
}

void EventLoop::update_interest(NetConn& conn) {
  epoll_event ev{};
  ev.events = (conn.read_enabled_ ? EPOLLIN : 0u) |
              (conn.want_write_ ? EPOLLOUT : 0u);
  ev.data.fd = conn.fd();
  if (!conn.registered_) {
    // Deregistered by the masked-HUP path in run(); re-arm so the pending
    // data / EOF the peer left behind gets read.
    if (::epoll_ctl(epoll_.get(), EPOLL_CTL_ADD, conn.fd(), &ev) == 0) {
      conn.registered_ = true;
    }
    return;
  }
  ::epoll_ctl(epoll_.get(), EPOLL_CTL_MOD, conn.fd(), &ev);
}

// ---- EventLoop: the loop ----------------------------------------------------

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
  if (metrics_ != nullptr) {
    metrics_->net_wakeups.fetch_add(1, std::memory_order_relaxed);
  }
}

void EventLoop::drain_wake() {
  std::uint64_t value = 0;
  while (::read(wake_fd_.get(), &value, sizeof(value)) > 0) {
  }
}

void EventLoop::run_ops() {
  std::deque<std::function<void()>> batch;
  {
    std::lock_guard<std::mutex> lock(ops_mutex_);
    batch.swap(ops_);
  }
  for (auto& op : batch) {
    try {
      op();
    } catch (const std::exception& error) {
      TBON_DEBUG("event loop op failed: " << error.what());
    }
  }
}

void EventLoop::fire_timers(std::int64_t now) {
  while (!timers_.empty() && timers_.begin()->first <= now) {
    auto fn = std::move(timers_.begin()->second);
    timers_.erase(timers_.begin());
    try {
      fn();
    } catch (const std::exception& error) {
      TBON_DEBUG("event loop timer failed: " << error.what());
    }
  }
}

int EventLoop::poll_timeout_ms() const {
  // Parked envelopes / pending EOFs poll the inbox on a short leash; the
  // inbox has no cross-thread wake channel back to us.
  if (!parked_.empty() || !pending_eof_.empty()) return 2;
  if (timers_.empty()) return 500;
  const std::int64_t delta = timers_.begin()->first - now_ns();
  if (delta <= 0) return 0;
  return static_cast<int>(std::min<std::int64_t>(delta / 1'000'000 + 1, 500));
}

void EventLoop::sample_threads() {
  if (metrics_ != nullptr) {
    const std::uint64_t count = count_process_threads();
    if (count > 0) {
      metrics_->net_threads.store(count, std::memory_order_relaxed);
    }
  }
  timers_.emplace(now_ns() + kThreadSampleNs, [this] { sample_threads(); });
}

void EventLoop::flush_sends() {
  if (conns_.empty()) return;
  std::vector<ConnRef> flushable;
  flushable.reserve(conns_.size());
  for (const auto& [fd, conn] : conns_) {
    bool has_work = conn->outgoing_.has_value();
    if (!has_work) {
      std::lock_guard<std::mutex> lock(conn->mutex_);
      has_work = !conn->queue_.empty() || conn->close_after_flush_;
    }
    if (has_work && !conn->want_write_) flushable.push_back(conn);
  }
  for (const ConnRef& conn : flushable) handle_writable(conn);
}

void EventLoop::run() {
  loop_thread_id_.store(&t_loop_marker, std::memory_order_release);
  sample_threads();
  std::array<epoll_event, 64> events;
  while (!stopping_.load(std::memory_order_acquire)) {
    run_ops();
    retry_parked();
    fire_timers(now_ns());
    flush_sends();
    const int n =
        ::epoll_wait(epoll_.get(), events.data(), static_cast<int>(events.size()),
                     poll_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      TBON_DEBUG("epoll_wait failed: " << errno_string(errno));
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_.get()) {
        drain_wake();
        continue;
      }
      if (auto listener = listeners_.find(fd); listener != listeners_.end()) {
        while (true) {
          const int client = ::accept4(fd, nullptr, nullptr, SOCK_CLOEXEC);
          if (client < 0) {
            if (errno == EINTR) continue;
            break;  // EAGAIN, or a transient per-connection error
          }
          // Handshake replies and credit grants must not wait out Nagle.
          const int nodelay = 1;
          ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &nodelay,
                       sizeof(nodelay));
          if (metrics_ != nullptr) {
            metrics_->net_accepts.fetch_add(1, std::memory_order_relaxed);
          }
          try {
            listener->second.on_accept(Fd(client));
          } catch (const std::exception& error) {
            TBON_DEBUG("net accept handler failed: " << error.what());
          }
        }
        continue;
      }
      const auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      const ConnRef conn = it->second;
      if ((events[i].events & EPOLLOUT) != 0) handle_writable(conn);
      if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) == 0) continue;
      if (!conn->closed() && !conn->read_enabled_ && !conn->want_write_ &&
          (events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        // HUP/ERR are delivered even with a 0 interest mask, and
        // handle_readable no-ops while reads are masked — level-triggered,
        // the event would repeat every epoll_wait and spin the loop hot
        // until the inbox drains.  Drop the fd from the interest set
        // instead; resume()/retry_parked() re-add it via update_interest
        // and then drain whatever the peer left behind before the EOF
        // surfaces.  (With want_write_ set the interest mask is non-zero
        // and the write path consumes the event: the next writev fails and
        // tears the connection down.)
        if (::epoll_ctl(epoll_.get(), EPOLL_CTL_DEL, conn->fd(), nullptr) ==
            0) {
          conn->registered_ = false;
        }
        continue;
      }
      handle_readable(conn);
    }
  }
  loop_thread_id_.store(nullptr, std::memory_order_release);
}

}  // namespace tbon::net
