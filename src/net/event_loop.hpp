// The per-node socket engine of the remote instantiation.
//
// One EventLoop per process owns ALL of that node's socket I/O on a single
// epoll-driven thread — where the multi-process instantiation spawns one
// blocking reader thread per fd, a remote node's fd count no longer shows
// up in its thread count (test_net.cpp asserts exactly that).  Filter work
// never runs here: packets are delivered into the NodeRuntime's inbox and
// filters execute on the runtime thread or the FilterExecutor pool, so the
// loop's only job is moving frames.
//
// The loop never blocks:
//  * reads are non-blocking with an incremental header/payload state
//    machine; a full inbox parks the envelope and masks EPOLLIN for that
//    connection until the runtime drains (short-timeout retry);
//  * writes go through a per-connection send queue drained with
//    scatter-gather writev (the PR 3 zero-copy lanes: owned payload
//    segments are written in place, wire-backed relays verbatim); partial
//    writes keep a segment cursor and arm EPOLLOUT;
//  * senders on other threads (runtime, back-end application code) enqueue
//    via NetLink and block only against a byte budget — the moral
//    equivalent of a full kernel socket buffer — never against the loop;
//  * credit grants (kTagCredit) are consumed on this thread against the
//    connection's CreditSink.  That is safe precisely because this thread
//    never waits for credits: blocking acquisition happens inside
//    FlowControlledLink on sender threads, which the grant wakes.
//
// Connections start in *frame-callback* mode (used for handshakes: small
// max-frame cap, optional deadline, whole frames handed to a callback on
// the loop thread) and are promoted to *channel* mode once the handshake
// completes; channel frames become inbox envelopes exactly like
// start_fd_reader produces, so NodeRuntime cannot tell the transports
// apart.  An eventfd wake channel makes enqueues and cross-thread posts
// visible to a sleeping epoll_wait.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/fd_link.hpp"
#include "core/runtime.hpp"
#include "net/framing.hpp"
#include "net/wire.hpp"
#include "telemetry/metrics.hpp"
#include "transport/fd.hpp"

namespace tbon::net {

class EventLoop;
class NetConn;
using ConnRef = std::shared_ptr<NetConn>;

/// Options for a connection in frame-callback (pre-handshake) mode.
struct ConnectionOptions {
  /// Whole decoded frames, on the loop thread.  May call promote(),
  /// send_frame(), close_connection() on its EventLoop.
  std::function<void(const ConnRef&, Bytes)> on_frame;
  /// EOF, error, or deadline expiry before promotion (loop thread).
  std::function<void(const ConnRef&)> on_close;
  /// Pre-handshake frame cap (a hostile length prefix closes the
  /// connection instead of ballooning memory).
  std::size_t max_frame = kMaxHandshakeFrame;
  /// Absolute now_ns() deadline for promotion; 0 = none.  Expiry counts
  /// into net_handshakes_failed and closes the connection.
  std::int64_t deadline_ns = 0;
};

/// Options promoting a connection to channel (packet-plane) mode.
struct ChannelOptions {
  InboxPtr inbox;
  Origin origin = Origin::kChild;
  /// Child slot (Origin::kChild) or parent-channel epoch (Origin::kParent).
  std::uint32_t slot = 0;
  /// Gate credited by in-band kTagCredit grants arriving on this socket.
  CreditSink credits;
  /// Frame transform; null or transparent() keeps the writev fast path.
  std::shared_ptr<Framing> framing;
  std::size_t max_frame = std::size_t{1} << 30;  ///< fd.hpp's kMaxFrame
  /// Register with reads masked; no frame is delivered until resume().
  /// Lets an adopter queue its wiring marker (request_adopt) before the
  /// orphan's first data frame can possibly reach the inbox — the same
  /// marker-before-data FIFO the fd-reader path gets by starting the
  /// reader thread last.
  bool paused = false;
};

/// One socket owned by the loop.  Opaque outside this subsystem: callers
/// hold ConnRefs and talk to the EventLoop (or the Link it hands out).
class NetConn {
 public:
  int fd() const noexcept { return fd_.get(); }
  bool closed() const noexcept { return closed_.load(std::memory_order_acquire); }

 private:
  friend class EventLoop;
  friend class NetLink;

  struct SendItem {
    PacketPtr packet;        ///< packet-plane send, or ...
    Bytes raw;               ///< ... a pre-framed handshake payload, or ...
    /// ... a coalesced run of data packets, encoded into one multi-packet
    /// batch frame when it reaches the queue head.
    std::vector<PacketPtr> batch;
    std::size_t charge = 0;  ///< budget bytes this item holds
  };

  /// An in-flight frame: built lazily when an item reaches the queue head,
  /// kept alive (writer scratch + packet payload) until fully written.
  struct Outgoing {
    PacketPtr packet;
    Bytes flat;
    std::unique_ptr<SegmentWriter> writer;
    std::vector<SegmentWriter::Segment> segments;
    std::uint32_t frame_size = 0;
    std::size_t segment_index = 0;   ///< -1th entry is the length prefix
    std::size_t segment_offset = 0;
    std::size_t charge = 0;
  };

  Fd fd_;
  EventLoop* loop_ = nullptr;

  // Read state machine (loop thread only).
  std::array<std::byte, 4> header_{};
  std::size_t header_have_ = 0;
  Bytes payload_;
  std::size_t payload_have_ = 0;
  bool reading_payload_ = false;
  std::size_t max_frame_ = kMaxHandshakeFrame;

  // Mode (loop thread only).
  bool channel_ = false;
  InboxPtr inbox_;
  Origin origin_ = Origin::kChild;
  std::uint32_t slot_ = 0;
  CreditSink credits_;
  std::shared_ptr<Framing> framing_;
  std::function<void(const ConnRef&, Bytes)> on_frame_;
  std::function<void(const ConnRef&)> on_close_;
  std::int64_t deadline_ns_ = 0;

  // Delivery backpressure (loop thread only).
  std::optional<Envelope> parked_;

  // Send queue (shared with sender threads).
  std::mutex mutex_;
  std::condition_variable budget_;
  std::deque<SendItem> queue_;
  std::size_t queued_bytes_ = 0;
  bool close_after_flush_ = false;

  // Write state (loop thread only).
  std::optional<Outgoing> outgoing_;
  std::array<std::byte, 4> out_header_{};
  bool want_write_ = false;
  bool read_enabled_ = true;
  bool eof_notified_ = false;
  // In the epoll interest set.  Cleared when the loop deregisters a
  // read-masked conn on EPOLLHUP/EPOLLERR (the events are level-triggered
  // and ignore a 0 interest mask); update_interest re-adds on resume.
  bool registered_ = false;

  std::atomic<bool> closed_{false};
};

/// Link implementation over a loop-owned connection: send() enqueues on the
/// connection's queue and wakes the loop; close() flushes then half-closes.
/// Safe to call from any thread; never blocks the loop.
class NetLink final : public Link {
 public:
  explicit NetLink(ConnRef conn) : conn_(std::move(conn)) {}
  bool send(const PacketPtr& packet) override;
  bool send_batch(std::span<const PacketPtr> packets) override;
  void close() override;

 private:
  ConnRef conn_;
};

class EventLoop {
 public:
  /// `metrics`, when given, receives the net_* counters and gauges and must
  /// outlive the loop.
  explicit EventLoop(MetricsRegistry* metrics = nullptr);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Spawn the loop thread.  Connections and listeners may be added both
  /// before (wiring a child process's tree edges) and after (adoption).
  void start();

  /// Stop and join (idempotent).  Pending queues are dropped; blocked
  /// senders are woken and fail.
  void stop();

  /// Block until every connection's send queue and in-flight frame have
  /// been handed to the kernel, or `timeout_ms` elapses.  Call before
  /// stop() on a node that is exiting: NetLink::send only enqueues, so
  /// without a drain the last frames of the shutdown handshake (final
  /// telemetry record, shutdown ack) race the queue-dropping teardown.
  /// Bytes accepted by the kernel survive process exit — TCP flushes the
  /// socket buffer before FIN — so queue-empty is the full guarantee.
  /// Returns false on timeout or if the loop stopped underneath us.
  bool drain(std::int64_t timeout_ms);

  /// Take ownership of a connected socket in frame-callback mode.
  ConnRef add_connection(Fd fd, ConnectionOptions options);

  /// Take ownership of a connected, handshaked socket directly in channel
  /// mode, returning its send link.  `out_conn`, when given, receives the
  /// connection handle (needed to resume() a paused channel).
  std::shared_ptr<Link> add_channel(Fd fd, ChannelOptions options,
                                    ConnRef* out_conn = nullptr);

  /// Unmask reads on a channel registered with ChannelOptions::paused.
  void resume(const ConnRef& conn);

  /// Promote a frame-callback connection to channel mode.  Loop thread (a
  /// frame callback) or pre-start only.
  void promote(const ConnRef& conn, ChannelOptions options);

  /// The send link of any connection (usable in either mode).
  std::shared_ptr<Link> link(const ConnRef& conn);

  /// Queue one raw length-framed payload (handshake replies).
  void send_frame(const ConnRef& conn, Bytes frame);

  /// Take ownership of a listening socket; `on_accept` runs on the loop
  /// thread once per connected client.
  void add_listener(Fd fd, std::function<void(Fd)> on_accept);

  /// Close a connection: wakes blocked senders, drops its queue, and (in
  /// channel mode) delivers the EOF envelope exactly once.
  void close_connection(const ConnRef& conn);

  /// Run `fn` on the loop thread (after start; FIFO with other ops).
  void post(std::function<void()> fn);

  /// Run `fn` on the loop thread once now_ns() passes `deadline_ns`.
  void post_at(std::int64_t deadline_ns, std::function<void()> fn);

  MetricsRegistry* metrics() const noexcept { return metrics_; }

  /// True when called from the loop thread.
  bool on_loop_thread() const noexcept;

 private:
  friend class NetLink;

  void run();
  void wake();
  void drain_wake();
  void run_ops();
  /// Run `fn` inline when safe (pre-start, or already on the loop thread),
  /// else post it.
  void submit(std::function<void()> fn);
  void register_conn(const ConnRef& conn);
  static void apply_channel_options(NetConn& conn, ChannelOptions options);
  void handle_readable(const ConnRef& conn);
  void handle_writable(const ConnRef& conn);
  bool deliver_frame(const ConnRef& conn, Bytes frame);
  void consume_credit(NetConn& conn, const Packet& packet);
  bool deliver_envelope(const ConnRef& conn, Envelope envelope);
  void retry_parked();
  bool build_outgoing(const ConnRef& conn);
  void finish_outgoing(NetConn& conn);
  void connection_dead(const ConnRef& conn, bool handshake_failure);
  void update_interest(NetConn& conn);
  void fire_timers(std::int64_t now);
  int poll_timeout_ms() const;
  void sample_threads();
  void flush_sends();
  bool enqueue(const ConnRef& conn, NetConn::SendItem item, bool may_block);

  Fd epoll_;
  Fd wake_fd_;
  MetricsRegistry* metrics_;
  std::thread thread_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<const void*> loop_thread_id_{nullptr};

  std::mutex ops_mutex_;
  std::deque<std::function<void()>> ops_;

  // Loop-thread state.
  std::unordered_map<int, ConnRef> conns_;
  struct ListenerState {
    Fd fd;
    std::function<void(Fd)> on_accept;
  };
  std::unordered_map<int, ListenerState> listeners_;
  std::multimap<std::int64_t, std::function<void()>> timers_;
  std::vector<ConnRef> parked_;
  /// Channel EOF envelopes that found their inbox full (retried; the EOF
  /// drives recovery and must be delivered without ever blocking the loop).
  struct PendingEof {
    InboxPtr inbox;
    Origin origin;
    std::uint32_t slot;
  };
  std::vector<PendingEof> pending_eof_;
};

}  // namespace tbon::net
