// Frame-payload transform seam for the remote connection subsystem.
//
// Every tree edge in the remote instantiation carries length-prefixed
// frames (the fd.hpp codec).  A Framing sits between the frame codec and
// the socket: outgoing frame payloads pass through encode(), incoming ones
// through decode().  The default PlainFraming is transparent — the event
// loop detects that and keeps the scatter-gather writev fast path, so the
// seam costs nothing unless a transform is installed.
//
// This is the TLS insertion point: a TLS framing would own the record
// layer and keys per connection (the factory runs once per accepted or
// dialed socket, after version negotiation — handshake frames themselves
// travel in the clear, like a ClientHello).  The tree ships without a TLS
// dependency; XorFraming exists to prove the seam end-to-end in tests.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <span>

#include "common/buffer.hpp"

namespace tbon::net {

/// Per-connection byte transform applied to frame payloads (not to the
/// 4-byte length prefix).  Implementations may be stateful; the event loop
/// calls encode/decode only from its own thread.
class Framing {
 public:
  virtual ~Framing() = default;

  /// True when encode/decode are the identity: the loop then skips the
  /// transform entirely and sends owned payload segments with writev.
  virtual bool transparent() const noexcept { return false; }

  /// Transform an outgoing frame payload (may change its size).
  virtual Bytes encode(std::span<const std::byte> frame) = 0;

  /// Inverse transform, in place (size-preserving transforms only; a TLS
  /// framing would instead re-frame in its own buffer).
  virtual void decode(std::span<std::byte> frame) = 0;
};

/// The identity framing (default): zero-copy lanes stay intact.
class PlainFraming final : public Framing {
 public:
  bool transparent() const noexcept override { return true; }
  Bytes encode(std::span<const std::byte> frame) override {
    return Bytes(frame.begin(), frame.end());
  }
  void decode(std::span<std::byte>) override {}
};

/// A deliberately trivial non-transparent framing: XOR with a rolling key.
/// Worthless as cryptography; invaluable as proof that every payload byte
/// really passes through the seam (tests install it on both ends and the
/// tree keeps working — with plain text on neither wire).
class XorFraming final : public Framing {
 public:
  explicit XorFraming(std::uint8_t key = 0x5a) : key_(key) {}
  Bytes encode(std::span<const std::byte> frame) override {
    Bytes out(frame.begin(), frame.end());
    apply(out);
    return out;
  }
  void decode(std::span<std::byte> frame) override { apply(frame); }

 private:
  void apply(std::span<std::byte> bytes) const noexcept {
    for (std::byte& b : bytes) b ^= std::byte{key_};
  }
  std::uint8_t key_;
};

/// Runs once per established link connection, after version negotiation.
using FramingFactory = std::function<std::shared_ptr<Framing>()>;

}  // namespace tbon::net
