// The remote (multi-host TCP) instantiation: Network::create_remote and the
// node-process side, Network::run_remote_node.
//
// Where process mode forks a tree connected by inherited socketpairs, remote
// mode gives every node nothing but a bootstrap address.  Each spawned node
// dials the front-end's bootstrap listener, learns the topology and its
// parent's address from a NodeConfig frame, binds its own child-facing
// listener, dials its parent with a LinkHello, accepts its children, and
// only then reports BootReady.  The front-end drives its half of all those
// handshakes from one epoll EventLoop; each node likewise runs exactly one
// EventLoop for all of its sockets (no thread-per-fd readers — test_net.cpp
// asserts the thread count).  The packet plane on top of those sockets is
// the same NodeRuntime machinery as the other two instantiations: flow
// control, recovery, telemetry and filters behave identically.
#include "net/remote.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/coalesce.hpp"
#include "core/delegates.hpp"
#include "core/fd_link.hpp"
#include "core/flow_control.hpp"
#include "core/protocol.hpp"
#include "net/event_loop.hpp"
#include "net/wire.hpp"
#include "recovery/adoption.hpp"
#include "transport/fd.hpp"
#include "transport/tcp.hpp"

namespace tbon {
namespace {

// ---- flow-control plumbing (the process-mode helpers, parameterized) --------

std::size_t fc_socket_bytes(const FlowControlOptions& fc) {
  return std::clamp<std::size_t>(std::size_t{fc.window()} * 8192,
                                 std::size_t{256} << 10, std::size_t{4} << 20);
}

/// Return credits to the channel's sender in-band; the frame is exempt
/// control traffic, so it passes wrappers unimpeded and its enqueue never
/// blocks the granting thread.
std::function<void(std::uint32_t)> fc_frame_granter(std::shared_ptr<Link> link) {
  return [link = std::move(link)](std::uint32_t n) {
    link->send(make_credit_packet(n));
  };
}

/// Drain hook waking a sender's event loop after a grant: a no-op marker
/// envelope, try_push because a full inbox is an awake inbox.
std::function<void()> fc_wake_hook(InboxPtr inbox) {
  return [inbox = std::move(inbox), marker = make_attach_marker_packet()] {
    inbox->try_push(Envelope{Origin::kParent, 0, marker});
  };
}

/// The host part of a placement spec ("host" or "host:port").
std::string host_of(const std::string& spec) { return parse_endpoint(spec, 0).host; }

// ---- exec/ssh launcher pid registry -----------------------------------------

std::mutex g_exec_mutex;
std::vector<pid_t> g_exec_pids;

std::vector<pid_t> take_spawned_pids() {
  std::lock_guard<std::mutex> lock(g_exec_mutex);
  return std::exchange(g_exec_pids, {});
}

void spawn_command(const std::vector<std::string>& argv) {
  std::fflush(stdout);
  std::fflush(stderr);
  const pid_t pid = ::fork();
  if (pid < 0) throw TransportError("fork failed");
  if (pid == 0) {
    std::vector<char*> args;
    args.reserve(argv.size() + 1);
    for (const std::string& arg : argv) args.push_back(const_cast<char*>(arg.c_str()));
    args.push_back(nullptr);
    ::execvp(args[0], args.data());
    std::fprintf(stderr, "tbon launcher: exec %s failed: %s\n", args[0],
                 std::strerror(errno));
    std::_Exit(127);
  }
  std::lock_guard<std::mutex> lock(g_exec_mutex);
  g_exec_pids.push_back(pid);
}

// ---- front-end side state ---------------------------------------------------

/// One root-child edge, built as its LinkHello arrives (out of order) and
/// wired into the root runtime in slot order once all have arrived.
struct RootChild {
  std::shared_ptr<Link> raw;      ///< the NetLink itself (credit grant target)
  std::shared_ptr<Link> channel;  ///< raw, or the flow-controlled wrapper
  std::shared_ptr<FlowControlledLink> fc_link;
};

/// Everything the front-end's side of the remote instantiation owns, stored
/// type-erased in Network::remote_state_ so core headers stay independent of
/// the net subsystem.  The EventLoop must be constructed after every fork
/// (its epoll/eventfd/thread must not leak into children), so construction
/// of this whole struct happens post-spawn; the listeners bind pre-fork and
/// are moved in.
struct RemoteState {
  net::EventLoop loop;
  FlowControlOptions fc;
  BatchingOptions batching;
  std::shared_ptr<BatchFlusher> flusher;  ///< deadline service, FE side
  std::function<std::shared_ptr<net::Framing>()> framing;
  std::unique_ptr<TcpListener> boot_listener;
  std::unique_ptr<TcpListener> link_listener;
  std::string bind_host;
  int handshake_timeout_ms = 10'000;
  Topology topology = Topology::single();
  net::NodeConfig base_config;
  NodeRuntime* root = nullptr;

  // Bootstrap progress (loop thread, except the counters under `mutex`).
  struct NodeBoot {
    net::ConnRef conn;
    bool config_sent = false;
    bool ready = false;
  };
  std::unordered_map<NodeId, NodeBoot> boots;
  std::unordered_map<NodeId, std::string> child_endpoint;  ///< "host:port"
  std::vector<RootChild> root_children;                    ///< slot-indexed

  std::mutex mutex;
  std::condition_variable cv;
  std::size_t ready = 0;
  std::size_t link_count = 0;
  bool failed = false;
  std::string failure;

  std::vector<pid_t> pids;

  explicit RemoteState(MetricsRegistry* metrics) : loop(metrics) {}
};

void fe_fail(RemoteState* st, const std::string& why) {
  {
    std::lock_guard<std::mutex> lock(st->mutex);
    if (!st->failed) {
      st->failed = true;
      st->failure = why;
    }
  }
  st->cv.notify_all();
}

/// Where `parent`'s child-facing listener lives; nullopt while the parent
/// has not reported its BootListen yet (the child's config is deferred).
std::optional<std::string> fe_parent_endpoint(RemoteState* st, NodeId parent) {
  if (parent == st->topology.root()) {
    return st->bind_host + ":" + std::to_string(st->link_listener->port());
  }
  const auto it = st->child_endpoint.find(parent);
  if (it == st->child_endpoint.end()) return std::nullopt;
  return it->second;
}

/// Send `node` its NodeConfig once both its hello and its parent's listener
/// endpoint are known (whichever arrives last triggers the send).
void fe_try_send_config(RemoteState* st, NodeId node) {
  const auto it = st->boots.find(node);
  if (it == st->boots.end() || it->second.config_sent) return;
  const auto endpoint = fe_parent_endpoint(st, st->topology.node(node).parent);
  if (!endpoint) return;
  net::NodeConfig config = st->base_config;
  config.parent = *endpoint;
  st->loop.send_frame(it->second.conn, net::encode_node_config(config));
  it->second.config_sent = true;
}

/// Bootstrap-listener frame handler (loop thread).  Throwing tears down
/// just this connection (a hostile or confused dialer), not the front-end;
/// protocol-fatal conditions go through fe_fail instead.
void fe_boot_frame(RemoteState* st,
                   const std::shared_ptr<std::optional<NodeId>>& whoami,
                   const net::ConnRef& conn, const Bytes& frame) {
  const net::BootFrame type = net::boot_frame_type(frame);
  if (type == net::BootFrame::kHello) {
    const net::BootHello hello = net::decode_boot_hello(frame);
    if (hello.node == st->topology.root() ||
        hello.node >= st->topology.num_nodes()) {
      throw ProtocolError("bootstrap hello from unknown node " +
                          std::to_string(hello.node));
    }
    if (!net::negotiate_version(hello.ver_min, hello.ver_max, net::kProtoMin,
                                net::kProtoMax)) {
      throw ProtocolError("bootstrap protocol version mismatch with node " +
                          std::to_string(hello.node));
    }
    if (st->boots.count(hello.node) != 0) {
      throw ProtocolError("duplicate bootstrap hello for node " +
                          std::to_string(hello.node));
    }
    *whoami = hello.node;
    st->boots[hello.node] = RemoteState::NodeBoot{conn, false, false};
    fe_try_send_config(st, hello.node);
    return;
  }
  if (!whoami->has_value()) throw ProtocolError("bootstrap frame before hello");
  const NodeId node = **whoami;
  if (type == net::BootFrame::kListen) {
    const net::BootListen listen = net::decode_boot_listen(frame);
    if (listen.port != 0) {
      st->child_endpoint[node] = host_of(st->topology.node(node).host) + ":" +
                                 std::to_string(listen.port);
    }
    // The listener's children may already be waiting for their configs.
    for (const NodeId child : st->topology.node(node).children) {
      fe_try_send_config(st, child);
    }
    return;
  }
  if (type == net::BootFrame::kReady) {
    const net::BootReady ready = net::decode_boot_ready(frame);
    if (!ready.ok) {
      fe_fail(st, "node " + std::to_string(node) +
                      " failed to start: " + ready.error);
      return;
    }
    st->boots[node].ready = true;
    st->loop.close_connection(conn);  // its bootstrap job is done
    {
      std::lock_guard<std::mutex> lock(st->mutex);
      ++st->ready;
    }
    st->cv.notify_all();
    return;
  }
  throw ProtocolError("unexpected bootstrap frame");
}

/// Link-listener frame handler (loop thread): a root child's LinkHello.
/// Replies LinkWelcome and promotes the socket straight into the packet
/// plane; the channel delivers into the root inbox (which buffers until the
/// root runtime thread starts), so out-of-order arrival is harmless.
void fe_link_hello(RemoteState* st, const net::ConnRef& conn, const Bytes& frame) {
  const net::LinkHello hello = net::decode_link_hello(frame);
  const auto& children = st->topology.node(st->topology.root()).children;
  const auto pos = std::find(children.begin(), children.end(), NodeId{hello.node});
  if (pos == children.end()) {
    throw ProtocolError("link hello from node " + std::to_string(hello.node) +
                        ", which is not a root child");
  }
  const auto slot = static_cast<std::uint32_t>(pos - children.begin());
  if (st->root_children[slot].channel) {
    throw ProtocolError("duplicate link hello for root child slot " +
                        std::to_string(slot));
  }
  const auto version = net::negotiate_version(hello.ver_min, hello.ver_max,
                                              net::kProtoMin, net::kProtoMax);
  if (!version) throw ProtocolError("link protocol version mismatch");
  const std::uint32_t window = st->fc.enabled ? st->fc.window() : 0;
  if (hello.credit_window != window) {
    throw ProtocolError("credit window mismatch on root child link: theirs " +
                        std::to_string(hello.credit_window) + ", ours " +
                        std::to_string(window));
  }
  // The welcome must hit the wire before any packet-plane frame; raw frames
  // and packet frames share one FIFO send queue, so enqueueing it first is
  // enough even though promote() follows immediately.
  st->loop.send_frame(conn, net::encode_link_welcome(net::LinkWelcome{
                                *version, st->topology.root(), slot, window}));
  net::ChannelOptions channel;
  channel.inbox = st->root->inbox();
  channel.origin = Origin::kChild;
  channel.slot = slot;
  std::shared_ptr<CreditGate> gate_down;
  if (st->fc.enabled) {
    set_socket_buffers(conn->fd(), fc_socket_bytes(st->fc));
    gate_down = std::make_shared<CreditGate>(st->fc.window());
    gate_down->set_drain_hook(fc_wake_hook(st->root->inbox()));
    channel.credits = CreditSink{gate_down, 0};
  }
  if (st->framing) channel.framing = st->framing();
  st->loop.promote(conn, std::move(channel));

  RootChild edge;
  edge.raw = st->loop.link(conn);
  // FlowControlledLink(CoalescingLink(raw)): credits per packet before
  // buffering; the gate drives the coalescer's pressure flush.
  edge.channel = maybe_coalesce(edge.raw, st->batching, &st->root->metrics(),
                                gate_down, st->flusher);
  if (st->fc.enabled) {
    edge.fc_link = std::make_shared<FlowControlledLink>(
        edge.channel, gate_down, st->fc, &st->root->metrics(),
        /*fail_fast_throws=*/false, st->root->tenants());
    edge.channel = edge.fc_link;
  }
  st->root_children[slot] = std::move(edge);
  {
    std::lock_guard<std::mutex> lock(st->mutex);
    ++st->link_count;
  }
  st->cv.notify_all();
}

/// Failure/shutdown teardown: stop the loop, then make sure no node process
/// outlives the tree.
void remote_teardown(RemoteState* st, bool force) {
  st->loop.stop();
  if (force) {
    for (const pid_t pid : st->pids) ::kill(pid, SIGKILL);
    for (const pid_t pid : st->pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  } else {
    // Orderly path: the shutdown handshake already told every node to exit;
    // give stragglers a grace period, then escalate.
    const std::int64_t deadline = now_ns() + 5'000'000'000LL;
    for (const pid_t pid : st->pids) {
      for (;;) {
        int status = 0;
        const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
        if (reaped == pid || (reaped < 0 && errno == ECHILD)) break;
        if (now_ns() >= deadline) {
          ::kill(pid, SIGKILL);
          ::waitpid(pid, &status, 0);
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
  }
  st->pids.clear();
  st->boot_listener.reset();
  st->link_listener.reset();
}

}  // namespace

// ---- node-process side ------------------------------------------------------

void Network::run_remote_node(
    NodeId id, const std::string& bootstrap,
    const std::function<void(BackEnd&)>& backend_main,
    const std::function<std::shared_ptr<net::Framing>()>& framing) {
  Fd boot;
  try {
    boot = tcp_connect(parse_endpoint(bootstrap), 10'000);
    write_frame(boot.get(), net::encode_boot_hello(
                                net::BootHello{net::kProtoMin, net::kProtoMax, id}));
    const auto config_frame = read_frame(boot.get());
    if (!config_frame) {
      throw TransportError("bootstrap connection closed before NodeConfig");
    }
    const net::NodeConfig config = net::decode_node_config(*config_frame);
    set_fd_zero_copy(config.zero_copy);
    const Topology topo = config.topology;
    if (id >= topo.num_nodes() || id == topo.root()) {
      throw ProtocolError("node id " + std::to_string(id) +
                          " is not a non-root node of the shipped topology");
    }
    const bool leaf = topo.is_leaf(id);
    const auto& children = topo.node(id).children;
    const std::uint32_t window =
        config.flow_control.enabled ? config.flow_control.window() : 0;

    // Bind the child-facing listener before reporting it, then report it
    // before dialing the parent: our children can be told where to find us
    // while we are still waiting for the parent chain to come up.
    std::unique_ptr<TcpListener> child_listener;
    if (!leaf) {
      child_listener =
          std::make_unique<TcpListener>(parse_endpoint(topo.node(id).host, 0));
    }
    write_frame(boot.get(),
                net::encode_boot_listen(net::BootListen{
                    leaf ? std::uint16_t{0} : child_listener->port()}));

    // Dial the parent (riding out its own startup with backoff) and shake
    // hands: LinkHello up, LinkWelcome back.
    Fd parent_fd =
        tcp_connect(parse_endpoint(config.parent), config.handshake_timeout_ms);
    write_frame(parent_fd.get(),
                net::encode_link_hello(net::LinkHello{
                    net::kProtoMin, net::kProtoMax, id, 0, window}));
    const auto welcome_frame = read_frame(parent_fd.get());
    if (!welcome_frame) throw TransportError("parent closed during link handshake");
    if (welcome_frame->size() > net::kMaxHandshakeFrame) {
      throw ProtocolError("oversized link welcome");
    }
    const net::LinkWelcome welcome = net::decode_link_welcome(*welcome_frame);
    if (welcome.credit_window != window) {
      throw ProtocolError("credit window mismatch with parent");
    }

    // Accept our children.  Dialers that are not ours (or malformed) are
    // dropped and the accept loop keeps going until the deadline.
    std::vector<Fd> child_fds(children.size());  // slot-indexed
    if (!leaf) {
      std::size_t have = 0;
      const std::int64_t deadline =
          now_ns() + std::int64_t{config.handshake_timeout_ms} * 1'000'000;
      while (have < children.size()) {
        const std::int64_t left_ms = (deadline - now_ns()) / 1'000'000;
        if (left_ms <= 0) {
          throw TransportError("timed out waiting for child connections (" +
                               std::to_string(have) + "/" +
                               std::to_string(children.size()) + ")");
        }
        Fd client = child_listener->accept_for(static_cast<int>(left_ms));
        if (!client.valid()) continue;
        try {
          const auto hello_frame = read_frame(client.get());
          if (!hello_frame || hello_frame->size() > net::kMaxHandshakeFrame) continue;
          const net::LinkHello hello = net::decode_link_hello(*hello_frame);
          const auto pos =
              std::find(children.begin(), children.end(), NodeId{hello.node});
          if (pos == children.end()) continue;
          const auto slot = static_cast<std::uint32_t>(pos - children.begin());
          if (child_fds[slot].valid()) continue;
          const auto version = net::negotiate_version(
              hello.ver_min, hello.ver_max, net::kProtoMin, net::kProtoMax);
          if (!version || hello.credit_window != window) continue;
          write_frame(client.get(), net::encode_link_welcome(net::LinkWelcome{
                                        *version, id, slot, window}));
          child_fds[slot] = std::move(client);
          ++have;
        } catch (const CodecError&) {
          continue;  // hostile or garbled hello; drop the socket
        }
      }
      child_listener->close();
    }

    // All edges are sockets now; build the runtime and hand every fd to one
    // EventLoop.  Declared after the runtime so the loop stops first if an
    // exception unwinds.  Each node process services its own coalescer
    // deadlines (the flusher thread starts lazily on first attach).
    auto flusher = std::make_shared<BatchFlusher>();
    if (leaf) {
      const auto rank = topo.leaf_rank(id);
      BackEnd backend(rank, nullptr);
      BackEndDelegate delegate(backend);
      NodeRuntime runtime(topo, id, FilterRegistry::instance(), &delegate);
      if (config.flow_control.enabled) runtime.set_flow_control(config.flow_control);
      runtime.set_execution(config.execution);
      net::EventLoop loop(&runtime.metrics());
      std::shared_ptr<CreditGate> gate_up;
      net::ChannelOptions up;
      up.inbox = runtime.inbox();
      up.origin = Origin::kParent;
      up.slot = 0;
      if (config.flow_control.enabled) {
        set_socket_buffers(parent_fd.get(), fc_socket_bytes(config.flow_control));
        gate_up = std::make_shared<CreditGate>(config.flow_control.window());
        gate_up->set_drain_hook(fc_wake_hook(runtime.inbox()));
        up.credits = CreditSink{gate_up, 0};
      }
      if (framing) up.framing = framing();
      auto parent_raw = loop.add_channel(std::move(parent_fd), std::move(up));
      std::shared_ptr<Link> channel = maybe_coalesce(
          parent_raw, config.batching, &runtime.metrics(), gate_up, flusher);
      if (config.flow_control.enabled) {
        auto wrapped = std::make_shared<FlowControlledLink>(
            channel, gate_up, config.flow_control, &runtime.metrics(),
            /*fail_fast_throws=*/true, runtime.tenants());
        runtime.register_fc_link(wrapped);
        channel = wrapped;
      }
      auto relink = std::make_shared<RelinkableLink>(channel);
      backend.up_link_ = std::make_unique<SharedLink>(relink);
      runtime.set_parent_link(std::make_unique<SharedLink>(relink));
      if (config.flow_control.enabled) {
        runtime.set_parent_granter(fc_frame_granter(relink));
      }
      runtime.set_crash_handler([] { std::_Exit(0); });
      if (config.heartbeat.enabled()) runtime.set_recovery(config.heartbeat);
      if (!config.rendezvous.empty()) {
        runtime.set_orphan_handler([&, rank](NodeRuntime& self) {
          try {
            const std::uint32_t epoch = self.bump_parent_epoch();
            Fd fd = orphan_reconnect(parse_endpoint(config.rendezvous),
                                     OrphanHello{id, {rank}});
            net::ChannelOptions re;
            re.inbox = self.inbox();
            re.origin = Origin::kParent;
            re.slot = epoch;
            if (gate_up) {
              // Re-baseline: the adopter granted nothing yet, so the new
              // edge starts with a full window and a fresh wrapper.
              set_socket_buffers(fd.get(), fc_socket_bytes(config.flow_control));
              gate_up->reset();
              re.credits = CreditSink{gate_up, 0};
            }
            if (framing) re.framing = framing();
            re.paused = true;
            net::ConnRef conn;
            auto fresh_raw = loop.add_channel(std::move(fd), std::move(re), &conn);
            std::shared_ptr<Link> fresh = fresh_raw;
            if (gate_up) {
              auto wrapped = std::make_shared<FlowControlledLink>(
                  fresh_raw, gate_up, config.flow_control, &self.metrics(),
                  /*fail_fast_throws=*/true, self.tenants());
              self.register_fc_link(wrapped);
              fresh = wrapped;
            }
            relink->relink(std::move(fresh));
            loop.resume(conn);
            self.metrics().net_reconnects.fetch_add(1, std::memory_order_relaxed);
            return true;
          } catch (const std::exception& error) {
            TBON_WARN("back-end " << rank << " re-adoption failed: " << error.what());
            return false;
          }
        });
      }
      loop.start();
      write_frame(boot.get(), net::encode_boot_ready(net::BootReady{true, ""}));
      boot.reset();
      {
        std::jthread service([&runtime] { runtime.run(); });
        if (backend_main) backend_main(backend);
        // The runtime exits when the shutdown handshake completes.
      }
      // The runtime's last sends (final telemetry record, shutdown ack) are
      // only *enqueued* on the loop; flush them to the kernel before stop()
      // drops the queues.
      loop.drain(5'000);
      loop.stop();
    } else {
      NodeRuntime runtime(topo, id, FilterRegistry::instance(), nullptr);
      if (config.flow_control.enabled) runtime.set_flow_control(config.flow_control);
      runtime.set_execution(config.execution);
      net::EventLoop loop(&runtime.metrics());
      std::shared_ptr<CreditGate> gate_up;
      net::ChannelOptions up;
      up.inbox = runtime.inbox();
      up.origin = Origin::kParent;
      up.slot = 0;
      if (config.flow_control.enabled) {
        set_socket_buffers(parent_fd.get(), fc_socket_bytes(config.flow_control));
        gate_up = std::make_shared<CreditGate>(config.flow_control.window());
        gate_up->set_drain_hook(fc_wake_hook(runtime.inbox()));
        up.credits = CreditSink{gate_up, 0};
      }
      if (framing) up.framing = framing();
      auto parent_raw = loop.add_channel(std::move(parent_fd), std::move(up));
      auto parent_coalesced = maybe_coalesce(
          parent_raw, config.batching, &runtime.metrics(), gate_up, flusher);
      if (config.flow_control.enabled) {
        auto wrapped = std::make_shared<FlowControlledLink>(
            parent_coalesced, gate_up, config.flow_control, &runtime.metrics(),
            /*fail_fast_throws=*/false, runtime.tenants());
        runtime.register_fc_link(wrapped);
        runtime.set_parent_link(std::make_unique<SharedLink>(wrapped));
        // Grants ride the raw link so the exempt control frame never waits
        // behind a coalescer buffer.
        runtime.set_parent_granter(fc_frame_granter(parent_raw));
      } else {
        runtime.set_parent_link(std::make_unique<SharedLink>(parent_coalesced));
      }
      runtime.set_crash_handler([] { std::_Exit(0); });
      if (config.heartbeat.enabled()) runtime.set_recovery(config.heartbeat);
      if (!config.rendezvous.empty()) {
        runtime.set_orphan_handler([&](NodeRuntime& self) {
          try {
            const std::uint32_t epoch = self.bump_parent_epoch();
            Fd fd = orphan_reconnect(parse_endpoint(config.rendezvous),
                                     OrphanHello{id, topo.subtree_leaf_ranks(id)});
            net::ChannelOptions re;
            re.inbox = self.inbox();
            re.origin = Origin::kParent;
            re.slot = epoch;
            if (gate_up) {
              set_socket_buffers(fd.get(), fc_socket_bytes(config.flow_control));
              gate_up->reset();
              re.credits = CreditSink{gate_up, 0};
            }
            if (framing) re.framing = framing();
            re.paused = true;
            net::ConnRef conn;
            auto fresh_raw = loop.add_channel(std::move(fd), std::move(re), &conn);
            std::shared_ptr<Link> fresh = fresh_raw;
            if (gate_up) {
              auto wrapped = std::make_shared<FlowControlledLink>(
                  fresh_raw, gate_up, config.flow_control, &self.metrics(),
                  /*fail_fast_throws=*/false, self.tenants());
              self.register_fc_link(wrapped);
              fresh = wrapped;
              self.set_parent_granter(fc_frame_granter(fresh_raw));
            }
            self.set_parent_link(std::make_unique<SharedLink>(std::move(fresh)));
            loop.resume(conn);
            self.metrics().net_reconnects.fetch_add(1, std::memory_order_relaxed);
            return true;
          } catch (const std::exception& error) {
            TBON_WARN("node " << id << " re-adoption failed: " << error.what());
            return false;
          }
        });
      }
      for (std::uint32_t slot = 0; slot < child_fds.size(); ++slot) {
        net::ChannelOptions down;
        down.inbox = runtime.inbox();
        down.origin = Origin::kChild;
        down.slot = slot;
        std::shared_ptr<CreditGate> gate_down;
        if (config.flow_control.enabled) {
          set_socket_buffers(child_fds[slot].get(),
                             fc_socket_bytes(config.flow_control));
          gate_down = std::make_shared<CreditGate>(config.flow_control.window());
          gate_down->set_drain_hook(fc_wake_hook(runtime.inbox()));
          down.credits = CreditSink{gate_down, 0};
        }
        if (framing) down.framing = framing();
        auto child_raw = loop.add_channel(std::move(child_fds[slot]), std::move(down));
        auto child_coalesced = maybe_coalesce(
            child_raw, config.batching, &runtime.metrics(), gate_down, flusher);
        if (config.flow_control.enabled) {
          auto wrapped = std::make_shared<FlowControlledLink>(
              child_coalesced, gate_down, config.flow_control,
              &runtime.metrics(), /*fail_fast_throws=*/false,
              runtime.tenants());
          runtime.register_fc_link(wrapped);
          runtime.add_child_link(std::make_unique<SharedLink>(wrapped));
          runtime.set_child_granter(slot, fc_frame_granter(child_raw));
        } else {
          runtime.add_child_link(std::make_unique<SharedLink>(child_coalesced));
        }
      }
      loop.start();
      write_frame(boot.get(), net::encode_boot_ready(net::BootReady{true, ""}));
      boot.reset();
      runtime.run();
      // Flush the queued tail of the shutdown handshake before teardown
      // (same reasoning as the leaf branch).
      loop.drain(5'000);
      loop.stop();
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tbon remote node %u failed: %s\n", id, error.what());
    std::fflush(stderr);
    if (boot.valid()) {
      try {
        write_frame(boot.get(),
                    net::encode_boot_ready(net::BootReady{false, error.what()}));
      } catch (...) {
      }
    }
    std::_Exit(1);
  }
  std::_Exit(0);
}

// ---- front-end side ---------------------------------------------------------

std::unique_ptr<Network> Network::create_remote_impl(const NetworkOptions& options) {
  const RemoteOptions& ropts = options.remote;
  if (!options.backend_main && !ropts.spawn) {
    throw ProtocolError(
        "NetworkOptions::backend_main is required in remote mode unless a "
        "custom RemoteOptions::spawn launches back-end binaries");
  }
  auto network = std::unique_ptr<Network>(new Network(options.topology));
  Network& self = *network;
  self.remote_mode_ = true;
  self.recovery_ = options.recovery;
  self.fc_options_ = options.flow_control;
  const Topology& topo = self.topology_;
  const HeartbeatConfig hb = options.recovery.heartbeat();

  self.root_delegate_ = std::make_unique<RootDelegate>(self);
  self.runtimes_.resize(topo.num_nodes());
  self.runtimes_[topo.root()] = std::make_unique<NodeRuntime>(
      topo, topo.root(), self.registry_, self.root_delegate_.get());
  NodeRuntime& root = *self.runtimes_[topo.root()];
  if (!options.recovery.fault_plan.empty()) {
    self.injector_ = std::make_shared<FaultInjector>(options.recovery.fault_plan);
    root.set_fault_injector(self.injector_);
  }
  if (hb.enabled()) root.set_recovery(hb);
  if (self.fc_options_.enabled) root.set_flow_control(self.fc_options_);
  root.set_execution(options.execution);

  // Listeners bind before any fork so children know the ports and can close
  // their inherited copies; the event loop (epoll fd, eventfd, thread) is
  // created only after every fork.
  auto boot_listener =
      std::make_unique<TcpListener>(TcpEndpoint{ropts.bind_host, 0});
  auto link_listener =
      std::make_unique<TcpListener>(TcpEndpoint{ropts.bind_host, 0});
  if (self.recovery_.auto_readopt) {
    self.rendezvous_ =
        std::make_unique<RendezvousServer>(TcpEndpoint{ropts.bind_host, 0});
  }

  net::NodeConfig base;
  base.topology = topo;
  base.flow_control = options.flow_control;
  base.execution = options.execution;
  base.batching = options.batching;
  base.heartbeat = hb;
  base.zero_copy = fd_zero_copy();
  base.handshake_timeout_ms = ropts.handshake_timeout_ms;
  if (self.rendezvous_) {
    base.rendezvous =
        ropts.bind_host + ":" + std::to_string(self.rendezvous_->port());
  }
  const std::string bootstrap =
      ropts.bind_host + ":" + std::to_string(boot_listener->port());

  std::vector<pid_t> pids;
  for (NodeId id = 0; id < static_cast<NodeId>(topo.num_nodes()); ++id) {
    if (id == topo.root()) continue;
    if (ropts.spawn) {
      ropts.spawn(RemoteSpawnRequest{id, topo.node(id).host, bootstrap});
    } else {
      std::fflush(stdout);
      std::fflush(stderr);
      const pid_t pid = ::fork();
      if (pid < 0) throw TransportError("fork failed");
      if (pid == 0) {
        boot_listener->close();
        link_listener->close();
        if (self.rendezvous_) ::close(self.rendezvous_->listener_fd());
        run_remote_node(id, bootstrap, options.backend_main, ropts.framing);
        // unreachable
      }
      pids.push_back(pid);
    }
  }
  for (const pid_t pid : take_spawned_pids()) pids.push_back(pid);

  auto state = std::make_shared<RemoteState>(&root.metrics());
  RemoteState* st = state.get();
  st->fc = options.flow_control;
  st->batching = options.batching;
  st->flusher = std::make_shared<BatchFlusher>();
  self.batching_ = options.batching;
  self.batch_flusher_ = st->flusher;
  st->framing = ropts.framing;
  st->boot_listener = std::move(boot_listener);
  st->link_listener = std::move(link_listener);
  st->bind_host = ropts.bind_host;
  st->handshake_timeout_ms = ropts.handshake_timeout_ms;
  st->topology = topo;
  st->base_config = std::move(base);
  st->root = &root;
  st->root_children.resize(topo.node(topo.root()).children.size());
  st->pids = std::move(pids);

  // The TcpListener keeps the canonical fd (port() needs it); the loop gets
  // a dup.  Making the shared file description non-blocking is fine — these
  // listeners are only ever accepted by the loop.
  const std::int64_t boot_deadline =
      now_ns() + std::int64_t{ropts.ready_timeout_ms} * 1'000'000;
  st->loop.add_listener(Fd(::dup(st->boot_listener->fd())), [st, boot_deadline](Fd client) {
    auto whoami = std::make_shared<std::optional<NodeId>>();
    net::ConnectionOptions conn;
    conn.deadline_ns = boot_deadline;
    conn.on_frame = [st, whoami](const net::ConnRef& ref, Bytes frame) {
      fe_boot_frame(st, whoami, ref, frame);
    };
    conn.on_close = [st, whoami](const net::ConnRef&) {
      // Hostile dialers (no hello) die silently; a real node dying before
      // its BootReady fails the bring-up fast instead of waiting it out.
      if (!whoami->has_value()) return;
      const auto it = st->boots.find(**whoami);
      if (it != st->boots.end() && it->second.ready) return;
      fe_fail(st, "node " + std::to_string(**whoami) +
                      " bootstrap connection closed before ready");
    };
    st->loop.add_connection(std::move(client), std::move(conn));
  });
  st->loop.add_listener(Fd(::dup(st->link_listener->fd())), [st](Fd client) {
    net::ConnectionOptions conn;
    conn.deadline_ns =
        now_ns() + std::int64_t{st->handshake_timeout_ms} * 1'000'000;
    conn.on_frame = [st](const net::ConnRef& ref, Bytes frame) {
      fe_link_hello(st, ref, frame);
    };
    st->loop.add_connection(std::move(client), std::move(conn));
  });
  st->loop.start();
  self.remote_state_ = state;

  const std::size_t want_ready = topo.num_nodes() - 1;
  const std::size_t want_links = st->root_children.size();
  {
    std::unique_lock<std::mutex> lock(st->mutex);
    const bool done = st->cv.wait_for(
        lock, std::chrono::milliseconds(ropts.ready_timeout_ms),
        [st, want_ready, want_links] {
          return st->failed ||
                 (st->ready >= want_ready && st->link_count >= want_links);
        });
    if (!done || st->failed) {
      const std::string why =
          st->failed ? st->failure : "timed out waiting for remote nodes";
      lock.unlock();
      remote_teardown(st, /*force=*/true);
      {
        // Mark the network already shut down so ~Network does not wait for
        // acknowledgements from a tree that never existed.
        std::lock_guard<std::mutex> slock(self.shutdown_mutex_);
        self.shutdown_requested_ = true;
        self.shutdown_complete_ = true;
      }
      throw TransportError("create_remote failed: " + why);
    }
  }

  // Every edge arrived; wire the root's children in slot order (the inbox
  // buffered anything the channels delivered meanwhile).
  for (std::uint32_t slot = 0; slot < st->root_children.size(); ++slot) {
    RootChild& edge = st->root_children[slot];
    if (edge.fc_link) {
      root.register_fc_link(edge.fc_link);
      root.set_child_granter(slot, fc_frame_granter(edge.raw));
    }
    root.add_child_link(std::make_unique<SharedLink>(edge.channel));
  }

  self.front_end_ = std::unique_ptr<FrontEnd>(new FrontEnd(self));
  self.next_dynamic_rank_ = static_cast<std::uint32_t>(topo.num_leaves());
  if (self.rendezvous_) {
    self.rendezvous_->start([&self](Fd connection, const OrphanHello& hello) {
      self.adopt_remote_orphan(std::move(connection), hello);
    });
  }
  self.threads_.emplace_back([&root] { root.run(); });
  self.remote_stop_ = [state] { remote_teardown(state.get(), /*force=*/false); };
  self.start_telemetry(options.telemetry);
  return network;
}

void Network::adopt_remote_orphan(Fd connection, const OrphanHello& hello) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    // Dropping the connection EOFs the orphan, which then gives up and
    // dies; its subtree drains through the normal teardown path.
    if (shutdown_requested_) return;
  }
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  auto state = std::static_pointer_cast<RemoteState>(remote_state_);
  if (!state) return;
  NodeRuntime& root = *runtimes_[topology_.root()];
  const std::uint32_t slot = root.reserve_child_slot();
  TBON_INFO("front-end adopting remote orphan node " << hello.node
                                                     << " at slot " << slot);
  if (hello.node < current_parent_.size()) {
    current_parent_[hello.node] = topology_.root();
  }
  net::ChannelOptions down;
  down.inbox = root.inbox();
  down.origin = Origin::kChild;
  down.slot = slot;
  std::shared_ptr<CreditGate> gate_down;
  if (fc_options_.enabled) {
    set_socket_buffers(connection.get(), fc_socket_bytes(fc_options_));
    gate_down = std::make_shared<CreditGate>(fc_options_.window());
    gate_down->set_drain_hook(fc_wake_hook(root.inbox()));
    down.credits = CreditSink{gate_down, 0};
  }
  if (state->framing) down.framing = state->framing();
  // Register paused: the wiring marker (request_adopt) must reach the root
  // inbox before the orphan's first data frame possibly can.
  down.paused = true;
  net::ConnRef conn;
  auto raw = state->loop.add_channel(std::move(connection), std::move(down), &conn);
  std::shared_ptr<Link> channel = raw;
  if (fc_options_.enabled) {
    auto wrapped = std::make_shared<FlowControlledLink>(
        raw, gate_down, fc_options_, &root.metrics(), /*fail_fast_throws=*/false,
        root.tenants());
    root.register_fc_link(wrapped);
    root.set_child_granter(slot, fc_frame_granter(raw));
    channel = wrapped;
  }
  root.request_adopt(slot, hello.ranks, std::make_unique<SharedLink>(channel));
  state->loop.resume(conn);
  root.metrics().net_reconnects.fetch_add(1, std::memory_order_relaxed);
  ++adoptions_;
  adoption_cv_.notify_all();
}

// ---- launchers --------------------------------------------------------------

namespace net {

std::function<void(const RemoteSpawnRequest&)> exec_spawn(
    std::vector<std::string> command) {
  return [command = std::move(command)](const RemoteSpawnRequest& request) {
    std::vector<std::string> argv = command;
    argv.push_back("--tbon-node=" + std::to_string(request.node));
    argv.push_back("--tbon-bootstrap=" + request.bootstrap);
    spawn_command(argv);
  };
}

std::function<void(const RemoteSpawnRequest&)> ssh_spawn(
    std::vector<std::string> command, std::string ssh_binary) {
  return [command = std::move(command), ssh_binary = std::move(ssh_binary)](
             const RemoteSpawnRequest& request) {
    std::vector<std::string> argv;
    argv.reserve(command.size() + 4);
    argv.push_back(ssh_binary);
    argv.push_back(host_of(request.host));
    for (const std::string& part : command) argv.push_back(part);
    argv.push_back("--tbon-node=" + std::to_string(request.node));
    argv.push_back("--tbon-bootstrap=" + request.bootstrap);
    spawn_command(argv);
  };
}

bool maybe_run_remote_node(int argc, const char* const* argv,
                           const RemoteNodeOptions& options) {
  std::optional<NodeId> node;
  std::string bootstrap;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kNode = "--tbon-node=";
    constexpr std::string_view kBootstrap = "--tbon-bootstrap=";
    if (arg.substr(0, kNode.size()) == kNode) {
      node = static_cast<NodeId>(
          std::stoul(std::string(arg.substr(kNode.size()))));
    } else if (arg.substr(0, kBootstrap.size()) == kBootstrap) {
      bootstrap = std::string(arg.substr(kBootstrap.size()));
    }
  }
  if (!node || bootstrap.empty()) return false;
  Network::run_remote_node(*node, bootstrap, options.backend_main,
                           options.framing);
  return true;  // unreachable: run_remote_node _Exits, but keeps -Wreturn-type honest
}

}  // namespace net
}  // namespace tbon
