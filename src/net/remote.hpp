// Launcher hooks for the remote (multi-host TCP) instantiation.
//
// Network::create_remote needs one OS process per non-root node; how those
// processes come to exist is the launcher's business, expressed as the
// RemoteOptions::spawn hook.  Three launchers cover the spectrum:
//
//  * default (no hook): fork the front-end process — single host, no
//    binaries, no ssh; this is what CI uses;
//  * exec_spawn: fork+exec a command (typically this very binary) with
//    `--tbon-node=<id> --tbon-bootstrap=<host:port>` appended; the launched
//    process calls maybe_run_remote_node early in main() and never returns;
//  * ssh_spawn: the same command line, wrapped in `ssh <host> ...` — the
//    MRNet-style remote instantiation (the paper uses rsh/ssh process
//    launch).  CI never takes this path; it exists so a real deployment
//    only swaps the hook.
#pragma once

#include <string>
#include <vector>

#include "core/network.hpp"
#include "net/framing.hpp"
#include "transport/tcp.hpp"

namespace tbon::net {

/// What a node process needs beyond its identity: the application body run
/// on back-end nodes, and the (optional) framing factory, which must match
/// the front-end's RemoteOptions::framing.
struct RemoteNodeOptions {
  std::function<void(BackEnd&)> backend_main;
  FramingFactory framing;
};

/// Spawn hook that fork+execs `command` with `--tbon-node=<id>` and
/// `--tbon-bootstrap=<host:port>` appended.  The pids are recorded in a
/// process-global registry that Network::shutdown reaps.
std::function<void(const RemoteSpawnRequest&)> exec_spawn(
    std::vector<std::string> command);

/// Spawn hook that runs `command` (plus the same two flags) on the node's
/// placement host via `ssh_binary <host> <command...>`.  Requires
/// passwordless ssh and the binary present on the target host.
std::function<void(const RemoteSpawnRequest&)> ssh_spawn(
    std::vector<std::string> command, std::string ssh_binary = "ssh");

/// Node-process entry for exec/ssh launched binaries: when argv carries
/// `--tbon-node=<id>` and `--tbon-bootstrap=<host:port>`, runs the node
/// (never returns); otherwise returns false and main() proceeds as the
/// front-end.  Call it before doing anything else expensive.
bool maybe_run_remote_node(int argc, const char* const* argv,
                           const RemoteNodeOptions& options);

}  // namespace tbon::net
