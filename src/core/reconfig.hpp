// Planned topology reconfiguration: the typed operator surface for evolving
// a live tree (paper §2: "the internal process tree may be reconfigured
// while the application runs").
//
// A TopologyDelta is an ordered batch of mutations — add_leaf / remove_leaf /
// split / merge / move_subtree — applied by FrontEnd::reconfigure() through a
// two-phase quiesce→rewire→replay protocol (docs/reconfiguration.md).  Where
// an operation needs a destination the caller may name one explicitly or
// leave it to the network's PlacementPolicy, which picks load-balanced join
// targets from live gauges (child fan-in, executor queue depth, inbox depth
// — the BON-style join-target selection of PAPERS.md).
//
// This header is self-contained on purpose: it depends on the topology layer
// only, so policies can be unit-tested without instantiating a network.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace tbon {

/// Placeholder destination: "let the PlacementPolicy choose".
inline constexpr NodeId kAutoPlacement = 0xFFFFFFFFu;

enum class ReconfigOpKind : std::uint8_t {
  kAddLeaf,      ///< join a new back-end under `node` (or policy-chosen)
  kRemoveLeaf,   ///< planned departure of back-end `rank`
  kSplit,        ///< migrate half of `node`'s children to `target`
  kMerge,        ///< drain every child of `node` into `target`
  kMoveSubtree,  ///< re-home the subtree rooted at `node` under `target`
};

/// One mutation inside a TopologyDelta.
struct ReconfigOp {
  ReconfigOpKind kind = ReconfigOpKind::kAddLeaf;
  NodeId node = kAutoPlacement;    ///< subject (parent / split / merge / move)
  NodeId target = kAutoPlacement;  ///< destination (kAutoPlacement = policy)
  std::uint32_t rank = 0;          ///< back-end rank (kRemoveLeaf)

  friend bool operator==(const ReconfigOp&, const ReconfigOp&) = default;
};

/// Typed builder for a batch of topology mutations, applied in order:
///
///   fe.reconfigure(TopologyDelta()
///                      .add_leaf()            // policy-placed join
///                      .add_leaf(/*parent=*/1)
///                      .split(1)              // rebalance a hot interior
///                      .remove_leaf(3));
class TopologyDelta {
 public:
  TopologyDelta& add_leaf(NodeId parent = kAutoPlacement) {
    ops_.push_back({ReconfigOpKind::kAddLeaf, parent, kAutoPlacement, 0});
    return *this;
  }
  TopologyDelta& remove_leaf(std::uint32_t rank) {
    ops_.push_back({ReconfigOpKind::kRemoveLeaf, kAutoPlacement, kAutoPlacement, rank});
    return *this;
  }
  TopologyDelta& split(NodeId node, NodeId target = kAutoPlacement) {
    ops_.push_back({ReconfigOpKind::kSplit, node, target, 0});
    return *this;
  }
  TopologyDelta& merge(NodeId node, NodeId target = kAutoPlacement) {
    ops_.push_back({ReconfigOpKind::kMerge, node, target, 0});
    return *this;
  }
  TopologyDelta& move_subtree(NodeId node, NodeId new_parent) {
    ops_.push_back({ReconfigOpKind::kMoveSubtree, node, new_parent, 0});
    return *this;
  }

  bool empty() const noexcept { return ops_.empty(); }
  std::size_t size() const noexcept { return ops_.size(); }
  const std::vector<ReconfigOp>& ops() const noexcept { return ops_; }

 private:
  std::vector<ReconfigOp> ops_;
};

/// Outcome of one ReconfigOp.
struct ReconfigOpResult {
  ReconfigOp op;
  bool ok = false;
  /// kAddLeaf: the rank assigned to the new back-end.
  std::uint32_t new_rank = 0;
  /// Destination the placement actually used (resolved kAutoPlacement).
  NodeId resolved_target = kAutoPlacement;
  /// Human-readable failure reason ("" on success).
  std::string message;
};

enum class ReconfigStatus : std::uint8_t {
  kOk,       ///< every operation applied
  kPartial,  ///< some applied, some failed (applied ones are NOT rolled back)
  kFailed,   ///< nothing applied
};

/// Status-carrying result of FrontEnd::reconfigure(): overall status plus a
/// per-operation breakdown in submission order.
class ReconfigResult {
 public:
  ReconfigStatus status() const noexcept { return status_; }
  bool ok() const noexcept { return status_ == ReconfigStatus::kOk; }
  const std::vector<ReconfigOpResult>& ops() const noexcept { return ops_; }

  /// Engine-side assembly.
  void add(ReconfigOpResult op_result) {
    ops_.push_back(std::move(op_result));
    recompute();
  }

 private:
  void recompute() noexcept {
    std::size_t succeeded = 0;
    for (const ReconfigOpResult& r : ops_) succeeded += r.ok ? 1 : 0;
    status_ = succeeded == ops_.size() ? ReconfigStatus::kOk
              : succeeded == 0         ? ReconfigStatus::kFailed
                                       : ReconfigStatus::kPartial;
  }

  ReconfigStatus status_ = ReconfigStatus::kOk;
  std::vector<ReconfigOpResult> ops_;
};

/// Live load gauges for one candidate attach point, sampled by the engine
/// from the node's metrics registry when a placement decision is needed.
struct NodeLoad {
  NodeId node = 0;
  std::size_t fan_in = 0;              ///< live children wired right now
  std::uint64_t exec_queue_depth = 0;  ///< tasks queued across worker shards
  std::uint64_t inbox_depth = 0;       ///< envelopes waiting in the inbox
};

struct ReconfigOptions;

/// Pluggable join-target selection and auto-rebalance proposals.  Candidates
/// are the interior nodes (and the root) currently able to adopt a subtree;
/// in the process and remote instantiations only the root can (re-)wire
/// channels, so the candidate list collapses to {root}.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Choose the attach point for a join or migration.  `candidates` is never
  /// empty.  Return kAutoPlacement to refuse (the operation fails).
  virtual NodeId choose_parent(std::span<const NodeLoad> candidates) = 0;

  /// Periodic gauge inspection (FrontEnd::maybe_rebalance): return a delta to
  /// apply, or nullopt to leave the tree alone.  Default: split any interior
  /// whose fan-in or executor queue exceeds the configured thresholds.
  virtual std::optional<TopologyDelta> propose(std::span<const NodeLoad> candidates,
                                               const ReconfigOptions& options);
};

/// Default policy: least-loaded candidate by (fan-in, queue depth, inbox
/// depth) lexicographically — BON-style load-balanced join targets.
class LoadBalancedPolicy : public PlacementPolicy {
 public:
  NodeId choose_parent(std::span<const NodeLoad> candidates) override;
};

/// Deterministic policy for tests: hands out a scripted target list in
/// order, then falls back to the first candidate.  propose() never fires.
class ManualPolicy : public PlacementPolicy {
 public:
  explicit ManualPolicy(std::vector<NodeId> targets) : targets_(std::move(targets)) {}

  NodeId choose_parent(std::span<const NodeLoad> candidates) override;
  std::optional<TopologyDelta> propose(std::span<const NodeLoad>,
                                       const ReconfigOptions&) override {
    return std::nullopt;
  }

 private:
  std::vector<NodeId> targets_;
  std::size_t next_ = 0;
};

/// Knobs for the reconfiguration subsystem, carried on NetworkOptions.
struct ReconfigOptions {
  /// Join-target selection; null = LoadBalancedPolicy.
  std::shared_ptr<PlacementPolicy> policy;

  /// Auto-rebalance gauge thresholds consulted by maybe_rebalance(): an
  /// interior whose live fan-in (or executor queue depth) reaches the
  /// threshold is proposed for a split.  0 disables that gauge.
  std::uint64_t split_fan_in = 0;
  std::uint64_t split_queue_depth = 0;

  /// Minimum spacing between maybe_rebalance()-initiated deltas.
  int cooldown_ms = 1'000;

  /// Per-operation deadline: a quiesce / rewire handshake that has not
  /// acknowledged within this budget fails the operation.
  int op_timeout_ms = 10'000;
};

}  // namespace tbon
