#include "core/process_network.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/coalesce.hpp"
#include "core/delegates.hpp"
#include "core/fd_link.hpp"
#include "core/flow_control.hpp"
#include "recovery/adoption.hpp"
#include "transport/fd.hpp"
#include "transport/tcp.hpp"

namespace tbon {
namespace {
// Configuration for the process tree being spawned.  All of it is set once
// in create_process before any fork, so every descendant inherits it.
bool g_tcp_edges = false;
/// Front-end rendezvous port for orphan re-adoption; 0 = recovery disabled.
std::uint16_t g_rendezvous_port = 0;
/// The rendezvous listener fd, closed in every child (only the front-end
/// accepts; a surviving inherited copy would keep the port alive forever).
int g_rendezvous_listener_fd = -1;
HeartbeatConfig g_hb{};
FaultPlan g_fault_plan{};
FlowControlOptions g_fc{};
ExecutionOptions g_exec{};
BatchingOptions g_batching{};

/// Kernel buffer sizing for a credit-controlled edge: enough for one window
/// of typical frames, clamped so the defaults never shrink below what the
/// zero-copy bulk path needs nor balloon into an unaccounted queue.
std::size_t fc_socket_bytes() {
  return std::clamp<std::size_t>(std::size_t{g_fc.window()} * 8192,
                                 std::size_t{256} << 10, std::size_t{4} << 20);
}

/// Process-mode granter: return credits to the channel's sender in-band.
/// The frame is exempt control traffic, so it passes any wrapper unimpeded;
/// the peer's fd reader thread applies it to the sender-side gate.
std::function<void(std::uint32_t)> fc_frame_granter(std::shared_ptr<Link> link) {
  return [link = std::move(link)](std::uint32_t n) {
    link->send(make_credit_packet(n));
  };
}

/// Drain hook waking a sender's event loop after a grant (see network.cpp's
/// threaded twin): a no-op marker envelope, try_push because a full inbox is
/// an awake inbox.
std::function<void()> fc_wake_hook(InboxPtr inbox) {
  return [inbox = std::move(inbox), marker = make_attach_marker_packet()] {
    inbox->try_push(Envelope{Origin::kParent, 0, marker});
  };
}

}  // namespace

struct Network::SpawnedChildren {
  std::vector<Fd> fds;      ///< this process's end of each child edge
  std::vector<int> pids;
};

Network::SpawnedChildren Network::spawn_children(
    const Topology& topology, NodeId id, int my_parent_fd,
    const std::function<void(BackEnd&)>& backend_main) {
  SpawnedChildren spawned;
  const auto& children = topology.node(id).children;
  spawned.fds.reserve(children.size());
  spawned.pids.reserve(children.size());

  // Parent-side buffered output would be duplicated into children.
  std::fflush(stdout);
  std::fflush(stderr);

  for (const NodeId child : children) {
    if (g_tcp_edges) {
      // MRNet's wire: a loopback TCP connection per edge.  The parent
      // listens on an ephemeral port; the child connects after the fork.
      TcpListener listener;
      const std::uint16_t port = listener.port();
      const pid_t pid = ::fork();
      if (pid < 0) throw TransportError("fork failed");
      if (pid == 0) {
        listener.close();  // the child only connects
        for (Fd& sibling : spawned.fds) sibling.reset();
        if (my_parent_fd >= 0) ::close(my_parent_fd);
        Fd connection = tcp_connect(port);
        run_child_process(topology, child, connection.release(), backend_main);
        // unreachable
      }
      spawned.fds.push_back(listener.accept());
      spawned.pids.push_back(pid);
    } else {
      auto [mine, theirs] = make_socketpair();
      const pid_t pid = ::fork();
      if (pid < 0) throw TransportError("fork failed");
      if (pid == 0) {
        // In the child: drop every fd that belongs to other edges, keeping
        // only our end of our own socketpair.
        mine.reset();
        for (Fd& sibling : spawned.fds) sibling.reset();
        if (my_parent_fd >= 0) ::close(my_parent_fd);
        run_child_process(topology, child, theirs.release(), backend_main);
        // unreachable
      }
      theirs.reset();
      spawned.fds.push_back(std::move(mine));
      spawned.pids.push_back(pid);
    }
  }
  return spawned;
}

void Network::run_child_process(const Topology& topology, NodeId id, int parent_fd,
                                const std::function<void(BackEnd&)>& backend_main) {
  if (g_rendezvous_listener_fd >= 0) {
    ::close(g_rendezvous_listener_fd);
    g_rendezvous_listener_fd = -1;  // our own children must not re-close it
  }
  try {
    SpawnedChildren spawned = spawn_children(topology, id, parent_fd, backend_main);

    // Each process services its own coalescer deadlines (the thread starts
    // lazily on the first attach, safely after all the forks above).
    auto flusher = std::make_shared<BatchFlusher>();

    std::shared_ptr<FaultInjector> injector;
    if (!g_fault_plan.empty()) {
      // Each process builds its own injector from the inherited plan; the
      // counters are per-process, which is exactly the per-node semantics.
      injector = std::make_shared<FaultInjector>(g_fault_plan);
    }

    // Connections opened by re-adoption; must outlive the reader threads
    // and links that borrow the raw fds, hence declared first.
    std::vector<Fd> adopted_fds;
    std::vector<std::jthread> readers;
    if (topology.is_leaf(id)) {
      const auto rank = topology.leaf_rank(id);
      // The back-end handle and the runtime share one frame-atomic link; a
      // relinkable wrapper lets re-adoption swap the channel underneath
      // both without either noticing.  (The runtime exists first so links
      // and readers can account wire bytes into its metrics.)
      BackEnd backend(rank, nullptr);
      BackEndDelegate delegate(backend);
      NodeRuntime runtime(topology, id, FilterRegistry::instance(), &delegate);
      if (g_fc.enabled) runtime.set_flow_control(g_fc);
      auto parent_raw = std::make_shared<FdLink>(parent_fd, &runtime.metrics());
      // Upstream gate: survives re-adoption (reset to a full window when the
      // edge is replaced) so the back-end handle never dangles mid-send.
      std::shared_ptr<CreditGate> gate_up;
      std::shared_ptr<Link> channel;
      if (g_fc.enabled) {
        set_socket_buffers(parent_fd, fc_socket_bytes());
        gate_up = std::make_shared<CreditGate>(g_fc.window());
        gate_up->set_drain_hook(fc_wake_hook(runtime.inbox()));
        // FlowControlledLink(CoalescingLink(raw)): credits are accounted
        // per packet before buffering, and the gate drives pressure flushes.
        auto up = std::make_shared<FlowControlledLink>(
            maybe_coalesce(parent_raw, g_batching, &runtime.metrics(), gate_up,
                           flusher),
            gate_up, g_fc, &runtime.metrics(), /*fail_fast_throws=*/true,
            runtime.tenants());
        runtime.register_fc_link(up);
        channel = up;
      } else {
        channel = maybe_coalesce(parent_raw, g_batching, &runtime.metrics(),
                                 nullptr, flusher);
      }
      auto relink = std::make_shared<RelinkableLink>(channel);
      backend.up_link_ = std::make_unique<SharedLink>(relink);
      runtime.set_parent_link(std::make_unique<SharedLink>(relink));
      // Grants for downstream traffic ride the relink so they follow the
      // live edge across re-adoptions (the credit frame is exempt traffic).
      if (g_fc.enabled) runtime.set_parent_granter(fc_frame_granter(relink));
      if (injector) runtime.set_fault_injector(injector);
      // An injected crash must look like a real one: no stack unwinding, no
      // flushes, no handshakes.
      runtime.set_crash_handler([] { std::_Exit(0); });
      if (g_hb.enabled()) runtime.set_recovery(g_hb);
      if (g_rendezvous_port != 0) {
        runtime.set_orphan_handler([&, rank](NodeRuntime& self) {
          try {
            const std::uint32_t epoch = self.bump_parent_epoch();
            Fd fd = orphan_reconnect(g_rendezvous_port, OrphanHello{id, {rank}});
            // The hello frame is already on the wire (FIFO), so the
            // front-end wires our slot before any data sent from here on.
            auto fresh_raw = std::make_shared<FdLink>(fd.get(), &self.metrics());
            std::shared_ptr<Link> fresh = fresh_raw;
            if (gate_up) {
              // Re-baseline: the adopter granted nothing yet, so start the
              // new edge with a full window and a fresh wrapper.
              set_socket_buffers(fd.get(), fc_socket_bytes());
              gate_up->reset();
              auto wrapped = std::make_shared<FlowControlledLink>(
                  fresh_raw, gate_up, g_fc, &self.metrics(),
                  /*fail_fast_throws=*/true, self.tenants());
              self.register_fc_link(wrapped);
              fresh = wrapped;
            }
            relink->relink(std::move(fresh));
            readers.push_back(start_fd_reader(fd.get(), self.inbox(),
                                              Origin::kParent, epoch,
                                              &self.metrics(),
                                              CreditSink{gate_up, 0}));
            adopted_fds.push_back(std::move(fd));
            return true;
          } catch (const std::exception& error) {
            TBON_WARN("back-end " << rank << " re-adoption failed: " << error.what());
            return false;
          }
        });
      }
      readers.push_back(start_fd_reader(parent_fd, runtime.inbox(), Origin::kParent,
                                        0, &runtime.metrics(),
                                        CreditSink{gate_up, 0}));
      {
        std::jthread service([&runtime] { runtime.run(); });
        backend_main(backend);
        // The runtime exits when the shutdown handshake completes.
      }
    } else {
      NodeRuntime runtime(topology, id, FilterRegistry::instance(), nullptr);
      if (g_fc.enabled) runtime.set_flow_control(g_fc);
      runtime.set_execution(g_exec);
      auto parent_raw = std::make_shared<FdLink>(parent_fd, &runtime.metrics());
      std::shared_ptr<CreditGate> gate_up;
      if (g_fc.enabled) {
        set_socket_buffers(parent_fd, fc_socket_bytes());
        gate_up = std::make_shared<CreditGate>(g_fc.window());
        gate_up->set_drain_hook(fc_wake_hook(runtime.inbox()));
        auto up = std::make_shared<FlowControlledLink>(
            maybe_coalesce(parent_raw, g_batching, &runtime.metrics(), gate_up,
                           flusher),
            gate_up, g_fc, &runtime.metrics(),
            /*fail_fast_throws=*/false, runtime.tenants());
        runtime.register_fc_link(up);
        runtime.set_parent_link(std::make_unique<SharedLink>(up));
        // Grants ride the raw link: exempt control frames that must never
        // wait behind a coalescer buffer.
        runtime.set_parent_granter(fc_frame_granter(parent_raw));
      } else {
        runtime.set_parent_link(std::make_unique<SharedLink>(maybe_coalesce(
            parent_raw, g_batching, &runtime.metrics(), nullptr, flusher)));
      }
      if (injector) runtime.set_fault_injector(injector);
      runtime.set_crash_handler([] { std::_Exit(0); });
      if (g_hb.enabled()) runtime.set_recovery(g_hb);
      if (g_rendezvous_port != 0) {
        runtime.set_orphan_handler([&](NodeRuntime& self) {
          try {
            const std::uint32_t epoch = self.bump_parent_epoch();
            Fd fd = orphan_reconnect(
                g_rendezvous_port,
                OrphanHello{id, topology.subtree_leaf_ranks(id)});
            auto fresh_raw = std::make_shared<FdLink>(fd.get(), &self.metrics());
            std::shared_ptr<Link> fresh = fresh_raw;
            if (gate_up) {
              set_socket_buffers(fd.get(), fc_socket_bytes());
              gate_up->reset();
              auto wrapped = std::make_shared<FlowControlledLink>(
                  fresh_raw, gate_up, g_fc, &self.metrics(),
                  /*fail_fast_throws=*/false, self.tenants());
              self.register_fc_link(wrapped);
              fresh = wrapped;
              self.set_parent_granter(fc_frame_granter(fresh_raw));
            }
            self.set_parent_link(std::make_unique<SharedLink>(std::move(fresh)));
            readers.push_back(start_fd_reader(fd.get(), self.inbox(),
                                              Origin::kParent, epoch,
                                              &self.metrics(),
                                              CreditSink{gate_up, 0}));
            adopted_fds.push_back(std::move(fd));
            return true;
          } catch (const std::exception& error) {
            TBON_WARN("node " << id << " re-adoption failed: " << error.what());
            return false;
          }
        });
      }
      readers.push_back(start_fd_reader(parent_fd, runtime.inbox(), Origin::kParent,
                                        0, &runtime.metrics(),
                                        CreditSink{gate_up, 0}));
      for (std::uint32_t slot = 0; slot < spawned.fds.size(); ++slot) {
        const int fd = spawned.fds[slot].get();
        std::shared_ptr<CreditGate> gate_down;
        auto child_raw = std::make_shared<FdLink>(fd, &runtime.metrics());
        if (g_fc.enabled) {
          set_socket_buffers(fd, fc_socket_bytes());
          gate_down = std::make_shared<CreditGate>(g_fc.window());
          gate_down->set_drain_hook(fc_wake_hook(runtime.inbox()));
          auto down = std::make_shared<FlowControlledLink>(
              maybe_coalesce(child_raw, g_batching, &runtime.metrics(),
                             gate_down, flusher),
              gate_down, g_fc, &runtime.metrics(),
              /*fail_fast_throws=*/false, runtime.tenants());
          runtime.register_fc_link(down);
          runtime.add_child_link(std::make_unique<SharedLink>(down));
          runtime.set_child_granter(slot, fc_frame_granter(child_raw));
        } else {
          runtime.add_child_link(std::make_unique<SharedLink>(maybe_coalesce(
              child_raw, g_batching, &runtime.metrics(), nullptr, flusher)));
        }
        readers.push_back(start_fd_reader(fd, runtime.inbox(), Origin::kChild, slot,
                                          &runtime.metrics(),
                                          CreditSink{gate_down, 0}));
      }
      runtime.run();
    }

    // Reap our direct children, then drop our fds so readers see EOF.
    for (const int pid : spawned.pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    spawned.fds.clear();
    readers.clear();  // join
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tbon child process %u failed: %s\n", id, error.what());
    std::fflush(stderr);
    std::_Exit(1);
  }
  std::_Exit(0);
}

void Network::adopt_process_orphan(Fd connection, const OrphanHello& hello) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    // Dropping the connection EOFs the orphan, which then gives up and dies;
    // its subtree drains through the normal teardown path.
    if (shutdown_requested_) return;
  }
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  NodeRuntime& root = *runtimes_[topology_.root()];
  const std::uint32_t slot = root.reserve_child_slot();
  const int raw = connection.release();
  TBON_INFO("front-end adopting orphan node " << hello.node << " at slot " << slot);
  if (hello.node < current_parent_.size()) {
    current_parent_[hello.node] = topology_.root();
  }
  // Queue the wiring marker before starting the reader: the root's inbox is
  // FIFO, so the slot is wired before any data frame from the orphan.
  std::shared_ptr<CreditGate> gate_down;
  if (fc_options_.enabled) {
    set_socket_buffers(raw, std::clamp<std::size_t>(
        std::size_t{fc_options_.window()} * 8192, std::size_t{256} << 10,
        std::size_t{4} << 20));
    auto child_raw = std::make_shared<FdLink>(raw, &root.metrics());
    gate_down = std::make_shared<CreditGate>(fc_options_.window());
    gate_down->set_drain_hook(fc_wake_hook(root.inbox()));
    auto down = std::make_shared<FlowControlledLink>(
        child_raw, gate_down, fc_options_, &root.metrics(),
        /*fail_fast_throws=*/false, root.tenants());
    root.register_fc_link(down);
    root.set_child_granter(slot, fc_frame_granter(child_raw));
    root.request_adopt(slot, hello.ranks, std::make_unique<SharedLink>(down));
  } else {
    root.request_adopt(slot, hello.ranks,
                       std::make_unique<FdLink>(raw, &root.metrics()));
  }
  reader_threads_.push_back(
      start_fd_reader(raw, root.inbox(), Origin::kChild, slot, &root.metrics(),
                      CreditSink{gate_down, 0}));
  process_child_fds_.push_back(raw);
  ++adoptions_;
  adoption_cv_.notify_all();
}

std::unique_ptr<Network> Network::create_process_impl(const NetworkOptions& options) {
  if (!options.backend_main) {
    throw ProtocolError("NetworkOptions::backend_main is required in process mode");
  }
  const std::function<void(BackEnd&)>& backend_main = options.backend_main;
  g_tcp_edges = options.tcp_edges;
  g_hb = options.recovery.heartbeat();
  g_fault_plan = options.recovery.fault_plan;
  g_fc = options.flow_control;
  g_exec = options.execution;
  g_batching = options.batching;
  auto network = std::unique_ptr<Network>(new Network(options.topology));
  Network& net = *network;
  net.process_mode_ = true;
  net.recovery_ = options.recovery;
  net.fc_options_ = options.flow_control;
  net.batching_ = options.batching;
  // The deadline-service thread starts lazily on the first attach, which
  // happens only after every fork below (threads don't survive fork).
  net.batch_flusher_ = std::make_shared<BatchFlusher>();
  const Topology& topo = net.topology_;

  if (net.recovery_.auto_readopt) {
    // The listener binds now so the port is known to every forked child;
    // the acceptor thread starts only after all forks (threads don't
    // survive fork).
    net.rendezvous_ = std::make_unique<RendezvousServer>();
    g_rendezvous_port = net.rendezvous_->port();
    g_rendezvous_listener_fd = net.rendezvous_->listener_fd();
  } else {
    g_rendezvous_port = 0;
    g_rendezvous_listener_fd = -1;
  }

  net.root_delegate_ = std::make_unique<RootDelegate>(net);
  net.runtimes_.resize(topo.num_nodes());
  net.runtimes_[topo.root()] =
      std::make_unique<NodeRuntime>(topo, topo.root(), net.registry_,
                                    net.root_delegate_.get());
  NodeRuntime& root = *net.runtimes_[topo.root()];
  if (!g_fault_plan.empty()) {
    net.injector_ = std::make_shared<FaultInjector>(g_fault_plan);
    root.set_fault_injector(net.injector_);
  }
  if (g_hb.enabled()) root.set_recovery(g_hb);
  if (g_fc.enabled) root.set_flow_control(g_fc);
  root.set_execution(g_exec);

  SpawnedChildren spawned = spawn_children(topo, topo.root(), -1, backend_main);
  for (std::uint32_t slot = 0; slot < spawned.fds.size(); ++slot) {
    const int fd = spawned.fds[slot].get();
    std::shared_ptr<CreditGate> gate_down;
    auto child_raw = std::make_shared<FdLink>(fd, &root.metrics());
    if (g_fc.enabled) {
      set_socket_buffers(fd, fc_socket_bytes());
      gate_down = std::make_shared<CreditGate>(g_fc.window());
      gate_down->set_drain_hook(fc_wake_hook(root.inbox()));
      auto down = std::make_shared<FlowControlledLink>(
          maybe_coalesce(child_raw, g_batching, &root.metrics(), gate_down,
                         net.batch_flusher_),
          gate_down, g_fc, &root.metrics(), /*fail_fast_throws=*/false,
          root.tenants());
      root.register_fc_link(down);
      root.add_child_link(std::make_unique<SharedLink>(down));
      root.set_child_granter(slot, fc_frame_granter(child_raw));
    } else {
      root.add_child_link(std::make_unique<SharedLink>(maybe_coalesce(
          child_raw, g_batching, &root.metrics(), nullptr, net.batch_flusher_)));
    }
    net.reader_threads_.push_back(
        start_fd_reader(fd, root.inbox(), Origin::kChild, slot, &root.metrics(),
                        CreditSink{gate_down, 0}));
  }
  for (Fd& fd : spawned.fds) net.process_child_fds_.push_back(fd.release());
  net.child_pids_ = std::move(spawned.pids);

  net.front_end_ = std::unique_ptr<FrontEnd>(new FrontEnd(net));
  net.next_dynamic_rank_ = static_cast<std::uint32_t>(topo.num_leaves());
  if (net.rendezvous_) {
    net.rendezvous_->start([&net](Fd connection, const OrphanHello& hello) {
      net.adopt_process_orphan(std::move(connection), hello);
    });
  }
  net.threads_.emplace_back([&root] { root.run(); });
  net.start_telemetry(options.telemetry);
  return network;
}

std::unique_ptr<Network> create_process_network(const Topology& topology,
                                                BackendMain backend_main,
                                                EdgeTransport transport,
                                                RecoveryOptions recovery) {
  NetworkOptions options;
  options.mode = NetworkMode::kProcess;
  options.topology = topology;
  options.recovery = std::move(recovery);
  options.backend_main = std::move(backend_main);
  options.tcp_edges = transport == EdgeTransport::kTcp;
  return Network::create(std::move(options));
}

}  // namespace tbon
