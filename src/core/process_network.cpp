#include "core/process_network.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/delegates.hpp"
#include "core/fd_link.hpp"
#include "transport/fd.hpp"
#include "transport/tcp.hpp"

namespace tbon {
namespace {
// Edge transport for the process tree being spawned.  Set once in
// create_process before any fork, so every descendant inherits it.
bool g_tcp_edges = false;
}  // namespace

struct Network::SpawnedChildren {
  std::vector<Fd> fds;      ///< this process's end of each child edge
  std::vector<int> pids;
};

Network::SpawnedChildren Network::spawn_children(
    const Topology& topology, NodeId id, int my_parent_fd,
    const std::function<void(BackEnd&)>& backend_main) {
  SpawnedChildren spawned;
  const auto& children = topology.node(id).children;
  spawned.fds.reserve(children.size());
  spawned.pids.reserve(children.size());

  // Parent-side buffered output would be duplicated into children.
  std::fflush(stdout);
  std::fflush(stderr);

  for (const NodeId child : children) {
    if (g_tcp_edges) {
      // MRNet's wire: a loopback TCP connection per edge.  The parent
      // listens on an ephemeral port; the child connects after the fork.
      TcpListener listener;
      const std::uint16_t port = listener.port();
      const pid_t pid = ::fork();
      if (pid < 0) throw TransportError("fork failed");
      if (pid == 0) {
        listener.close();  // the child only connects
        for (Fd& sibling : spawned.fds) sibling.reset();
        if (my_parent_fd >= 0) ::close(my_parent_fd);
        Fd connection = tcp_connect(port);
        run_child_process(topology, child, connection.release(), backend_main);
        // unreachable
      }
      spawned.fds.push_back(listener.accept());
      spawned.pids.push_back(pid);
    } else {
      auto [mine, theirs] = make_socketpair();
      const pid_t pid = ::fork();
      if (pid < 0) throw TransportError("fork failed");
      if (pid == 0) {
        // In the child: drop every fd that belongs to other edges, keeping
        // only our end of our own socketpair.
        mine.reset();
        for (Fd& sibling : spawned.fds) sibling.reset();
        if (my_parent_fd >= 0) ::close(my_parent_fd);
        run_child_process(topology, child, theirs.release(), backend_main);
        // unreachable
      }
      theirs.reset();
      spawned.fds.push_back(std::move(mine));
      spawned.pids.push_back(pid);
    }
  }
  return spawned;
}

void Network::run_child_process(const Topology& topology, NodeId id, int parent_fd,
                                const std::function<void(BackEnd&)>& backend_main) {
  try {
    SpawnedChildren spawned = spawn_children(topology, id, parent_fd, backend_main);

    std::vector<std::jthread> readers;
    if (topology.is_leaf(id)) {
      const auto rank = topology.leaf_rank(id);
      // The back-end handle and the runtime share one frame-atomic link.
      auto shared_up = std::make_shared<FdLink>(parent_fd);
      BackEnd backend(rank, std::make_unique<SharedLink>(shared_up));
      BackEndDelegate delegate(backend);
      NodeRuntime runtime(topology, id, FilterRegistry::instance(), &delegate);
      runtime.set_parent_link(std::make_unique<SharedLink>(shared_up));
      readers.push_back(start_fd_reader(parent_fd, runtime.inbox(), Origin::kParent, 0));
      {
        std::jthread service([&runtime] { runtime.run(); });
        backend_main(backend);
        // The runtime exits when the shutdown handshake completes.
      }
    } else {
      NodeRuntime runtime(topology, id, FilterRegistry::instance(), nullptr);
      runtime.set_parent_link(std::make_unique<FdLink>(parent_fd));
      readers.push_back(start_fd_reader(parent_fd, runtime.inbox(), Origin::kParent, 0));
      for (std::uint32_t slot = 0; slot < spawned.fds.size(); ++slot) {
        const int fd = spawned.fds[slot].get();
        runtime.add_child_link(std::make_unique<FdLink>(fd));
        readers.push_back(start_fd_reader(fd, runtime.inbox(), Origin::kChild, slot));
      }
      runtime.run();
    }

    // Reap our direct children, then drop our fds so readers see EOF.
    for (const int pid : spawned.pids) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    spawned.fds.clear();
    readers.clear();  // join
  } catch (const std::exception& error) {
    std::fprintf(stderr, "tbon child process %u failed: %s\n", id, error.what());
    std::fflush(stderr);
    std::_Exit(1);
  }
  std::_Exit(0);
}

std::unique_ptr<Network> Network::create_process(
    const Topology& topology, const std::function<void(BackEnd&)>& backend_main,
    bool tcp_edges) {
  if (topology.num_leaves() == 0 || topology.is_leaf(topology.root())) {
    throw TopologyError("a network needs at least one back-end distinct from the root");
  }
  g_tcp_edges = tcp_edges;
  auto network = std::unique_ptr<Network>(new Network(topology));
  Network& net = *network;
  net.process_mode_ = true;
  const Topology& topo = net.topology_;

  net.root_delegate_ = std::make_unique<RootDelegate>(net);
  net.runtimes_.resize(topo.num_nodes());
  net.runtimes_[topo.root()] =
      std::make_unique<NodeRuntime>(topo, topo.root(), net.registry_,
                                    net.root_delegate_.get());
  NodeRuntime& root = *net.runtimes_[topo.root()];

  SpawnedChildren spawned = spawn_children(topo, topo.root(), -1, backend_main);
  for (std::uint32_t slot = 0; slot < spawned.fds.size(); ++slot) {
    const int fd = spawned.fds[slot].get();
    root.add_child_link(std::make_unique<FdLink>(fd));
    net.reader_threads_.push_back(
        start_fd_reader(fd, root.inbox(), Origin::kChild, slot));
  }
  for (Fd& fd : spawned.fds) net.process_child_fds_.push_back(fd.release());
  net.child_pids_ = std::move(spawned.pids);

  net.front_end_ = std::unique_ptr<FrontEnd>(new FrontEnd(net));
  net.threads_.emplace_back([&root] { root.run(); });
  return network;
}

std::unique_ptr<Network> create_process_network(const Topology& topology,
                                                BackendMain backend_main,
                                                EdgeTransport transport) {
  return Network::create_process(topology, backend_main,
                                 transport == EdgeTransport::kTcp);
}

}  // namespace tbon
