#include "core/network.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/delegates.hpp"
#include "core/fd_link.hpp"

namespace tbon {

using namespace std::chrono_literals;

namespace {

/// Drain hook for a sender-side CreditGate: wake the sender's event loop (a
/// no-op marker envelope) so registered pending rings get pumped right after
/// a grant lands.  try_push — a full inbox is an awake inbox.
std::function<void()> fc_wake_hook(InboxPtr inbox) {
  return [inbox = std::move(inbox), marker = make_attach_marker_packet()] {
    inbox->try_push(Envelope{Origin::kParent, 0, marker});
  };
}

/// Granter for threaded channels: credits go straight into the shared gate.
std::function<void(std::uint32_t)> fc_direct_granter(
    std::shared_ptr<CreditGate> gate) {
  return [gate = std::move(gate)](std::uint32_t n) { gate->grant(n); };
}

}  // namespace

// ---- dynamic back-ends --------------------------------------------------------

/// Service loop for a back-end attached after instantiation.  Implements the
/// leaf subset of the control protocol (stream announcements, shutdown
/// handshake, peer delivery) without a topology slot.
class Network::DynamicLeafService {
 public:
  DynamicLeafService(std::uint32_t rank, FilterRegistry& registry)
      : registry_(registry),
        inbox_(std::make_shared<Inbox>(4096)),
        backend_(new BackEnd(rank, nullptr)),
        delegate_(*backend_) {}

  void start() {
    thread_ = std::jthread([this] { run(); });
  }

  const InboxPtr& inbox() const noexcept { return inbox_; }
  BackEnd& backend() noexcept { return *backend_; }
  void set_up_link(LinkPtr link) { backend_->up_link_ = std::move(link); }

 private:
  void run() {
    while (auto envelope = inbox_->pop()) {
      if (!envelope->packet) break;  // parent gone
      const Packet& packet = *envelope->packet;
      if (packet.stream_id() != kControlStream) {
        delegate_.on_downstream(envelope->packet);
        continue;
      }
      switch (packet.tag()) {
        case kTagNewStream:
          delegate_.on_stream_known(StreamSpec::from_packet(packet));
          break;
        case kTagDeleteStream:
          delegate_.on_stream_deleted(static_cast<std::uint32_t>(packet.get_i64(0)));
          break;
        case kTagPeerMessage:
          delegate_.on_peer_message(unwrap_peer_packet(packet));
          break;
        case kTagLoadFilter:
          try {
            registry_.load_library(packet.get_str(0));
          } catch (const FilterError& error) {
            TBON_ERROR("dynamic back-end: " << error.what());
          }
          break;
        case kTagShutdown:
          delegate_.on_shutdown();
          backend_->up_link_->send(make_shutdown_ack_packet());
          backend_->up_link_->close();
          return;
        default:
          TBON_WARN("dynamic back-end dropping control tag " << packet.tag());
      }
    }
    delegate_.on_shutdown();
  }

  FilterRegistry& registry_;
  InboxPtr inbox_;
  std::unique_ptr<BackEnd> backend_;
  BackEndDelegate delegate_;
  std::jthread thread_;
};

BackEnd& Network::dynamic_backend(std::size_t index) {
  return dynamic_leaves_[index]->backend();
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
BackEnd& Network::attach_backend(NodeId parent) {
  // Deprecated forwarder; FrontEnd::reconfigure(TopologyDelta().add_leaf())
  // is the supported spelling (see docs/api.md).
  return attach_backend_at(parent);
}
#pragma GCC diagnostic pop

BackEnd& Network::attach_backend_at(NodeId parent) {
  if ((process_mode_ || remote_mode_) && parent != topology_.root()) {
    // Only the root runtime shares the front-end's address space in these
    // modes, so a dynamic leaf service can splice in nowhere else.
    throw ProtocolError(
        "dynamic back-ends attach at the root in process/remote mode");
  }
  if (parent >= topology_.num_nodes()) throw ProtocolError("parent id out of range");
  if (topology_.is_leaf(parent)) {
    throw ProtocolError("cannot attach a back-end under another back-end");
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_requested_) throw ProtocolError("network is shutting down");
  }

  NodeRuntime& runtime = *runtimes_[parent];
  if (runtime.is_dead()) throw ProtocolError("parent node is dead");
  const std::uint32_t slot = runtime.reserve_child_slot();

  std::lock_guard<std::mutex> lock(dynamic_mutex_);
  const std::uint32_t rank = next_dynamic_rank_++;
  auto service = std::make_unique<DynamicLeafService>(rank, registry_);
  std::shared_ptr<Link> up =
      std::make_shared<InprocLink>(runtime.inbox(), Origin::kChild, slot);
  if (fc_options_.enabled) {
    // Upstream direction only: the lightweight leaf service has no event
    // loop consumption hook, so the parent->service direction stays
    // uncontrolled (it carries control replay and modest downstream fan-out).
    auto gate = std::make_shared<CreditGate>(fc_options_.window());
    up = std::make_shared<FlowControlledLink>(
        std::move(up), gate, fc_options_, /*metrics=*/nullptr,
        /*fail_fast_throws=*/true, runtime.tenants());
    runtime.set_child_granter(slot, fc_direct_granter(gate));
  }
  // The handle sends through a relink seam so planned moves can swap the
  // upstream edge underneath the application thread.
  auto relink = std::make_shared<RelinkableLink>(std::move(up));
  service->set_up_link(std::make_unique<SharedLink>(relink));
  service->start();
  runtime.request_attach(
      slot, rank, std::make_unique<InprocLink>(service->inbox(), Origin::kParent, 0));
  // Teach every ancestor along the *effective* (post-move) topology which
  // child slot now leads to the new rank, so peer messages route from
  // anywhere in the tree.
  {
    std::lock_guard<std::mutex> recovery_lock(recovery_mutex_);
    for (NodeId node = parent; node != topology_.root();) {
      const NodeId ancestor = current_parent_[node];
      const auto edge = edge_slots_.find({ancestor, node});
      if (edge != edge_slots_.end() && ancestor < runtimes_.size() &&
          runtimes_[ancestor]) {
        runtimes_[ancestor]->request_route(rank, edge->second);
      }
      node = ancestor;
    }
  }
  dyn_leaf_state_[rank] = DynamicLeafState{parent, slot, service.get(), relink};
  dynamic_leaves_.push_back(std::move(service));
  return dynamic_leaves_.back()->backend();
}

// ---- Stream -----------------------------------------------------------------

Stream::Stream(Network& network, StreamSpec spec)
    : network_(network), spec_(std::move(spec)) {}

void Stream::send(std::int32_t tag, std::string_view format,
                  std::vector<DataValue> values) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  network_.send_to_root(
      Packet::make(spec_.id, tag, kFrontEndRank, format, std::move(values)));
}

void Stream::send(std::int32_t tag, BufferView payload) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  network_.send_to_root(
      Packet::make_view(spec_.id, tag, kFrontEndRank, std::move(payload)));
}

void Stream::send(std::int32_t tag, std::vector<std::uint8_t> payload) {
  // Deprecated forwarder: re-own the bytes once, then hand off a view.
  if (!payload.empty()) CopyStats::note(payload.size());
  Bytes bytes(reinterpret_cast<const std::byte*>(payload.data()),
              reinterpret_cast<const std::byte*>(payload.data()) + payload.size());
  send(tag, BufferView(std::move(bytes)));
}

PacketPtr Stream::make_packet(std::int32_t tag, std::string_view format,
                              std::vector<DataValue> values) const {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  return Packet::make(spec_.id, tag, kFrontEndRank, format, std::move(values));
}

void Stream::send_batch(std::span<const PacketPtr> packets) {
  for (const PacketPtr& packet : packets) {
    if (!packet) throw ProtocolError("send_batch: null packet");
    if (packet->stream_id() != spec_.id) {
      throw ProtocolError("send_batch: packet for stream " +
                          std::to_string(packet->stream_id()) +
                          " sent on stream " + std::to_string(spec_.id));
    }
    if (packet->tag() < kFirstAppTag) {
      throw ProtocolError("application tags must be >= kFirstAppTag");
    }
  }
  network_.send_batch_to_root(packets);
}

RecvResult Stream::make_result(std::optional<PacketPtr> popped) {
  if (popped) return RecvResult(std::move(*popped));
  if (results_.closed()) {
    // Drain-then-fail queues only report empty-and-closed once every buffered
    // packet has been handed out, so a terminal status means "truly done".
    return RecvResult(deleted_.load(std::memory_order_acquire)
                          ? RecvStatus::kStreamClosed
                          : RecvStatus::kShutdown);
  }
  return RecvResult(RecvStatus::kTimeout);
}

RecvResult Stream::recv() { return make_result(results_.pop()); }

RecvResult Stream::recv_for(std::chrono::milliseconds timeout) {
  return make_result(results_.pop_for(timeout));
}

RecvResult Stream::recv_until(std::chrono::steady_clock::time_point deadline) {
  return make_result(results_.pop_until(deadline));
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
RecvResult Stream::try_recv() { return make_result(results_.try_pop()); }
#pragma GCC diagnostic pop

// ---- FrontEnd ---------------------------------------------------------------

Stream& FrontEnd::open_stream(StreamSpec spec) {
  std::sort(spec.endpoints.begin(), spec.endpoints.end());

  // Validate filter names eagerly so misconfigurations fail at the call site
  // rather than deep inside a communication process.
  FilterRegistry& registry = network_.registry();
  for (const auto& name : {spec.up_transform, spec.down_transform}) {
    if (!registry.has_transform(name)) throw FilterError("unknown transform filter '" + name + "'");
  }
  if (!registry.has_sync(spec.up_sync)) throw FilterError("unknown sync filter '" + spec.up_sync + "'");
  for (const std::uint32_t rank : spec.endpoints) {
    if (rank >= network_.num_backends()) {
      throw ProtocolError("endpoint rank " + std::to_string(rank) + " out of range");
    }
  }

  // Resolve the tenant's budget from the roster and pin it into the spec —
  // the announcement is what every node enforces, so the budget must ride it.
  if (spec.priority_class == Priority::kControl) spec.priority_class = Priority::kHigh;
  if (!spec.tenant_name.empty()) {
    if (const TenantOptions* budget = network_.tenancy_.find(spec.tenant_name)) {
      spec.tenant_credit_share = budget->credit_share();
      spec.tenant_max_inflight_bytes = budget->max_inflight_bytes();
      spec.tenant_priority_ceiling = budget->priority_ceiling();
    }
    if (spec.priority_class < spec.tenant_priority_ceiling) {
      spec.priority_class = spec.tenant_priority_ceiling;  // clamp to ceiling
    }
  }

  std::unique_ptr<Stream> stream;
  Stream* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spec.id = next_stream_id_++;
    stream = std::unique_ptr<Stream>(new Stream(network_, spec));
    raw = stream.get();
    streams_.emplace(spec.id, std::move(stream));
    if (!spec.topic_path.empty() && !topic_ids_.count(spec.topic_path)) {
      topic_ids_.emplace(spec.topic_path, spec.id);
    }
  }
  network_.send_to_root(spec.to_packet());
  return *raw;
}

Stream& FrontEnd::new_stream(StreamOptions options) {
  // Deprecated forwarder: the StreamOptions fields map 1:1 onto the untopiced
  // subset of StreamSpec (see the migration table in docs/api.md).
  StreamSpec spec;
  spec.endpoints = std::move(options.endpoints);
  spec.up_transform = std::move(options.up_transform);
  spec.up_sync = std::move(options.up_sync);
  spec.down_transform = std::move(options.down_transform);
  spec.params = options.params.to_wire();
  return open_stream(std::move(spec));
}

Stream& FrontEnd::publish(const std::string& topic, std::int32_t tag,
                          std::string_view format, std::vector<DataValue> values) {
  if (topic.empty()) throw ProtocolError("publish needs a non-empty topic");
  Stream* stream = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = topic_ids_.find(topic);
    if (it != topic_ids_.end()) stream = streams_.at(it->second).get();
  }
  if (stream == nullptr) stream = &open_stream(StreamSpec::topic(topic));
  stream->send(tag, format, std::move(values));
  return *stream;
}

void FrontEnd::subscribe(const std::string& prefix) {
  network_.send_to_root(make_subscribe_packet(kFrontEndRank, prefix, true));
}

void FrontEnd::unsubscribe(const std::string& prefix) {
  network_.send_to_root(make_subscribe_packet(kFrontEndRank, prefix, false));
}

std::size_t FrontEnd::subscriber_count(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(network_.subs_mutex_);
  std::set<std::uint32_t> ranks;
  for (const auto& [prefix, subscribers] : network_.root_subs_) {
    if (topic_matches(prefix, topic)) ranks.insert(subscribers.begin(), subscribers.end());
  }
  return ranks.size();
}

bool FrontEnd::wait_subscribers(const std::string& topic, std::size_t count,
                                std::chrono::milliseconds timeout) {
  const auto matched = [&] {
    std::set<std::uint32_t> ranks;
    for (const auto& [prefix, subscribers] : network_.root_subs_) {
      if (topic_matches(prefix, topic)) ranks.insert(subscribers.begin(), subscribers.end());
    }
    return ranks.size();
  };
  std::unique_lock<std::mutex> lock(network_.subs_mutex_);
  return network_.subs_cv_.wait_for(lock, timeout, [&] { return matched() >= count; });
}

void FrontEnd::delete_stream(std::uint32_t stream_id) {
  network_.send_to_root(make_delete_stream_packet(stream_id));
}

void FrontEnd::load_filter_library(const std::string& path) {
  // Load synchronously into the local registry first so a new_stream issued
  // right after this call validates; then announce tree-wide (needed in
  // process mode, idempotent in threaded mode).
  network_.registry().load_library(path);
  network_.send_to_root(make_load_filter_packet(path));
}

Stream& FrontEnd::stream(std::uint32_t stream_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) throw ProtocolError("unknown stream " + std::to_string(stream_id));
  return *it->second;
}

AnyRecvResult FrontEnd::recv_any() { return recv_any_impl(std::nullopt); }

AnyRecvResult FrontEnd::recv_any_for(std::chrono::milliseconds timeout) {
  return recv_any_impl(std::chrono::steady_clock::now() + timeout);
}

AnyRecvResult FrontEnd::recv_any_until(std::chrono::steady_clock::time_point deadline) {
  return recv_any_impl(deadline);
}

AnyRecvResult FrontEnd::recv_any_impl(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  // Scan-then-wait: the ready_streams_ hints are advisory wakeups (they may
  // be evicted under overflow, and a concurrent Stream::recv() may have
  // consumed the hinted packet), so every wake re-scans all streams.  The
  // scan also guarantees progress when packets arrived before this call.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& [id, stream] : streams_) {
        if (auto popped = stream->results_.try_pop()) {
          return AnyRecvResult{id, RecvResult(std::move(*popped))};
        }
      }
    }
    const auto hint = deadline ? network_.ready_streams_.pop_until(*deadline)
                               : network_.ready_streams_.pop();
    if (!hint) {
      // A packet-bearing push enqueues its hint before the queue can close,
      // and closed queues drain before reporting empty — so nullopt here
      // means "no packet is coming" (shutdown) or the deadline passed.
      if (network_.ready_streams_.closed()) {
        return AnyRecvResult{0, RecvResult(RecvStatus::kShutdown)};
      }
      return AnyRecvResult{0, RecvResult(RecvStatus::kTimeout)};
    }
  }
}

TreeMetricsSnapshot FrontEnd::metrics() const {
  if (!network_.collector_) {
    throw ProtocolError(
        "telemetry is disabled; create the network with TelemetryOptions::enabled");
  }
  return network_.collector_->snapshot();
}

std::string FrontEnd::metrics_json() const { return metrics().to_json(); }

ReconfigResult FrontEnd::reconfigure(TopologyDelta delta) {
  return network_.reconfigure(std::move(delta));
}

std::optional<ReconfigResult> FrontEnd::maybe_rebalance() {
  const ReconfigOptions& options = network_.reconfig_;
  {
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    const auto now = std::chrono::steady_clock::now();
    if (last_rebalance_ != std::chrono::steady_clock::time_point{} &&
        now - last_rebalance_ < std::chrono::milliseconds(options.cooldown_ms)) {
      return std::nullopt;
    }
  }
  const std::vector<NodeLoad> loads = network_.node_loads();
  std::optional<TopologyDelta> delta = options.policy->propose(loads, options);
  if (!delta || delta->empty()) return std::nullopt;
  {
    // Stamp before applying: a failed rebalance still burns the cooldown so
    // a persistently saturated gauge cannot turn this into a retry hot loop.
    std::lock_guard<std::mutex> lock(rebalance_mutex_);
    last_rebalance_ = std::chrono::steady_clock::now();
  }
  return network_.reconfigure(std::move(*delta));
}

// ---- BackEnd ----------------------------------------------------------------

void BackEnd::wait_stream_known(std::uint32_t stream_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool known = stream_known_cv_.wait_for(lock, 10s, [&] {
    return known_streams_.count(stream_id) != 0 || shutting_down_;
  });
  if (!known || known_streams_.count(stream_id) == 0) {
    throw ProtocolError("stream " + std::to_string(stream_id) +
                        " never announced to back-end " + std::to_string(rank_));
  }
}

// The reconfiguration fence: pause_sends() returns only once it holds
// send_mutex_, i.e. once any in-flight send has fully handed its packet to
// the (old) upstream link — after that, everything the application sent is
// ahead of the detach/quiesce marker in the parent's FIFO inbox, and nothing
// new can slip onto the old edge until resume_sends().
void BackEnd::pause_sends() {
  std::lock_guard<std::mutex> lock(send_mutex_);
  sends_paused_ = true;
}

void BackEnd::resume_sends() {
  {
    std::lock_guard<std::mutex> lock(send_mutex_);
    sends_paused_ = false;
  }
  send_resumed_cv_.notify_all();
}

void BackEnd::wait_send_allowed(std::unique_lock<std::mutex>& lock) {
  send_resumed_cv_.wait(lock, [&] { return !sends_paused_; });
}

void BackEnd::send(std::uint32_t stream_id, std::int32_t tag, std::string_view format,
                   std::vector<DataValue> values) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  wait_stream_known(stream_id);
  std::unique_lock<std::mutex> lock(send_mutex_);
  wait_send_allowed(lock);
  up_link_->send(Packet::make(stream_id, tag, rank_, format, std::move(values)));
}

void BackEnd::send(std::uint32_t stream_id, std::int32_t tag, BufferView payload) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  wait_stream_known(stream_id);
  std::unique_lock<std::mutex> lock(send_mutex_);
  wait_send_allowed(lock);
  up_link_->send(Packet::make_view(stream_id, tag, rank_, std::move(payload)));
}

void BackEnd::send(std::uint32_t stream_id, std::int32_t tag,
                   std::vector<std::uint8_t> payload) {
  if (!payload.empty()) CopyStats::note(payload.size());
  Bytes bytes(reinterpret_cast<const std::byte*>(payload.data()),
              reinterpret_cast<const std::byte*>(payload.data()) + payload.size());
  send(stream_id, tag, BufferView(std::move(bytes)));
}

PacketPtr BackEnd::make_packet(std::uint32_t stream_id, std::int32_t tag,
                               std::string_view format,
                               std::vector<DataValue> values) const {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  return Packet::make(stream_id, tag, rank_, format, std::move(values));
}

void BackEnd::send_batch(std::uint32_t stream_id, std::span<const PacketPtr> packets) {
  if (packets.empty()) return;
  for (const PacketPtr& packet : packets) {
    if (!packet) throw ProtocolError("send_batch: null packet");
    if (packet->stream_id() != stream_id) {
      throw ProtocolError("send_batch: packet for stream " +
                          std::to_string(packet->stream_id()) +
                          " sent on stream " + std::to_string(stream_id));
    }
    if (packet->tag() < kFirstAppTag) {
      throw ProtocolError("application tags must be >= kFirstAppTag");
    }
  }
  wait_stream_known(stream_id);
  std::unique_lock<std::mutex> lock(send_mutex_);
  wait_send_allowed(lock);
  up_link_->send_batch(packets);
}

void BackEnd::subscribe(const std::string& prefix) {
  std::unique_lock<std::mutex> lock(send_mutex_);
  wait_send_allowed(lock);
  up_link_->send(make_subscribe_packet(rank_, prefix, true));
}

void BackEnd::unsubscribe(const std::string& prefix) {
  std::unique_lock<std::mutex> lock(send_mutex_);
  wait_send_allowed(lock);
  up_link_->send(make_subscribe_packet(rank_, prefix, false));
}

void BackEnd::send_to(std::uint32_t dst_rank, std::int32_t tag, std::string_view format,
                      std::vector<DataValue> values) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  const PacketPtr inner =
      Packet::make(kControlStream, tag, rank_, format, std::move(values));
  std::unique_lock<std::mutex> lock(send_mutex_);
  wait_send_allowed(lock);
  up_link_->send(make_peer_packet(dst_rank, *inner));
}

namespace {

/// Shared recv plumbing for the two back-end queues: a closed queue only
/// reads empty once drained, and back-end queues close exactly on shutdown.
RecvResult backend_result(BoundedQueue<PacketPtr>& queue,
                          std::optional<PacketPtr> popped) {
  if (popped) return RecvResult(std::move(*popped));
  return RecvResult(queue.closed() ? RecvStatus::kShutdown : RecvStatus::kTimeout);
}

}  // namespace

RecvResult BackEnd::recv() { return backend_result(downstream_, downstream_.pop()); }

RecvResult BackEnd::recv_for(std::chrono::milliseconds timeout) {
  return backend_result(downstream_, downstream_.pop_for(timeout));
}

RecvResult BackEnd::try_recv() {
  return backend_result(downstream_, downstream_.try_pop());
}

RecvResult BackEnd::recv_peer() {
  return backend_result(peer_messages_, peer_messages_.pop());
}

RecvResult BackEnd::recv_peer_for(std::chrono::milliseconds timeout) {
  return backend_result(peer_messages_, peer_messages_.pop_for(timeout));
}

RecvResult BackEnd::try_recv_peer() {
  return backend_result(peer_messages_, peer_messages_.try_pop());
}

bool BackEnd::shutting_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutting_down_;
}

// ---- Network ----------------------------------------------------------------

Network::Network(const Topology& topology) : topology_(topology) {
  current_parent_.resize(topology_.num_nodes());
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    current_parent_[id] = topology_.is_root(id) ? id : topology_.node(id).parent;
    const auto& children = topology_.node(id).children;
    for (std::uint32_t slot = 0; slot < children.size(); ++slot) {
      edge_slots_[{id, children[slot]}] = slot;
    }
  }
}

std::unique_ptr<Network> Network::create(NetworkOptions options) {
  const Topology& topology = options.topology;
  if (topology.num_leaves() == 0 || topology.is_leaf(topology.root())) {
    throw TopologyError("a network needs at least one back-end distinct from the root");
  }
  if (options.telemetry.enabled && options.telemetry.interval_ms <= 0) {
    throw ProtocolError("TelemetryOptions::interval_ms must be positive");
  }
  switch (options.mode) {
    case NetworkMode::kThreaded:
    case NetworkMode::kProcess:
    case NetworkMode::kRemote: {
      auto network = options.mode == NetworkMode::kThreaded
                         ? create_threaded_impl(options)
                         : options.mode == NetworkMode::kProcess
                               ? create_process_impl(options)
                               : create_remote_impl(options);
      // The roster is a front-end-side lookup (open_stream resolves budgets
      // into the announcement), so storing it after instantiation is safe:
      // no application stream can open before create() returns.
      network->tenancy_ = std::move(options.tenancy);
      network->reconfig_ = std::move(options.reconfig);
      if (!network->reconfig_.policy) {
        network->reconfig_.policy = std::make_shared<LoadBalancedPolicy>();
      }
      return network;
    }
  }
  throw ProtocolError("unknown NetworkMode");
}

std::unique_ptr<Network> Network::create_remote(NetworkOptions options) {
  options.mode = NetworkMode::kRemote;
  return create(std::move(options));
}

std::unique_ptr<Network> Network::create_threaded(const Topology& topology,
                                                  RecoveryOptions recovery) {
  NetworkOptions options;
  options.topology = topology;
  options.recovery = std::move(recovery);
  return create(std::move(options));
}

std::unique_ptr<Network> Network::create_process(
    const Topology& topology, const std::function<void(BackEnd&)>& backend_main,
    bool tcp_edges, RecoveryOptions recovery) {
  NetworkOptions options;
  options.mode = NetworkMode::kProcess;
  options.topology = topology;
  options.recovery = std::move(recovery);
  options.backend_main = backend_main;
  options.tcp_edges = tcp_edges;
  return create(std::move(options));
}

void Network::start_telemetry(const TelemetryOptions& telemetry) {
  if (!telemetry.enabled) return;
  const std::int64_t age_out_ms =
      telemetry.age_out_ms > 0 ? telemetry.age_out_ms : 5LL * telemetry.interval_ms;
  collector_ = std::make_unique<TelemetryCollector>(age_out_ms * 1'000'000);

  // Announce the reserved telemetry stream exactly like an application
  // stream: interior nodes instantiate metrics_merge behind a time_out sync
  // (window = publish interval), and every node arms its periodic publisher
  // when the announcement reaches it (FIFO, so before any data).
  StreamSpec spec;
  spec.id = kTelemetryStream;
  spec.up_transform = "metrics_merge";
  spec.up_sync = "time_out";
  spec.down_transform = "passthrough";
  spec.params = FilterParams()
                    .set("interval_ms", telemetry.interval_ms)
                    .set("window_ms", telemetry.interval_ms)
                    .to_wire();
  send_to_root(spec.to_packet());
}

std::unique_ptr<Network> Network::create_threaded_impl(const NetworkOptions& options) {
  const Topology& topology = options.topology;
  auto network = std::unique_ptr<Network>(new Network(topology));
  Network& net = *network;
  net.recovery_ = options.recovery;
  // NodeRuntime instances keep a reference to the topology for the lifetime
  // of the network, so wire them to the Network's own copy, never to the
  // caller's (possibly temporary) argument.
  const Topology& topo = net.topology_;

  net.root_delegate_ = std::make_unique<RootDelegate>(net);

  // First pass: create back-end handles (they own the upstream link used by
  // application threads) and delegates.
  net.runtimes_.resize(topo.num_nodes());
  net.leaf_delegates_.resize(topo.num_leaves());
  net.backends_.resize(topo.num_leaves());

  // Create runtimes top-down so a child can reference its parent's inbox.
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    NodeRuntime::Delegate* delegate = nullptr;
    if (topo.is_root(id)) {
      delegate = net.root_delegate_.get();
    } else if (topo.is_leaf(id)) {
      const auto rank = topo.leaf_rank(id);
      // The BackEnd's upstream link is wired after the parent runtime exists;
      // create the handle first with a placeholder.
      net.backends_[rank] = std::unique_ptr<BackEnd>(new BackEnd(rank, nullptr));
      net.leaf_delegates_[rank] = std::make_unique<LeafDelegate>(*net.backends_[rank]);
      delegate = net.leaf_delegates_[rank].get();
    }
    net.runtimes_[id] = std::make_unique<NodeRuntime>(topo, id, net.registry_, delegate);
  }

  const FlowControlOptions& fc = options.flow_control;
  net.fc_options_ = fc;
  if (fc.enabled) {
    for (auto& runtime : net.runtimes_) runtime->set_flow_control(fc);
  }
  net.batching_ = options.batching;
  if (net.batching_.enabled()) net.batch_flusher_ = std::make_shared<BatchFlusher>();
  // Parallel filter execution: every runtime learns the options; leaves
  // ignore them (they run no filters), so only non-leaf nodes build pools.
  for (auto& runtime : net.runtimes_) runtime->set_execution(options.execution);

  // Second pass: wire links along every edge.  With flow control on, each
  // direction of an edge gets a CreditGate shared by the sender's wrapped
  // link(s) and the receiving runtime's granter.
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    const auto& children = topo.node(id).children;
    for (std::uint32_t slot = 0; slot < children.size(); ++slot) {
      const NodeId child = children[slot];
      NodeRuntime& parent_rt = *net.runtimes_[id];
      NodeRuntime& child_rt = *net.runtimes_[child];

      auto down_inner = std::make_shared<InprocLink>(child_rt.inbox(),
                                                     Origin::kParent, 0u);
      auto up_inner = std::make_shared<InprocLink>(parent_rt.inbox(),
                                                   Origin::kChild, slot);
      std::shared_ptr<CreditGate> gate_up;
      if (!fc.enabled) {
        // Batching interposes between the sender and the raw inbox link so
        // data packets coalesce into one batch envelope per flush.
        parent_rt.add_child_link(std::make_unique<SharedLink>(maybe_coalesce(
            down_inner, net.batching_, &parent_rt.metrics(), nullptr,
            net.batch_flusher_)));
        child_rt.set_parent_link(std::make_unique<SharedLink>(maybe_coalesce(
            up_inner, net.batching_, &child_rt.metrics(), nullptr,
            net.batch_flusher_)));
      } else {
        // Decorator order is FlowControlledLink(CoalescingLink(raw)): every
        // data packet acquires its credit before it is buffered, and the
        // coalescer gets the gate so window exhaustion forces a flush.
        auto gate_down = std::make_shared<CreditGate>(fc.window());
        gate_down->set_drain_hook(fc_wake_hook(parent_rt.inbox()));
        auto down = std::make_shared<FlowControlledLink>(
            maybe_coalesce(down_inner, net.batching_, &parent_rt.metrics(),
                           gate_down, net.batch_flusher_),
            gate_down, fc, &parent_rt.metrics(),
            /*fail_fast_throws=*/false, parent_rt.tenants());
        parent_rt.register_fc_link(down);
        parent_rt.add_child_link(std::make_unique<SharedLink>(down));
        child_rt.set_parent_granter(fc_direct_granter(gate_down));

        gate_up = std::make_shared<CreditGate>(fc.window());
        gate_up->set_drain_hook(fc_wake_hook(child_rt.inbox()));
        auto up = std::make_shared<FlowControlledLink>(
            maybe_coalesce(up_inner, net.batching_, &child_rt.metrics(),
                           gate_up, net.batch_flusher_),
            gate_up, fc, &child_rt.metrics(),
            /*fail_fast_throws=*/false, child_rt.tenants());
        child_rt.register_fc_link(up);
        child_rt.set_parent_link(std::make_unique<SharedLink>(up));
        parent_rt.set_child_granter(slot, fc_direct_granter(gate_up));
      }
      if (topo.is_leaf(child)) {
        // Application threads need their own upstream link to the parent —
        // with flow control, their own wrapper sharing the channel's credit
        // window (fail_fast may throw here: this is the application edge).
        const auto rank = topo.leaf_rank(child);
        std::shared_ptr<Link> up = maybe_coalesce(
            std::make_shared<InprocLink>(parent_rt.inbox(), Origin::kChild, slot),
            net.batching_, &child_rt.metrics(), gate_up, net.batch_flusher_);
        if (fc.enabled) {
          auto wrapper = std::make_shared<FlowControlledLink>(
              std::move(up), gate_up, fc, &child_rt.metrics(),
              /*fail_fast_throws=*/true, child_rt.tenants());
          child_rt.register_fc_link(wrapper);
          up = std::move(wrapper);
        }
        // Always relinkable: the handle must survive a parent swap whether
        // it comes from re-adoption (failure) or a planned re-home.
        net.backend_relinks_.resize(topo.num_leaves());
        net.backend_relinks_[rank] =
            std::make_shared<RelinkableLink>(std::move(up));
        net.backends_[rank]->up_link_ =
            std::make_unique<SharedLink>(net.backend_relinks_[rank]);
      }
    }
  }

  net.front_end_ = std::unique_ptr<FrontEnd>(new FrontEnd(net));
  net.next_dynamic_rank_ = static_cast<std::uint32_t>(topo.num_leaves());
  net.apply_recovery_threaded();
  // Planned re-homes run on the mover's own runtime thread (the rehome frame
  // arrives there), independent of auto_readopt.
  for (auto& runtime : net.runtimes_) {
    if (runtime->role() == NodeRole::kRoot) continue;
    runtime->set_rehome_handler([&net](NodeRuntime& mover, NodeId new_parent) {
      return net.rehome_threaded(mover, new_parent);
    });
  }

  // Launch one service thread per node.
  net.threads_.reserve(topo.num_nodes());
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    net.threads_.emplace_back([runtime = net.runtimes_[id].get()] { runtime->run(); });
  }
  net.start_telemetry(options.telemetry);
  return network;
}

void Network::apply_recovery_threaded() {
  if (!recovery_.fault_plan.empty()) {
    injector_ = std::make_shared<FaultInjector>(recovery_.fault_plan);
    for (auto& runtime : runtimes_) runtime->set_fault_injector(injector_);
  }
  const HeartbeatConfig hb = recovery_.heartbeat();
  if (hb.enabled()) {
    for (auto& runtime : runtimes_) runtime->set_recovery(hb);
  }
  if (recovery_.auto_readopt) {
    for (auto& runtime : runtimes_) {
      if (runtime->role() == NodeRole::kRoot) continue;
      runtime->set_orphan_handler(
          [this](NodeRuntime& orphan) { return readopt_threaded(orphan); });
    }
  }
}

bool Network::readopt_threaded(NodeRuntime& orphan) {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (shutdown_requested_) return false;
  }
  // A muted node simulates a hang: re-admitting it would reintroduce the
  // fault, so let it die and its children recover around it.
  if (injector_ && injector_->sends_muted(orphan.id())) return false;
  const NodeId self = orphan.id();
  // Climb the effective topology past dead ancestors to the first live one;
  // the root never dies, so the climb terminates.
  NodeId ancestor = current_parent_[self];  // the parent that just died
  do {
    ancestor = current_parent_[ancestor];
  } while (ancestor != topology_.root() && runtimes_[ancestor]->is_dead());
  if (runtimes_[ancestor]->is_dead()) return false;  // tearing down
  NodeRuntime& adopter = *runtimes_[ancestor];

  const std::uint32_t epoch = orphan.bump_parent_epoch();
  const std::uint32_t slot = adopter.reserve_child_slot();
  TBON_INFO("node " << self << " re-adopted by ancestor " << ancestor
                    << " at slot " << slot);
  // Queue the adoption at the adopter *before* handing the orphan its new
  // parent link: the adopter's inbox is FIFO, so the wiring marker is
  // processed before any data the orphan (or its back-end handle) sends.
  // With flow control, the new edge gets *fresh* gates (a full re-baselined
  // window — packets in flight on the dead edge are gone, and so are their
  // credits) and the granters on both ends are swapped before any data can
  // flow on the new edge.
  const FlowControlOptions& fc = fc_options_;
  std::shared_ptr<Link> down = std::make_shared<InprocLink>(
      orphan.inbox(), Origin::kParent, epoch);
  std::shared_ptr<Link> up = std::make_shared<InprocLink>(
      adopter.inbox(), Origin::kChild, slot);
  std::shared_ptr<CreditGate> gate_up;
  if (fc.enabled) {
    auto gate_down = std::make_shared<CreditGate>(fc.window());
    gate_down->set_drain_hook(fc_wake_hook(adopter.inbox()));
    auto down_w = std::make_shared<FlowControlledLink>(
        std::move(down), gate_down, fc, &adopter.metrics(),
        /*fail_fast_throws=*/false, adopter.tenants());
    adopter.register_fc_link(down_w);
    down = std::move(down_w);
    orphan.set_parent_granter(fc_direct_granter(gate_down));

    gate_up = std::make_shared<CreditGate>(fc.window());
    gate_up->set_drain_hook(fc_wake_hook(orphan.inbox()));
    auto up_w = std::make_shared<FlowControlledLink>(
        std::move(up), gate_up, fc, &orphan.metrics(),
        /*fail_fast_throws=*/false, orphan.tenants());
    orphan.register_fc_link(up_w);
    up = std::move(up_w);
    adopter.set_child_granter(slot, fc_direct_granter(gate_up));
  }
  adopter.request_adopt(slot, topology_.subtree_leaf_ranks(self),
                        std::make_unique<SharedLink>(std::move(down)));
  orphan.set_parent_link(std::make_unique<SharedLink>(std::move(up)));
  if (topology_.is_leaf(self)) {
    const auto rank = topology_.leaf_rank(self);
    if (rank < backend_relinks_.size() && backend_relinks_[rank]) {
      std::shared_ptr<Link> app_up = std::make_shared<InprocLink>(
          adopter.inbox(), Origin::kChild, slot);
      if (fc.enabled) {
        auto wrapper = std::make_shared<FlowControlledLink>(
            std::move(app_up), gate_up, fc, &orphan.metrics(),
            /*fail_fast_throws=*/true, orphan.tenants());
        orphan.register_fc_link(wrapper);
        app_up = std::move(wrapper);
      }
      backend_relinks_[rank]->relink(std::move(app_up));
    }
  }
  edge_slots_.erase({current_parent_[self], self});
  edge_slots_[{ancestor, self}] = slot;
  current_parent_[self] = ancestor;
  ++adoptions_;
  adoption_cv_.notify_all();
  return true;
}

bool Network::wait_for_adoptions(std::size_t count, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(recovery_mutex_);
  return adoption_cv_.wait_for(lock, timeout, [&] { return adoptions_ >= count; });
}

std::size_t Network::adoption_count() const {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  return adoptions_;
}

NodeId Network::effective_parent(NodeId id) const {
  if (id >= topology_.num_nodes()) throw ProtocolError("node id out of range");
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  return current_parent_[id];
}

// ---- planned reconfiguration engine -----------------------------------------
//
// The engine runs on the operator's thread (FrontEnd::reconfigure), fully
// serialized under reconfig_op_mutex_.  Wire-protocol phases (quiesce /
// rehome / detach of nodes with their own runtime threads or processes) are
// fenced by control-stream acknowledgements; dynamic leaves — whose service
// loop and handle both live in this process — are rewired directly with the
// pause_sends() fence.

ReconfigResult Network::reconfigure(TopologyDelta delta) {
  std::lock_guard<std::mutex> op_lock(reconfig_op_mutex_);
  ReconfigResult result;
  MetricsRegistry& root_metrics = runtimes_[topology_.root()]->metrics();
  for (const ReconfigOp& op : delta.ops()) {
    ReconfigOpResult r;
    try {
      r = apply_reconfig_op(op);
    } catch (const Error& error) {
      r.op = op;
      r.ok = false;
      r.message = error.what();
    }
    root_metrics.reconfig_ops.fetch_add(1, std::memory_order_relaxed);
    if (!r.ok) {
      root_metrics.reconfig_ops_failed.fetch_add(1, std::memory_order_relaxed);
      TBON_WARN("reconfigure: " << r.message);
    }
    result.add(std::move(r));
  }
  return result;
}

ReconfigOpResult Network::apply_reconfig_op(const ReconfigOp& op) {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_requested_) {
      ReconfigOpResult r;
      r.op = op;
      r.message = "network is shutting down";
      return r;
    }
  }
  switch (op.kind) {
    case ReconfigOpKind::kAddLeaf: return reconfig_add_leaf(op);
    case ReconfigOpKind::kRemoveLeaf: return reconfig_remove_leaf(op);
    case ReconfigOpKind::kSplit: return reconfig_split(op);
    case ReconfigOpKind::kMerge: return reconfig_merge(op);
    case ReconfigOpKind::kMoveSubtree: return reconfig_move_subtree(op);
  }
  ReconfigOpResult r;
  r.op = op;
  r.message = "unknown operation kind";
  return r;
}

std::vector<NodeLoad> Network::node_loads() const {
  std::vector<NodeLoad> loads;
  // Interiors without a local runtime (process/remote children) report their
  // gauges through the telemetry stream when it is enabled; a node that has
  // not reported yet simply is not a placement candidate.
  std::optional<TreeMetricsSnapshot> tree;
  if ((process_mode_ || remote_mode_) && collector_) tree = collector_->snapshot();
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    if (topology_.is_leaf(id)) continue;
    NodeLoad load;
    load.node = id;
    if (id < runtimes_.size() && runtimes_[id]) {
      if (runtimes_[id]->is_dead()) continue;
      load.fan_in = runtimes_[id]->live_child_count();
      const NodeTelemetry record = runtimes_[id]->telemetry_snapshot();
      load.exec_queue_depth = record.exec_queue_depth;
      load.inbox_depth = record.inbox_depth;
    } else if (tree) {
      const NodeTelemetry* record = tree->find(id);
      if (record == nullptr) continue;
      {
        std::lock_guard<std::mutex> lock(recovery_mutex_);
        load.fan_in = effective_children_locked(id).size();
      }
      load.exec_queue_depth = record->exec_queue_depth;
      load.inbox_depth = record->inbox_depth;
    } else {
      continue;
    }
    loads.push_back(load);
  }
  return loads;
}

std::vector<NodeId> Network::effective_children_locked(NodeId node) const {
  std::vector<NodeId> children;
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    if (id == node || topology_.is_root(id)) continue;
    if (current_parent_[id] != node) continue;
    if (topology_.is_leaf(id) &&
        detached_ranks_.count(topology_.leaf_rank(id)) != 0) {
      continue;
    }
    if (id < runtimes_.size() && runtimes_[id] && runtimes_[id]->is_dead()) continue;
    children.push_back(id);
  }
  return children;
}

NodeId Network::resolve_parent(NodeId requested) const {
  if (requested != kAutoPlacement) return requested;
  if (process_mode_ || remote_mode_) return topology_.root();
  const std::vector<NodeLoad> loads = node_loads();
  const NodeId chosen = reconfig_.policy->choose_parent(loads);
  return chosen == kAutoPlacement ? topology_.root() : chosen;
}

bool Network::await_reconfig_ack(std::int64_t op_id, NodeId subject,
                                 PacketPtr packet) {
  // Send before locking: the ack is delivered on the root runtime thread,
  // which must never find this mutex held across a blocking inbox push.
  send_to_root(std::move(packet));
  std::unique_lock<std::mutex> lock(reconfig_ack_mutex_);
  const auto key = std::make_pair(op_id, subject);
  const bool acked = reconfig_ack_cv_.wait_for(
      lock, std::chrono::milliseconds(reconfig_.op_timeout_ms),
      [&] { return reconfig_acks_.count(key) != 0; });
  if (acked) reconfig_acks_.erase(key);
  return acked;
}

void Network::on_reconfig_ack(std::int64_t op_id, NodeId subject) {
  {
    std::lock_guard<std::mutex> lock(reconfig_ack_mutex_);
    reconfig_acks_.emplace(op_id, subject);
  }
  reconfig_ack_cv_.notify_all();
}

ReconfigOpResult Network::reconfig_add_leaf(const ReconfigOp& op) {
  ReconfigOpResult r;
  r.op = op;
  const NodeId parent = resolve_parent(op.node);
  if (parent >= topology_.num_nodes() || topology_.is_leaf(parent)) {
    r.message = "add_leaf: no usable parent (" + std::to_string(parent) + ")";
    return r;
  }
  BackEnd& backend = attach_backend_at(parent);
  r.ok = true;
  r.new_rank = backend.rank();
  r.resolved_target = parent;
  runtimes_[topology_.root()]->metrics().reconfig_joins.fetch_add(
      1, std::memory_order_relaxed);
  return r;
}

ReconfigOpResult Network::reconfig_remove_leaf(const ReconfigOp& op) {
  ReconfigOpResult r;
  r.op = op;
  const std::uint32_t rank = op.rank;

  // Dynamic leaf: handle and service are local whatever the mode, so the
  // whole detach is engine-side.  Fence order: pause (drains any in-flight
  // send), detach marker at the old parent (behind all data, FIFO), then
  // end the service loop and unroute the rank tree-wide.
  {
    std::lock_guard<std::mutex> lock(dynamic_mutex_);
    const auto it = dyn_leaf_state_.find(rank);
    if (it != dyn_leaf_state_.end()) {
      DynamicLeafState state = it->second;
      state.service->backend().pause_sends();
      runtimes_[state.parent]->request_detach(state.slot);
      runtimes_[state.parent]->metrics().reconfig_detaches.fetch_add(
          1, std::memory_order_relaxed);
      state.service->inbox()->push(Envelope{Origin::kParent, 0, nullptr});
      {
        std::lock_guard<std::mutex> recovery_lock(recovery_mutex_);
        detached_ranks_.insert(rank);
        for (NodeId node = state.parent;; node = current_parent_[node]) {
          if (node < runtimes_.size() && runtimes_[node]) {
            runtimes_[node]->request_unroute(rank);
          }
          if (node == topology_.root()) break;
        }
      }
      dyn_leaf_state_.erase(it);
      // Unblock any sender parked on the fence; later sends land on the dead
      // slot and are dropped there (the documented caller contract: stop
      // sending before removing a leaf).
      state.service->backend().resume_sends();
      r.ok = true;
      r.new_rank = rank;
      return r;
    }
  }

  // Static leaf: drive the wire protocol so it works identically when the
  // leaf runs in another process or on another host.
  NodeId leaf = kAutoPlacement;
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    if (topology_.is_leaf(id) && topology_.leaf_rank(id) == rank) {
      leaf = id;
      break;
    }
  }
  if (leaf == kAutoPlacement) {
    r.message = "remove_leaf: unknown rank " + std::to_string(rank);
    return r;
  }
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    if (detached_ranks_.count(rank) != 0) {
      r.message = "remove_leaf: rank " + std::to_string(rank) +
                  " already detached";
      return r;
    }
  }
  const std::int64_t op_id = next_reconfig_op_.fetch_add(1);
  if (!await_reconfig_ack(op_id, leaf, make_detach_packet(op_id, rank))) {
    r.message = "remove_leaf: detach of rank " + std::to_string(rank) +
                " timed out";
    return r;
  }
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    detached_ranks_.insert(rank);
    const NodeId parent = current_parent_[leaf];
    for (NodeId node = parent;; node = current_parent_[node]) {
      if (node < runtimes_.size() && runtimes_[node]) {
        runtimes_[node]->request_unroute(rank);
      }
      if (node == topology_.root()) break;
    }
    edge_slots_.erase({parent, leaf});
  }
  r.ok = true;
  r.new_rank = rank;
  return r;
}

ReconfigOpResult Network::reconfig_move_subtree(const ReconfigOp& op) {
  ReconfigOpResult r;
  r.op = op;
  const NodeId node = op.node;
  if (node >= topology_.num_nodes() || topology_.is_root(node)) {
    r.message = "move_subtree: invalid node " + std::to_string(node);
    return r;
  }

  // Membership of the *effective* subtree decides both cycle prevention and
  // which rank can still carry frames down to the node.
  const auto inside_subtree = [&](NodeId candidate) {
    for (NodeId n = candidate;; n = current_parent_[n]) {
      if (n == node) return true;
      if (n == topology_.root()) return false;
    }
  };

  NodeId target = op.target;
  if (process_mode_ || remote_mode_) {
    if (!recovery_.auto_readopt) {
      r.message =
          "move_subtree needs RecoveryOptions::auto_readopt in process/remote "
          "mode (re-homes rendezvous like orphans)";
      return r;
    }
    if (target == kAutoPlacement) target = topology_.root();
    if (target != topology_.root()) {
      r.message = "process/remote re-homes attach at the root";
      return r;
    }
  } else if (target == kAutoPlacement) {
    std::vector<NodeLoad> candidates;
    {
      std::lock_guard<std::mutex> lock(recovery_mutex_);
      for (const NodeLoad& load : node_loads()) {
        if (load.node != node && !inside_subtree(load.node)) {
          candidates.push_back(load);
        }
      }
    }
    target = reconfig_.policy->choose_parent(candidates);
    if (target == kAutoPlacement) target = topology_.root();
  }
  if (target >= topology_.num_nodes() || topology_.is_leaf(target) ||
      target == node) {
    r.message = "move_subtree: invalid target " + std::to_string(target);
    return r;
  }
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    if (inside_subtree(target)) {
      r.message = "move_subtree: target " + std::to_string(target) +
                  " is inside the moving subtree";
      return r;
    }
  }
  if (target < runtimes_.size() && runtimes_[target] &&
      runtimes_[target]->is_dead()) {
    r.message = "move_subtree: target " + std::to_string(target) + " is dead";
    return r;
  }
  r.resolved_target = target;

  // Frames route down via a back-end rank whose effective path still crosses
  // the node (planned detaches may have pruned parts of the static subtree).
  std::optional<std::uint32_t> via;
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    for (NodeId id = 0; id < topology_.num_nodes() && !via; ++id) {
      if (!topology_.is_leaf(id)) continue;
      const std::uint32_t rank = topology_.leaf_rank(id);
      if (detached_ranks_.count(rank) != 0) continue;
      if (inside_subtree(id)) via = rank;
    }
  }
  if (!via) {
    r.message = "move_subtree: no routable back-end below node " +
                std::to_string(node);
    return r;
  }

  const std::int64_t quiesce_op = next_reconfig_op_.fetch_add(1);
  if (!await_reconfig_ack(quiesce_op, node,
                          make_quiesce_packet(quiesce_op, node, *via))) {
    r.message = "move_subtree: quiesce of node " + std::to_string(node) +
                " timed out";
    return r;
  }
  const std::int64_t rehome_op = next_reconfig_op_.fetch_add(1);
  if (!await_reconfig_ack(rehome_op, node,
                          make_rehome_packet(rehome_op, node, target, *via))) {
    r.message = "move_subtree: re-home of node " + std::to_string(node) +
                " under " + std::to_string(target) + " timed out";
    return r;
  }
  r.ok = true;
  return r;
}

bool Network::move_dynamic_leaf(std::uint32_t rank, NodeId new_parent) {
  if (new_parent >= topology_.num_nodes() || topology_.is_leaf(new_parent)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(dynamic_mutex_);
  const auto it = dyn_leaf_state_.find(rank);
  if (it == dyn_leaf_state_.end()) return false;
  DynamicLeafState& state = it->second;
  if (state.parent == new_parent) return true;
  NodeRuntime& target = *runtimes_[new_parent];
  if (target.is_dead()) return false;
  BackEnd& backend = state.service->backend();

  backend.pause_sends();  // fence: in-flight send drained, edge quiet
  runtimes_[state.parent]->request_detach(state.slot);
  runtimes_[state.parent]->metrics().reconfig_detaches.fetch_add(
      1, std::memory_order_relaxed);
  const std::uint32_t slot = target.reserve_child_slot();
  std::shared_ptr<Link> up =
      std::make_shared<InprocLink>(target.inbox(), Origin::kChild, slot);
  if (fc_options_.enabled) {
    // Fresh gate on the new edge: the old edge was drained by the fence, so
    // the full window re-baselines here.
    auto gate = std::make_shared<CreditGate>(fc_options_.window());
    up = std::make_shared<FlowControlledLink>(
        std::move(up), gate, fc_options_, /*metrics=*/nullptr,
        /*fail_fast_throws=*/true, target.tenants());
    target.set_child_granter(slot, fc_direct_granter(gate));
  }
  // Attach marker first, then relink + resume: the marker is FIFO-ahead of
  // anything the resumed handle can push into the same inbox.
  target.request_attach(
      slot, rank,
      std::make_unique<InprocLink>(state.service->inbox(), Origin::kParent, 0));
  state.relink->relink(std::move(up));
  {
    std::lock_guard<std::mutex> recovery_lock(recovery_mutex_);
    reroute_ranks_locked({rank}, state.parent, new_parent);
  }
  state.parent = new_parent;
  state.slot = slot;
  backend.resume_sends();
  runtimes_[topology_.root()]->metrics().reconfig_moves.fetch_add(
      1, std::memory_order_relaxed);
  return true;
}

void Network::reroute_ranks_locked(const std::vector<std::uint32_t>& ranks,
                                   NodeId old_parent, NodeId new_parent) {
  const auto chain = [&](NodeId from) {
    std::vector<NodeId> nodes;
    for (NodeId n = from;; n = current_parent_[n]) {
      nodes.push_back(n);
      if (n == topology_.root()) break;
    }
    return nodes;
  };
  const std::vector<NodeId> old_chain = chain(old_parent);
  const std::vector<NodeId> new_chain = chain(new_parent);
  const std::set<NodeId> keep(new_chain.begin(), new_chain.end());
  for (const NodeId stale : old_chain) {
    if (keep.count(stale) != 0) continue;  // shared ancestors re-point below
    if (stale < runtimes_.size() && runtimes_[stale] &&
        !runtimes_[stale]->is_dead()) {
      for (const std::uint32_t rank : ranks) {
        runtimes_[stale]->request_unroute(rank);
      }
    }
  }
  // Above the new parent each hop routes via the child slot on its way down;
  // the new parent itself learns the ranks from its adopt/attach marker.
  for (std::size_t i = 1; i < new_chain.size(); ++i) {
    const NodeId hop = new_chain[i];
    const auto edge = edge_slots_.find({hop, new_chain[i - 1]});
    if (edge == edge_slots_.end()) continue;
    if (hop < runtimes_.size() && runtimes_[hop] && !runtimes_[hop]->is_dead()) {
      for (const std::uint32_t rank : ranks) {
        runtimes_[hop]->request_route(rank, edge->second);
      }
    }
  }
}

bool Network::rehome_threaded(NodeRuntime& mover, NodeId new_parent) {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (shutdown_requested_) return false;
  }
  const NodeId self = mover.id();
  if (new_parent >= topology_.num_nodes() || topology_.is_leaf(new_parent) ||
      new_parent == self) {
    return false;
  }
  NodeRuntime& adopter = *runtimes_[new_parent];
  if (adopter.is_dead() || mover.is_dead()) return false;
  const NodeId old_parent = current_parent_[self];

  const std::uint32_t epoch = mover.bump_parent_epoch();
  const std::uint32_t slot = adopter.reserve_child_slot();
  TBON_INFO("node " << self << " re-homing under node " << new_parent
                    << " at slot " << slot << " (planned)");
  // Same rewiring as re-adoption.  Fresh gates are the credit re-baseline:
  // the quiesce fence drained the old edge, so both directions of the new
  // edge start with a full window and no stranded credits.
  const FlowControlOptions& fc = fc_options_;
  std::shared_ptr<Link> down =
      std::make_shared<InprocLink>(mover.inbox(), Origin::kParent, epoch);
  std::shared_ptr<Link> up =
      std::make_shared<InprocLink>(adopter.inbox(), Origin::kChild, slot);
  std::shared_ptr<CreditGate> gate_up;
  if (fc.enabled) {
    auto gate_down = std::make_shared<CreditGate>(fc.window());
    gate_down->set_drain_hook(fc_wake_hook(adopter.inbox()));
    auto down_w = std::make_shared<FlowControlledLink>(
        std::move(down), gate_down, fc, &adopter.metrics(),
        /*fail_fast_throws=*/false, adopter.tenants());
    adopter.register_fc_link(down_w);
    down = std::move(down_w);
    mover.set_parent_granter(fc_direct_granter(gate_down));

    gate_up = std::make_shared<CreditGate>(fc.window());
    gate_up->set_drain_hook(fc_wake_hook(mover.inbox()));
    auto up_w = std::make_shared<FlowControlledLink>(
        std::move(up), gate_up, fc, &mover.metrics(),
        /*fail_fast_throws=*/false, mover.tenants());
    mover.register_fc_link(up_w);
    up = std::move(up_w);
    adopter.set_child_granter(slot, fc_direct_granter(gate_up));
  }
  const std::vector<std::uint32_t> ranks = mover.served_ranks();
  adopter.request_adopt(slot, ranks, std::make_unique<SharedLink>(std::move(down)));
  mover.set_parent_link(std::make_unique<SharedLink>(std::move(up)));
  if (topology_.is_leaf(self)) {
    const auto rank = topology_.leaf_rank(self);
    if (rank < backend_relinks_.size() && backend_relinks_[rank]) {
      std::shared_ptr<Link> app_up =
          std::make_shared<InprocLink>(adopter.inbox(), Origin::kChild, slot);
      if (fc.enabled) {
        auto wrapper = std::make_shared<FlowControlledLink>(
            std::move(app_up), gate_up, fc, &mover.metrics(),
            /*fail_fast_throws=*/true, mover.tenants());
        mover.register_fc_link(wrapper);
        app_up = std::move(wrapper);
      }
      backend_relinks_[rank]->relink(std::move(app_up));
    }
  }
  reroute_ranks_locked(ranks, old_parent, new_parent);
  edge_slots_.erase({old_parent, self});
  edge_slots_[{new_parent, self}] = slot;
  current_parent_[self] = new_parent;
  return true;
}

ReconfigOpResult Network::reconfig_split(const ReconfigOp& op) {
  return migrate_children(op, /*merge_all=*/false);
}

ReconfigOpResult Network::reconfig_merge(const ReconfigOp& op) {
  return migrate_children(op, /*merge_all=*/true);
}

ReconfigOpResult Network::migrate_children(const ReconfigOp& op, bool merge_all) {
  ReconfigOpResult r;
  r.op = op;
  const char* verb = merge_all ? "merge" : "split";
  if (process_mode_ || remote_mode_) {
    r.message = std::string(verb) + ": rebalancing interiors is threaded-mode only";
    return r;
  }
  const NodeId node = op.node;
  if (node >= topology_.num_nodes() || topology_.is_leaf(node)) {
    r.message = std::string(verb) + ": node " + std::to_string(node) +
                " is not an interior node";
    return r;
  }

  std::vector<NodeId> statics;
  {
    std::lock_guard<std::mutex> lock(recovery_mutex_);
    statics = effective_children_locked(node);
  }
  std::vector<std::uint32_t> dynamics;
  {
    std::lock_guard<std::mutex> lock(dynamic_mutex_);
    for (const auto& [rank, state] : dyn_leaf_state_) {
      if (state.parent == node) dynamics.push_back(rank);
    }
  }
  const std::size_t total = statics.size() + dynamics.size();
  if (total == 0 || (!merge_all && total < 2)) {
    r.message = std::string(verb) + ": node " + std::to_string(node) +
                " has nothing to migrate";
    return r;
  }

  NodeId target = op.target;
  if (target == kAutoPlacement) {
    // Any other interior is a candidate — including ones below `node` (the
    // canonical root split offloads onto an existing interior child).  A
    // target that would create a cycle for some specific child is rejected
    // per-child by reconfig_move_subtree.
    std::vector<NodeLoad> candidates;
    for (const NodeLoad& load : node_loads()) {
      if (load.node != node) candidates.push_back(load);
    }
    target = reconfig_.policy->choose_parent(candidates);
  }
  if (target == kAutoPlacement || target >= topology_.num_nodes() ||
      topology_.is_leaf(target) || target == node) {
    r.message = std::string(verb) + ": no usable migration target";
    return r;
  }
  r.resolved_target = target;

  // Split keeps the first half in place; merge drains everything.  Children
  // move one at a time through the same quiesce->rewire->replay path a
  // standalone move_subtree uses, so FIFO and filter-state guarantees hold
  // per child.
  const std::size_t keep = merge_all ? 0 : (total + 1) / 2;
  std::size_t index = 0;
  std::size_t moved = 0;
  std::vector<std::string> failures;
  for (const NodeId child : statics) {
    if (index++ < keep || child == target) continue;
    ReconfigOp sub;
    sub.kind = ReconfigOpKind::kMoveSubtree;
    sub.node = child;
    sub.target = target;
    const ReconfigOpResult sr = reconfig_move_subtree(sub);
    if (sr.ok) {
      ++moved;
    } else {
      failures.push_back(sr.message);
    }
  }
  for (const std::uint32_t rank : dynamics) {
    if (index++ < keep) continue;
    if (move_dynamic_leaf(rank, target)) {
      ++moved;
    } else {
      failures.push_back("dynamic rank " + std::to_string(rank) +
                         " could not be moved");
    }
  }
  if (moved == 0) {
    r.message = std::string(verb) + ": no child could be migrated" +
                (failures.empty() ? "" : (" (" + failures.front() + ")"));
    return r;
  }
  r.ok = failures.empty();
  if (!failures.empty()) {
    r.message = std::to_string(failures.size()) + " child move(s) failed: " +
                failures.front();
  }
  MetricsRegistry& root_metrics = runtimes_[topology_.root()]->metrics();
  (merge_all ? root_metrics.reconfig_merges : root_metrics.reconfig_splits)
      .fetch_add(1, std::memory_order_relaxed);
  return r;
}

Network::~Network() {
  try {
    shutdown();
  } catch (...) {
    // Destructors must not throw; force-close everything instead.
    for (auto& runtime : runtimes_) {
      if (runtime) runtime->inbox()->close();
    }
  }
}

BackEnd& Network::backend(std::uint32_t rank) {
  // Static ranks live below the topology's leaves; dynamic ranks are
  // numbered after them (in process/remote mode `backends_` is empty, so
  // the static leaf count — not its size — is the dynamic base).
  const std::uint32_t static_ranks =
      static_cast<std::uint32_t>(topology_.num_leaves());
  if (rank < static_ranks) {
    if (process_mode_ || remote_mode_) {
      throw ProtocolError(
          "back-end handles live in their own processes in process/remote mode");
    }
    return *backends_[rank];
  }
  // Dynamically attached ranks always have their handle in this process,
  // whatever the instantiation mode.
  std::lock_guard<std::mutex> lock(dynamic_mutex_);
  const std::size_t index = rank - static_ranks;
  if (index >= dynamic_leaves_.size()) throw ProtocolError("back-end rank out of range");
  return dynamic_backend(index);
}

std::size_t Network::num_backends() const {
  std::lock_guard<std::mutex> lock(dynamic_mutex_);
  return topology_.num_leaves() + dynamic_leaves_.size();
}

void Network::run_backends(const std::function<void(BackEnd&)>& body) {
  if (process_mode_ || remote_mode_) {
    throw ProtocolError("run_backends is unavailable in process/remote mode; "
                        "pass NetworkOptions::backend_main instead");
  }
  std::vector<std::jthread> workers;
  workers.reserve(backends_.size());
  for (auto& backend : backends_) {
    workers.emplace_back([&body, be = backend.get()] { body(*be); });
  }
}

void Network::kill_node(NodeId id) {
  if (id == topology_.root()) throw ProtocolError("cannot kill the front-end");
  if (id >= topology_.num_nodes()) throw ProtocolError("node id out of range");
  TBON_INFO("injecting failure at node " << id);
  if (process_mode_ || remote_mode_) {
    // The victim lives in another process: send a targeted die request down
    // the tree; the node crashes abruptly on receipt (no handshakes).
    send_to_root(make_die_packet(id));
    return;
  }
  runtimes_[id]->inbox()->close();
}

void Network::send_to_root(PacketPtr packet) {
  runtimes_[topology_.root()]->inbox()->push(
      Envelope{Origin::kParent, 0, std::move(packet)});
}

void Network::send_batch_to_root(std::span<const PacketPtr> packets) {
  if (packets.empty()) return;
  if (packets.size() == 1) {
    send_to_root(packets.front());
    return;
  }
  auto batch = std::make_shared<const std::vector<PacketPtr>>(packets.begin(),
                                                              packets.end());
  runtimes_[topology_.root()]->inbox()->push(
      Envelope{Origin::kParent, 0, nullptr, std::move(batch)});
}

void Network::on_result(std::uint32_t stream_id, PacketPtr packet) {
  // Delivered on the root runtime thread.
  if (stream_id == kTelemetryStream) {
    if (collector_) {
      try {
        collector_->ingest(telemetry_packet_records(*packet));
      } catch (const Error& error) {
        TBON_WARN("dropping malformed telemetry packet: " << error.what());
      }
    }
    return;
  }
  try {
    front_end_->stream(stream_id).results_.push(std::move(packet));
    ready_streams_.push_evict_oldest(stream_id);
  } catch (const ProtocolError&) {
    TBON_WARN("dropping result for unknown stream " << stream_id);
  }
}

void Network::on_stream_deleted(std::uint32_t stream_id) {
  // Delivered on the root runtime thread, after the runtime flushed the
  // stream's sync buffer upward — every packet this stream will ever carry
  // is already in its results queue, so closing it turns the queue into
  // drain-then-kStreamClosed.
  if (stream_id == kTelemetryStream) return;
  try {
    Stream& stream = front_end_->stream(stream_id);
    stream.deleted_.store(true, std::memory_order_release);
    stream.results_.close();
  } catch (const ProtocolError&) {
    // Deleted before ever reaching the front-end map; nothing to mark.
  }
}

void Network::on_subscription(const std::string& prefix, std::uint32_t rank,
                              bool added) {
  // Delivered on the root runtime thread once a subscription finishes
  // climbing — the ack point wait_subscribers() blocks on.
  {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    if (added) {
      root_subs_[prefix].insert(rank);
    } else {
      const auto it = root_subs_.find(prefix);
      if (it != root_subs_.end()) {
        it->second.erase(rank);
        if (it->second.empty()) root_subs_.erase(it);
      }
    }
  }
  subs_cv_.notify_all();
}

void Network::on_shutdown_complete() {
  // Every node published its final telemetry record before acknowledging
  // shutdown (FIFO channels order record before ack), so the collector now
  // holds the exact totals; freeze it against age-out.
  if (collector_) collector_->freeze();
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_complete_ = true;
  }
  shutdown_cv_.notify_all();
  // Unblock any Stream::recv() / FrontEnd::recv_any() waiting for results
  // that will never come.
  std::lock_guard<std::mutex> lock(front_end_->mutex_);
  for (auto& [id, stream] : front_end_->streams_) stream->results_.close();
  ready_streams_.close();
}

void Network::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_requested_) {
      // Another caller started it; fall through to wait.
    } else {
      shutdown_requested_ = true;
      send_to_root(make_shutdown_packet());
    }
  }
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  if (!shutdown_cv_.wait_for(lock, 30s, [&] { return shutdown_complete_; })) {
    TBON_ERROR("network shutdown timed out; force-closing");
    for (auto& runtime : runtimes_) {
      if (runtime) runtime->inbox()->close();
    }
    {
      // Dynamic leaf services block on their own inboxes; wake them too or
      // their jthreads would never join.
      std::lock_guard<std::mutex> dynamic_lock(dynamic_mutex_);
      for (auto& leaf : dynamic_leaves_) leaf->inbox()->close();
    }
    shutdown_cv_.wait_for(lock, 5s, [&] { return shutdown_complete_; });
  }
  lock.unlock();
  // Stop accepting orphans before tearing down transport state; after this
  // join no adoption callback can touch reader_threads_/process_child_fds_.
  if (rendezvous_) rendezvous_->stop();
  threads_.clear();  // join all service threads
  if (remote_stop_) {
    // Remote mode: stop the front-end's event loop (closing every tree
    // socket, so surviving node processes see EOF and exit) and reap
    // locally spawned node processes.
    auto stop = std::move(remote_stop_);
    remote_stop_ = nullptr;
    stop();
    remote_state_.reset();
  }
  if (process_mode_) {
    // The root runtime shut down its child links on exit, so every child
    // process sees EOF, finishes and exits; reap them and drop the fds.
    reader_threads_.clear();  // join (EOF when children exit)
    for (const int pid : child_pids_) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    child_pids_.clear();
    for (const int fd : process_child_fds_) ::close(fd);
    process_child_fds_.clear();
  }
}

NodeMetricsSnapshot Network::node_metrics(NodeId id) const {
  if (id >= runtimes_.size()) throw ProtocolError("node id out of range");
  if (!runtimes_[id]) {
    throw ProtocolError(
        "this node runs in another process; its metrics arrive via "
        "FrontEnd::metrics() telemetry only");
  }
  return runtimes_[id]->telemetry_snapshot();
}

}  // namespace tbon
