#include "core/network.hpp"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/delegates.hpp"
#include "core/fd_link.hpp"

namespace tbon {

using namespace std::chrono_literals;

namespace {

/// Drain hook for a sender-side CreditGate: wake the sender's event loop (a
/// no-op marker envelope) so registered pending rings get pumped right after
/// a grant lands.  try_push — a full inbox is an awake inbox.
std::function<void()> fc_wake_hook(InboxPtr inbox) {
  return [inbox = std::move(inbox), marker = make_attach_marker_packet()] {
    inbox->try_push(Envelope{Origin::kParent, 0, marker});
  };
}

/// Granter for threaded channels: credits go straight into the shared gate.
std::function<void(std::uint32_t)> fc_direct_granter(
    std::shared_ptr<CreditGate> gate) {
  return [gate = std::move(gate)](std::uint32_t n) { gate->grant(n); };
}

}  // namespace

// ---- dynamic back-ends --------------------------------------------------------

/// Service loop for a back-end attached after instantiation.  Implements the
/// leaf subset of the control protocol (stream announcements, shutdown
/// handshake, peer delivery) without a topology slot.
class Network::DynamicLeafService {
 public:
  DynamicLeafService(std::uint32_t rank, FilterRegistry& registry)
      : registry_(registry),
        inbox_(std::make_shared<Inbox>(4096)),
        backend_(new BackEnd(rank, nullptr)),
        delegate_(*backend_) {}

  void start() {
    thread_ = std::jthread([this] { run(); });
  }

  const InboxPtr& inbox() const noexcept { return inbox_; }
  BackEnd& backend() noexcept { return *backend_; }
  void set_up_link(LinkPtr link) { backend_->up_link_ = std::move(link); }

 private:
  void run() {
    while (auto envelope = inbox_->pop()) {
      if (!envelope->packet) break;  // parent gone
      const Packet& packet = *envelope->packet;
      if (packet.stream_id() != kControlStream) {
        delegate_.on_downstream(envelope->packet);
        continue;
      }
      switch (packet.tag()) {
        case kTagNewStream:
          delegate_.on_stream_known(StreamSpec::from_packet(packet));
          break;
        case kTagDeleteStream:
          delegate_.on_stream_deleted(static_cast<std::uint32_t>(packet.get_i64(0)));
          break;
        case kTagPeerMessage:
          delegate_.on_peer_message(unwrap_peer_packet(packet));
          break;
        case kTagLoadFilter:
          try {
            registry_.load_library(packet.get_str(0));
          } catch (const FilterError& error) {
            TBON_ERROR("dynamic back-end: " << error.what());
          }
          break;
        case kTagShutdown:
          delegate_.on_shutdown();
          backend_->up_link_->send(make_shutdown_ack_packet());
          backend_->up_link_->close();
          return;
        default:
          TBON_WARN("dynamic back-end dropping control tag " << packet.tag());
      }
    }
    delegate_.on_shutdown();
  }

  FilterRegistry& registry_;
  InboxPtr inbox_;
  std::unique_ptr<BackEnd> backend_;
  BackEndDelegate delegate_;
  std::jthread thread_;
};

BackEnd& Network::dynamic_backend(std::size_t index) {
  return dynamic_leaves_[index]->backend();
}

BackEnd& Network::attach_backend(NodeId parent) {
  if (process_mode_) {
    throw ProtocolError("attach_backend is only supported in threaded mode");
  }
  if (parent >= topology_.num_nodes()) throw ProtocolError("parent id out of range");
  if (topology_.is_leaf(parent)) {
    throw ProtocolError("cannot attach a back-end under another back-end");
  }
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_requested_) throw ProtocolError("network is shutting down");
  }

  NodeRuntime& runtime = *runtimes_[parent];
  const std::uint32_t slot = runtime.reserve_child_slot();

  std::lock_guard<std::mutex> lock(dynamic_mutex_);
  const std::uint32_t rank = next_dynamic_rank_++;
  auto service = std::make_unique<DynamicLeafService>(rank, registry_);
  std::shared_ptr<Link> up =
      std::make_shared<InprocLink>(runtime.inbox(), Origin::kChild, slot);
  if (fc_options_.enabled) {
    // Upstream direction only: the lightweight leaf service has no event
    // loop consumption hook, so the parent->service direction stays
    // uncontrolled (it carries control replay and modest downstream fan-out).
    auto gate = std::make_shared<CreditGate>(fc_options_.window());
    up = std::make_shared<FlowControlledLink>(
        std::move(up), gate, fc_options_, /*metrics=*/nullptr,
        /*fail_fast_throws=*/true, runtime.tenants());
    runtime.set_child_granter(slot, fc_direct_granter(gate));
  }
  service->set_up_link(std::make_unique<SharedLink>(std::move(up)));
  service->start();
  runtime.request_attach(
      slot, rank, std::make_unique<InprocLink>(service->inbox(), Origin::kParent, 0));
  // Teach every ancestor which child slot now leads to the new rank, so
  // peer messages route from anywhere in the tree.
  for (NodeId node = parent; node != topology_.root();) {
    const NodeId ancestor = topology_.node(node).parent;
    const auto& siblings = topology_.node(ancestor).children;
    const auto it = std::find(siblings.begin(), siblings.end(), node);
    runtimes_[ancestor]->request_route(
        rank, static_cast<std::uint32_t>(it - siblings.begin()));
    node = ancestor;
  }
  dynamic_leaves_.push_back(std::move(service));
  return dynamic_leaves_.back()->backend();
}

// ---- Stream -----------------------------------------------------------------

Stream::Stream(Network& network, StreamSpec spec)
    : network_(network), spec_(std::move(spec)) {}

void Stream::send(std::int32_t tag, std::string_view format,
                  std::vector<DataValue> values) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  network_.send_to_root(
      Packet::make(spec_.id, tag, kFrontEndRank, format, std::move(values)));
}

void Stream::send(std::int32_t tag, BufferView payload) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  network_.send_to_root(
      Packet::make_view(spec_.id, tag, kFrontEndRank, std::move(payload)));
}

void Stream::send(std::int32_t tag, std::vector<std::uint8_t> payload) {
  // Deprecated forwarder: re-own the bytes once, then hand off a view.
  if (!payload.empty()) CopyStats::note(payload.size());
  Bytes bytes(reinterpret_cast<const std::byte*>(payload.data()),
              reinterpret_cast<const std::byte*>(payload.data()) + payload.size());
  send(tag, BufferView(std::move(bytes)));
}

PacketPtr Stream::make_packet(std::int32_t tag, std::string_view format,
                              std::vector<DataValue> values) const {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  return Packet::make(spec_.id, tag, kFrontEndRank, format, std::move(values));
}

void Stream::send_batch(std::span<const PacketPtr> packets) {
  for (const PacketPtr& packet : packets) {
    if (!packet) throw ProtocolError("send_batch: null packet");
    if (packet->stream_id() != spec_.id) {
      throw ProtocolError("send_batch: packet for stream " +
                          std::to_string(packet->stream_id()) +
                          " sent on stream " + std::to_string(spec_.id));
    }
    if (packet->tag() < kFirstAppTag) {
      throw ProtocolError("application tags must be >= kFirstAppTag");
    }
  }
  network_.send_batch_to_root(packets);
}

RecvResult Stream::make_result(std::optional<PacketPtr> popped) {
  if (popped) return RecvResult(std::move(*popped));
  if (results_.closed()) {
    // Drain-then-fail queues only report empty-and-closed once every buffered
    // packet has been handed out, so a terminal status means "truly done".
    return RecvResult(deleted_.load(std::memory_order_acquire)
                          ? RecvStatus::kStreamClosed
                          : RecvStatus::kShutdown);
  }
  return RecvResult(RecvStatus::kTimeout);
}

RecvResult Stream::recv() { return make_result(results_.pop()); }

RecvResult Stream::recv_for(std::chrono::milliseconds timeout) {
  return make_result(results_.pop_for(timeout));
}

RecvResult Stream::recv_until(std::chrono::steady_clock::time_point deadline) {
  return make_result(results_.pop_until(deadline));
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
RecvResult Stream::try_recv() { return make_result(results_.try_pop()); }
#pragma GCC diagnostic pop

// ---- FrontEnd ---------------------------------------------------------------

Stream& FrontEnd::open_stream(StreamSpec spec) {
  std::sort(spec.endpoints.begin(), spec.endpoints.end());

  // Validate filter names eagerly so misconfigurations fail at the call site
  // rather than deep inside a communication process.
  FilterRegistry& registry = network_.registry();
  for (const auto& name : {spec.up_transform, spec.down_transform}) {
    if (!registry.has_transform(name)) throw FilterError("unknown transform filter '" + name + "'");
  }
  if (!registry.has_sync(spec.up_sync)) throw FilterError("unknown sync filter '" + spec.up_sync + "'");
  for (const std::uint32_t rank : spec.endpoints) {
    if (rank >= network_.num_backends()) {
      throw ProtocolError("endpoint rank " + std::to_string(rank) + " out of range");
    }
  }

  // Resolve the tenant's budget from the roster and pin it into the spec —
  // the announcement is what every node enforces, so the budget must ride it.
  if (spec.priority_class == Priority::kControl) spec.priority_class = Priority::kHigh;
  if (!spec.tenant_name.empty()) {
    if (const TenantOptions* budget = network_.tenancy_.find(spec.tenant_name)) {
      spec.tenant_credit_share = budget->credit_share();
      spec.tenant_max_inflight_bytes = budget->max_inflight_bytes();
      spec.tenant_priority_ceiling = budget->priority_ceiling();
    }
    if (spec.priority_class < spec.tenant_priority_ceiling) {
      spec.priority_class = spec.tenant_priority_ceiling;  // clamp to ceiling
    }
  }

  std::unique_ptr<Stream> stream;
  Stream* raw = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    spec.id = next_stream_id_++;
    stream = std::unique_ptr<Stream>(new Stream(network_, spec));
    raw = stream.get();
    streams_.emplace(spec.id, std::move(stream));
    if (!spec.topic_path.empty() && !topic_ids_.count(spec.topic_path)) {
      topic_ids_.emplace(spec.topic_path, spec.id);
    }
  }
  network_.send_to_root(spec.to_packet());
  return *raw;
}

Stream& FrontEnd::new_stream(StreamOptions options) {
  // Deprecated forwarder: the StreamOptions fields map 1:1 onto the untopiced
  // subset of StreamSpec (see the migration table in docs/api.md).
  StreamSpec spec;
  spec.endpoints = std::move(options.endpoints);
  spec.up_transform = std::move(options.up_transform);
  spec.up_sync = std::move(options.up_sync);
  spec.down_transform = std::move(options.down_transform);
  spec.params = options.params.to_wire();
  return open_stream(std::move(spec));
}

Stream& FrontEnd::publish(const std::string& topic, std::int32_t tag,
                          std::string_view format, std::vector<DataValue> values) {
  if (topic.empty()) throw ProtocolError("publish needs a non-empty topic");
  Stream* stream = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = topic_ids_.find(topic);
    if (it != topic_ids_.end()) stream = streams_.at(it->second).get();
  }
  if (stream == nullptr) stream = &open_stream(StreamSpec::topic(topic));
  stream->send(tag, format, std::move(values));
  return *stream;
}

void FrontEnd::subscribe(const std::string& prefix) {
  network_.send_to_root(make_subscribe_packet(kFrontEndRank, prefix, true));
}

void FrontEnd::unsubscribe(const std::string& prefix) {
  network_.send_to_root(make_subscribe_packet(kFrontEndRank, prefix, false));
}

std::size_t FrontEnd::subscriber_count(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(network_.subs_mutex_);
  std::set<std::uint32_t> ranks;
  for (const auto& [prefix, subscribers] : network_.root_subs_) {
    if (topic_matches(prefix, topic)) ranks.insert(subscribers.begin(), subscribers.end());
  }
  return ranks.size();
}

bool FrontEnd::wait_subscribers(const std::string& topic, std::size_t count,
                                std::chrono::milliseconds timeout) {
  const auto matched = [&] {
    std::set<std::uint32_t> ranks;
    for (const auto& [prefix, subscribers] : network_.root_subs_) {
      if (topic_matches(prefix, topic)) ranks.insert(subscribers.begin(), subscribers.end());
    }
    return ranks.size();
  };
  std::unique_lock<std::mutex> lock(network_.subs_mutex_);
  return network_.subs_cv_.wait_for(lock, timeout, [&] { return matched() >= count; });
}

void FrontEnd::delete_stream(std::uint32_t stream_id) {
  network_.send_to_root(make_delete_stream_packet(stream_id));
}

void FrontEnd::load_filter_library(const std::string& path) {
  // Load synchronously into the local registry first so a new_stream issued
  // right after this call validates; then announce tree-wide (needed in
  // process mode, idempotent in threaded mode).
  network_.registry().load_library(path);
  network_.send_to_root(make_load_filter_packet(path));
}

Stream& FrontEnd::stream(std::uint32_t stream_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) throw ProtocolError("unknown stream " + std::to_string(stream_id));
  return *it->second;
}

AnyRecvResult FrontEnd::recv_any() { return recv_any_impl(std::nullopt); }

AnyRecvResult FrontEnd::recv_any_for(std::chrono::milliseconds timeout) {
  return recv_any_impl(std::chrono::steady_clock::now() + timeout);
}

AnyRecvResult FrontEnd::recv_any_until(std::chrono::steady_clock::time_point deadline) {
  return recv_any_impl(deadline);
}

AnyRecvResult FrontEnd::recv_any_impl(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  // Scan-then-wait: the ready_streams_ hints are advisory wakeups (they may
  // be evicted under overflow, and a concurrent Stream::recv() may have
  // consumed the hinted packet), so every wake re-scans all streams.  The
  // scan also guarantees progress when packets arrived before this call.
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (auto& [id, stream] : streams_) {
        if (auto popped = stream->results_.try_pop()) {
          return AnyRecvResult{id, RecvResult(std::move(*popped))};
        }
      }
    }
    const auto hint = deadline ? network_.ready_streams_.pop_until(*deadline)
                               : network_.ready_streams_.pop();
    if (!hint) {
      // A packet-bearing push enqueues its hint before the queue can close,
      // and closed queues drain before reporting empty — so nullopt here
      // means "no packet is coming" (shutdown) or the deadline passed.
      if (network_.ready_streams_.closed()) {
        return AnyRecvResult{0, RecvResult(RecvStatus::kShutdown)};
      }
      return AnyRecvResult{0, RecvResult(RecvStatus::kTimeout)};
    }
  }
}

TreeMetricsSnapshot FrontEnd::metrics() const {
  if (!network_.collector_) {
    throw ProtocolError(
        "telemetry is disabled; create the network with TelemetryOptions::enabled");
  }
  return network_.collector_->snapshot();
}

std::string FrontEnd::metrics_json() const { return metrics().to_json(); }

// ---- BackEnd ----------------------------------------------------------------

void BackEnd::wait_stream_known(std::uint32_t stream_id) {
  std::unique_lock<std::mutex> lock(mutex_);
  const bool known = stream_known_cv_.wait_for(lock, 10s, [&] {
    return known_streams_.count(stream_id) != 0 || shutting_down_;
  });
  if (!known || known_streams_.count(stream_id) == 0) {
    throw ProtocolError("stream " + std::to_string(stream_id) +
                        " never announced to back-end " + std::to_string(rank_));
  }
}

void BackEnd::send(std::uint32_t stream_id, std::int32_t tag, std::string_view format,
                   std::vector<DataValue> values) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  wait_stream_known(stream_id);
  up_link_->send(Packet::make(stream_id, tag, rank_, format, std::move(values)));
}

void BackEnd::send(std::uint32_t stream_id, std::int32_t tag, BufferView payload) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  wait_stream_known(stream_id);
  up_link_->send(Packet::make_view(stream_id, tag, rank_, std::move(payload)));
}

void BackEnd::send(std::uint32_t stream_id, std::int32_t tag,
                   std::vector<std::uint8_t> payload) {
  if (!payload.empty()) CopyStats::note(payload.size());
  Bytes bytes(reinterpret_cast<const std::byte*>(payload.data()),
              reinterpret_cast<const std::byte*>(payload.data()) + payload.size());
  send(stream_id, tag, BufferView(std::move(bytes)));
}

PacketPtr BackEnd::make_packet(std::uint32_t stream_id, std::int32_t tag,
                               std::string_view format,
                               std::vector<DataValue> values) const {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  return Packet::make(stream_id, tag, rank_, format, std::move(values));
}

void BackEnd::send_batch(std::uint32_t stream_id, std::span<const PacketPtr> packets) {
  if (packets.empty()) return;
  for (const PacketPtr& packet : packets) {
    if (!packet) throw ProtocolError("send_batch: null packet");
    if (packet->stream_id() != stream_id) {
      throw ProtocolError("send_batch: packet for stream " +
                          std::to_string(packet->stream_id()) +
                          " sent on stream " + std::to_string(stream_id));
    }
    if (packet->tag() < kFirstAppTag) {
      throw ProtocolError("application tags must be >= kFirstAppTag");
    }
  }
  wait_stream_known(stream_id);
  up_link_->send_batch(packets);
}

void BackEnd::subscribe(const std::string& prefix) {
  up_link_->send(make_subscribe_packet(rank_, prefix, true));
}

void BackEnd::unsubscribe(const std::string& prefix) {
  up_link_->send(make_subscribe_packet(rank_, prefix, false));
}

void BackEnd::send_to(std::uint32_t dst_rank, std::int32_t tag, std::string_view format,
                      std::vector<DataValue> values) {
  if (tag < kFirstAppTag) throw ProtocolError("application tags must be >= kFirstAppTag");
  const PacketPtr inner =
      Packet::make(kControlStream, tag, rank_, format, std::move(values));
  up_link_->send(make_peer_packet(dst_rank, *inner));
}

namespace {

/// Shared recv plumbing for the two back-end queues: a closed queue only
/// reads empty once drained, and back-end queues close exactly on shutdown.
RecvResult backend_result(BoundedQueue<PacketPtr>& queue,
                          std::optional<PacketPtr> popped) {
  if (popped) return RecvResult(std::move(*popped));
  return RecvResult(queue.closed() ? RecvStatus::kShutdown : RecvStatus::kTimeout);
}

}  // namespace

RecvResult BackEnd::recv() { return backend_result(downstream_, downstream_.pop()); }

RecvResult BackEnd::recv_for(std::chrono::milliseconds timeout) {
  return backend_result(downstream_, downstream_.pop_for(timeout));
}

RecvResult BackEnd::try_recv() {
  return backend_result(downstream_, downstream_.try_pop());
}

RecvResult BackEnd::recv_peer() {
  return backend_result(peer_messages_, peer_messages_.pop());
}

RecvResult BackEnd::recv_peer_for(std::chrono::milliseconds timeout) {
  return backend_result(peer_messages_, peer_messages_.pop_for(timeout));
}

RecvResult BackEnd::try_recv_peer() {
  return backend_result(peer_messages_, peer_messages_.try_pop());
}

bool BackEnd::shutting_down() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shutting_down_;
}

// ---- Network ----------------------------------------------------------------

Network::Network(const Topology& topology) : topology_(topology) {
  current_parent_.resize(topology_.num_nodes());
  for (NodeId id = 0; id < topology_.num_nodes(); ++id) {
    current_parent_[id] = topology_.is_root(id) ? id : topology_.node(id).parent;
  }
}

std::unique_ptr<Network> Network::create(NetworkOptions options) {
  const Topology& topology = options.topology;
  if (topology.num_leaves() == 0 || topology.is_leaf(topology.root())) {
    throw TopologyError("a network needs at least one back-end distinct from the root");
  }
  if (options.telemetry.enabled && options.telemetry.interval_ms <= 0) {
    throw ProtocolError("TelemetryOptions::interval_ms must be positive");
  }
  switch (options.mode) {
    case NetworkMode::kThreaded:
    case NetworkMode::kProcess:
    case NetworkMode::kRemote: {
      auto network = options.mode == NetworkMode::kThreaded
                         ? create_threaded_impl(options)
                         : options.mode == NetworkMode::kProcess
                               ? create_process_impl(options)
                               : create_remote_impl(options);
      // The roster is a front-end-side lookup (open_stream resolves budgets
      // into the announcement), so storing it after instantiation is safe:
      // no application stream can open before create() returns.
      network->tenancy_ = std::move(options.tenancy);
      return network;
    }
  }
  throw ProtocolError("unknown NetworkMode");
}

std::unique_ptr<Network> Network::create_remote(NetworkOptions options) {
  options.mode = NetworkMode::kRemote;
  return create(std::move(options));
}

std::unique_ptr<Network> Network::create_threaded(const Topology& topology,
                                                  RecoveryOptions recovery) {
  NetworkOptions options;
  options.topology = topology;
  options.recovery = std::move(recovery);
  return create(std::move(options));
}

std::unique_ptr<Network> Network::create_process(
    const Topology& topology, const std::function<void(BackEnd&)>& backend_main,
    bool tcp_edges, RecoveryOptions recovery) {
  NetworkOptions options;
  options.mode = NetworkMode::kProcess;
  options.topology = topology;
  options.recovery = std::move(recovery);
  options.backend_main = backend_main;
  options.tcp_edges = tcp_edges;
  return create(std::move(options));
}

void Network::start_telemetry(const TelemetryOptions& telemetry) {
  if (!telemetry.enabled) return;
  const std::int64_t age_out_ms =
      telemetry.age_out_ms > 0 ? telemetry.age_out_ms : 5LL * telemetry.interval_ms;
  collector_ = std::make_unique<TelemetryCollector>(age_out_ms * 1'000'000);

  // Announce the reserved telemetry stream exactly like an application
  // stream: interior nodes instantiate metrics_merge behind a time_out sync
  // (window = publish interval), and every node arms its periodic publisher
  // when the announcement reaches it (FIFO, so before any data).
  StreamSpec spec;
  spec.id = kTelemetryStream;
  spec.up_transform = "metrics_merge";
  spec.up_sync = "time_out";
  spec.down_transform = "passthrough";
  spec.params = FilterParams()
                    .set("interval_ms", telemetry.interval_ms)
                    .set("window_ms", telemetry.interval_ms)
                    .to_wire();
  send_to_root(spec.to_packet());
}

std::unique_ptr<Network> Network::create_threaded_impl(const NetworkOptions& options) {
  const Topology& topology = options.topology;
  auto network = std::unique_ptr<Network>(new Network(topology));
  Network& net = *network;
  net.recovery_ = options.recovery;
  // NodeRuntime instances keep a reference to the topology for the lifetime
  // of the network, so wire them to the Network's own copy, never to the
  // caller's (possibly temporary) argument.
  const Topology& topo = net.topology_;

  net.root_delegate_ = std::make_unique<RootDelegate>(net);

  // First pass: create back-end handles (they own the upstream link used by
  // application threads) and delegates.
  net.runtimes_.resize(topo.num_nodes());
  net.leaf_delegates_.resize(topo.num_leaves());
  net.backends_.resize(topo.num_leaves());

  // Create runtimes top-down so a child can reference its parent's inbox.
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    NodeRuntime::Delegate* delegate = nullptr;
    if (topo.is_root(id)) {
      delegate = net.root_delegate_.get();
    } else if (topo.is_leaf(id)) {
      const auto rank = topo.leaf_rank(id);
      // The BackEnd's upstream link is wired after the parent runtime exists;
      // create the handle first with a placeholder.
      net.backends_[rank] = std::unique_ptr<BackEnd>(new BackEnd(rank, nullptr));
      net.leaf_delegates_[rank] = std::make_unique<LeafDelegate>(*net.backends_[rank]);
      delegate = net.leaf_delegates_[rank].get();
    }
    net.runtimes_[id] = std::make_unique<NodeRuntime>(topo, id, net.registry_, delegate);
  }

  const FlowControlOptions& fc = options.flow_control;
  net.fc_options_ = fc;
  if (fc.enabled) {
    for (auto& runtime : net.runtimes_) runtime->set_flow_control(fc);
  }
  net.batching_ = options.batching;
  if (net.batching_.enabled()) net.batch_flusher_ = std::make_shared<BatchFlusher>();
  // Parallel filter execution: every runtime learns the options; leaves
  // ignore them (they run no filters), so only non-leaf nodes build pools.
  for (auto& runtime : net.runtimes_) runtime->set_execution(options.execution);

  // Second pass: wire links along every edge.  With flow control on, each
  // direction of an edge gets a CreditGate shared by the sender's wrapped
  // link(s) and the receiving runtime's granter.
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    const auto& children = topo.node(id).children;
    for (std::uint32_t slot = 0; slot < children.size(); ++slot) {
      const NodeId child = children[slot];
      NodeRuntime& parent_rt = *net.runtimes_[id];
      NodeRuntime& child_rt = *net.runtimes_[child];

      auto down_inner = std::make_shared<InprocLink>(child_rt.inbox(),
                                                     Origin::kParent, 0u);
      auto up_inner = std::make_shared<InprocLink>(parent_rt.inbox(),
                                                   Origin::kChild, slot);
      std::shared_ptr<CreditGate> gate_up;
      if (!fc.enabled) {
        // Batching interposes between the sender and the raw inbox link so
        // data packets coalesce into one batch envelope per flush.
        parent_rt.add_child_link(std::make_unique<SharedLink>(maybe_coalesce(
            down_inner, net.batching_, &parent_rt.metrics(), nullptr,
            net.batch_flusher_)));
        child_rt.set_parent_link(std::make_unique<SharedLink>(maybe_coalesce(
            up_inner, net.batching_, &child_rt.metrics(), nullptr,
            net.batch_flusher_)));
      } else {
        // Decorator order is FlowControlledLink(CoalescingLink(raw)): every
        // data packet acquires its credit before it is buffered, and the
        // coalescer gets the gate so window exhaustion forces a flush.
        auto gate_down = std::make_shared<CreditGate>(fc.window());
        gate_down->set_drain_hook(fc_wake_hook(parent_rt.inbox()));
        auto down = std::make_shared<FlowControlledLink>(
            maybe_coalesce(down_inner, net.batching_, &parent_rt.metrics(),
                           gate_down, net.batch_flusher_),
            gate_down, fc, &parent_rt.metrics(),
            /*fail_fast_throws=*/false, parent_rt.tenants());
        parent_rt.register_fc_link(down);
        parent_rt.add_child_link(std::make_unique<SharedLink>(down));
        child_rt.set_parent_granter(fc_direct_granter(gate_down));

        gate_up = std::make_shared<CreditGate>(fc.window());
        gate_up->set_drain_hook(fc_wake_hook(child_rt.inbox()));
        auto up = std::make_shared<FlowControlledLink>(
            maybe_coalesce(up_inner, net.batching_, &child_rt.metrics(),
                           gate_up, net.batch_flusher_),
            gate_up, fc, &child_rt.metrics(),
            /*fail_fast_throws=*/false, child_rt.tenants());
        child_rt.register_fc_link(up);
        child_rt.set_parent_link(std::make_unique<SharedLink>(up));
        parent_rt.set_child_granter(slot, fc_direct_granter(gate_up));
      }
      if (topo.is_leaf(child)) {
        // Application threads need their own upstream link to the parent —
        // with flow control, their own wrapper sharing the channel's credit
        // window (fail_fast may throw here: this is the application edge).
        const auto rank = topo.leaf_rank(child);
        std::shared_ptr<Link> up = maybe_coalesce(
            std::make_shared<InprocLink>(parent_rt.inbox(), Origin::kChild, slot),
            net.batching_, &child_rt.metrics(), gate_up, net.batch_flusher_);
        if (fc.enabled) {
          auto wrapper = std::make_shared<FlowControlledLink>(
              std::move(up), gate_up, fc, &child_rt.metrics(),
              /*fail_fast_throws=*/true, child_rt.tenants());
          child_rt.register_fc_link(wrapper);
          up = std::move(wrapper);
        }
        if (net.recovery_.auto_readopt) {
          // Relinkable so the handle survives a parent swap (re-adoption).
          net.backend_relinks_.resize(topo.num_leaves());
          net.backend_relinks_[rank] =
              std::make_shared<RelinkableLink>(std::move(up));
          net.backends_[rank]->up_link_ =
              std::make_unique<SharedLink>(net.backend_relinks_[rank]);
        } else {
          net.backends_[rank]->up_link_ = std::make_unique<SharedLink>(std::move(up));
        }
      }
    }
  }

  net.front_end_ = std::unique_ptr<FrontEnd>(new FrontEnd(net));
  net.next_dynamic_rank_ = static_cast<std::uint32_t>(topo.num_leaves());
  net.apply_recovery_threaded();

  // Launch one service thread per node.
  net.threads_.reserve(topo.num_nodes());
  for (NodeId id = 0; id < topo.num_nodes(); ++id) {
    net.threads_.emplace_back([runtime = net.runtimes_[id].get()] { runtime->run(); });
  }
  net.start_telemetry(options.telemetry);
  return network;
}

void Network::apply_recovery_threaded() {
  if (!recovery_.fault_plan.empty()) {
    injector_ = std::make_shared<FaultInjector>(recovery_.fault_plan);
    for (auto& runtime : runtimes_) runtime->set_fault_injector(injector_);
  }
  const HeartbeatConfig hb = recovery_.heartbeat();
  if (hb.enabled()) {
    for (auto& runtime : runtimes_) runtime->set_recovery(hb);
  }
  if (recovery_.auto_readopt) {
    for (auto& runtime : runtimes_) {
      if (runtime->role() == NodeRole::kRoot) continue;
      runtime->set_orphan_handler(
          [this](NodeRuntime& orphan) { return readopt_threaded(orphan); });
    }
  }
}

bool Network::readopt_threaded(NodeRuntime& orphan) {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  {
    std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
    if (shutdown_requested_) return false;
  }
  // A muted node simulates a hang: re-admitting it would reintroduce the
  // fault, so let it die and its children recover around it.
  if (injector_ && injector_->sends_muted(orphan.id())) return false;
  const NodeId self = orphan.id();
  // Climb the effective topology past dead ancestors to the first live one;
  // the root never dies, so the climb terminates.
  NodeId ancestor = current_parent_[self];  // the parent that just died
  do {
    ancestor = current_parent_[ancestor];
  } while (ancestor != topology_.root() && runtimes_[ancestor]->is_dead());
  if (runtimes_[ancestor]->is_dead()) return false;  // tearing down
  NodeRuntime& adopter = *runtimes_[ancestor];

  const std::uint32_t epoch = orphan.bump_parent_epoch();
  const std::uint32_t slot = adopter.reserve_child_slot();
  TBON_INFO("node " << self << " re-adopted by ancestor " << ancestor
                    << " at slot " << slot);
  // Queue the adoption at the adopter *before* handing the orphan its new
  // parent link: the adopter's inbox is FIFO, so the wiring marker is
  // processed before any data the orphan (or its back-end handle) sends.
  // With flow control, the new edge gets *fresh* gates (a full re-baselined
  // window — packets in flight on the dead edge are gone, and so are their
  // credits) and the granters on both ends are swapped before any data can
  // flow on the new edge.
  const FlowControlOptions& fc = fc_options_;
  std::shared_ptr<Link> down = std::make_shared<InprocLink>(
      orphan.inbox(), Origin::kParent, epoch);
  std::shared_ptr<Link> up = std::make_shared<InprocLink>(
      adopter.inbox(), Origin::kChild, slot);
  std::shared_ptr<CreditGate> gate_up;
  if (fc.enabled) {
    auto gate_down = std::make_shared<CreditGate>(fc.window());
    gate_down->set_drain_hook(fc_wake_hook(adopter.inbox()));
    auto down_w = std::make_shared<FlowControlledLink>(
        std::move(down), gate_down, fc, &adopter.metrics(),
        /*fail_fast_throws=*/false, adopter.tenants());
    adopter.register_fc_link(down_w);
    down = std::move(down_w);
    orphan.set_parent_granter(fc_direct_granter(gate_down));

    gate_up = std::make_shared<CreditGate>(fc.window());
    gate_up->set_drain_hook(fc_wake_hook(orphan.inbox()));
    auto up_w = std::make_shared<FlowControlledLink>(
        std::move(up), gate_up, fc, &orphan.metrics(),
        /*fail_fast_throws=*/false, orphan.tenants());
    orphan.register_fc_link(up_w);
    up = std::move(up_w);
    adopter.set_child_granter(slot, fc_direct_granter(gate_up));
  }
  adopter.request_adopt(slot, topology_.subtree_leaf_ranks(self),
                        std::make_unique<SharedLink>(std::move(down)));
  orphan.set_parent_link(std::make_unique<SharedLink>(std::move(up)));
  if (topology_.is_leaf(self)) {
    const auto rank = topology_.leaf_rank(self);
    if (rank < backend_relinks_.size() && backend_relinks_[rank]) {
      std::shared_ptr<Link> app_up = std::make_shared<InprocLink>(
          adopter.inbox(), Origin::kChild, slot);
      if (fc.enabled) {
        auto wrapper = std::make_shared<FlowControlledLink>(
            std::move(app_up), gate_up, fc, &orphan.metrics(),
            /*fail_fast_throws=*/true, orphan.tenants());
        orphan.register_fc_link(wrapper);
        app_up = std::move(wrapper);
      }
      backend_relinks_[rank]->relink(std::move(app_up));
    }
  }
  current_parent_[self] = ancestor;
  ++adoptions_;
  adoption_cv_.notify_all();
  return true;
}

bool Network::wait_for_adoptions(std::size_t count, std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(recovery_mutex_);
  return adoption_cv_.wait_for(lock, timeout, [&] { return adoptions_ >= count; });
}

std::size_t Network::adoption_count() const {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  return adoptions_;
}

NodeId Network::effective_parent(NodeId id) const {
  if (id >= topology_.num_nodes()) throw ProtocolError("node id out of range");
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  return current_parent_[id];
}

Network::~Network() {
  try {
    shutdown();
  } catch (...) {
    // Destructors must not throw; force-close everything instead.
    for (auto& runtime : runtimes_) {
      if (runtime) runtime->inbox()->close();
    }
  }
}

BackEnd& Network::backend(std::uint32_t rank) {
  if (process_mode_ || remote_mode_) {
    throw ProtocolError(
        "back-end handles live in their own processes in process/remote mode");
  }
  if (rank < backends_.size()) return *backends_[rank];
  std::lock_guard<std::mutex> lock(dynamic_mutex_);
  const std::size_t index = rank - backends_.size();
  if (index >= dynamic_leaves_.size()) throw ProtocolError("back-end rank out of range");
  return dynamic_backend(index);
}

std::size_t Network::num_backends() const {
  std::lock_guard<std::mutex> lock(dynamic_mutex_);
  return topology_.num_leaves() + dynamic_leaves_.size();
}

void Network::run_backends(const std::function<void(BackEnd&)>& body) {
  if (process_mode_ || remote_mode_) {
    throw ProtocolError("run_backends is unavailable in process/remote mode; "
                        "pass NetworkOptions::backend_main instead");
  }
  std::vector<std::jthread> workers;
  workers.reserve(backends_.size());
  for (auto& backend : backends_) {
    workers.emplace_back([&body, be = backend.get()] { body(*be); });
  }
}

void Network::kill_node(NodeId id) {
  if (id == topology_.root()) throw ProtocolError("cannot kill the front-end");
  if (id >= topology_.num_nodes()) throw ProtocolError("node id out of range");
  TBON_INFO("injecting failure at node " << id);
  if (process_mode_ || remote_mode_) {
    // The victim lives in another process: send a targeted die request down
    // the tree; the node crashes abruptly on receipt (no handshakes).
    send_to_root(make_die_packet(id));
    return;
  }
  runtimes_[id]->inbox()->close();
}

void Network::send_to_root(PacketPtr packet) {
  runtimes_[topology_.root()]->inbox()->push(
      Envelope{Origin::kParent, 0, std::move(packet)});
}

void Network::send_batch_to_root(std::span<const PacketPtr> packets) {
  if (packets.empty()) return;
  if (packets.size() == 1) {
    send_to_root(packets.front());
    return;
  }
  auto batch = std::make_shared<const std::vector<PacketPtr>>(packets.begin(),
                                                              packets.end());
  runtimes_[topology_.root()]->inbox()->push(
      Envelope{Origin::kParent, 0, nullptr, std::move(batch)});
}

void Network::on_result(std::uint32_t stream_id, PacketPtr packet) {
  // Delivered on the root runtime thread.
  if (stream_id == kTelemetryStream) {
    if (collector_) {
      try {
        collector_->ingest(telemetry_packet_records(*packet));
      } catch (const Error& error) {
        TBON_WARN("dropping malformed telemetry packet: " << error.what());
      }
    }
    return;
  }
  try {
    front_end_->stream(stream_id).results_.push(std::move(packet));
    ready_streams_.push_evict_oldest(stream_id);
  } catch (const ProtocolError&) {
    TBON_WARN("dropping result for unknown stream " << stream_id);
  }
}

void Network::on_stream_deleted(std::uint32_t stream_id) {
  // Delivered on the root runtime thread, after the runtime flushed the
  // stream's sync buffer upward — every packet this stream will ever carry
  // is already in its results queue, so closing it turns the queue into
  // drain-then-kStreamClosed.
  if (stream_id == kTelemetryStream) return;
  try {
    Stream& stream = front_end_->stream(stream_id);
    stream.deleted_.store(true, std::memory_order_release);
    stream.results_.close();
  } catch (const ProtocolError&) {
    // Deleted before ever reaching the front-end map; nothing to mark.
  }
}

void Network::on_subscription(const std::string& prefix, std::uint32_t rank,
                              bool added) {
  // Delivered on the root runtime thread once a subscription finishes
  // climbing — the ack point wait_subscribers() blocks on.
  {
    std::lock_guard<std::mutex> lock(subs_mutex_);
    if (added) {
      root_subs_[prefix].insert(rank);
    } else {
      const auto it = root_subs_.find(prefix);
      if (it != root_subs_.end()) {
        it->second.erase(rank);
        if (it->second.empty()) root_subs_.erase(it);
      }
    }
  }
  subs_cv_.notify_all();
}

void Network::on_shutdown_complete() {
  // Every node published its final telemetry record before acknowledging
  // shutdown (FIFO channels order record before ack), so the collector now
  // holds the exact totals; freeze it against age-out.
  if (collector_) collector_->freeze();
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    shutdown_complete_ = true;
  }
  shutdown_cv_.notify_all();
  // Unblock any Stream::recv() / FrontEnd::recv_any() waiting for results
  // that will never come.
  std::lock_guard<std::mutex> lock(front_end_->mutex_);
  for (auto& [id, stream] : front_end_->streams_) stream->results_.close();
  ready_streams_.close();
}

void Network::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shutdown_requested_) {
      // Another caller started it; fall through to wait.
    } else {
      shutdown_requested_ = true;
      send_to_root(make_shutdown_packet());
    }
  }
  std::unique_lock<std::mutex> lock(shutdown_mutex_);
  if (!shutdown_cv_.wait_for(lock, 30s, [&] { return shutdown_complete_; })) {
    TBON_ERROR("network shutdown timed out; force-closing");
    for (auto& runtime : runtimes_) {
      if (runtime) runtime->inbox()->close();
    }
    {
      // Dynamic leaf services block on their own inboxes; wake them too or
      // their jthreads would never join.
      std::lock_guard<std::mutex> dynamic_lock(dynamic_mutex_);
      for (auto& leaf : dynamic_leaves_) leaf->inbox()->close();
    }
    shutdown_cv_.wait_for(lock, 5s, [&] { return shutdown_complete_; });
  }
  lock.unlock();
  // Stop accepting orphans before tearing down transport state; after this
  // join no adoption callback can touch reader_threads_/process_child_fds_.
  if (rendezvous_) rendezvous_->stop();
  threads_.clear();  // join all service threads
  if (remote_stop_) {
    // Remote mode: stop the front-end's event loop (closing every tree
    // socket, so surviving node processes see EOF and exit) and reap
    // locally spawned node processes.
    auto stop = std::move(remote_stop_);
    remote_stop_ = nullptr;
    stop();
    remote_state_.reset();
  }
  if (process_mode_) {
    // The root runtime shut down its child links on exit, so every child
    // process sees EOF, finishes and exits; reap them and drop the fds.
    reader_threads_.clear();  // join (EOF when children exit)
    for (const int pid : child_pids_) {
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
    child_pids_.clear();
    for (const int fd : process_child_fds_) ::close(fd);
    process_child_fds_.clear();
  }
}

NodeMetricsSnapshot Network::node_metrics(NodeId id) const {
  if (id >= runtimes_.size()) throw ProtocolError("node id out of range");
  if (!runtimes_[id]) {
    throw ProtocolError(
        "this node runs in another process; its metrics arrive via "
        "FrontEnd::metrics() telemetry only");
  }
  return runtimes_[id]->telemetry_snapshot();
}

}  // namespace tbon
