#include "core/builtin_filters.hpp"

#include <algorithm>
#include <functional>
#include <type_traits>

#include "common/error.hpp"
#include "common/log.hpp"
#include "core/protocol.hpp"
#include "core/registry.hpp"
#include "core/simd_kernels.hpp"
#include "core/sync.hpp"
#include "telemetry/metrics.hpp"

namespace tbon {
namespace {

struct MinOp {
  template <typename T>
  T operator()(T a, T b) const {
    return std::min(a, b);
  }
};
struct MaxOp {
  template <typename T>
  T operator()(T a, T b) const {
    return std::max(a, b);
  }
};
struct SumOp {
  template <typename T>
  T operator()(T a, T b) const {
    return static_cast<T>(a + b);
  }
};

/// Shared implementation for sum/min/max: reduce numeric fields across the
/// batch with `Op`, preserving the packet format.
template <typename Op>
class NumericReduceFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
              FilterContext&) override {
    const Packet& first = *in.front();
    std::vector<DataValue> acc = first.values();
    for (std::size_t p = 1; p < in.size(); ++p) {
      const Packet& packet = *in[p];
      if (packet.format() != first.format()) {
        throw CodecError("numeric reduction over mixed formats ('" +
                         first.format().to_string() + "' vs '" +
                         packet.format().to_string() + "')");
      }
      for (std::size_t f = 0; f < acc.size(); ++f) reduce_field(acc[f], packet.values()[f]);
    }
    out.push_back(std::make_shared<const Packet>(first.stream_id(), first.tag(),
                                                 first.src_rank(), first.format(),
                                                 std::move(acc)));
  }

  /// Each packet of a coalesced batch is its own single-packet wave, and a
  /// reduction over one packet is the packet itself — forward the inputs
  /// instead of rebuilding each one (byte-identical: a singleton filter()
  /// call copies the values into an equal packet).
  void filter_batch(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                    FilterContext&) override {
    out.insert(out.end(), in.begin(), in.end());
  }

 private:
  static void reduce_field(DataValue& acc, const DataValue& next) {
    switch (type_of(acc)) {
      case DataType::kInt32:
        std::get<std::int32_t>(acc) =
            Op{}(std::get<std::int32_t>(acc), std::get<std::int32_t>(next));
        break;
      case DataType::kInt64:
        std::get<std::int64_t>(acc) =
            Op{}(std::get<std::int64_t>(acc), std::get<std::int64_t>(next));
        break;
      case DataType::kUInt64:
        std::get<std::uint64_t>(acc) =
            Op{}(std::get<std::uint64_t>(acc), std::get<std::uint64_t>(next));
        break;
      case DataType::kFloat64:
        std::get<double>(acc) = Op{}(std::get<double>(acc), std::get<double>(next));
        break;
      case DataType::kVecInt64:
        reduce_vector(std::get<std::vector<std::int64_t>>(acc),
                      std::get<std::vector<std::int64_t>>(next));
        break;
      case DataType::kVecFloat64:
        reduce_vector(std::get<std::vector<double>>(acc),
                      std::get<std::vector<double>>(next));
        break;
      case DataType::kString:
      case DataType::kBytes:
      case DataType::kVecString:
        // Non-numeric fields ride along unchanged (first packet wins).
        break;
    }
  }

  template <typename T>
  static void reduce_vector(std::vector<T>& acc, const std::vector<T>& next) {
    if (next.size() != acc.size()) {
      throw CodecError("numeric reduction over vectors of different lengths");
    }
    // Contiguous numeric fields take the vectorized kernels (bit-exact with
    // the plain loop below — see simd_kernels.hpp).
    if constexpr (std::is_same_v<T, double>) {
      if constexpr (std::is_same_v<Op, SumOp>) {
        return simd::add_f64(acc.data(), next.data(), acc.size());
      } else if constexpr (std::is_same_v<Op, MinOp>) {
        return simd::min_f64(acc.data(), next.data(), acc.size());
      } else if constexpr (std::is_same_v<Op, MaxOp>) {
        return simd::max_f64(acc.data(), next.data(), acc.size());
      }
    } else if constexpr (std::is_same_v<T, std::int64_t>) {
      if constexpr (std::is_same_v<Op, SumOp>) {
        return simd::add_i64(acc.data(), next.data(), acc.size());
      } else if constexpr (std::is_same_v<Op, MinOp>) {
        return simd::min_i64(acc.data(), next.data(), acc.size());
      } else if constexpr (std::is_same_v<Op, MaxOp>) {
        return simd::max_i64(acc.data(), next.data(), acc.size());
      }
    }
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] = Op{}(acc[i], next[i]);
  }
};

/// Element-wise arithmetic mean (see header for the balanced-tree caveat).
class AvgFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
              FilterContext& ctx) override {
    std::vector<PacketPtr> summed;
    sum_.filter(in, summed, ctx);
    const Packet& total = *summed.front();
    const double n = static_cast<double>(in.size());
    std::vector<DataValue> averaged = total.values();
    for (DataValue& field : averaged) {
      switch (type_of(field)) {
        case DataType::kFloat64:
          std::get<double>(field) /= n;
          break;
        case DataType::kVecFloat64: {
          auto& vec = std::get<std::vector<double>>(field);
          simd::div_f64(vec.data(), n, vec.size());
          break;
        }
        case DataType::kInt32:
          std::get<std::int32_t>(field) =
              static_cast<std::int32_t>(std::get<std::int32_t>(field) / n);
          break;
        case DataType::kInt64:
          std::get<std::int64_t>(field) =
              static_cast<std::int64_t>(static_cast<double>(std::get<std::int64_t>(field)) / n);
          break;
        case DataType::kUInt64:
          std::get<std::uint64_t>(field) = static_cast<std::uint64_t>(
              static_cast<double>(std::get<std::uint64_t>(field)) / n);
          break;
        case DataType::kVecInt64:
          for (std::int64_t& v : std::get<std::vector<std::int64_t>>(field)) {
            v = static_cast<std::int64_t>(static_cast<double>(v) / n);
          }
          break;
        default:
          break;
      }
    }
    out.push_back(std::make_shared<const Packet>(total.stream_id(), total.tag(),
                                                 total.src_rank(), total.format(),
                                                 std::move(averaged)));
  }

 private:
  NumericReduceFilter<SumOp> sum_;
};

/// Exact tree-safe weighted mean: packets are "vf64 u64" (sums, weight).
class WeightedAvgFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
              FilterContext&) override {
    static const DataFormat kFormat{"vf64 u64"};
    const Packet& first = *in.front();
    if (first.format() != kFormat) {
      throw CodecError("wavg expects packets of format 'vf64 u64'");
    }
    std::vector<double> sums = first.get_vf64(0);
    std::uint64_t weight = first.get_u64(1);
    for (std::size_t p = 1; p < in.size(); ++p) {
      const Packet& packet = *in[p];
      if (packet.format() != kFormat) throw CodecError("wavg expects 'vf64 u64'");
      const auto& other = packet.get_vf64(0);
      if (other.size() != sums.size()) throw CodecError("wavg vector length mismatch");
      simd::add_f64(sums.data(), other.data(), sums.size());
      weight += packet.get_u64(1);
    }
    out.push_back(std::make_shared<const Packet>(
        first.stream_id(), first.tag(), first.src_rank(), kFormat,
        std::vector<DataValue>{std::move(sums), weight}));
  }
};

/// Tree-composable count (see header).
class CountFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
              FilterContext&) override {
    static const DataFormat kCountFormat{"u64"};
    std::uint64_t count = 0;
    for (const PacketPtr& packet : in) {
      if (packet->format() == kCountFormat) {
        count += packet->get_u64(0);
      } else {
        ++count;
      }
    }
    const Packet& first = *in.front();
    out.push_back(std::make_shared<const Packet>(
        first.stream_id(), first.tag(), first.src_rank(), kCountFormat,
        std::vector<DataValue>{count}));
  }
};

/// Concatenate vector/string fields across the batch in child order.
class ConcatFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
              FilterContext&) override {
    const Packet& first = *in.front();
    for (std::size_t p = 1; p < in.size(); ++p) {
      if (in[p]->format() != first.format()) {
        throw CodecError("concat over mixed formats");
      }
    }
    std::vector<DataValue> acc = first.values();
    if (in.size() > 1) {
      for (std::size_t f = 0; f < acc.size(); ++f) {
        if (type_of(acc[f]) == DataType::kBytes) {
          acc[f] = splice_bytes(in, f);
        } else {
          for (std::size_t p = 1; p < in.size(); ++p) {
            concat_field(acc[f], in[p]->values()[f]);
          }
        }
      }
    }
    out.push_back(std::make_shared<const Packet>(first.stream_id(), first.tag(),
                                                 first.src_rank(), first.format(),
                                                 std::move(acc)));
  }

 private:
  /// Splice byte views into one right-sized buffer: a single allocation and
  /// one pass over the inputs, instead of growing an accumulator per child.
  static BufferView splice_bytes(std::span<const PacketPtr> in, std::size_t field) {
    std::size_t total = 0;
    for (const PacketPtr& packet : in) total += packet->get_bytes(field).size();
    Bytes spliced;
    spliced.reserve(total);
    for (const PacketPtr& packet : in) {
      const BufferView& view = packet->get_bytes(field);
      if (view.empty()) continue;
      CopyStats::note(view.size());
      spliced.insert(spliced.end(), view.data(), view.data() + view.size());
    }
    return BufferView(std::move(spliced));
  }

  static void concat_field(DataValue& acc, const DataValue& next) {
    switch (type_of(acc)) {
      case DataType::kString:
        std::get<std::string>(acc) += std::get<std::string>(next);
        break;
      case DataType::kVecInt64: {
        auto& dst = std::get<std::vector<std::int64_t>>(acc);
        const auto& src = std::get<std::vector<std::int64_t>>(next);
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
      case DataType::kVecFloat64: {
        auto& dst = std::get<std::vector<double>>(acc);
        const auto& src = std::get<std::vector<double>>(next);
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
      case DataType::kVecString: {
        auto& dst = std::get<std::vector<std::string>>(acc);
        const auto& src = std::get<std::vector<std::string>>(next);
        dst.insert(dst.end(), src.begin(), src.end());
        break;
      }
      default:
        throw CodecError(
            "concat requires vector or string fields (wrap scalars in "
            "one-element vectors at the back-ends)");
    }
  }
};

/// Merge NodeTelemetry record sets from the batch into one packet (the
/// telemetry stream's upstream filter): per node id the freshest record —
/// highest publish seq — wins, so the merge is associative, commutative and
/// immune to duplicate delivery after re-adoption.  Malformed payloads are
/// skipped: observability must never take the tree down.
class MetricsMergeFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
              FilterContext& ctx) override {
    if (in.size() == 1) {
      // Nothing to merge: forward the packet as-is instead of decoding and
      // re-encoding records we only relay.  A wire-backed packet keeps its
      // frame, so the next hop sends it verbatim.
      out.push_back(in.front());
      return;
    }
    std::vector<NodeTelemetry> merged;
    for (const PacketPtr& packet : in) {
      try {
        const auto records = deserialize_records(telemetry_packet_records(*packet));
        merged = merge_records(merged, records);
      } catch (const std::exception& error) {
        TBON_WARN("node " << ctx.node_id << " skipping malformed telemetry payload: "
                          << error.what());
      }
    }
    if (merged.empty()) return;
    const Packet& first = *in.front();
    out.push_back(Packet::make(first.stream_id(), first.tag(), first.src_rank(),
                               "bytes", {serialize_records(merged)}));
  }
};

/// Forward every input packet unchanged.
class PassthroughFilter final : public TransformFilter {
 public:
  void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
              FilterContext&) override {
    out.insert(out.end(), in.begin(), in.end());
  }

  /// One append for the whole coalesced batch instead of a virtual call per
  /// packet; identical output by construction.
  void filter_batch(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                    FilterContext&) override {
    out.insert(out.end(), in.begin(), in.end());
  }
};

template <typename F>
std::unique_ptr<TransformFilter> make_simple(const FilterContext&) {
  return std::make_unique<F>();
}

}  // namespace

void register_builtin_filters(FilterRegistry& registry) {
  registry.register_transform("sum", &make_simple<NumericReduceFilter<SumOp>>);
  registry.register_transform("min", &make_simple<NumericReduceFilter<MinOp>>);
  registry.register_transform("max", &make_simple<NumericReduceFilter<MaxOp>>);
  registry.register_transform("avg", &make_simple<AvgFilter>);
  registry.register_transform("wavg", &make_simple<WeightedAvgFilter>);
  registry.register_transform("count", &make_simple<CountFilter>);
  registry.register_transform("concat", &make_simple<ConcatFilter>);
  registry.register_transform("passthrough", &make_simple<PassthroughFilter>);
  registry.register_transform("metrics_merge", &make_simple<MetricsMergeFilter>);

  registry.register_sync("wait_for_all", [](const FilterContext& ctx) {
    return std::unique_ptr<SyncPolicy>(std::make_unique<WaitForAllSync>(ctx));
  });
  registry.register_sync("time_out", [](const FilterContext& ctx) {
    return std::unique_ptr<SyncPolicy>(std::make_unique<TimeOutSync>(ctx));
  });
  registry.register_sync("null", [](const FilterContext& ctx) {
    return std::unique_ptr<SyncPolicy>(std::make_unique<NullSync>(ctx));
  });
}

}  // namespace tbon
