// The user-facing TBON API: Network, FrontEnd, Stream and BackEnd.
//
// Mirrors MRNet's programming model:
//
//   auto net = Network::create({.topology = Topology::balanced(4, 2)});
//   Stream& s = net->front_end().open_stream({.up_transform = "sum"});
//   s.send(kMyTag, "str", {"begin"});                  // multicast down
//   // ... back-ends call be.send(s.id(), kMyTag, "vf64", {...}) ...
//   RecvResult result = s.recv();                      // aggregated result
//   if (result) use((*result)->get_f64(0));
//   net->shutdown();
//
// The threaded instantiation runs every communication process as a thread
// inside this process, moving packets by reference (zero copy).  The
// multi-process instantiation (process_network.hpp) forks one OS process per
// tree node connected by socketpairs, exercising real serialization; both
// share NodeRuntime, so the TBON semantics are identical.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/coalesce.hpp"
#include "core/filter_params.hpp"
#include "core/node.hpp"
#include "core/protocol.hpp"
#include "core/reconfig.hpp"
#include "core/registry.hpp"
#include "recovery/adoption.hpp"
#include "recovery/fault_injector.hpp"
#include "recovery/heartbeat.hpp"
#include "telemetry/collector.hpp"
#include "topology/topology.hpp"

namespace tbon {

namespace net {
class Framing;  // src/net/framing.hpp — the remote mode's TLS-ready seam
}  // namespace net

class Network;
class FrontEnd;
class BackEnd;

/// Fault-tolerance options (part of NetworkOptions).  Everything defaults
/// to off: a network built without options behaves exactly as before the
/// recovery subsystem existed (an orphaned subtree shuts itself down).
struct RecoveryOptions {
  /// Orphaned nodes reconnect instead of shutting down: to their nearest
  /// live ancestor (threaded) or to the front-end's rendezvous port
  /// (multi-process), carrying the back-end ranks their subtree serves so
  /// stream membership and peer routes are recomputed at the adopter.
  bool auto_readopt = false;

  /// Heartbeat/liveness detection (see recovery/heartbeat.hpp): send an
  /// explicit heartbeat on a channel idle for `heartbeat_interval_ms`, and
  /// declare a peer silent for `failure_timeout_ms` dead, triggering the
  /// same degradation/re-adoption as an EOF.  0 disables.
  int heartbeat_interval_ms = 0;
  int failure_timeout_ms = 0;

  /// Deterministic fault injection executed inside the node event loops
  /// (see recovery/fault_injector.hpp).
  FaultPlan fault_plan;

  HeartbeatConfig heartbeat() const noexcept {
    return HeartbeatConfig{heartbeat_interval_ms * 1'000'000LL,
                           failure_timeout_ms * 1'000'000LL};
  }
};

/// In-band telemetry options (part of NetworkOptions).  When enabled, every
/// node periodically publishes a metrics record on a reserved stream
/// (kTelemetryStream); interior nodes merge child records with the built-in
/// metrics_merge filter, and the front-end aggregates them into the
/// TreeMetricsSnapshot returned by FrontEnd::metrics().
struct TelemetryOptions {
  bool enabled = false;
  /// How often each node publishes a snapshot (also the merge window).
  int interval_ms = 200;
  /// Nodes silent this long are dropped from snapshots (dead nodes age
  /// out after a kill without re-adoption).  0 = auto (5 x interval_ms).
  int age_out_ms = 0;
};

/// Which instantiation Network::create builds.
enum class NetworkMode {
  kThreaded,  ///< one thread per tree node in this process, zero-copy links
  kProcess,   ///< one forked OS process per node, serialized fd channels
  kRemote,    ///< one process per node, possibly on other hosts, connected
              ///< by TCP with an epoll event loop per node (src/net/)
};

/// One node the remote instantiation needs launched (see RemoteOptions::
/// spawn): run a process for `node` on `host` that ends up calling
/// Network::run_remote_node(node, bootstrap, ...) — directly (fork), via
/// exec of a binary that calls net::maybe_run_remote_node, or via ssh.
struct RemoteSpawnRequest {
  NodeId node = 0;
  std::string host;       ///< placement host from the topology ("host[:port]")
  std::string bootstrap;  ///< "host:port" of the front-end's bootstrap listener
};

/// Remote (multi-host TCP) instantiation options; see docs/remote.md.
struct RemoteOptions {
  /// Launch hook, called once per non-root node before the front-end starts
  /// waiting for them.  Default: fork this process and run the node in the
  /// child (single-host; needs NetworkOptions::backend_main).  Use
  /// net::exec_spawn / net::ssh_spawn to launch separate binaries.
  std::function<void(const RemoteSpawnRequest&)> spawn;

  /// Address the front-end's listeners (bootstrap, link, rendezvous) bind
  /// and advertise.  The default reaches only local processes; multi-host
  /// trees need the front-end machine's externally visible address.
  std::string bind_host = "127.0.0.1";

  /// Per-connection handshake deadline (listener side) and per-node dial
  /// budget (connector side, with capped exponential backoff).
  int handshake_timeout_ms = 10'000;

  /// How long create_remote waits for every node to report BootReady before
  /// tearing down and throwing.
  int ready_timeout_ms = 30'000;

  /// Frame transform factory, run once per established tree edge on both
  /// ends (the TLS insertion seam; see src/net/framing.hpp).  Null = plain
  /// frames with the zero-copy writev fast path.
  std::function<std::shared_ptr<net::Framing>()> framing;
};

/// Everything Network::create needs, in one aggregate so call sites read as
/// named fields and new options never change the factory signature:
///
///   auto net = Network::create({
///       .topology = Topology::balanced(4, 2),
///       .recovery = {.auto_readopt = true},
///       .telemetry = {.enabled = true, .interval_ms = 50},
///   });
struct NetworkOptions {
  NetworkMode mode = NetworkMode::kThreaded;
  Topology topology = Topology::single();
  RecoveryOptions recovery;
  TelemetryOptions telemetry;
  /// Credit-based flow control on every tree channel (both instantiations);
  /// see src/core/flow_control.hpp and docs/flow_control.md.
  FlowControlOptions flow_control;
  /// Parallel filter execution on non-leaf nodes: a per-node worker pool
  /// onto which packets are hash-sharded by stream id, preserving per-stream
  /// FIFO while distinct streams filter concurrently (see
  /// src/core/executor.hpp and docs/execution.md).  Defaults to off
  /// (num_workers = 0): filters run inline on each node's event loop,
  /// byte-identically to previous releases.
  ExecutionOptions execution;
  /// Adaptive small-packet batching on every tree channel (all three
  /// instantiations): data packets coalesce into multi-packet wire frames,
  /// flushed on size, deadline, or credit pressure; control and telemetry
  /// traffic always goes out immediately (see src/core/coalesce.hpp and
  /// docs/batching.md).  Defaults to off: the wire format and flush timing
  /// are byte-identical to previous releases.
  BatchingOptions batching;
  /// Named per-tenant QoS budgets (see src/core/tenant.hpp and
  /// docs/tenancy.md).  A stream opened with StreamSpec::tenant("name")
  /// resolves "name" here at open_stream time; the budget rides the stream
  /// announcement so every node enforces the same credit share, inflight-byte
  /// cap, and priority ceiling.  Unlisted tenants get the default
  /// (unconstrained) budget.
  TenancyOptions tenancy;
  /// Planned reconfiguration: placement policy and split thresholds for
  /// FrontEnd::reconfigure / maybe_rebalance (see src/core/reconfig.hpp and
  /// docs/reconfiguration.md).  Defaults leave rebalancing dormant.
  ReconfigOptions reconfig;

  /// Process and remote modes: runs inside every back-end process.
  std::function<void(BackEnd&)> backend_main;
  /// Process mode only: loopback-TCP edges (MRNet's wire) instead of
  /// socketpairs.
  bool tcp_edges = false;
  /// Remote mode only (see RemoteOptions).
  RemoteOptions remote;
};

/// Why a receive returned without a packet.
enum class RecvStatus : std::uint8_t {
  kOk,            ///< a packet was received
  kTimeout,       ///< the deadline passed (recv_for / try_recv only)
  kShutdown,      ///< the network shut down; no further packet will arrive
  kStreamClosed,  ///< this stream was deleted; remaining packets drained
};

constexpr const char* to_string(RecvStatus status) noexcept {
  switch (status) {
    case RecvStatus::kOk: return "ok";
    case RecvStatus::kTimeout: return "timeout";
    case RecvStatus::kShutdown: return "shutdown";
    case RecvStatus::kStreamClosed: return "stream_closed";
  }
  return "?";
}

/// Result of a receive: a packet, or the status explaining its absence.
/// Replaces the old std::optional<PacketPtr> returns, which could not
/// distinguish "timed out, retry" from "shut down, stop".  Keeps the
/// optional's ergonomics: truthiness means ok, * dereferences the packet.
class RecvResult {
 public:
  /// Successful receive (status kOk).
  RecvResult(PacketPtr packet) : packet_(std::move(packet)) {}  // NOLINT(google-explicit-constructor)
  /// Packet-less receive; `status` must not be kOk.
  explicit RecvResult(RecvStatus status) : status_(status) {}

  RecvStatus status() const noexcept { return status_; }
  bool ok() const noexcept { return status_ == RecvStatus::kOk; }
  bool timed_out() const noexcept { return status_ == RecvStatus::kTimeout; }
  explicit operator bool() const noexcept { return ok(); }
  bool has_value() const noexcept { return ok(); }

  /// The received packet; throws ProtocolError unless ok().
  const PacketPtr& packet() const {
    require_ok();
    return packet_;
  }
  const PacketPtr& operator*() const { return packet(); }
  const Packet* operator->() const { return packet().get(); }

 private:
  void require_ok() const {
    if (!ok()) {
      throw ProtocolError(std::string("no packet: recv status is ") + to_string(status_));
    }
  }

  PacketPtr packet_;
  RecvStatus status_ = RecvStatus::kOk;
};

/// Result of FrontEnd::recv_any: which stream produced the packet, plus the
/// RecvResult itself.  `stream_id` is meaningful only when `result.ok()`.
struct AnyRecvResult {
  std::uint32_t stream_id = 0;
  RecvResult result{RecvStatus::kShutdown};
};

/// Options for FrontEnd::new_stream.
struct StreamOptions {
  /// Participating back-end ranks; empty = all back-ends.
  std::vector<std::uint32_t> endpoints;
  std::string up_transform = "passthrough";
  std::string up_sync = "wait_for_all";
  std::string down_transform = "passthrough";
  FilterParams params;  ///< typed filter parameters (see filter_params.hpp)
};

/// Front-end handle to one virtual channel.
class Stream {
 public:
  std::uint32_t id() const noexcept { return spec_.id; }
  const StreamSpec& spec() const noexcept { return spec_; }
  /// Topic path this stream publishes under ("" = untopiced).
  const std::string& topic() const noexcept { return spec_.topic_path; }

  /// Multicast a packet downstream to the stream's back-ends.
  void send(std::int32_t tag, std::string_view format, std::vector<DataValue> values);

  /// Multicast an opaque payload downstream as a single-`bytes` packet.  The
  /// view is adopted, not copied: the backing buffer is pinned until every
  /// link has relayed the packet.  Receivers read it via
  /// `packet->get_bytes(0)` / `packet->payload_view()`.
  void send(std::int32_t tag, BufferView payload);

  [[deprecated("copies the payload; pass a BufferView (Bytes adopts implicitly)")]]
  void send(std::int32_t tag, std::vector<std::uint8_t> payload);

  /// Multicast several packets downstream as one unit: the whole span enters
  /// the root's event loop as a single batch envelope (one wakeup, one
  /// multi-packet frame per coalescing hop) instead of N independent sends.
  /// Every packet must belong to this stream and carry an application tag;
  /// build them with make_packet().  Delivery order and per-packet semantics
  /// are identical to calling send() N times.
  void send_batch(std::span<const PacketPtr> packets);

  /// Build a packet for send_batch() (stream id and front-end rank filled
  /// in; same wire form as the equivalent send()).
  PacketPtr make_packet(std::int32_t tag, std::string_view format,
                        std::vector<DataValue> values) const;

  /// Receive the next aggregated upstream packet.  Blocks until a packet
  /// arrives or the status becomes terminal (kShutdown / kStreamClosed —
  /// buffered packets are still drained first).
  RecvResult recv();

  /// recv with a timeout; kTimeout when the deadline passes.
  RecvResult recv_for(std::chrono::milliseconds timeout);

  /// recv with an absolute deadline; kTimeout once `deadline` passes.
  /// Prefer this in retry loops: the deadline does not stretch with each
  /// attempt the way a relative recv_for() timeout does.
  RecvResult recv_until(std::chrono::steady_clock::time_point deadline);

  /// \deprecated Zero-timeout polling spelling; use recv_for(0ms) (same
  /// semantics) or a deadline via recv_until() instead of a poll loop.
  [[deprecated("use recv_for(std::chrono::milliseconds(0)) or recv_until()")]]
  RecvResult try_recv();

 private:
  friend class FrontEnd;
  friend class Network;
  Stream(Network& network, StreamSpec spec);

  /// Map a queue pop outcome to a RecvResult (empty + closed queue means a
  /// terminal status; empty + open queue means timeout).
  RecvResult make_result(std::optional<PacketPtr> popped);

  Network& network_;
  StreamSpec spec_;
  std::atomic<bool> deleted_{false};
  BoundedQueue<PacketPtr> results_{1 << 16};
};

/// The application process at the root of the tree.
class FrontEnd {
 public:
  /// Open a stream from a typed spec (the primary spelling):
  ///
  ///   Stream& s = fe.open_stream(StreamSpec::topic("/app/metrics")
  ///                                  .priority(Priority::kHigh)
  ///                                  .tenant("acme")
  ///                                  .up("sum"));
  ///
  /// The announcement propagates down the tree ahead of any data (FIFO
  /// channels), so back-ends can use it immediately.  A tenant named in
  /// NetworkOptions::tenancy contributes its budget to the announcement, and
  /// the spec's priority is clamped to that tenant's ceiling.  A topiced
  /// stream's downstream packets reach only subtrees holding a matching
  /// prefix subscription (BackEnd::subscribe).
  Stream& open_stream(StreamSpec spec = {});

  /// \deprecated StreamOptions spelling; use open_stream(StreamSpec).
  [[deprecated("use open_stream(StreamSpec) - see docs/api.md")]]
  Stream& new_stream(StreamOptions options = {});

  /// Publish one packet under `topic`, opening the stream on first use (one
  /// stream per exact topic path, cached).  Returns that stream so callers
  /// can recv() aggregated results on it.
  Stream& publish(const std::string& topic, std::int32_t tag,
                  std::string_view format, std::vector<DataValue> values);

  /// Subscribe the front-end itself to a topic prefix (symmetric with
  /// BackEnd::subscribe; counts toward subscriber_count for observability).
  void subscribe(const std::string& prefix);
  void unsubscribe(const std::string& prefix);

  /// Distinct subscriber ranks whose prefix matches `topic` right now
  /// (subscriptions propagate up the tree asynchronously).
  std::size_t subscriber_count(const std::string& topic) const;

  /// Block until at least `count` distinct ranks subscribe to a prefix
  /// matching `topic`; false on timeout.  The publish-side rendezvous: a
  /// packet published before a subscription lands is pruned, not queued.
  bool wait_subscribers(const std::string& topic, std::size_t count,
                        std::chrono::milliseconds timeout);

  /// Tear down a stream tree-wide (buffered packets are flushed upward).
  void delete_stream(std::uint32_t stream_id);

  /// dlopen a filter library on every communication process.
  void load_filter_library(const std::string& path);

  /// Stream lookup (throws ProtocolError for unknown ids).
  Stream& stream(std::uint32_t stream_id);

  /// Receive the next aggregated packet from *any* of this front-end's
  /// streams — the natural shape for a front-end multiplexing many
  /// concurrently-filtering streams (it does not pin the caller to one
  /// stream's arrival order).  Blocks until some stream has a packet or the
  /// network shuts down (kShutdown).  Tolerates concurrent direct
  /// Stream::recv() calls: a packet is delivered exactly once, to whichever
  /// caller pops it.
  AnyRecvResult recv_any();

  /// recv_any with a timeout; result.status() == kTimeout when it passes.
  AnyRecvResult recv_any_for(std::chrono::milliseconds timeout);

  /// recv_any with an absolute deadline; kTimeout once `deadline` passes.
  AnyRecvResult recv_any_until(std::chrono::steady_clock::time_point deadline);

  /// Current tree-wide telemetry snapshot: one record per live node plus
  /// field-wise totals and cross-node percentiles.  After shutdown() the
  /// snapshot is frozen and the aggregate counters are exact (every node
  /// publishes a final record ahead of its shutdown acknowledgement).
  /// Throws ProtocolError unless the network was created with
  /// TelemetryOptions::enabled.
  TreeMetricsSnapshot metrics() const;

  /// The same snapshot rendered as a JSON object.
  std::string metrics_json() const;

  /// Apply a typed topology delta to the live tree (the operator surface of
  /// the reconfiguration subsystem; identical in all three modes):
  ///
  ///   ReconfigResult r = fe.reconfigure(
  ///       TopologyDelta().add_leaf().remove_leaf(3).split(1));
  ///
  /// Operations apply in order, each via the two-phase quiesce -> rewire ->
  /// replay protocol that preserves per-stream FIFO and filter state (see
  /// docs/reconfiguration.md).  kAutoPlacement targets are resolved by
  /// ReconfigOptions::policy.  Per-op success/failure is reported in the
  /// returned ReconfigResult; a failed op does not stop later ops.
  ReconfigResult reconfigure(TopologyDelta delta);

  /// Inspect per-node load (fan-in, filter queue depth, inbox depth) and,
  /// if ReconfigOptions thresholds flag a saturated interior and the
  /// cooldown has elapsed, apply the policy's proposed delta.  Returns the
  /// applied result, or nullopt when nothing needed doing.  Call this from
  /// the operator loop; it never blocks longer than one reconfigure().
  std::optional<ReconfigResult> maybe_rebalance();

 private:
  friend class Network;
  explicit FrontEnd(Network& network) : network_(network) {}

  AnyRecvResult recv_any_impl(
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  Network& network_;
  std::mutex mutex_;
  std::uint32_t next_stream_id_ = 1;  // 0 is the control stream
  std::map<std::uint32_t, std::unique_ptr<Stream>> streams_;
  std::map<std::string, std::uint32_t> topic_ids_;  ///< publish() cache

  /// maybe_rebalance cooldown clock; zero until the first applied delta.
  std::mutex rebalance_mutex_;
  std::chrono::steady_clock::time_point last_rebalance_{};
};

/// The application process at a leaf of the tree.
class BackEnd {
 public:
  std::uint32_t rank() const noexcept { return rank_; }

  /// Send a packet upstream on `stream_id`.  Blocks until the stream
  /// announcement has reached this back-end (bounded wait, then throws
  /// ProtocolError) so that data can never overtake the stream creation.
  void send(std::uint32_t stream_id, std::int32_t tag, std::string_view format,
            std::vector<DataValue> values);

  /// Send an opaque payload upstream as a single-`bytes` packet; the view is
  /// adopted, not copied (zero-copy all the way to the first filter that
  /// actually reads it).
  void send(std::uint32_t stream_id, std::int32_t tag, BufferView payload);

  [[deprecated("copies the payload; pass a BufferView (Bytes adopts implicitly)")]]
  void send(std::uint32_t stream_id, std::int32_t tag, std::vector<std::uint8_t> payload);

  /// Send several packets upstream on `stream_id` as one unit: one
  /// stream-known wait, then the whole span is handed to the upstream link
  /// in a single call (one batch frame on a coalescing channel, one inbox
  /// push in threaded mode).  Every packet must belong to `stream_id` and
  /// carry an application tag; build them with make_packet().  Semantically
  /// identical to calling send() N times, just cheaper.
  void send_batch(std::uint32_t stream_id, std::span<const PacketPtr> packets);

  /// Build a packet for send_batch() (this back-end's rank filled in; same
  /// wire form as the equivalent send()).
  PacketPtr make_packet(std::uint32_t stream_id, std::int32_t tag,
                        std::string_view format,
                        std::vector<DataValue> values) const;

  /// Subscribe this back-end to every stream whose topic path starts with
  /// `prefix`.  The subscription climbs the tree on the control stream;
  /// interior nodes forward a topiced stream's downstream packets only into
  /// subtrees with a matching subscriber, so unsubscribed subtrees cost
  /// nothing.  Use FrontEnd::wait_subscribers before publishing.
  void subscribe(const std::string& prefix);
  void unsubscribe(const std::string& prefix);

  /// Send a message to another back-end, routed hop-by-hop through the
  /// internal process tree (paper §2.1: the TBON model has no direct
  /// back-end channels, but the tree can route such traffic).  The
  /// destination receives it via recv_peer(); `tag` and payload are
  /// application-defined.
  void send_to(std::uint32_t dst_rank, std::int32_t tag, std::string_view format,
               std::vector<DataValue> values);

  /// Receive the next downstream packet (any stream); kShutdown once the
  /// network told this back-end to stop and the queue has drained.
  RecvResult recv();
  RecvResult recv_for(std::chrono::milliseconds timeout);
  /// Non-blocking receive; kTimeout when no packet is ready.
  RecvResult try_recv();

  /// Receive the next tree-routed peer message; the packet's src_rank()
  /// identifies the sender.
  RecvResult recv_peer();
  RecvResult recv_peer_for(std::chrono::milliseconds timeout);
  RecvResult try_recv_peer();

  /// True once the network told this back-end to stop.
  bool shutting_down() const;

 private:
  friend class Network;
  friend class BackEndDelegate;
  BackEnd(std::uint32_t rank, LinkPtr up_link) : rank_(rank), up_link_(std::move(up_link)) {}

  void wait_stream_known(std::uint32_t stream_id);

  /// Reconfiguration quiesce fence: pause_sends() blocks new application
  /// sends AND waits out any in-flight one (it acquires send_mutex_, which
  /// every send path holds across the link handoff), so after it returns no
  /// packet can enter the old channel.  resume_sends() releases the fence
  /// after this leaf's subtree is rewired to its new parent.
  void pause_sends();
  void resume_sends();
  /// Blocks while paused; every upstream-sending path calls this with
  /// send_mutex_ held before touching up_link_.
  void wait_send_allowed(std::unique_lock<std::mutex>& lock);

  std::uint32_t rank_;
  LinkPtr up_link_;
  BoundedQueue<PacketPtr> downstream_{1 << 16};
  BoundedQueue<PacketPtr> peer_messages_{1 << 12};
  mutable std::mutex mutex_;
  std::condition_variable stream_known_cv_;
  std::set<std::uint32_t> known_streams_;
  bool shutting_down_ = false;

  mutable std::mutex send_mutex_;
  std::condition_variable send_resumed_cv_;
  bool sends_paused_ = false;
};

/// A fully instantiated TBON.
class Network {
 public:
  /// Instantiate the tree described by `options` (see NetworkOptions): one
  /// thread per node in kThreaded mode, one forked OS process per node in
  /// kProcess mode.  Both share NodeRuntime, so the semantics — and the
  /// telemetry and recovery subsystems — are identical.
  static std::unique_ptr<Network> create(NetworkOptions options);

  /// Convenience spelling for the remote instantiation: create() with
  /// mode = NetworkMode::kRemote.  Every non-root node runs in its own OS
  /// process (launched by RemoteOptions::spawn, default: local fork),
  /// connects to its tree neighbours over TCP, and drives all of its socket
  /// I/O from a single epoll event loop (src/net/event_loop.hpp).
  static std::unique_ptr<Network> create_remote(NetworkOptions options);

  /// Node-process entry point for the remote instantiation (the default
  /// fork launcher and net::maybe_run_remote_node land here): dial the
  /// front-end's bootstrap listener at `bootstrap` ("host:port"), take node
  /// `id`'s place in the tree, and exit the process when the tree shuts
  /// down.  Never returns.
  [[noreturn]] static void run_remote_node(
      NodeId id, const std::string& bootstrap,
      const std::function<void(BackEnd&)>& backend_main,
      const std::function<std::shared_ptr<net::Framing>()>& framing = {});

  /// Pre-NetworkOptions factory spellings; forward to create().
  [[deprecated("use Network::create(NetworkOptions)")]]
  static std::unique_ptr<Network> create_threaded(const Topology& topology,
                                                  RecoveryOptions recovery = {});
  [[deprecated("use Network::create(NetworkOptions) with mode = kProcess")]]
  static std::unique_ptr<Network> create_process(
      const Topology& topology, const std::function<void(BackEnd&)>& backend_main,
      bool tcp_edges = false, RecoveryOptions recovery = {});

  /// True when this network runs in NetworkMode::kProcess.
  bool is_process_mode() const noexcept { return process_mode_; }

  /// True when this network runs in NetworkMode::kRemote.
  bool is_remote_mode() const noexcept { return remote_mode_; }

  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const noexcept { return topology_; }
  FrontEnd& front_end() noexcept { return *front_end_; }

  /// Back-end handle by rank (threaded instantiation only); covers both
  /// original and dynamically attached back-ends.
  BackEnd& backend(std::uint32_t rank);
  /// Number of back-ends, including dynamically attached ones.
  std::size_t num_backends() const;

  /// Run `body` concurrently on every back-end (one thread each) and join.
  void run_backends(const std::function<void(BackEnd&)>& body);

  /// \deprecated Imperative dynamic-attach spelling.  Use the typed
  /// reconfiguration API instead (identical semantics, plus placement,
  /// status reporting and membership compensation):
  ///
  ///   fe.reconfigure(TopologyDelta().add_leaf(parent));
  ///
  /// This shim forwards to the same engine path and returns the newcomer's
  /// handle; see docs/api.md for the migration table.
  [[deprecated("use FrontEnd::reconfigure(TopologyDelta().add_leaf(parent)) - see docs/api.md")]]
  BackEnd& attach_backend(NodeId parent);

  /// Failure injection: abruptly terminate a non-root node.  Its peers see
  /// EOF; wait_for_all filters upstream degrade to the surviving children,
  /// and with RecoveryOptions::auto_readopt its orphaned children rejoin the
  /// tree.  Threaded mode closes the node's inbox; process mode sends a
  /// kTagDie control packet down the tree (the target crashes abruptly on
  /// receipt, without shutdown handshakes).
  void kill_node(NodeId id);

  /// Block until at least `count` orphan re-adoptions have completed since
  /// the network was created; false on timeout.
  bool wait_for_adoptions(std::size_t count, std::chrono::milliseconds timeout);

  /// Re-adoptions completed so far.
  std::size_t adoption_count() const;

  /// Current parent of `id` in the effective (post-recovery) topology; this
  /// diverges from topology() once subtrees have been re-adopted.
  NodeId effective_parent(NodeId id) const;

  /// Orderly tree-wide teardown (idempotent): broadcasts SHUTDOWN, waits for
  /// all acknowledgements, flushes filters, joins all threads.
  void shutdown();

  /// Post-shutdown (or live) metrics for a node.
  NodeMetricsSnapshot node_metrics(NodeId id) const;

  FilterRegistry& registry() noexcept { return registry_; }

 private:
  friend class Stream;
  friend class FrontEnd;
  friend class BackEndDelegate;
  class RootDelegate;
  class LeafDelegate;
  class DynamicLeafService;

  explicit Network(const Topology& topology);
  static std::unique_ptr<Network> create_threaded_impl(const NetworkOptions& options);
  static std::unique_ptr<Network> create_process_impl(const NetworkOptions& options);
  static std::unique_ptr<Network> create_remote_impl(const NetworkOptions& options);
  void start_telemetry(const TelemetryOptions& telemetry);
  void send_to_root(PacketPtr packet);
  void send_batch_to_root(std::span<const PacketPtr> packets);
  BackEnd& dynamic_backend(std::size_t index);
  void on_result(std::uint32_t stream_id, PacketPtr packet);
  void on_stream_deleted(std::uint32_t stream_id);
  void on_subscription(const std::string& prefix, std::uint32_t rank, bool added);
  void on_shutdown_complete();

  // ---- planned reconfiguration engine (network.cpp) -------------------
  // FrontEnd::reconfigure delegates here; ops are serialized on the caller
  // thread under reconfig_op_mutex_ so concurrent deltas interleave whole
  // operations, never phases.
  ReconfigResult reconfigure(TopologyDelta delta);
  std::vector<NodeLoad> node_loads() const;
  void on_reconfig_ack(std::int64_t op_id, NodeId subject);  ///< root delegate
  ReconfigOpResult apply_reconfig_op(const ReconfigOp& op);
  ReconfigOpResult reconfig_add_leaf(const ReconfigOp& op);
  ReconfigOpResult reconfig_remove_leaf(const ReconfigOp& op);
  ReconfigOpResult reconfig_move_subtree(const ReconfigOp& op);
  ReconfigOpResult reconfig_split(const ReconfigOp& op);
  ReconfigOpResult reconfig_merge(const ReconfigOp& op);
  /// Shared body of split (migrate the second half of op.node's children)
  /// and merge (migrate all of them); threaded mode only.
  ReconfigOpResult migrate_children(const ReconfigOp& op, bool merge_all);
  /// Resolve a kAutoPlacement parent via the policy over interior loads.
  NodeId resolve_parent(NodeId requested) const;
  /// Send `packet` into the root runtime's control plane and wait until the
  /// matching (op_id, subject) acknowledgement climbs back; false on
  /// ReconfigOptions::op_timeout_ms expiry.
  bool await_reconfig_ack(std::int64_t op_id, NodeId subject, PacketPtr packet);
  /// Re-home a live interior/leaf runtime under a new parent (threaded
  /// mode), reusing the adoption rewiring: epoch bump, fresh flow-control
  /// gates (credit re-baseline), rank re-routing along both parent chains.
  bool rehome_threaded(NodeRuntime& mover, NodeId new_parent);
  /// attach_backend's engine path, shared with reconfig_add_leaf.
  BackEnd& attach_backend_at(NodeId parent);
  /// Engine-side move of a dynamically attached leaf: its service and
  /// handle live in this process, so the fence is pause_sends -> detach at
  /// the old parent -> attach at the new one -> resume; no wire protocol.
  bool move_dynamic_leaf(std::uint32_t rank, NodeId new_parent);
  /// Static-topology children of `node` in the effective (post-move)
  /// topology, skipping planned-detached leaves (recovery_mutex_ held).
  std::vector<NodeId> effective_children_locked(NodeId node) const;
  /// Re-point rank routes along the old and new parent chains after a move
  /// (recovery_mutex_ held).
  void reroute_ranks_locked(const std::vector<std::uint32_t>& ranks,
                            NodeId old_parent, NodeId new_parent);
  void apply_recovery_threaded();
  bool readopt_threaded(NodeRuntime& orphan);
  void adopt_process_orphan(Fd connection, const OrphanHello& hello);
  void adopt_remote_orphan(Fd connection, const OrphanHello& hello);

  // Multi-process instantiation internals (defined in process_network.cpp).
  [[noreturn]] static void run_child_process(
      const Topology& topology, NodeId id, int parent_fd,
      const std::function<void(BackEnd&)>& backend_main);
  struct SpawnedChildren;
  static SpawnedChildren spawn_children(
      const Topology& topology, NodeId id, int my_parent_fd,
      const std::function<void(BackEnd&)>& backend_main);

  Topology topology_;
  FilterRegistry& registry_ = FilterRegistry::instance();

  std::vector<std::unique_ptr<NodeRuntime>> runtimes_;  // index = NodeId
  std::vector<std::unique_ptr<BackEnd>> backends_;      // index = leaf rank
  std::vector<std::unique_ptr<DynamicLeafService>> dynamic_leaves_;
  mutable std::mutex dynamic_mutex_;
  std::uint32_t next_dynamic_rank_ = 0;  // set at creation to num_leaves

  // Reconfiguration engine state (reconfig_op_mutex_ serializes whole
  // deltas; reconfig_ack_mutex_ guards the ack rendezvous with the root
  // runtime thread).
  ReconfigOptions reconfig_;
  std::mutex reconfig_op_mutex_;
  std::mutex reconfig_ack_mutex_;
  std::condition_variable reconfig_ack_cv_;
  std::set<std::pair<std::int64_t, NodeId>> reconfig_acks_;
  std::atomic<std::int64_t> next_reconfig_op_{1};
  /// Engine's view of each dynamic leaf (dynamic_mutex_): where it hangs,
  /// which child slot it occupies there, and the relink seam its BackEnd
  /// handle sends through (swapped on planned moves).
  struct DynamicLeafState {
    NodeId parent = 0;
    std::uint32_t slot = 0;
    DynamicLeafService* service = nullptr;
    std::shared_ptr<RelinkableLink> relink;
  };
  std::map<std::uint32_t, DynamicLeafState> dyn_leaf_state_;
  /// Ranks removed by planned detach (recovery_mutex_); never reused.
  std::set<std::uint32_t> detached_ranks_;
  /// Child slot of every live (parent, child) tree edge, kept current across
  /// re-adoptions and planned moves so route updates can climb arbitrary
  /// effective-topology chains (recovery_mutex_).
  std::map<std::pair<NodeId, NodeId>, std::uint32_t> edge_slots_;
  std::unique_ptr<RootDelegate> root_delegate_;
  std::vector<std::unique_ptr<LeafDelegate>> leaf_delegates_;
  std::unique_ptr<FrontEnd> front_end_;
  std::vector<std::jthread> threads_;

  std::mutex shutdown_mutex_;
  std::condition_variable shutdown_cv_;
  bool shutdown_requested_ = false;
  bool shutdown_complete_ = false;

  // Telemetry state (see src/telemetry/); null unless enabled.
  std::unique_ptr<TelemetryCollector> collector_;

  // Tenancy roster (from NetworkOptions) and the root's view of the tree's
  // topic subscriptions: prefix -> subscriber ranks, updated on the root
  // runtime thread as kTagSubscribe packets climb to it.
  TenancyOptions tenancy_;
  std::map<std::string, std::set<std::uint32_t>> root_subs_;
  mutable std::mutex subs_mutex_;
  std::condition_variable subs_cv_;

  /// Wake hints for FrontEnd::recv_any: one stream id per result delivery.
  /// Hints are advisory (recv_any re-scans the streams on every wake), so
  /// overflow evicts the oldest hint rather than blocking the root runtime.
  BoundedQueue<std::uint32_t> ready_streams_{1 << 16};

  // Batching state: the options every channel was wired with, and the
  // process-wide deadline-service thread (threaded/remote front-end side;
  // forked children build their own in run_child_process).
  BatchingOptions batching_;
  std::shared_ptr<BatchFlusher> batch_flusher_;

  // Recovery state (see src/recovery/).
  RecoveryOptions recovery_;
  FlowControlOptions fc_options_;
  std::shared_ptr<FaultInjector> injector_;
  /// Effective parent of each node after re-adoptions (recovery_mutex_).
  std::vector<NodeId> current_parent_;
  /// Per-leaf-rank relinkable upstream link (threaded auto_readopt only),
  /// so application threads keep sending across a parent swap.
  std::vector<std::shared_ptr<RelinkableLink>> backend_relinks_;
  std::unique_ptr<RendezvousServer> rendezvous_;  ///< process auto_readopt
  mutable std::mutex recovery_mutex_;
  std::condition_variable adoption_cv_;
  std::size_t adoptions_ = 0;

  // Multi-process mode state (empty in threaded mode).
  bool process_mode_ = false;
  std::vector<int> process_child_fds_;   ///< root's ends, owned
  std::vector<int> child_pids_;
  std::vector<std::jthread> reader_threads_;

  // Remote mode state (defined in src/net/remote_network.cpp; opaque here
  // so core stays independent of the net subsystem's types).
  bool remote_mode_ = false;
  std::shared_ptr<void> remote_state_;
  std::function<void()> remote_stop_;  ///< invoked once, at end of shutdown()
};

}  // namespace tbon
