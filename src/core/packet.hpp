// Application-level packets — the unit of data flowing through a TBON.
//
// A packet belongs to a stream, carries an application tag, remembers the
// rank of the endpoint that produced it, and holds a typed payload described
// by a DataFormat.  Packets are immutable after construction and are passed
// around as shared_ptr<const Packet> ("counted packet references" in the
// paper): multicasting a packet to k children shares one object across k
// outgoing queues with no copy.
//
// Packets deserialized with deserialize_view() additionally retain the wire
// frame they arrived in: the header is parsed and the payload structurally
// validated up front, but field values materialize lazily on first access,
// and `bytes` fields alias the frame instead of being copied.  A node that
// only routes such a packet (the pass-through fast lane) relays the retained
// frame verbatim — zero payload memcpys per interior hop.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/archive.hpp"
#include "common/buffer.hpp"
#include "common/datavalue.hpp"

namespace tbon {

/// Rank used as `src` for packets originating at the front-end.
inline constexpr std::uint32_t kFrontEndRank = static_cast<std::uint32_t>(-1);

/// Stream id 0 is reserved for the control protocol.
inline constexpr std::uint32_t kControlStream = 0;

class Packet;
using PacketPtr = std::shared_ptr<const Packet>;

class Packet {
 public:
  /// Construct a packet from owned values; `values` must match `format`
  /// (CodecError otherwise).
  Packet(std::uint32_t stream_id, std::int32_t tag, std::uint32_t src_rank,
         DataFormat format, std::vector<DataValue> values);

  /// Construct a wire-backed packet (used by deserialize_view; the payload
  /// region of `wire` must already be validated against `format`).
  Packet(std::uint32_t stream_id, std::int32_t tag, std::uint32_t src_rank,
         DataFormat format, BufferView wire, std::size_t payload_offset,
         std::size_t payload_bytes);

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  /// Convenience factory returning a shared (immutable) packet.
  static PacketPtr make(std::uint32_t stream_id, std::int32_t tag,
                        std::uint32_t src_rank, std::string_view format_string,
                        std::vector<DataValue> values);

  /// Factory for a single-`bytes` packet whose payload aliases `payload` —
  /// the zero-copy origin for Stream::send(tag, view) / BackEnd::send.
  static PacketPtr make_view(std::uint32_t stream_id, std::int32_t tag,
                             std::uint32_t src_rank, BufferView payload);

  std::uint32_t stream_id() const noexcept { return stream_id_; }
  std::int32_t tag() const noexcept { return tag_; }
  std::uint32_t src_rank() const noexcept { return src_rank_; }
  const DataFormat& format() const noexcept { return format_; }
  std::size_t arity() const noexcept { return format_.arity(); }

  /// The field values.  For wire-backed packets this materializes them on
  /// first access (thread-safe); `bytes` fields alias the retained frame.
  const std::vector<DataValue>& values() const;

  /// Typed field access; throws std::bad_variant_access on a type mismatch
  /// and std::out_of_range on a bad index.
  template <typename T>
  const T& get(std::size_t index) const {
    return std::get<T>(values().at(index));
  }

  std::int32_t get_i32(std::size_t i) const { return get<std::int32_t>(i); }
  std::int64_t get_i64(std::size_t i) const { return get<std::int64_t>(i); }
  std::uint64_t get_u64(std::size_t i) const { return get<std::uint64_t>(i); }
  double get_f64(std::size_t i) const { return get<double>(i); }
  const std::string& get_str(std::size_t i) const { return get<std::string>(i); }
  const BufferView& get_bytes(std::size_t i) const { return get<BufferView>(i); }
  const std::vector<std::int64_t>& get_vi64(std::size_t i) const {
    return get<std::vector<std::int64_t>>(i);
  }
  const std::vector<double>& get_vf64(std::size_t i) const {
    return get<std::vector<double>>(i);
  }
  const std::vector<std::string>& get_vstr(std::size_t i) const {
    return get<std::vector<std::string>>(i);
  }

  /// Total payload size, used for throughput accounting (O(1): computed at
  /// construction, without materializing wire-backed values).
  std::size_t payload_bytes() const noexcept { return payload_bytes_; }

  /// The retained wire frame for packets built by deserialize_view (empty
  /// view otherwise).  Relaying it verbatim is byte-identical to serialize().
  const BufferView& wire() const noexcept { return wire_; }
  bool has_wire() const noexcept { return !wire_.empty(); }

  /// A refcounted view of the serialized payload region (the field values,
  /// after the header).  Aliases the retained frame when wire-backed; for
  /// packets built from owned values the payload is serialized into a fresh
  /// buffer on each call.
  BufferView payload_view() const;

  /// Wire serialization (used by the multi-process transport).
  void serialize(BinaryWriter& writer) const;

  /// Scatter-gather serialization: large payload fields are referenced in
  /// place, so the packet must stay alive while the segment list is used.
  void serialize_segments(SegmentWriter& writer) const;

  static PacketPtr deserialize(BinaryReader& reader);

  /// Zero-copy deserialization: parses the header, structurally validates
  /// the payload (throws CodecError like deserialize), and retains `frame`
  /// so field values can alias it instead of being copied.
  static PacketPtr deserialize_view(BufferView frame);

  /// Diagnostic rendering: "stream=3 tag=7 src=12 [1, 2] \"x\"".
  std::string to_string() const;

 private:
  void materialize() const;

  std::uint32_t stream_id_;
  std::int32_t tag_;
  std::uint32_t src_rank_;
  DataFormat format_;
  BufferView wire_;
  std::size_t payload_offset_ = 0;
  std::size_t payload_bytes_ = 0;
  mutable std::vector<DataValue> values_;
  mutable std::once_flag values_once_;
};

}  // namespace tbon
