// Application-level packets — the unit of data flowing through a TBON.
//
// A packet belongs to a stream, carries an application tag, remembers the
// rank of the endpoint that produced it, and holds a typed payload described
// by a DataFormat.  Packets are immutable after construction and are passed
// around as shared_ptr<const Packet> ("counted packet references" in the
// paper): multicasting a packet to k children shares one object across k
// outgoing queues with no copy.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/archive.hpp"
#include "common/datavalue.hpp"

namespace tbon {

/// Rank used as `src` for packets originating at the front-end.
inline constexpr std::uint32_t kFrontEndRank = static_cast<std::uint32_t>(-1);

/// Stream id 0 is reserved for the control protocol.
inline constexpr std::uint32_t kControlStream = 0;

class Packet;
using PacketPtr = std::shared_ptr<const Packet>;

class Packet {
 public:
  /// Construct a packet; `values` must match `format` (CodecError otherwise).
  Packet(std::uint32_t stream_id, std::int32_t tag, std::uint32_t src_rank,
         DataFormat format, std::vector<DataValue> values);

  /// Convenience factory returning a shared (immutable) packet.
  static PacketPtr make(std::uint32_t stream_id, std::int32_t tag,
                        std::uint32_t src_rank, std::string_view format_string,
                        std::vector<DataValue> values);

  std::uint32_t stream_id() const noexcept { return stream_id_; }
  std::int32_t tag() const noexcept { return tag_; }
  std::uint32_t src_rank() const noexcept { return src_rank_; }
  const DataFormat& format() const noexcept { return format_; }
  const std::vector<DataValue>& values() const noexcept { return values_; }
  std::size_t arity() const noexcept { return values_.size(); }

  /// Typed field access; throws std::bad_variant_access on a type mismatch
  /// and std::out_of_range on a bad index.
  template <typename T>
  const T& get(std::size_t index) const {
    return std::get<T>(values_.at(index));
  }

  std::int32_t get_i32(std::size_t i) const { return get<std::int32_t>(i); }
  std::int64_t get_i64(std::size_t i) const { return get<std::int64_t>(i); }
  std::uint64_t get_u64(std::size_t i) const { return get<std::uint64_t>(i); }
  double get_f64(std::size_t i) const { return get<double>(i); }
  const std::string& get_str(std::size_t i) const { return get<std::string>(i); }
  const Bytes& get_bytes(std::size_t i) const { return get<Bytes>(i); }
  const std::vector<std::int64_t>& get_vi64(std::size_t i) const {
    return get<std::vector<std::int64_t>>(i);
  }
  const std::vector<double>& get_vf64(std::size_t i) const {
    return get<std::vector<double>>(i);
  }
  const std::vector<std::string>& get_vstr(std::size_t i) const {
    return get<std::vector<std::string>>(i);
  }

  /// Total payload size, used for throughput accounting.
  std::size_t payload_bytes() const noexcept;

  /// Wire serialization (used by the multi-process transport).
  void serialize(BinaryWriter& writer) const;
  static PacketPtr deserialize(BinaryReader& reader);

  /// Diagnostic rendering: "stream=3 tag=7 src=12 [1, 2] \"x\"".
  std::string to_string() const;

 private:
  std::uint32_t stream_id_;
  std::int32_t tag_;
  std::uint32_t src_rank_;
  DataFormat format_;
  std::vector<DataValue> values_;
};

}  // namespace tbon
