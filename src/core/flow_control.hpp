// Credit-based flow control for tree channels.
//
// Every data-carrying channel direction gets a CreditGate holding a window
// of send credits.  The sender consumes one credit per application packet;
// the receiving NodeRuntime returns credits after consuming packets (in
// grant_quantum() chunks, so grants cost O(window) not O(packet)).  Threaded
// channels share the gate object and grant by direct call; process-mode
// channels return credits in-band with kTagCredit control frames that the
// sender's fd reader thread applies (never the possibly-blocked event-loop
// thread — this is what keeps the control plane deadlock-free).
//
// Control-stream and telemetry-stream packets are exempt: shutdown,
// heartbeats, credit grants themselves and metrics always flow, so a
// saturated data plane can never wedge the protocol that un-saturates it.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>

#include "common/queue.hpp"
#include "core/protocol.hpp"
#include "core/runtime.hpp"
#include "core/tenant.hpp"

namespace tbon {

class MetricsRegistry;

/// What a sender does when the channel's credit window is exhausted.
enum class FlowControlPolicy : std::uint8_t {
  kBlock,       ///< wait for credits (bounded by block_timeout_ms, then shed)
  kDropOldest,  ///< queue in a bounded ring, evicting the oldest packet
  kFailFast,    ///< throw FlowControlError at application send sites
};

constexpr const char* to_string(FlowControlPolicy policy) noexcept {
  switch (policy) {
    case FlowControlPolicy::kBlock: return "block";
    case FlowControlPolicy::kDropOldest: return "drop_oldest";
    case FlowControlPolicy::kFailFast: return "fail_fast";
  }
  return "?";
}

/// Per-network flow-control configuration (NetworkOptions::flow_control).
struct FlowControlOptions {
  bool enabled = false;
  /// Credit window: max application packets in flight per channel direction.
  std::uint32_t capacity = 64;
  /// Sender stops once in-flight reaches this (0 = auto: capacity).  Values
  /// below capacity shrink the effective window without changing grant size.
  std::uint32_t high_watermark = 0;
  /// Receiver returns credits once consumption drops outstanding credit to
  /// this level (0 = auto: capacity / 2).
  std::uint32_t low_watermark = 0;
  FlowControlPolicy policy = FlowControlPolicy::kBlock;
  /// Upper bound on one blocked send (block policy); on expiry the packet is
  /// shed and counted rather than deadlocking the caller.
  int block_timeout_ms = 5000;

  std::uint32_t effective_capacity() const noexcept {
    return capacity ? capacity : 1;
  }
  /// The credit window a gate is created with.
  std::uint32_t window() const noexcept {
    const std::uint32_t cap = effective_capacity();
    if (high_watermark && high_watermark < cap) return high_watermark;
    return cap;
  }
  std::uint32_t effective_low() const noexcept {
    const std::uint32_t w = window();
    const std::uint32_t low = low_watermark ? low_watermark : w / 2;
    return low < w ? low : w - 1;
  }
  /// Credits returned per grant: enough to refill from the low watermark.
  std::uint32_t grant_quantum() const noexcept {
    const std::uint32_t q = window() - effective_low();
    return q ? q : 1;
  }
};

/// The credit window of one channel direction.  Shared between the sender
/// (acquires) and whoever applies grants for the receiver — the receiving
/// runtime itself (threaded) or the sender-side fd reader thread (process).
class CreditGate {
 public:
  /// kThrottled: credits remain in the window, but this request's tenant
  /// budget or priority cap blocks it (policy treats it like exhaustion,
  /// charged to the tenant instead of the channel).
  enum class Acquire : std::uint8_t { kOk, kExhausted, kClosed, kThrottled };

  /// Everything the gate needs to know about one send to enforce priority
  /// and tenant caps.  The default request is uncapped — byte-identical to
  /// pre-tenancy behavior.
  struct Request {
    Priority priority = Priority::kNormal;
    std::uint16_t tenant = TenantTable::kNoTenant;
    std::uint64_t bytes = 0;        ///< payload bytes this send puts in flight
    std::uint32_t max_credits = 0;  ///< tenant inflight-credit cap (0 = none)
    std::uint64_t max_bytes = 0;    ///< tenant inflight-byte cap (0 = none)
  };

  /// kBulk may hold at most window - max(1, window/4) credits: a bulk flood
  /// always leaves at least a quarter of the window (and never less than one
  /// credit) free for higher classes.  Other classes are uncapped, so
  /// single-class traffic sees the full window exactly as before tenancy.
  static std::uint32_t bulk_cap_for(std::uint32_t window) noexcept {
    const std::uint32_t reserve = window / 4 ? window / 4 : 1;
    return window > reserve ? window - reserve : 1;
  }

  explicit CreditGate(std::uint32_t window)
      : window_(window ? window : 1),
        available_(window_),
        bulk_cap_(bulk_cap_for(window_)) {}

  /// Consume one credit if available without blocking.
  Acquire try_acquire() { return try_acquire(Request{}); }
  Acquire try_acquire(const Request& request);

  /// Consume one credit, waiting up to `timeout_ns`; kExhausted on timeout.
  Acquire acquire_for(std::int64_t timeout_ns) {
    return acquire_for(timeout_ns, Request{});
  }
  Acquire acquire_for(std::int64_t timeout_ns, const Request& request);

  /// Return `n` credits (clamped to the window) and wake blocked senders;
  /// runs the drain hook, outside the lock, after the credits land.
  void grant(std::uint32_t n);

  /// Re-baseline to a full fresh window (orphan re-adoption: in-flight
  /// packets on the old edge are gone, and so are their credits).
  void reset();

  /// Wake all waiters and fail further acquires (channel teardown).
  void close();

  std::uint32_t available() const;
  std::uint32_t in_flight() const;
  /// High-water mark of in-flight credits over the gate's lifetime.
  std::uint32_t in_flight_peak() const;
  std::uint32_t window() const;
  bool closed() const;

  /// Hook run (without the gate lock held) after every grant; wired to wake
  /// the sender's event loop so pending drop_oldest rings flush promptly.
  void set_drain_hook(std::function<void()> hook);

 private:
  /// One credit in flight, remembered so grants (which arrive in consumption
  /// order == send order) can be charged back to the right tenant/priority.
  struct Hold {
    std::uint16_t tenant;
    std::uint8_t priority;
    std::uint64_t bytes;
  };
  struct Inflight {
    std::uint32_t credits = 0;
    std::uint64_t bytes = 0;
  };

  bool admissible_locked(const Request& request) const;
  Acquire acquire_locked(const Request& request);

  mutable std::mutex mutex_;
  std::condition_variable credits_;
  std::function<void()> drain_hook_;
  std::uint32_t window_;
  std::uint32_t available_;
  std::uint32_t bulk_cap_;
  std::uint32_t peak_ = 0;
  bool closed_ = false;
  std::deque<Hold> holds_;
  std::map<std::uint16_t, Inflight> tenant_inflight_;
  std::array<std::uint32_t, kNumPriorities> prio_inflight_{};
};

/// Link decorator enforcing a CreditGate on the data plane.  Control and
/// telemetry packets bypass both the gate and the wrapper lock entirely.
///
/// With drop_oldest, packets that find no credit wait in a bounded pending
/// ring flushed — oldest first, so FIFO order is preserved — before any
/// direct send, by pump() (called from the sender's event loop when the
/// drain hook wakes it), and at close().  Shed packets (ring evictions,
/// block timeouts, interior fail_fast) are counted in fc_packets_shed; a
/// shed send still returns true, exactly like an injector-muted send.
class FlowControlledLink final : public Link {
 public:
  /// `tenants`, when given, classifies packets by stream id so sends run
  /// under the owning tenant's budget and priority class, and charges the
  /// tenant's counters; without it every send is an uncapped kNormal —
  /// exactly the pre-tenancy behavior.
  FlowControlledLink(std::shared_ptr<Link> inner, std::shared_ptr<CreditGate> gate,
                     const FlowControlOptions& options, MetricsRegistry* metrics,
                     bool fail_fast_throws,
                     std::shared_ptr<TenantTable> tenants = nullptr);
  ~FlowControlledLink() override;

  bool send(const PacketPtr& packet) override;
  bool send_batch(std::span<const PacketPtr> packets) override;
  /// Retry pending packets against the window, then flush the inner link.
  bool flush() override;
  void close() override;

  /// Flush pending packets against newly granted credits; never blocks (a
  /// held wrapper lock — e.g. a sender inside acquire_for — skips the pump).
  void pump();

  const std::shared_ptr<CreditGate>& gate() const noexcept { return gate_; }

 private:
  /// Tenant/priority classification + gate request for one packet.
  struct SendClass {
    CreditGate::Request request;
    std::uint16_t tenant = TenantTable::kNoTenant;
  };

  SendClass classify(const Packet& packet) const;
  bool flush_pending_locked();
  bool send_with_credit_locked(const PacketPtr& packet, const SendClass& cls);
  bool send_unavailable_locked(const PacketPtr& packet, const SendClass& cls,
                               CreditGate::Acquire acquired);
  void push_pending_locked(const PacketPtr& packet, Priority priority);
  std::size_t drop_all_pending_locked();
  void count_shed(std::uint64_t n, std::uint16_t tenant = TenantTable::kNoTenant);

  std::shared_ptr<Link> inner_;
  std::shared_ptr<CreditGate> gate_;
  FlowControlOptions options_;
  MetricsRegistry* metrics_;
  bool fail_fast_throws_;
  std::shared_ptr<TenantTable> tenants_;

  std::mutex mutex_;  ///< serializes data-plane sends and the pending rings
  /// drop_oldest rings, one per priority class, flushed control-first and
  /// bounded to one window in total; eviction takes from the lowest-priority
  /// non-empty class so queued bulk dies before queued high.
  std::array<std::deque<PacketPtr>, kNumPriorities> pending_;
  std::size_t pending_count_ = 0;
  std::atomic<bool> has_pending_{false};
};

/// True for packets that bypass flow control (control stream, telemetry).
inline bool flow_control_exempt(const Packet& packet) noexcept {
  return packet.stream_id() == kControlStream ||
         packet.stream_id() == kTelemetryStream;
}

}  // namespace tbon
