// Runtime plumbing shared by the threaded and multi-process networks:
// envelopes (packet + origin), links (one direction of a FIFO channel) and
// per-node metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/queue.hpp"
#include "core/packet.hpp"
#include "telemetry/metrics.hpp"

namespace tbon {

/// Where an envelope entered the node.
enum class Origin : std::uint8_t { kParent, kChild };

/// One unit of work in a node's inbox.  A null packet is the EOF marker:
/// the peer on that side closed its end of the channel (used for failure
/// detection and teardown) — unless `batch` is set, in which case the
/// envelope carries a coalesced multi-packet batch (packet stays null) and
/// must be checked before the EOF interpretation.
struct Envelope {
  Origin origin = Origin::kParent;
  /// Child slot when origin == kChild; the sender's parent-channel epoch
  /// when origin == kParent (re-adoption discards envelopes from a previous
  /// parent by comparing this against the receiver's current epoch).
  std::uint32_t child_slot = 0;
  PacketPtr packet;
  /// A coalesced batch delivered as one unit (one wire frame / one queue
  /// slot).  Never empty when set; never contains control or telemetry
  /// packets (the coalescer flushes around those).
  std::shared_ptr<const std::vector<PacketPtr>> batch;
};

using Inbox = BoundedQueue<Envelope>;
using InboxPtr = std::shared_ptr<Inbox>;

/// The sending half of one direction of a FIFO channel.
class Link {
 public:
  virtual ~Link() = default;

  /// Enqueue a packet; returns false when the peer is gone.
  virtual bool send(const PacketPtr& packet) = 0;

  /// Enqueue several packets, preserving order.  Transports that can encode
  /// a multi-packet wire frame override this (FdLink, NetLink, InprocLink);
  /// the default is semantically identical per-packet sends.  Returns false
  /// when any send failed (the peer is gone).
  virtual bool send_batch(std::span<const PacketPtr> packets) {
    bool ok = true;
    for (const PacketPtr& packet : packets) ok = send(packet) && ok;
    return ok;
  }

  /// Deliver anything buffered inside the link stack right now.  Most links
  /// transmit on send and have nothing to do; a coalescing link overrides
  /// this to emit its buffer.  Returns false when the peer is gone.
  virtual bool flush() { return true; }

  /// Signal EOF to the peer (idempotent).
  virtual void close() = 0;
};

using LinkPtr = std::unique_ptr<Link>;

/// In-process link: pushes envelopes straight into the peer node's inbox.
/// Multicast through several InprocLinks shares one immutable Packet object
/// — the "counted packet references" / zero-copy path of the paper.
class InprocLink final : public Link {
 public:
  /// `origin`/`child_slot` describe how the *receiver* sees this link.
  InprocLink(InboxPtr target, Origin origin, std::uint32_t child_slot)
      : target_(std::move(target)), origin_(origin), child_slot_(child_slot) {}

  bool send(const PacketPtr& packet) override {
    return target_->push(Envelope{origin_, child_slot_, packet});
  }

  bool send_batch(std::span<const PacketPtr> packets) override {
    if (packets.empty()) return true;
    if (packets.size() == 1) return send(packets.front());
    auto batch = std::make_shared<const std::vector<PacketPtr>>(packets.begin(),
                                                                packets.end());
    return target_->push(Envelope{origin_, child_slot_, nullptr, std::move(batch)});
  }

  void close() override {
    if (!closed_.exchange(true)) {
      // EOF marker; a failed push means the peer is already gone.
      target_->push(Envelope{origin_, child_slot_, nullptr});
    }
  }

 private:
  InboxPtr target_;
  Origin origin_;
  std::uint32_t child_slot_;
  std::atomic<bool> closed_{false};
};

/// Counters maintained by every node; readable live (relaxed atomics).
/// Historically a six-field struct, now the full telemetry registry —
/// same update discipline, many more instruments.
using NodeMetrics = MetricsRegistry;

/// Plain-value snapshot of NodeMetrics (now the full telemetry record;
/// the original six fields kept their names).
using NodeMetricsSnapshot = NodeTelemetry;

}  // namespace tbon
