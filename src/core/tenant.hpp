// Multi-tenant stream classification — priority classes, per-tenant QoS
// budgets, and the per-node TenantTable that links/executors consult.
//
// Many applications share one tree (Benoit et al., "Resource Allocation for
// Multiple Concurrent In-Network Stream-Processing Applications"): each
// stream is opened under a topic path, tagged with a priority class and a
// tenant name, and every node keeps a small table mapping stream ids to
// (priority, tenant) so the send path and the executor can make tenant-aware
// decisions without parsing packets.
//
// The three knobs:
//
//  * Priority — drain order.  kControl (recovery, credits, telemetry) always
//    goes first; kHigh / kNormal / kBulk share the remainder by weight, so a
//    bulk flood can delay but never starve high-priority traffic.
//  * TenantOptions — a per-tenant budget: a share of each channel's credit
//    window, a cap on inflight payload bytes, and a priority ceiling that
//    clamps whatever priority the tenant asks for.
//  * TenantTelemetry — per-tenant counters (packets/bytes sent, sends
//    throttled, packets shed) rolled up tree-wide by the collector.
//
// This header is dependency-light on purpose: protocol.hpp includes it so
// StreamSpec can carry a Priority, so it must not include protocol.hpp.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"  // TenantTelemetry (a telemetry-layer record)

namespace tbon {

/// Drain-order class for a stream's packets.  Lower value = drained first.
/// kControl is reserved for the runtime (control stream, telemetry stream,
/// credit grants); application streams pick from kHigh / kNormal / kBulk.
enum class Priority : std::uint8_t {
  kControl = 0,
  kHigh = 1,
  kNormal = 2,
  kBulk = 3,
};

inline constexpr std::size_t kNumPriorities = 4;

inline const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kControl: return "control";
    case Priority::kHigh: return "high";
    case Priority::kNormal: return "normal";
    case Priority::kBulk: return "bulk";
  }
  return "?";
}

/// Per-tenant QoS budget, in the typed-builder style of BatchingOptions:
///
///   TenantOptions().credit_share(0.25).max_inflight_bytes(1 << 20)
///                  .priority_ceiling(Priority::kNormal)
///
/// The default budget is unconstrained: full credit share, no byte cap, and
/// a kHigh ceiling (kControl is never grantable to applications).
class TenantOptions {
 public:
  TenantOptions() = default;

  /// Fraction (0, 1] of each channel's credit window this tenant may hold
  /// in flight.  Values outside (0, 1] are clamped.
  TenantOptions& credit_share(double share) {
    credit_share_ = share <= 0.0 ? 1.0 : (share > 1.0 ? 1.0 : share);
    return *this;
  }

  /// Cap on payload bytes this tenant may have credit-inflight per channel
  /// (0 = unlimited).  A tenant at its cap is throttled, not shed, under the
  /// block policy; at least one packet is always admitted so a tiny cap
  /// cannot wedge the tenant entirely.
  TenantOptions& max_inflight_bytes(std::uint64_t bytes) {
    max_inflight_bytes_ = bytes;
    return *this;
  }

  /// Highest priority class this tenant's streams may claim; open_stream
  /// clamps the spec's priority to this.
  TenantOptions& priority_ceiling(Priority ceiling) {
    priority_ceiling_ = ceiling == Priority::kControl ? Priority::kHigh : ceiling;
    return *this;
  }

  double credit_share() const noexcept { return credit_share_; }
  std::uint64_t max_inflight_bytes() const noexcept { return max_inflight_bytes_; }
  Priority priority_ceiling() const noexcept { return priority_ceiling_; }

 private:
  double credit_share_ = 1.0;
  std::uint64_t max_inflight_bytes_ = 0;  ///< 0 = unlimited
  Priority priority_ceiling_ = Priority::kHigh;
};

/// The front-end's tenant roster: named budgets handed to
/// NetworkOptions::tenancy.  Tenants not listed here get the default
/// (unconstrained) TenantOptions.
class TenancyOptions {
 public:
  TenancyOptions() = default;

  TenancyOptions& tenant(std::string name, TenantOptions budget) {
    budgets_[std::move(name)] = budget;
    return *this;
  }

  /// Budget for `name`, or nullptr when the tenant is not listed.
  const TenantOptions* find(const std::string& name) const noexcept {
    const auto it = budgets_.find(name);
    return it == budgets_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, TenantOptions>& budgets() const noexcept {
    return budgets_;
  }

 private:
  std::map<std::string, TenantOptions> budgets_;
};

/// Per-node registry mapping stream ids to (priority, tenant) and tenants to
/// budgets + counters.  Populated by handle_new_stream when the stream
/// announcement arrives, consulted by FlowControlledLink on every send and by
/// the executor when pinning a stream to a shard.  Thread-safe; the counter
/// cells are atomics at stable addresses so note_send stays lock-light.
class TenantTable {
 public:
  /// Sentinel tenant index: stream has no tenant (or is unknown).
  static constexpr std::uint16_t kNoTenant = 0xFFFF;

  /// Classification of one stream, resolved once per send.
  struct StreamClass {
    Priority priority = Priority::kNormal;
    std::uint16_t tenant = kNoTenant;
  };

  /// Register `stream_id` under `priority` / `tenant_name` (empty = no
  /// tenant) with `budget`.  Idempotent: re-announcements (adoption replay)
  /// keep the first registration's tenant slot and refresh the budget.
  void register_stream(std::uint32_t stream_id, Priority priority,
                       const std::string& tenant_name, const TenantOptions& budget);

  /// Drop a stream's classification (tenant counters are kept: telemetry is
  /// monotonic).
  void forget_stream(std::uint32_t stream_id);

  /// Priority of `stream_id`.  The control and telemetry streams are always
  /// kControl; unknown streams default to kNormal.
  Priority priority_of(std::uint32_t stream_id) const;

  /// Both classification fields in one lookup.
  StreamClass classify(std::uint32_t stream_id) const;

  /// Budget for tenant index `tenant` (kNoTenant or out of range returns the
  /// default unconstrained budget).
  TenantOptions budget(std::uint16_t tenant) const;

  /// Counter bumps, charged to `tenant` (kNoTenant is a no-op).
  void note_send(std::uint16_t tenant, std::uint64_t bytes) noexcept;
  void note_throttled(std::uint16_t tenant) noexcept;
  void note_shed(std::uint16_t tenant, std::uint64_t packets = 1) noexcept;

  /// Snapshot of every tenant's counters, in registration order.
  std::vector<TenantTelemetry> snapshot() const;

 private:
  struct Tenant {
    std::string name;
    TenantOptions budget;
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> bytes{0};
    std::atomic<std::uint64_t> sends_throttled{0};
    std::atomic<std::uint64_t> packets_shed{0};
  };

  Tenant* tenant_cell(std::uint16_t tenant) const noexcept;

  mutable std::mutex mutex_;
  std::map<std::uint32_t, StreamClass> streams_;
  std::map<std::string, std::uint16_t> tenant_index_;
  // unique_ptr so counter addresses survive vector growth.
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

using TenantTablePtr = std::shared_ptr<TenantTable>;

}  // namespace tbon
