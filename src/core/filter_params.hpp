// Typed per-stream filter parameters.
//
// Replaces the raw space-separated "key=value key=value" string that
// StreamOptions::params used to be: a FilterParams is built with typed
// set() calls, validated at the call site (ParseError on keys/values that
// could not round-trip), and serialized to the unchanged wire form with
// to_wire() — so filters keep reading FilterContext::params exactly as
// before and old captures of the wire format stay valid.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tbon {

class FilterParams {
 public:
  FilterParams() = default;

  /// Parse the legacy space-separated wire form.  New code should build
  /// params with set(); this exists so pre-redesign call sites keep
  /// compiling during migration.
  [[deprecated("build FilterParams with set(key, value) instead of a raw string")]]
  FilterParams(std::string_view wire) : FilterParams(from_wire(wire)) {}  // NOLINT(google-explicit-constructor)

  /// Typed setters; all return *this for chaining.  Keys must be non-empty
  /// and neither keys nor values may contain ' ' or '=' (ParseError).
  FilterParams& set(std::string key, std::string value);
  FilterParams& set(std::string key, std::string_view value) {
    return set(std::move(key), std::string(value));
  }
  FilterParams& set(std::string key, const char* value) {
    return set(std::move(key), std::string(value));
  }
  FilterParams& set(std::string key, std::int64_t value);
  FilterParams& set(std::string key, int value) {
    return set(std::move(key), static_cast<std::int64_t>(value));
  }
  FilterParams& set(std::string key, double value);
  FilterParams& set(std::string key, bool value);

  bool empty() const noexcept { return values_.size() == 0; }
  bool has(const std::string& key) const { return values_.count(key) != 0; }

  /// Serialize to the wire form carried in StreamSpec::params: key=value
  /// pairs, space-separated, sorted by key.
  std::string to_wire() const;

  /// Inverse of to_wire() (non-deprecated spelling of the parsing path,
  /// used internally and by the compat layer).
  static FilterParams from_wire(std::string_view wire);

  friend bool operator==(const FilterParams&, const FilterParams&) = default;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tbon
