#include "core/fd_link.hpp"

#include "common/archive.hpp"
#include "common/log.hpp"

namespace tbon {

bool FdLink::send(const PacketPtr& packet) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return false;
  try {
    BinaryWriter writer;
    packet->serialize(writer);
    write_frame(fd_, writer.bytes());
    if (metrics_ != nullptr) {
      metrics_->wire_bytes_out.fetch_add(writer.bytes().size(),
                                         std::memory_order_relaxed);
    }
    return true;
  } catch (const TransportError& error) {
    TBON_DEBUG("fd link send failed: " << error.what());
    closed_ = true;
    return false;
  }
}

void FdLink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!closed_) {
    closed_ = true;
    shutdown_write(fd_);
  }
}

std::jthread start_fd_reader(int fd, InboxPtr inbox, Origin origin,
                             std::uint32_t child_slot, MetricsRegistry* metrics) {
  return std::jthread([fd, inbox = std::move(inbox), origin, child_slot, metrics] {
    try {
      while (auto frame = read_frame(fd)) {
        if (metrics != nullptr) {
          metrics->wire_bytes_in.fetch_add(frame->size(), std::memory_order_relaxed);
        }
        BinaryReader reader(*frame);
        inbox->push(Envelope{origin, child_slot, Packet::deserialize(reader)});
      }
    } catch (const std::exception& error) {
      TBON_DEBUG("fd reader stopping: " << error.what());
    }
    // EOF (orderly or not): tell the runtime the peer is gone.
    inbox->push(Envelope{origin, child_slot, nullptr});
  });
}

}  // namespace tbon
