#include "core/fd_link.hpp"

#include <atomic>

#include "common/archive.hpp"
#include "common/buffer.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "core/coalesce.hpp"
#include "core/flow_control.hpp"
#include "core/protocol.hpp"

namespace tbon {
namespace {

std::atomic<bool> g_fd_zero_copy{true};

}  // namespace

void set_fd_zero_copy(bool enabled) noexcept {
  g_fd_zero_copy.store(enabled, std::memory_order_relaxed);
}

bool fd_zero_copy() noexcept {
  return g_fd_zero_copy.load(std::memory_order_relaxed);
}

bool FdLink::send(const PacketPtr& packet) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return false;
  try {
    std::size_t frame_bytes = 0;
    if (fd_zero_copy()) {
      // Wire-backed packets (a relay hop) go out as one verbatim segment;
      // owned packets writev header scratch + in-place payload segments.
      // The packet stays alive across the call, which is what keeps the
      // segment list's external pointers valid.
      SegmentWriter writer;
      packet->serialize_segments(writer);
      write_frame_segments(fd_, writer.segments(), writer.size());
      frame_bytes = writer.size();
    } else {
      BinaryWriter writer;
      packet->serialize(writer);
      write_frame(fd_, writer.bytes());
      frame_bytes = writer.bytes().size();
    }
    if (metrics_ != nullptr) {
      metrics_->wire_bytes_out.fetch_add(frame_bytes, std::memory_order_relaxed);
    }
    return true;
  } catch (const TransportError& error) {
    TBON_DEBUG("fd link send failed: " << error.what());
    closed_ = true;
    return false;
  }
}

bool FdLink::send_batch(std::span<const PacketPtr> packets) {
  if (packets.empty()) return true;
  // A one-packet batch gains nothing over the plain (zero-copy capable)
  // single-frame path, and keeps single sends byte-identical to the
  // pre-batching wire form.
  if (packets.size() == 1) return send(packets.front());
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return false;
  try {
    const Bytes frame = encode_batch_frame(packets);
    write_frame(fd_, frame);
    if (metrics_ != nullptr) {
      metrics_->wire_bytes_out.fetch_add(frame.size(), std::memory_order_relaxed);
    }
    return true;
  } catch (const TransportError& error) {
    TBON_DEBUG("fd link batch send failed: " << error.what());
    closed_ = true;
    return false;
  }
}

void FdLink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!closed_) {
    closed_ = true;
    shutdown_write(fd_);
  }
}

namespace {

/// Apply (or reject) an in-band credit grant on the reader thread.
void consume_credit_frame(const Packet& packet, const CreditSink& sink,
                          MetricsRegistry* metrics) {
  try {
    const std::uint32_t count = credit_packet_count(packet);
    const std::uint32_t channel = credit_packet_channel(packet);
    if (!sink.gate || channel != sink.channel_id) {
      throw CodecError("stale or unsinkable credit grant");
    }
    sink.gate->grant(count);
  } catch (const std::exception& error) {
    // Malformed, stale or unsinkable: count and drop.  Never let a hostile
    // grant frame tear down the reader (and with it the whole channel).
    TBON_DEBUG("rejecting credit grant: " << error.what());
    if (metrics != nullptr) {
      metrics->fc_invalid_grants.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace

std::jthread start_fd_reader(int fd, InboxPtr inbox, Origin origin,
                             std::uint32_t child_slot, MetricsRegistry* metrics,
                             CreditSink credit_sink) {
  return std::jthread([fd, inbox = std::move(inbox), origin, child_slot, metrics,
                       credit_sink = std::move(credit_sink)] {
    try {
      while (auto frame = read_frame(fd)) {
        if (metrics != nullptr) {
          metrics->wire_bytes_in.fetch_add(frame->size(), std::memory_order_relaxed);
        }
        if (is_batch_frame(*frame)) {
          std::vector<PacketPtr> packets;
          try {
            packets = decode_batch_frame(std::move(*frame), fd_zero_copy());
          } catch (const CodecError& error) {
            // Frame boundaries are intact (length-prefixed stream), so a
            // malformed batch is dropped whole — no envelopes, no credits —
            // and the reader keeps going.
            TBON_DEBUG("dropping malformed batch frame: " << error.what());
            if (metrics != nullptr) {
              metrics->batch_frames_rejected.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          if (metrics != nullptr) {
            metrics->batch_frames_in.fetch_add(1, std::memory_order_relaxed);
            metrics->batch_packets_in.fetch_add(packets.size(),
                                                std::memory_order_relaxed);
          }
          inbox->push(Envelope{
              origin, child_slot, nullptr,
              std::make_shared<const std::vector<PacketPtr>>(std::move(packets))});
          continue;
        }
        PacketPtr packet;
        if (fd_zero_copy()) {
          // Promote the frame to a refcounted buffer and let the packet
          // alias it: no payload copy here, and none later if the packet is
          // only routed onward (the frame is relayed verbatim).
          auto buffer = std::make_shared<const Buffer>(std::move(*frame));
          packet = Packet::deserialize_view(BufferView(buffer, 0, buffer->size()));
        } else {
          BinaryReader reader(*frame);
          packet = Packet::deserialize(reader);
        }
        if (packet->stream_id() == kControlStream && packet->tag() == kTagCredit) {
          consume_credit_frame(*packet, credit_sink, metrics);
          continue;
        }
        inbox->push(Envelope{origin, child_slot, packet});
      }
    } catch (const std::exception& error) {
      TBON_DEBUG("fd reader stopping: " << error.what());
    }
    // EOF (orderly or not): tell the runtime the peer is gone.
    inbox->push(Envelope{origin, child_slot, nullptr});
  });
}

}  // namespace tbon
