// Filter registry: name -> factory for transformation filters and
// synchronization policies.
//
// MRNet "allows developers to extend the filter set with application-
// specific filters ... an interface similar to dlopen is used to dynamically
// specify and load the filters into the running communication processes."
// We provide both:
//   * static registration (register_transform / register_sync, or the
//     TBON_REGISTER_* convenience macros), and
//   * load_library(path): dlopen() the shared object and call its exported
//     `tbon_register_filters(tbon::FilterRegistry*)`.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/filter.hpp"

namespace tbon {

class FilterRegistry {
 public:
  /// The process-wide registry, with built-ins pre-registered.
  static FilterRegistry& instance();

  FilterRegistry() = default;
  FilterRegistry(const FilterRegistry&) = delete;
  FilterRegistry& operator=(const FilterRegistry&) = delete;

  /// Register a factory; throws FilterError on duplicate names.
  void register_transform(const std::string& name, TransformFactory factory);
  void register_sync(const std::string& name, SyncFactory factory);

  bool has_transform(const std::string& name) const;
  bool has_sync(const std::string& name) const;

  /// Instantiate a filter; throws FilterError for unknown names.
  std::unique_ptr<TransformFilter> make_transform(const std::string& name,
                                                  const FilterContext& ctx) const;
  std::unique_ptr<SyncPolicy> make_sync(const std::string& name,
                                        const FilterContext& ctx) const;

  /// dlopen `path` and invoke its `tbon_register_filters` entry point so the
  /// library can add filters to this registry; throws FilterError on failure.
  void load_library(const std::string& path);

  std::vector<std::string> transform_names() const;
  std::vector<std::string> sync_names() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, TransformFactory> transforms_;
  std::map<std::string, SyncFactory> syncs_;
  std::vector<void*> loaded_libraries_;
  std::set<std::string> loaded_paths_;
};

}  // namespace tbon

/// Entry point exported by dynamically loadable filter libraries:
///   extern "C" void tbon_register_filters(tbon::FilterRegistry* registry);
extern "C" {
typedef void (*tbon_register_filters_fn)(tbon::FilterRegistry*);
}
