// Links over OS file descriptors — the multi-process transport.
//
// Each tree edge is one full-duplex socketpair.  The sending half (FdLink)
// serializes packets into length-prefixed frames; the receiving half is a
// reader thread that deserializes frames and pushes envelopes into the
// owning node's inbox, so NodeRuntime is oblivious to the transport.
// Kernel socket buffers provide the back-pressure that bounded queues
// provide in-process.
#pragma once

#include <mutex>
#include <thread>

#include "core/runtime.hpp"
#include "transport/fd.hpp"

namespace tbon {

/// Process-wide toggle for the zero-copy fd path (on by default).  When on,
/// FdLink relays wire-backed packets verbatim and writev's scatter-gather
/// segments for owned ones, and the reader deserializes frames into
/// buffer-aliasing view packets.  Off restores the copying serialize/
/// deserialize pipeline — kept so the benches can measure the difference.
/// Set before Network::create (forked children inherit the value).
void set_fd_zero_copy(bool enabled) noexcept;
bool fd_zero_copy() noexcept;

/// Sends packets as serialized frames on a file descriptor.
/// Thread-safe: a back-end's application thread and its runtime share one.
class FdLink final : public Link {
 public:
  /// Does not own the fd; the owner keeps it open until links and readers
  /// are done.  `metrics`, when given, receives wire_bytes_out accounting
  /// (frame payload bytes actually written); it must outlive the link.
  explicit FdLink(int fd, MetricsRegistry* metrics = nullptr)
      : fd_(fd), metrics_(metrics) {}

  bool send(const PacketPtr& packet) override;
  /// Write all packets as one multi-packet batch frame (single syscall);
  /// the peer's reader delivers them as one batch envelope.
  bool send_batch(std::span<const PacketPtr> packets) override;
  void close() override;

 private:
  std::mutex mutex_;
  int fd_;
  MetricsRegistry* metrics_;
  bool closed_ = false;
};

/// Adapter giving several owners (a back-end handle and its runtime) one
/// shared, mutex-protected FdLink — two independent FdLinks on the same fd
/// could interleave partial frames.
class SharedLink final : public Link {
 public:
  explicit SharedLink(std::shared_ptr<Link> inner) : inner_(std::move(inner)) {}
  bool send(const PacketPtr& packet) override { return inner_->send(packet); }
  bool send_batch(std::span<const PacketPtr> packets) override {
    return inner_->send_batch(packets);
  }
  bool flush() override { return inner_->flush(); }
  void close() override { inner_->close(); }

 private:
  std::shared_ptr<Link> inner_;
};

class CreditGate;

/// Where a reader thread delivers in-band flow-control credit grants: the
/// gate guarding the *opposite* direction of the same fd (what this process
/// sends on it).  Applying grants on the reader thread — never the event
/// loop, which may itself be blocked on those credits — keeps the credit
/// control plane deadlock-free.  Grants with a mismatched channel id, or
/// malformed ones, are rejected and counted (fc_invalid_grants).
struct CreditSink {
  std::shared_ptr<CreditGate> gate;
  std::uint32_t channel_id = 0;
};

/// Start a reader thread: frames from `fd` become envelopes in `inbox`
/// tagged (origin, child_slot); EOF or a transport error becomes the null
/// EOF envelope.  `metrics`, when given, receives wire_bytes_in accounting
/// and must outlive the thread.  kTagCredit control frames are consumed
/// in-place against `credit_sink` (or dropped when no sink), never enqueued.
std::jthread start_fd_reader(int fd, InboxPtr inbox, Origin origin,
                             std::uint32_t child_slot,
                             MetricsRegistry* metrics = nullptr,
                             CreditSink credit_sink = {});

}  // namespace tbon
