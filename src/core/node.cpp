#include "core/node.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/log.hpp"
#include "common/timer.hpp"
#include "common/trace.hpp"

namespace tbon {
namespace {

// The deprecated inline-dispatch knob stays honoured until it is removed;
// this is the one place the runtime reads it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::size_t inline_cutoff(const ExecutionOptions& options) noexcept {
  return options.inline_below_bytes;
}
#pragma GCC diagnostic pop

}  // namespace

NodeRuntime::NodeRuntime(const Topology& topology, NodeId id, FilterRegistry& registry,
                         Delegate* delegate)
    : topology_(topology),
      id_(id),
      role_(topology.is_root(id)   ? NodeRole::kRoot
            : topology.is_leaf(id) ? NodeRole::kLeaf
                                   : NodeRole::kInternal),
      registry_(registry),
      delegate_(delegate),
      inbox_(std::make_shared<Inbox>(/*capacity=*/4096)),
      child_alive_(topology.node(id).children.size(), true),
      child_contributing_(topology.node(id).children.size(), true),
      child_acked_(topology.node(id).children.size(), false),
      live_children_(topology.node(id).children.size()),
      contributing_children_(topology.node(id).children.size()),
      next_dynamic_slot_(
          static_cast<std::uint32_t>(topology.node(id).children.size())) {
  // Peer-message routing table: which child slot serves which back-end rank.
  const auto& children = topology_.node(id_).children;
  for (std::uint32_t slot = 0; slot < children.size(); ++slot) {
    for (const std::uint32_t rank : topology_.subtree_leaf_ranks(children[slot])) {
      rank_routes_[rank] = slot;
    }
  }
}

std::uint32_t NodeRuntime::reserve_child_slot() noexcept {
  return next_dynamic_slot_.fetch_add(1, std::memory_order_relaxed);
}

void NodeRuntime::request_attach(std::uint32_t slot, std::uint32_t backend_rank,
                                 LinkPtr link) {
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    pending_child_ops_.push_back({PendingChildOp::Kind::kAttach, slot,
                                  backend_rank, {}, std::move(link)});
  }
  inbox_->push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
}

void NodeRuntime::request_adopt(std::uint32_t slot, std::vector<std::uint32_t> ranks,
                                LinkPtr link) {
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    pending_child_ops_.push_back({PendingChildOp::Kind::kAdopt, slot, 0,
                                  std::move(ranks), std::move(link)});
  }
  inbox_->push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
}

void NodeRuntime::request_route(std::uint32_t backend_rank, std::uint32_t slot) {
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    pending_child_ops_.push_back(
        {PendingChildOp::Kind::kRoute, slot, backend_rank, {}, nullptr});
  }
  inbox_->push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
}

void NodeRuntime::request_unroute(std::uint32_t backend_rank) {
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    pending_child_ops_.push_back(
        {PendingChildOp::Kind::kUnroute, 0, backend_rank, {}, nullptr});
  }
  inbox_->push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
}

void NodeRuntime::request_detach(std::uint32_t slot) {
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    pending_child_ops_.push_back(
        {PendingChildOp::Kind::kDetach, slot, 0, {}, nullptr});
  }
  inbox_->push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
}

void NodeRuntime::set_flow_control(const FlowControlOptions& options) {
  fc_ = options;
  if (!fc_.enabled) return;
  // With credits on, per-channel data in flight is bounded by the window, so
  // an inbox sized over all channels (+ slack for exempt control/telemetry
  // traffic and wakeup markers) makes producer pushes effectively
  // non-blocking: backpressure is carried by credits, not by inbox blocking.
  const std::size_t channels = child_alive_.size() + 2;
  inbox_->resize(std::max<std::size_t>(4096, channels * fc_.window() + 1024));
}

void NodeRuntime::set_parent_granter(std::function<void(std::uint32_t)> granter) {
  std::lock_guard<std::mutex> lock(fc_mutex_);
  fc_parent_.granter = std::move(granter);
  fc_parent_.consumed = 0;
  fc_parent_.weighted = 0.0;
}

void NodeRuntime::set_child_granter(std::uint32_t slot,
                                    std::function<void(std::uint32_t)> granter) {
  std::lock_guard<std::mutex> lock(fc_mutex_);
  auto& channel = fc_children_[slot];
  channel.granter = std::move(granter);
  channel.consumed = 0;
  channel.weighted = 0.0;
}

void NodeRuntime::register_fc_link(std::shared_ptr<FlowControlledLink> link) {
  std::lock_guard<std::mutex> lock(fc_mutex_);
  fc_pump_.push_back(std::move(link));
}

void NodeRuntime::set_execution(const ExecutionOptions& options) {
  exec_options_ = options;
}

double NodeRuntime::grant_share(std::uint32_t stream_id) const {
  const auto cls = tenants_->classify(stream_id);
  if (cls.tenant == TenantTable::kNoTenant) return 1.0;
  return tenants_->budget(cls.tenant).credit_share();
}

void NodeRuntime::note_consumed(Origin origin, std::uint32_t slot,
                                std::uint32_t count, double share) {
  if (!fc_.enabled || count == 0) return;
  std::function<void(std::uint32_t)> granter;
  std::uint32_t grant = 0;
  bool weighted_pace = false;
  {
    std::lock_guard<std::mutex> lock(fc_mutex_);
    FcChannel* channel = nullptr;
    if (origin == Origin::kParent) {
      channel = &fc_parent_;
    } else {
      const auto it = fc_children_.find(slot);
      if (it != fc_children_.end()) channel = &it->second;
    }
    // Channels without a granter (e.g. the front-end's direct push into the
    // root inbox) are not flow-controlled; nothing to account.
    if (!channel || !channel->granter) return;
    channel->consumed += count;
    channel->weighted += static_cast<double>(count) *
                         (share > 0.0 && share <= 1.0 ? share : 1.0);
    if (channel->consumed >= fc_.grant_quantum()) {
      // Weighted grant pacing: grants for a channel whose traffic belongs to
      // fractional-share tenants come in proportionally larger, rarer quanta
      // (effective quantum = quantum / mean share), so at a fan-in point the
      // per-child refill rate tracks tenant share instead of raw FIFO
      // consumption order.  Clamped to the window: a sender at its full
      // window must always be granted, so the channel can never wedge — and
      // flush_partial_grants still rescues remainders at quiescence.
      const double mean_share =
          channel->weighted / static_cast<double>(channel->consumed);
      const double quantum = static_cast<double>(fc_.grant_quantum());
      double effective = quantum;
      if (mean_share < 1.0) {
        effective = std::min(quantum / std::max(mean_share, 1e-6),
                             static_cast<double>(fc_.window()));
      }
      if (static_cast<double>(channel->consumed) >= effective) {
        grant = channel->consumed;
        weighted_pace = effective > quantum;
        channel->consumed = 0;
        channel->weighted = 0.0;
        granter = channel->granter;
      }
    }
  }
  if (grant) {
    metrics_.fc_credits_granted.fetch_add(grant, std::memory_order_relaxed);
    if (weighted_pace) {
      metrics_.fc_weighted_grants.fetch_add(1, std::memory_order_relaxed);
    }
    granter(grant);
  }
}

void NodeRuntime::flush_partial_grants() {
  // Quantum-sized grants strand sub-quantum remainders at quiescence, which
  // would leave a sender's last packets pending forever; an idle loop tick
  // returns whatever has been consumed so far.
  std::vector<std::pair<std::function<void(std::uint32_t)>, std::uint32_t>> due;
  {
    std::lock_guard<std::mutex> lock(fc_mutex_);
    if (fc_parent_.granter && fc_parent_.consumed) {
      due.emplace_back(fc_parent_.granter, fc_parent_.consumed);
      fc_parent_.consumed = 0;
      fc_parent_.weighted = 0.0;
    }
    for (auto& [slot, channel] : fc_children_) {
      if (channel.granter && channel.consumed) {
        due.emplace_back(channel.granter, channel.consumed);
        channel.consumed = 0;
        channel.weighted = 0.0;
      }
    }
  }
  for (const auto& [granter, grant] : due) {
    metrics_.fc_credits_granted.fetch_add(grant, std::memory_order_relaxed);
    granter(grant);
  }
}

void NodeRuntime::pump_fc_links() {
  std::lock_guard<std::mutex> lock(fc_mutex_);
  for (const auto& link : fc_pump_) link->pump();
}

void NodeRuntime::set_recovery(const HeartbeatConfig& config) { hb_config_ = config; }

void NodeRuntime::set_fault_injector(std::shared_ptr<FaultInjector> injector) {
  injector_ = std::move(injector);
}

void NodeRuntime::set_orphan_handler(std::function<bool(NodeRuntime&)> handler) {
  orphan_handler_ = std::move(handler);
}

void NodeRuntime::set_crash_handler(std::function<void()> handler) {
  crash_handler_ = std::move(handler);
}

void NodeRuntime::process_pending_attaches() {
  std::vector<PendingChildOp> ops;
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    ops.swap(pending_child_ops_);
  }
  // Strict request order.  An unroute+route pair queued by a subtree
  // migration re-points the rank in one drain without losing it, and a
  // detach requested after an attach of the same slot (rapid add+remove)
  // tears down the freshly wired child instead of no-opping on an
  // unwired slot and leaking a ghost live child.
  for (auto& op : ops) {
    switch (op.kind) {
      case PendingChildOp::Kind::kUnroute:
        rank_routes_.erase(op.backend_rank);
        break;
      case PendingChildOp::Kind::kRoute:
        rank_routes_[op.backend_rank] = op.slot;
        break;
      case PendingChildOp::Kind::kDetach:
        TBON_INFO("node " << id_ << " planned detach of child slot " << op.slot);
        note_child_gone(op.slot);
        break;
      case PendingChildOp::Kind::kAttach:
        TBON_INFO("node " << id_ << " attaching dynamic back-end rank "
                          << op.backend_rank << " at slot " << op.slot);
        wire_dynamic_child(op.slot, {op.backend_rank}, std::move(op.link));
        break;
      case PendingChildOp::Kind::kAdopt:
        TBON_INFO("node " << id_ << " adopting orphaned subtree serving "
                          << op.ranks.size() << " back-end rank(s) at slot "
                          << op.slot);
        wire_dynamic_child(op.slot, std::move(op.ranks), std::move(op.link));
        break;
    }
  }
}

void NodeRuntime::wire_dynamic_child(std::uint32_t slot,
                                     std::vector<std::uint32_t> ranks, LinkPtr link) {
  if (child_links_.size() <= slot) {
    child_links_.resize(slot + 1);
    child_alive_.resize(slot + 1, false);
    child_contributing_.resize(slot + 1, false);
    child_acked_.resize(slot + 1, false);
  }
  child_links_[slot] = std::move(link);
  child_alive_[slot] = true;
  child_acked_[slot] = false;
  ++live_children_;
  const bool was_empty = contributing_children_ == 0;
  if (!child_contributing_[slot]) {
    child_contributing_[slot] = true;
    ++contributing_children_;
  }
  // An emptied relay regaining its first member must re-arm the retired
  // wave-sync slot at its parent before any of the newcomer's data climbs
  // (both ride the same FIFO upstream link, so ordering is guaranteed).
  if (was_empty && role_ == NodeRole::kInternal && !shutting_down_) {
    notify_parent_membership(/*live=*/true);
  }
  for (const std::uint32_t rank : ranks) rank_routes_[rank] = slot;
  dynamic_slot_ranks_[slot] = std::move(ranks);
  if (liveness_) liveness_->ensure_child(slot, now_ns());
  const auto& slot_ranks = dynamic_slot_ranks_[slot];
  for (auto& [stream_id, stream] : streams_) {
    if (stream.slot_to_sync_index.size() <= slot) {
      stream.slot_to_sync_index.resize(slot + 1, -1);
    }
    const bool participates =
        stream.spec.endpoints.empty() ||
        std::any_of(slot_ranks.begin(), slot_ranks.end(),
                    [&](std::uint32_t rank) { return stream.spec.contains(rank); });
    if (participates && stream.slot_to_sync_index[slot] < 0) {
      const auto sync_index = stream.participating_slots.size();
      stream.slot_to_sync_index[slot] = static_cast<std::int32_t>(sync_index);
      stream.participating_slots.push_back(slot);
      if (stream.sync) apply_membership_change(stream, sync_index, /*added=*/true);
    }
    // Replay the announcement so the newcomer knows the stream exists.
    send_child(slot, stream.spec.to_packet());
  }
  if (shutting_down_) {
    send_child(slot, make_shutdown_packet());
    ++shutdown_acks_needed_;
  }
}

void NodeRuntime::run() {
  using namespace std::chrono_literals;
  if (hb_config_.enabled() && !liveness_) {
    liveness_ = std::make_unique<PeerLiveness>(
        hb_config_, role_ != NodeRole::kRoot && parent_link_ != nullptr,
        child_alive_.size(), now_ns());
  }
  // Leaves run no filters, so they never get a worker pool.
  if (exec_options_.enabled() && role_ != NodeRole::kLeaf && !executor_) {
    executor_ = std::make_unique<FilterExecutor>(exec_options_, &metrics_);
  }
  // At saturation this loop runs once per envelope, and per-iteration clock
  // reads are measurable overhead (telemetry arms a standing deadline, which
  // would otherwise cost a read before every pop).  One post-pop timestamp
  // serves the three polls and, slightly stale, the next wait computation:
  // it understates elapsed time by at most one handle_envelope, so a
  // deadline fires microseconds late — harmless at ms-scale deadlines.
  std::int64_t now = now_ns();
  while (!done_) {
    std::optional<Envelope> envelope;
    if (const auto deadline = earliest_deadline()) {
      const auto wait_ns = *deadline - now;
      if (wait_ns > 0) {
        envelope = inbox_->pop_for(std::chrono::nanoseconds(wait_ns));
      } else {
        envelope = inbox_->try_pop();
      }
    } else {
      envelope = inbox_->pop_for(200ms);
    }
    if (envelope) {
      handle_envelope(std::move(*envelope));
      if (crashed_) return;
    } else if (inbox_->closed() && inbox_->size() == 0) {
      // The node was killed (failure injection) or orphaned: signal EOF to
      // all peers and stop.
      TBON_DEBUG("node " << id_ << " inbox closed; exiting");
      dead_.store(true, std::memory_order_release);
      if (executor_) executor_->stop();
      close_all_links();
      return;
    } else if (fc_.enabled) {
      flush_partial_grants();  // idle: return sub-quantum credits
    }
    if (executor_) exec_drain_completions();
    if (fc_.enabled) pump_fc_links();
    now = now_ns();
    poll_timeouts(now);
    poll_liveness(now);
    poll_telemetry(now);
    if (crashed_) return;
  }
  dead_.store(true, std::memory_order_release);
  if (executor_) executor_->stop();
  close_all_links();
}

void NodeRuntime::handle_envelope(Envelope&& envelope) {
  if (envelope.origin == Origin::kParent && envelope.child_slot != parent_epoch_) {
    // A message from a previous parent (we were re-adopted since it was
    // sent).  Internal wakeup markers are epoch-agnostic; everything else —
    // in particular the old parent's EOF — must not reach the handlers, or
    // a stale EOF would re-orphan us out from under the new parent.
    const bool marker = envelope.packet &&
                        envelope.packet->stream_id() == kControlStream &&
                        envelope.packet->tag() == kTagAttachChild;
    if (!marker) {
      TBON_DEBUG("node " << id_ << " dropping stale parent envelope (epoch "
                         << envelope.child_slot << " != " << parent_epoch_ << ")");
      return;
    }
  }
  if (liveness_) {
    if (envelope.origin == Origin::kChild) {
      liveness_->note_recv_child(envelope.child_slot, now_ns());
    } else {
      liveness_->note_recv_parent(now_ns());
    }
  }
  if (envelope.origin == Origin::kParent && last_parent_hb_sent_ >= 0) {
    // First traffic from the parent since our last heartbeat: the channel
    // round trip is at most this long (heartbeat up + anything down).
    metrics_.heartbeat_rtt_ns.store(now_ns() - last_parent_hb_sent_,
                                    std::memory_order_relaxed);
    last_parent_hb_sent_ = -1;
  }

  if (envelope.batch) {
    // A coalesced run of data packets (the coalescer exempts control and
    // telemetry traffic, and wire decoding rejects them inside batch frames).
    // Checked before the EOF interpretation: a batch envelope also carries a
    // null `packet`.  With fault injection armed, take the per-packet path so
    // kill-at-data-packet-N hits the same packet batched or unbatched.
    const auto batch = std::move(envelope.batch);
    if (injector_) {
      for (const PacketPtr& packet : *batch) {
        handle_envelope(Envelope{envelope.origin, envelope.child_slot, packet});
        if (crashed_ || done_) return;
      }
      return;
    }
    if (envelope.origin == Origin::kChild) {
      handle_upstream_batch(envelope.child_slot, *batch);
    } else {
      for (const PacketPtr& packet : *batch) handle_downstream_data(packet);
    }
    return;
  }

  if (!envelope.packet) {
    // EOF marker from a peer.
    if (envelope.origin == Origin::kChild) {
      note_child_gone(envelope.child_slot);
    } else {
      handle_parent_lost();
    }
    return;
  }

  const Packet& packet = *envelope.packet;
  if (packet.stream_id() == kControlStream) {
    handle_control(envelope);
    return;
  }

  // Telemetry traffic is exempt from fault-injection counting: kill-at-
  // data-packet-N must hit the same application packet whether or not
  // telemetry is enabled.
  if (packet.stream_id() != kTelemetryStream && injector_ &&
      injector_->on_data_packet(id_) == FaultAction::kKill) {
    TBON_INFO("node " << id_ << " fault injection: crashing at data packet "
                      << injector_->data_packets(id_));
    crash();
    return;
  }

  // Crediting happens inside the data handlers: inline/dropped packets are
  // credited immediately, executor-dispatched ones when their filter work
  // completes (so worker-queue occupancy counts against the credit window).
  if (envelope.origin == Origin::kChild) {
    handle_upstream_data(envelope.child_slot, envelope.packet);
  } else {
    handle_downstream_data(envelope.packet);
  }
}

void NodeRuntime::handle_control(const Envelope& envelope) {
  const Packet& packet = *envelope.packet;
  switch (packet.tag()) {
    case kTagNewStream:
      handle_new_stream(StreamSpec::from_packet(packet));
      forward_down(envelope.packet);
      break;
    case kTagDeleteStream:
      handle_delete_stream(static_cast<std::uint32_t>(packet.get_i64(0)));
      forward_down(envelope.packet);
      break;
    case kTagLoadFilter:
      // Idempotent per process: the registry tracks loaded paths.
      try {
        registry_.load_library(packet.get_str(0));
      } catch (const FilterError& error) {
        TBON_ERROR("node " << id_ << ": " << error.what());
      }
      forward_down(envelope.packet);
      break;
    case kTagShutdown:
      if (!shutting_down_) handle_shutdown();
      break;
    case kTagShutdownAck:
      if (envelope.origin == Origin::kChild && shutdown_acks_needed_ > 0 &&
          envelope.child_slot < child_acked_.size() &&
          !child_acked_[envelope.child_slot]) {
        child_acked_[envelope.child_slot] = true;
        --shutdown_acks_needed_;
        maybe_finish_shutdown();
      }
      break;
    case kTagPeerMessage:
      route_peer_message(envelope);
      break;
    case kTagSubscribe:
      handle_subscription(envelope, /*added=*/true);
      break;
    case kTagUnsubscribe:
      handle_subscription(envelope, /*added=*/false);
      break;
    case kTagAttachChild:
      process_pending_attaches();
      break;
    case kTagHeartbeat:
      // Pure liveness traffic: receipt already credited the channel.
      metrics_.heartbeats_received.fetch_add(1, std::memory_order_relaxed);
      break;
    case kTagCredit:
      // Credit grants are consumed by fd reader threads (process mode) or
      // granted through shared gates (threaded); one reaching the event loop
      // is stale or crafted.  Count and drop — never forward.
      metrics_.fc_invalid_grants.fetch_add(1, std::memory_order_relaxed);
      break;
    case kTagDie:
      if (die_packet_target(packet) == id_) {
        TBON_INFO("node " << id_ << " fault injection: die request");
        crash();
      } else {
        forward_down(envelope.packet);
      }
      break;
    case kTagDetach:
      handle_detach(envelope);
      break;
    case kTagQuiesce:
      handle_quiesce(envelope);
      break;
    case kTagRehome:
      handle_rehome(envelope);
      break;
    case kTagReconfigAck:
      handle_reconfig_ack(envelope);
      break;
    case kTagMembership:
      handle_membership(envelope);
      break;
    default:
      TBON_WARN("node " << id_ << " dropping unknown control tag " << packet.tag());
  }
}

void NodeRuntime::handle_subscription(const Envelope& envelope, bool added) {
  const Packet& packet = *envelope.packet;
  std::string prefix;
  try {
    prefix = subscribe_packet_prefix(packet);
  } catch (const CodecError& error) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping malformed subscription: " << error.what());
    return;
  }
  const std::uint32_t rank = packet.src_rank();
  if (added) {
    subs_[prefix].insert(rank);
  } else {
    const auto it = subs_.find(prefix);
    if (it != subs_.end()) {
      it->second.erase(rank);
      if (it->second.empty()) subs_.erase(it);
    }
  }
  // Subscriptions only climb: every ancestor of the subscriber learns the
  // prefix (that is exactly the set of nodes that route data down to it),
  // and the root reports it to the front-end for subscriber_count /
  // wait_subscribers.  Re-sends are idempotent, so adoption replay is safe.
  if (role_ == NodeRole::kRoot) {
    if (delegate_ != nullptr) delegate_->on_subscription(prefix, rank, added);
  } else if (parent_link_) {
    send_parent(envelope.packet);
  }
}

void NodeRuntime::route_peer_message(const Envelope& envelope) {
  const Packet& wrapper = *envelope.packet;
  if (role_ == NodeRole::kLeaf) {
    // Arrived at the destination back-end.
    metrics_.peer_messages_routed.fetch_add(1, std::memory_order_relaxed);
    if (delegate_ != nullptr) delegate_->on_peer_message(unwrap_peer_packet(wrapper));
    return;
  }
  const std::uint32_t dst = peer_packet_destination(wrapper);
  const auto route = rank_routes_.find(dst);
  if (route != rank_routes_.end()) {
    const std::uint32_t slot = route->second;
    if (slot < child_links_.size() && child_links_[slot] && child_alive_[slot]) {
      metrics_.peer_messages_routed.fetch_add(1, std::memory_order_relaxed);
      send_child(slot, envelope.packet);
    } else {
      metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
      TBON_WARN("node " << id_ << " dropping peer message for dead subtree of rank "
                        << dst);
    }
    return;
  }
  // Not in this subtree: forward toward the root ("using the internal
  // process-tree to route back-end to back-end messages", paper §2.1).
  if (parent_link_) {
    metrics_.peer_messages_routed.fetch_add(1, std::memory_order_relaxed);
    send_parent(envelope.packet);
  } else {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping peer message for unknown rank " << dst);
  }
}

void NodeRuntime::handle_new_stream(const StreamSpec& spec) {
  if (streams_.count(spec.id) != 0) return;  // duplicate announcement

  StreamLocal stream;
  stream.spec = spec;

  // Classify the stream for every tenant-aware consumer on this node: the
  // sender-side flow-controlled links (which share this table) and the
  // executor's weighted drain.
  tenants_->register_stream(spec.id, spec.priority_class, spec.tenant_name,
                            spec.tenant_budget());

  const auto& children = topology_.node(id_).children;
  stream.slot_to_sync_index.assign(std::max(children.size(), child_links_.size()), -1);
  for (std::uint32_t slot = 0; slot < children.size(); ++slot) {
    const auto subtree_ranks = topology_.subtree_leaf_ranks(children[slot]);
    const bool participates =
        spec.endpoints.empty() ||
        std::any_of(subtree_ranks.begin(), subtree_ranks.end(),
                    [&](std::uint32_t rank) { return spec.contains(rank); });
    if (participates) {
      stream.slot_to_sync_index[slot] =
          static_cast<std::int32_t>(stream.participating_slots.size());
      stream.participating_slots.push_back(slot);
    }
  }
  // Dynamically wired children (attached back-ends and adopted subtrees,
  // slots beyond the static topology) join by their known rank sets; a slot
  // with no recorded ranks joins only all-endpoints streams.
  for (std::uint32_t slot = static_cast<std::uint32_t>(children.size());
       slot < child_links_.size(); ++slot) {
    if (!child_links_[slot]) continue;
    bool participates = spec.endpoints.empty();
    if (!participates) {
      const auto ranks = dynamic_slot_ranks_.find(slot);
      participates = ranks != dynamic_slot_ranks_.end() &&
                     std::any_of(ranks->second.begin(), ranks->second.end(),
                                 [&](std::uint32_t rank) { return spec.contains(rank); });
    }
    if (participates) {
      stream.slot_to_sync_index[slot] =
          static_cast<std::int32_t>(stream.participating_slots.size());
      stream.participating_slots.push_back(slot);
    }
  }

  stream.ctx.node_id = id_;
  stream.ctx.stream_id = spec.id;
  stream.ctx.num_children = stream.participating_slots.size();
  stream.ctx.is_root = role_ == NodeRole::kRoot;
  stream.ctx.is_leaf = role_ == NodeRole::kLeaf;
  stream.ctx.params = spec.parsed_params();
  stream.ctx.topic = spec.topic_path;
  stream.ctx.tenant = spec.tenant_name;
  stream.ctx.priority = tenants_->priority_of(spec.id);
  stream.ctx.membership = membership_snapshot(stream);
  stream.ctx.telemetry = TelemetryScope(&metrics_, /*worker=*/-1);

  if (role_ != NodeRole::kLeaf) {
    stream.sync = registry_.make_sync(spec.up_sync, stream.ctx);
    stream.up_filter = registry_.make_transform(spec.up_transform, stream.ctx);
    stream.down_filter = registry_.make_transform(spec.down_transform, stream.ctx);
    // The sync policy and filters stay instantiated even on the fast lanes
    // (flush/finish and membership compensation still go through them); the
    // lanes only bypass them on the per-packet hot path.  The telemetry
    // stream is never fast: its merge filter is what bounds root fan-in.
    if (spec.id != kTelemetryStream) {
      stream.fast_up =
          spec.up_sync == "null" && spec.up_transform == "passthrough";
      stream.fast_down = spec.down_transform == "passthrough";
      stream.null_sync = spec.up_sync == "null";
    }
    // A child may have died — or its subtree emptied out through planned
    // reconfiguration — before this stream was announced; the sync policy
    // and filters must not wait for it.
    for (const std::uint32_t slot : stream.participating_slots) {
      if (!slot_contributes(slot)) {
        apply_membership_change(
            stream, static_cast<std::size_t>(stream.slot_to_sync_index[slot]),
            /*added=*/false);
      }
    }
  }

  const auto emplaced = streams_.emplace(spec.id, std::move(stream));
  // Register with the executor only now: map storage is node-stable, so the
  // shard's tasks can safely hold a StreamLocal pointer.
  if (executor_ && emplaced.first->second.sync) {
    exec_register_stream(emplaced.first->second);
  }

  if (spec.id == kTelemetryStream) {
    // Arm periodic self-publishing; the interval rides in the stream params
    // so every node (including forked process-mode children) learns it from
    // the announcement itself.
    telemetry_armed_ = true;
    telemetry_interval_ns_ =
        std::max<std::int64_t>(1, spec.parsed_params().get_int("interval_ms", 200)) *
        1'000'000;
    telemetry_next_ = now_ns() + telemetry_interval_ns_;
  }

  if (delegate_ != nullptr) delegate_->on_stream_known(spec);
}

void NodeRuntime::handle_delete_stream(std::uint32_t stream_id) {
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) return;
  flush_stream(it->second);  // exec streams: posts the flush, drains the shard
  if (executor_ && it->second.exec) executor_->remove_stream(stream_id);
  tenants_->forget_stream(stream_id);
  streams_.erase(it);
  if (delegate_ != nullptr) delegate_->on_stream_deleted(stream_id);
}

// ---- planned reconfiguration (src/core/reconfig.hpp) ------------------------
//
// The runtime's half of the quiesce→rewire→replay protocol.  All frames ride
// the control stream, so they are FIFO-ordered against the data they fence:
// a detach/quiesce ack follows every packet its subtree sent beforehand, and
// the first node to see the ack applies membership compensation before any
// later wave can close without the departed contributor.

bool NodeRuntime::route_down_via_rank(std::uint32_t rank, const PacketPtr& packet,
                                      bool allow_dead) {
  const auto route = rank_routes_.find(rank);
  if (route != rank_routes_.end()) {
    const std::uint32_t slot = route->second;
    const bool usable = slot < child_links_.size() && child_links_[slot] &&
                        (allow_dead ||
                         (slot < child_alive_.size() && child_alive_[slot]));
    if (usable) return send_child(slot, packet);
  }
  metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
  TBON_WARN("node " << id_ << " cannot route reconfiguration frame via rank "
                    << rank);
  return false;
}

std::vector<std::uint32_t> NodeRuntime::served_ranks() const {
  if (role_ == NodeRole::kLeaf) return topology_.subtree_leaf_ranks(id_);
  std::vector<std::uint32_t> ranks;
  for (const auto& [rank, slot] : rank_routes_) {
    if (slot < child_alive_.size() && child_alive_[slot]) ranks.push_back(rank);
  }
  return ranks;
}

void NodeRuntime::handle_detach(const Envelope& envelope) {
  const Packet& packet = *envelope.packet;
  std::int64_t op_id = 0;
  std::uint32_t target_rank = 0;
  try {
    op_id = reconfig_op_id(packet);
    target_rank = reconfig_target(packet);
  } catch (const CodecError& error) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping malformed detach: " << error.what());
    return;
  }
  if (shutting_down_) return;  // departure is moot: the whole tree is leaving
  if (role_ == NodeRole::kLeaf &&
      topology_.subtree_leaf_ranks(id_).front() == target_rank) {
    TBON_INFO("node " << id_ << " (rank " << target_rank
                      << ") leaving on planned detach, op " << op_id);
    if (delegate_ != nullptr) delegate_->on_shutdown();
    // The ack is the fence: it follows every packet this back-end sent, so
    // the parent's membership compensation can never orphan in-flight data.
    send_parent(make_reconfig_ack_packet(op_id, id_, ReconfigAckKind::kDetach));
    if (parent_link_) parent_link_->flush();
    done_ = true;  // run() exits and closes all links (EOF is then a no-op
                   // at the parent: the ack already applied the removal)
    return;
  }
  route_down_via_rank(target_rank, envelope.packet, /*allow_dead=*/false);
}

void NodeRuntime::handle_quiesce(const Envelope& envelope) {
  const Packet& packet = *envelope.packet;
  std::int64_t op_id = 0;
  std::uint32_t target_node = 0;
  std::uint32_t via_rank = 0;
  try {
    op_id = reconfig_op_id(packet);
    target_node = reconfig_target(packet);
    via_rank = quiesce_via_rank(packet);
  } catch (const CodecError& error) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping malformed quiesce: " << error.what());
    return;
  }
  if (shutting_down_) return;
  if (target_node != id_) {
    route_down_via_rank(via_rank, envelope.packet, /*allow_dead=*/false);
    return;
  }
  TBON_INFO("node " << id_ << " quiescing for planned re-home, op " << op_id);
  // Pause the application handle first (leaves): its in-flight sends finish
  // before pause_sends returns, so they precede the ack on the channel.
  if (role_ == NodeRole::kLeaf && delegate_ != nullptr) {
    delegate_->on_reconfig_pause();
  }
  send_parent(make_reconfig_ack_packet(op_id, id_, ReconfigAckKind::kQuiesce));
  if (parent_link_) parent_link_->flush();
  // Park after the ack: everything this subtree emits from here on (late
  // executor completions included) is buffered and replayed to the new
  // parent, preserving per-stream order across the move.
  upstream_parked_ = true;
}

void NodeRuntime::handle_rehome(const Envelope& envelope) {
  const Packet& packet = *envelope.packet;
  std::int64_t op_id = 0;
  std::uint32_t target_node = 0;
  std::uint32_t new_parent = 0;
  std::uint32_t via_rank = 0;
  try {
    op_id = reconfig_op_id(packet);
    target_node = reconfig_target(packet);
    new_parent = rehome_new_parent(packet);
    via_rank = rehome_via_rank(packet);
  } catch (const CodecError& error) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping malformed rehome: " << error.what());
    return;
  }
  if (shutting_down_) return;
  if (target_node != id_) {
    // allow_dead: at the old parent the target's slot is already
    // membership-removed, but the link is intact — exactly the edge this
    // frame must cross.
    route_down_via_rank(via_rank, envelope.packet, /*allow_dead=*/true);
    return;
  }
  bool rewired = false;
  if (rehome_handler_) {
    rewired = rehome_handler_(*this, static_cast<NodeId>(new_parent));
  } else if (orphan_handler_) {
    // Process/remote instantiations re-home through the same rendezvous path
    // as fault recovery (the root re-adopts the subtree; `new_parent` is the
    // root there by construction).
    rewired = orphan_handler_(*this);
  }
  if (!rewired) {
    TBON_WARN("node " << id_ << " re-home failed (op " << op_id
                      << "); dying so children re-adopt");
    crash();
    return;
  }
  TBON_INFO("node " << id_ << " re-homed under node " << new_parent << ", op "
                    << op_id);
  metrics_.reconfig_moves.fetch_add(1, std::memory_order_relaxed);
  if (liveness_) liveness_->reset_parent(now_ns());
  // Replay parked emissions to the new parent — they land after the adopt
  // marker queued by the handler, so announcements still precede data — then
  // let the application handle send again, then complete the op.
  unpark_upstream();
  if (role_ == NodeRole::kLeaf && delegate_ != nullptr) {
    delegate_->on_reconfig_resume();
  }
  send_parent(make_reconfig_ack_packet(op_id, id_, ReconfigAckKind::kRehome));
}

void NodeRuntime::handle_reconfig_ack(const Envelope& envelope) {
  const Packet& packet = *envelope.packet;
  std::int64_t op_id = 0;
  std::uint32_t subject = 0;
  ReconfigAckKind kind = ReconfigAckKind::kForwarded;
  try {
    op_id = reconfig_op_id(packet);
    subject = reconfig_ack_subject(packet);
    kind = reconfig_ack_kind(packet);
  } catch (const CodecError& error) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping malformed reconfig ack: "
                      << error.what());
    return;
  }
  PacketPtr upward = envelope.packet;
  if (envelope.origin == Origin::kChild && (kind == ReconfigAckKind::kDetach ||
                                            kind == ReconfigAckKind::kQuiesce)) {
    // First hop: this node is the departing subtree's parent.  Apply the
    // planned removal now — membership compensation runs before any later
    // wave, exactly like a failure EOF, but without recovery side effects.
    metrics_.reconfig_detaches.fetch_add(1, std::memory_order_relaxed);
    note_child_gone(envelope.child_slot);
    upward = make_reconfig_ack_packet(op_id, subject, ReconfigAckKind::kForwarded);
  }
  if (role_ == NodeRole::kRoot) {
    if (delegate_ != nullptr) delegate_->on_reconfig_ack(op_id, subject);
    return;
  }
  send_parent(upward);
}

bool NodeRuntime::slot_contributes(std::uint32_t slot) const {
  return slot < child_alive_.size() && child_alive_[slot] &&
         (slot >= child_contributing_.size() || child_contributing_[slot]);
}

void NodeRuntime::notify_parent_membership(bool live) {
  if (parent_link_ == nullptr) return;
  TBON_INFO("node " << id_
                    << (live ? " subtree contributing again" : " subtree emptied")
                    << "; notifying parent");
  const PacketPtr packet = make_membership_packet(live);
  if (upstream_parked_) {
    // Mid-move: the notification replays to the new parent with everything
    // else parked, in order.
    parked_upstream_.push_back(packet);
    return;
  }
  send_parent(packet);
}

void NodeRuntime::handle_membership(const Envelope& envelope) {
  if (envelope.origin != Origin::kChild) return;
  const std::uint32_t slot = envelope.child_slot;
  if (slot >= child_alive_.size() || !child_alive_[slot]) return;
  const bool live = membership_packet_live(*envelope.packet);
  if (child_contributing_.size() <= slot) {
    child_contributing_.resize(slot + 1, true);
  }
  if (child_contributing_[slot] == live) return;  // duplicate notification
  const bool was_empty = contributing_children_ == 0;
  child_contributing_[slot] = live;
  if (live) {
    ++contributing_children_;
  } else {
    --contributing_children_;
  }
  TBON_INFO("node " << id_ << (live ? " reviving" : " retiring")
                    << " wave membership of child slot " << slot);
  for (auto& [stream_id, stream] : streams_) {
    if (!stream.sync) continue;
    const auto sync_index = slot < stream.slot_to_sync_index.size()
                                ? stream.slot_to_sync_index[slot]
                                : -1;
    if (sync_index < 0) continue;  // endpoint-scoped stream skips this subtree
    apply_membership_change(stream, static_cast<std::size_t>(sync_index),
                            /*added=*/live, /*revived=*/live);
  }
  // Cascade: retiring the slot may have emptied this node too (a chain of
  // relays), and reviving it may have refilled it.
  if (role_ == NodeRole::kInternal && !shutting_down_) {
    if (!live && contributing_children_ == 0) notify_parent_membership(false);
    if (live && was_empty) notify_parent_membership(true);
  }
}

void NodeRuntime::unpark_upstream() {
  if (!upstream_parked_) return;
  upstream_parked_ = false;
  std::vector<PacketPtr> parked;
  parked.swap(parked_upstream_);
  for (const PacketPtr& packet : parked) send_parent(packet);
}

void NodeRuntime::handle_shutdown() {
  shutting_down_ = true;
  shutdown_acks_needed_ = live_children_;
  if (role_ == NodeRole::kLeaf && delegate_ != nullptr) delegate_->on_shutdown();
  // Forward to every live child; leaves have none.
  for (std::uint32_t slot = 0; slot < child_links_.size(); ++slot) {
    if (child_links_[slot] && child_alive_[slot]) {
      send_child(slot, make_shutdown_packet());
    }
  }
  maybe_finish_shutdown();
}

void NodeRuntime::maybe_finish_shutdown() {
  if (!shutting_down_ || shutdown_acks_needed_ > 0 || done_) return;
  // Every subtree is quiescent: deliver what the sync filters still hold,
  // give transformation filters their finish() hook, then ack upward.
  flush_all_streams();
  // Final telemetry record: published after the flush (so it follows every
  // merged child record on the parent channel) and before the ack (so the
  // parent is guaranteed to buffer it before its own flush).  Channel FIFO
  // order makes the post-shutdown tree snapshot exact, not best-effort.
  if (telemetry_armed_) publish_telemetry();
  if (parent_link_) {
    send_parent(make_shutdown_ack_packet());
  }
  if (role_ == NodeRole::kRoot && delegate_ != nullptr) {
    delegate_->on_shutdown_complete();
  }
  done_ = true;
}

void NodeRuntime::handle_parent_lost() {
  if (role_ == NodeRole::kRoot) return;  // the root has no parent channel
  if (liveness_) liveness_->drop_parent();
  if (!shutting_down_) {
    metrics_.orphaned_events.fetch_add(1, std::memory_order_relaxed);
  }
  if (!shutting_down_ && orphan_handler_) {
    if (orphan_handler_(*this)) {
      TBON_INFO("node " << id_ << " re-adopted under a new parent (epoch "
                        << parent_epoch_ << ")");
      metrics_.adoptions.fetch_add(1, std::memory_order_relaxed);
      if (liveness_) liveness_->reset_parent(now_ns());
      // Rare overlap: the old parent died while this node was quiesced for a
      // planned move.  Fault recovery won the race — replay the parked
      // emissions to the adopter rather than holding them forever.
      unpark_upstream();
      return;
    }
    // Recovery is enabled but re-adoption failed (network tearing down, the
    // rendezvous is unreachable, or this node itself is compromised).  Die
    // abruptly — no shutdown broadcast — so our children see EOF and
    // re-adopt around us instead of shutting down.
    TBON_WARN("node " << id_ << " could not be re-adopted; dying so its "
                         "children can recover");
    crash();
    return;
  }
  // Legacy behaviour: the subtree can no longer deliver results; shut down.
  TBON_DEBUG("node " << id_ << " lost its parent; shutting down subtree");
  if (!shutting_down_) handle_shutdown();
  // No parent to ack to: finish immediately once children are gone.
  if (role_ == NodeRole::kLeaf || shutdown_acks_needed_ == 0) done_ = true;
}

void NodeRuntime::crash() {
  metrics_.faults_injected.fetch_add(1, std::memory_order_relaxed);
  dead_.store(true, std::memory_order_release);
  // Crash semantics: abandon queued filter work (stop() joins workers after
  // their current task, so no worker can touch a link we're closing).
  if (executor_) executor_->stop();
  close_all_links();
  crashed_ = true;
  if (crash_handler_) crash_handler_();  // may not return (process: _Exit)
}

bool NodeRuntime::send_parent(const PacketPtr& packet) {
  if (!parent_link_) return false;
  if (upstream_parked_) {
    // Quiesced: buffer in order for replay to the new parent.
    parked_upstream_.push_back(packet);
    return true;
  }
  if (liveness_) liveness_->note_send_parent(now_ns());
  if (injector_) {
    if (injector_->sends_muted(id_)) return true;  // simulated hang: drop
    if (const auto delay = injector_->send_delay_ns(id_)) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
  }
  return parent_link_->send(packet);
}

bool NodeRuntime::send_child(std::uint32_t slot, const PacketPtr& packet) {
  if (slot >= child_links_.size() || !child_links_[slot]) return false;
  if (liveness_) liveness_->note_send_child(slot, now_ns());
  if (injector_) {
    if (injector_->sends_muted(id_)) return true;  // simulated hang: drop
    if (const auto delay = injector_->send_delay_ns(id_)) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
  }
  return child_links_[slot]->send(packet);
}

std::size_t NodeRuntime::live_participants(const StreamLocal& stream) const {
  std::size_t live = 0;
  for (const std::uint32_t slot : stream.participating_slots) {
    if (slot_contributes(slot)) ++live;
  }
  return live;
}

MembershipSnapshot NodeRuntime::membership_snapshot(const StreamLocal& stream) const {
  MembershipSnapshot snapshot;
  snapshot.num_total = stream.participating_slots.size();
  snapshot.live.reserve(snapshot.num_total);
  for (const std::uint32_t slot : stream.participating_slots) {
    const bool alive = slot_contributes(slot);
    snapshot.live.push_back(alive);
    if (alive) ++snapshot.num_live;
  }
  return snapshot;
}

void NodeRuntime::apply_membership_change(StreamLocal& stream,
                                          std::size_t sync_index, bool added,
                                          bool revived) {
  const std::size_t live = live_participants(stream);
  const MembershipChange change{sync_index, added, live, revived};
  MembershipSnapshot snapshot = membership_snapshot(stream);
  if (stream.exec) {
    // The stream's sync/filter/ctx belong to its shard now: apply the change
    // there, in FIFO order with any packet work already queued, and deliver
    // any compensation outputs through the completion path like everything
    // else.
    ++stream.exec_inflight;
    StreamLocal* sp = &stream;
    executor_->post(stream.spec.id, [this, sp, change, added,
                                     snapshot = std::move(snapshot)]() mutable {
      sp->ctx.num_children = change.num_children;
      sp->ctx.membership = std::move(snapshot);
      ExecCompletion completion;
      completion.stream_id = sp->spec.id;
      completion.from_post = true;
      sp->sync->membership_changed(change, sp->ctx);
      if (!added) {
        // Failure may complete a pending wave for the survivors.
        completion.up_outputs =
            run_upstream_batches(*sp, sp->sync->drain_ready(now_ns(), sp->ctx));
      }
      sp->up_filter->membership_changed(change, completion.up_outputs, sp->ctx);
      const auto deadline = sp->sync->next_deadline();
      executor_->set_deadline(sp->spec.id, deadline ? *deadline : -1);
      completion.deadline_armed = deadline.has_value();
      completion.buffered = sp->sync->buffered();
      exec_enqueue(std::move(completion));
    });
    return;
  }
  stream.ctx.num_children = live;
  stream.ctx.membership = std::move(snapshot);
  if (stream.sync) {
    stream.sync->membership_changed(change, stream.ctx);
    if (!added) {
      // Failure may complete a pending wave for the survivors.
      process_batches(stream, stream.sync->drain_ready(now_ns(), stream.ctx));
    }
  }
  if (stream.up_filter) {
    std::vector<PacketPtr> outputs;
    stream.up_filter->membership_changed(change, outputs, stream.ctx);
    emit_upstream(stream, outputs);
  }
}

void NodeRuntime::note_child_gone(std::uint32_t slot) {
  if (slot >= child_alive_.size() || !child_alive_[slot]) return;
  child_alive_[slot] = false;
  --live_children_;
  if (slot < child_contributing_.size() && child_contributing_[slot]) {
    child_contributing_[slot] = false;
    --contributing_children_;
  }
  if (liveness_) liveness_->drop_child(slot);
  TBON_DEBUG("node " << id_ << " lost child slot " << slot);
  for (auto& [stream_id, stream] : streams_) {
    if (!stream.sync) continue;
    const auto sync_index = stream.slot_to_sync_index[slot];
    if (sync_index >= 0) {
      apply_membership_change(stream, static_cast<std::size_t>(sync_index),
                              /*added=*/false);
    }
  }
  // Losing the last contributing child turns this interior into an empty
  // relay: nothing below it will ever feed another wave, so the parent must
  // stop waiting for this edge (and so on up the tree, recursively).
  if (contributing_children_ == 0 && role_ == NodeRole::kInternal &&
      !shutting_down_) {
    notify_parent_membership(/*live=*/false);
  }
  if (shutting_down_ && shutdown_acks_needed_ > 0 && !child_acked_[slot]) {
    child_acked_[slot] = true;
    --shutdown_acks_needed_;
    maybe_finish_shutdown();
  }
}

void NodeRuntime::handle_upstream_data(std::uint32_t slot, const PacketPtr& packet) {
  const bool deferred = consume_upstream_data(slot, packet);
  // The packet is consumed from its channel whatever happened (filtered,
  // forwarded or dropped): return the credit.  Telemetry rides exempt;
  // executor-dispatched packets return theirs when the completion is
  // delivered instead.
  if (!deferred && packet->stream_id() != kTelemetryStream) {
    note_consumed(Origin::kChild, slot, 1, grant_share(packet->stream_id()));
  }
}

/// Returns true when the packet was dispatched to the executor (its credit
/// is deferred to completion delivery), false when handled to completion.
bool NodeRuntime::consume_upstream_data(std::uint32_t slot, const PacketPtr& packet) {
  if (packet->stream_id() == kTelemetryStream) {
    // Telemetry traffic is accounted separately so application counters
    // stay exact whether or not telemetry is enabled.
    metrics_.telemetry_packets.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.packets_up.fetch_add(1, std::memory_order_relaxed);
    metrics_.bytes_up.fetch_add(packet->payload_bytes(), std::memory_order_relaxed);
  }

  if (slot < child_alive_.size() && !child_alive_[slot]) {
    // Data raced with the failure declaration (e.g. a heartbeat timeout
    // fired while packets were in flight); the sync policy no longer has a
    // live index for this child.
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_DEBUG("node " << id_ << " dropping packet from dead child slot " << slot);
    return false;
  }
  const auto it = streams_.find(packet->stream_id());
  if (it == streams_.end()) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping packet for unknown stream "
                      << packet->stream_id());
    return false;
  }
  StreamLocal& stream = it->second;
  if (slot >= stream.slot_to_sync_index.size()) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping packet from unwired child slot " << slot);
    return false;
  }
  const auto sync_index = stream.slot_to_sync_index[slot];
  if (sync_index < 0) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping packet from non-participating child");
    return false;
  }
  if (stream.fast_up) {
    // Fast pass-through lane: identity sync + identity transform, so the
    // packet goes straight to the parent (or root delegate).  A wire-backed
    // packet is relayed verbatim by the fd link — zero payload memcpys on
    // this hop.  Counters mirror the slow path: one wave per packet, the
    // forwarding overhead observed as filter latency.
    const auto start = now_ns();
    emit_upstream(stream, {&packet, 1});
    const auto elapsed = static_cast<std::uint64_t>(now_ns() - start);
    metrics_.waves.fetch_add(1, std::memory_order_relaxed);
    metrics_.filter_ns.fetch_add(elapsed, std::memory_order_relaxed);
    metrics_.observe_filter_latency(elapsed);
    if (auto& tracer = TraceRecorder::instance(); tracer.enabled()) {
      tracer.record({id_, start, start + static_cast<std::int64_t>(elapsed),
                     packet->payload_bytes(), "up:" + stream.spec.up_transform});
    }
    return false;
  }
  if (stream.exec) {
    if (inline_cutoff(exec_options_) > 0 &&
        packet->payload_bytes() < inline_cutoff(exec_options_) &&
        stream.exec_inflight == 0 && !stream.exec_deadline_armed) {
      exec_run_inline_upstream(stream, static_cast<std::size_t>(sync_index), packet);
      return false;
    }
    exec_dispatch_upstream(stream, static_cast<std::size_t>(sync_index), packet, slot);
    return true;
  }
  stream.sync->on_packet(static_cast<std::size_t>(sync_index), packet, stream.ctx);
  process_batches(stream, stream.sync->drain_ready(now_ns(), stream.ctx));
  return false;
}

void NodeRuntime::handle_upstream_batch(std::uint32_t slot,
                                        std::span<const PacketPtr> packets) {
  // Group consecutive same-stream packets into runs: one coalesced frame
  // usually carries one stream's burst, so this almost always yields a
  // single run, and each run costs one stream lookup + one filter
  // invocation (or one shard task) instead of N.
  std::size_t i = 0;
  while (i < packets.size()) {
    std::size_t j = i + 1;
    while (j < packets.size() &&
           packets[j]->stream_id() == packets[i]->stream_id()) {
      ++j;
    }
    consume_upstream_run(slot, packets.subspan(i, j - i));
    i = j;
  }
}

void NodeRuntime::consume_upstream_run(std::uint32_t slot,
                                       std::span<const PacketPtr> run) {
  const std::uint32_t stream_id = run.front()->stream_id();
  const bool telemetry = stream_id == kTelemetryStream;
  if (telemetry) {
    metrics_.telemetry_packets.fetch_add(run.size(), std::memory_order_relaxed);
  } else {
    std::uint64_t payload = 0;
    for (const PacketPtr& packet : run) payload += packet->payload_bytes();
    metrics_.packets_up.fetch_add(run.size(), std::memory_order_relaxed);
    metrics_.bytes_up.fetch_add(payload, std::memory_order_relaxed);
  }
  // Every packet of the run is consumed from its channel whatever happens
  // below (filtered, forwarded or dropped) — except executor dispatch, which
  // defers the whole run's credits to completion delivery.
  const auto credit_run = [&] {
    if (!telemetry) {
      note_consumed(Origin::kChild, slot, static_cast<std::uint32_t>(run.size()),
                    grant_share(stream_id));
    }
  };

  if (slot < child_alive_.size() && !child_alive_[slot]) {
    metrics_.packets_dropped.fetch_add(run.size(), std::memory_order_relaxed);
    TBON_DEBUG("node " << id_ << " dropping batch from dead child slot " << slot);
    credit_run();
    return;
  }
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) {
    metrics_.packets_dropped.fetch_add(run.size(), std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping batch for unknown stream " << stream_id);
    credit_run();
    return;
  }
  StreamLocal& stream = it->second;
  if (slot >= stream.slot_to_sync_index.size() ||
      stream.slot_to_sync_index[slot] < 0) {
    metrics_.packets_dropped.fetch_add(run.size(), std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping batch from non-participating child slot "
                      << slot);
    credit_run();
    return;
  }
  const auto sync_index = static_cast<std::size_t>(stream.slot_to_sync_index[slot]);

  if (stream.fast_up) {
    // Fast pass-through lane, batch form: the run is relayed toward the
    // parent (whose link re-coalesces it when batching is on) or the root
    // delegate.  Counters mirror the single-packet lane: one wave per
    // packet, the forwarding overhead observed as filter latency once per
    // run.
    const auto start = now_ns();
    emit_upstream(stream, run);
    const auto elapsed = static_cast<std::uint64_t>(now_ns() - start);
    metrics_.waves.fetch_add(run.size(), std::memory_order_relaxed);
    metrics_.filter_ns.fetch_add(elapsed, std::memory_order_relaxed);
    metrics_.observe_filter_latency(elapsed);
    if (auto& tracer = TraceRecorder::instance(); tracer.enabled()) {
      std::uint64_t bytes = 0;
      for (const PacketPtr& packet : run) bytes += packet->payload_bytes();
      tracer.record({id_, start, start + static_cast<std::int64_t>(elapsed), bytes,
                     "up:" + stream.spec.up_transform});
    }
    credit_run();
    return;
  }
  if (stream.exec) {
    exec_dispatch_upstream_run(
        stream, sync_index, run, slot,
        telemetry ? 0 : static_cast<std::uint32_t>(run.size()));
    return;
  }
  if (stream.null_sync) {
    emit_upstream(stream, run_upstream_filter_batch(stream, run));
  } else {
    // Grouping syncs: feed the run packet-by-packet, then drain once —
    // same ready set and output order as interleaved drains, minus the
    // per-packet drain overhead.
    for (const PacketPtr& packet : run) {
      stream.sync->on_packet(sync_index, packet, stream.ctx);
    }
    process_batches(stream, stream.sync->drain_ready(now_ns(), stream.ctx));
  }
  credit_run();
}

std::vector<PacketPtr> NodeRuntime::run_upstream_filter_batch(
    StreamLocal& stream, std::span<const PacketPtr> run) {
  // One batch-aware filter invocation covering run.size() independent waves.
  // Only valid for null-sync streams, where each packet forms its own
  // singleton wave — filter_batch's contract is exactly that, so output is
  // byte-identical to run.size() single-packet filter() calls while letting
  // batch-aware filters amortize (vectorized kernels, shared lookups).
  const bool telemetry = stream.spec.id == kTelemetryStream;
  std::vector<PacketPtr> outputs;
  const auto start = now_ns();
  stream.up_filter->filter_batch(run, outputs, stream.ctx);
  const auto end = now_ns();
  if (!telemetry) {
    metrics_.waves.fetch_add(run.size(), std::memory_order_relaxed);
    const auto elapsed = static_cast<std::uint64_t>(end - start);
    metrics_.filter_ns.fetch_add(elapsed, std::memory_order_relaxed);
    metrics_.observe_filter_latency(elapsed);
    if (auto& tracer = TraceRecorder::instance(); tracer.enabled()) {
      std::uint64_t bytes_out = 0;
      for (const PacketPtr& packet : outputs) bytes_out += packet->payload_bytes();
      tracer.record({id_, start, end, bytes_out, "up:" + stream.spec.up_transform});
    }
  }
  return outputs;
}

void NodeRuntime::process_batches(StreamLocal& stream,
                                  std::vector<SyncPolicy::Batch> batches) {
  emit_upstream(stream, run_upstream_batches(stream, std::move(batches)));
}

std::vector<PacketPtr> NodeRuntime::run_upstream_batches(
    StreamLocal& stream, std::vector<SyncPolicy::Batch> batches) {
  // Runs on the stream's shard under the executor, inline on the event loop
  // otherwise.  Metrics are relaxed atomics and the tracer locks internally,
  // so the accounting is identical either way.  The telemetry stream's own
  // merge work is excluded from the application wave/latency instruments it
  // feeds.
  const bool telemetry = stream.spec.id == kTelemetryStream;
  std::vector<PacketPtr> outputs;
  for (auto& batch : batches) {
    if (batch.empty()) continue;
    if (!telemetry) metrics_.waves.fetch_add(1, std::memory_order_relaxed);
    const std::size_t before = outputs.size();
    const auto start = now_ns();
    stream.up_filter->filter(batch, outputs, stream.ctx);
    const auto end = now_ns();
    if (!telemetry) {
      const auto elapsed = static_cast<std::uint64_t>(end - start);
      metrics_.filter_ns.fetch_add(elapsed, std::memory_order_relaxed);
      metrics_.observe_filter_latency(elapsed);
      if (auto& tracer = TraceRecorder::instance(); tracer.enabled()) {
        std::uint64_t bytes_out = 0;
        for (std::size_t i = before; i < outputs.size(); ++i) {
          bytes_out += outputs[i]->payload_bytes();
        }
        tracer.record({id_, start, end, bytes_out, "up:" + stream.spec.up_transform});
      }
    }
  }
  return outputs;
}

void NodeRuntime::emit_upstream(StreamLocal& stream, std::span<const PacketPtr> packets) {
  if (packets.empty()) return;
  if (role_ == NodeRole::kRoot) {
    if (delegate_ == nullptr) return;
    for (const PacketPtr& packet : packets) {
      delegate_->on_result(stream.spec.id, packet);
    }
    return;
  }
  if (!parent_link_) return;
  if (upstream_parked_) {
    parked_upstream_.insert(parked_upstream_.end(), packets.begin(), packets.end());
    return;
  }
  if (packets.size() == 1) {
    send_parent(packets.front());
    return;
  }
  // Multi-packet emission: hand the whole run to the parent link as one
  // batch (one wire frame / queue push instead of N; per-packet links fall
  // back to a loop).  Control and telemetry packets are barred from batch
  // frames by the wire codec, so runs containing them go out one by one.
  for (const PacketPtr& packet : packets) {
    if (flow_control_exempt(*packet)) {
      for (const PacketPtr& each : packets) send_parent(each);
      return;
    }
  }
  if (liveness_) liveness_->note_send_parent(now_ns());
  if (injector_) {
    if (injector_->sends_muted(id_)) return;  // simulated hang: drop the run
    if (const auto delay = injector_->send_delay_ns(id_)) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(delay));
    }
  }
  parent_link_->send_batch(packets);
}

// ---- parallel filter execution ----------------------------------------------
//
// Division of labour: workers run the stream's sync policy and transformation
// filter (the CPU-bound part) and hand everything with side effects outside
// the stream — sends, credits, delegate callbacks — back to the event loop as
// completion records.  Links, liveness, the injector and the granter table
// are therefore still touched by exactly one thread, and per-stream output
// order is the completion queue's FIFO order, which matches inline mode.

void NodeRuntime::exec_register_stream(StreamLocal& stream) {
  StreamLocal* sp = &stream;
  executor_->add_stream(
      stream.spec.id,
      [this, sp](std::int64_t now) {
        // Deadline poll, on the stream's own shard: the executor-mode
        // replacement for the loop's poll_timeouts.
        ExecCompletion completion;
        completion.stream_id = sp->spec.id;
        completion.up_outputs =
            run_upstream_batches(*sp, sp->sync->drain_ready(now, sp->ctx));
        const auto deadline = sp->sync->next_deadline();
        executor_->set_deadline(sp->spec.id, deadline ? *deadline : -1);
        completion.deadline_armed = deadline.has_value();
        completion.buffered = sp->sync->buffered();
        exec_enqueue(std::move(completion));
      },
      tenants_->priority_of(stream.spec.id));
  stream.ctx.telemetry = TelemetryScope(
      &metrics_, static_cast<int>(executor_->shard_of(stream.spec.id)));
  stream.exec = true;
}

void NodeRuntime::exec_dispatch_upstream(StreamLocal& stream, std::size_t sync_index,
                                         PacketPtr packet, std::uint32_t slot) {
  ++stream.exec_inflight;
  const std::uint32_t credits = stream.spec.id != kTelemetryStream ? 1 : 0;
  StreamLocal* sp = &stream;
  executor_->post(stream.spec.id, [this, sp, sync_index, slot, credits,
                                   packet = std::move(packet)]() mutable {
    sp->sync->on_packet(sync_index, std::move(packet), sp->ctx);
    ExecCompletion completion;
    completion.stream_id = sp->spec.id;
    completion.up_outputs =
        run_upstream_batches(*sp, sp->sync->drain_ready(now_ns(), sp->ctx));
    const auto deadline = sp->sync->next_deadline();
    executor_->set_deadline(sp->spec.id, deadline ? *deadline : -1);
    completion.from_post = true;
    completion.deadline_armed = deadline.has_value();
    completion.buffered = sp->sync->buffered();
    completion.credits = credits;
    completion.credit_origin = Origin::kChild;
    completion.credit_slot = slot;
    exec_enqueue(std::move(completion));
  });
}

void NodeRuntime::exec_dispatch_upstream_run(StreamLocal& stream,
                                             std::size_t sync_index,
                                             std::span<const PacketPtr> run,
                                             std::uint32_t slot,
                                             std::uint32_t credits) {
  // Whole coalesced run → one shard task → one filter invocation (null-sync
  // streams) or one sync feed + drain.  The task carries the run's full
  // credit count, returned in one go when its completion is delivered, so
  // worker-queue occupancy still counts against the credit window exactly as
  // in the single-packet path.
  ++stream.exec_inflight;
  StreamLocal* sp = &stream;
  std::vector<PacketPtr> packets(run.begin(), run.end());
  executor_->post(stream.spec.id, [this, sp, sync_index, slot, credits,
                                   packets = std::move(packets)]() mutable {
    ExecCompletion completion;
    completion.stream_id = sp->spec.id;
    if (sp->null_sync) {
      completion.up_outputs = run_upstream_filter_batch(*sp, packets);
    } else {
      for (PacketPtr& packet : packets) {
        sp->sync->on_packet(sync_index, std::move(packet), sp->ctx);
      }
      completion.up_outputs =
          run_upstream_batches(*sp, sp->sync->drain_ready(now_ns(), sp->ctx));
    }
    const auto deadline = sp->sync->next_deadline();
    executor_->set_deadline(sp->spec.id, deadline ? *deadline : -1);
    completion.from_post = true;
    completion.deadline_armed = deadline.has_value();
    completion.buffered = sp->sync->buffered();
    completion.credits = credits;
    completion.credit_origin = Origin::kChild;
    completion.credit_slot = slot;
    exec_enqueue(std::move(completion));
  });
}

void NodeRuntime::exec_dispatch_downstream(StreamLocal& stream, PacketPtr packet) {
  ++stream.exec_inflight;
  const bool telemetry = packet->stream_id() == kTelemetryStream;
  StreamLocal* sp = &stream;
  executor_->post(stream.spec.id, [this, sp, telemetry,
                                   packet = std::move(packet)] {
    ExecCompletion completion;
    completion.stream_id = sp->spec.id;
    const auto start = now_ns();
    const PacketPtr inputs[] = {packet};
    sp->down_filter->filter(inputs, completion.down_outputs, sp->ctx);
    const auto elapsed = static_cast<std::uint64_t>(now_ns() - start);
    if (!telemetry) {
      metrics_.filter_ns.fetch_add(elapsed, std::memory_order_relaxed);
      metrics_.observe_filter_latency(elapsed);
    }
    // The sync policy was not touched, but the mirrors still need truthful
    // values (reads are safe: we are on the stream's shard).
    const auto deadline = sp->sync->next_deadline();
    completion.from_post = true;
    completion.deadline_armed = deadline.has_value();
    completion.buffered = sp->sync->buffered();
    completion.credits = telemetry ? 0 : 1;
    completion.credit_origin = Origin::kParent;
    completion.credit_slot = 0;
    exec_enqueue(std::move(completion));
  });
}

void NodeRuntime::exec_run_inline_upstream(StreamLocal& stream, std::size_t sync_index,
                                           const PacketPtr& packet) {
  // Small-packet fast path: the stream is provably idle on its shard (no
  // undelivered task, no armed deadline the worker could fire), so the loop
  // may run the machinery itself without violating the one-shard-per-stream
  // invariant — and without the handoff cost dwarfing a tiny filter run.
  metrics_.exec_inline.fetch_add(1, std::memory_order_relaxed);
  stream.sync->on_packet(sync_index, packet, stream.ctx);
  process_batches(stream, stream.sync->drain_ready(now_ns(), stream.ctx));
  const auto deadline = stream.sync->next_deadline();
  stream.exec_deadline_armed = deadline.has_value();
  stream.exec_buffered = stream.sync->buffered();
  if (deadline) executor_->set_deadline(stream.spec.id, *deadline);
}

void NodeRuntime::exec_enqueue(ExecCompletion&& completion) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    exec_completions_.push_back(std::move(completion));
    wake = !exec_wake_pending_;
    exec_wake_pending_ = true;
  }
  // Wake an idle loop with an epoch-agnostic marker envelope (coalesced: one
  // marker per drain).  If the inbox is full the push fails harmlessly — a
  // full inbox means the loop is awake and drains completions every
  // iteration anyway.
  if (wake) {
    inbox_->try_push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
  }
}

void NodeRuntime::exec_drain_completions() {
  std::deque<ExecCompletion> batch;
  {
    std::lock_guard<std::mutex> lock(exec_mutex_);
    exec_wake_pending_ = false;
    if (exec_completions_.empty()) return;
    batch.swap(exec_completions_);
  }
  for (auto& completion : batch) exec_deliver(std::move(completion));
}

void NodeRuntime::exec_deliver(ExecCompletion&& completion) {
  const auto it = streams_.find(completion.stream_id);
  if (it != streams_.end()) {
    StreamLocal& stream = it->second;
    if (completion.from_post && stream.exec_inflight > 0) --stream.exec_inflight;
    stream.exec_deadline_armed = completion.deadline_armed;
    stream.exec_buffered = completion.buffered;
    emit_upstream(stream, completion.up_outputs);
    for (const PacketPtr& packet : completion.down_outputs) {
      forward_down_to_participants(stream, packet);
    }
  }
  if (completion.credits) {
    note_consumed(completion.credit_origin, completion.credit_slot,
                  completion.credits, grant_share(completion.stream_id));
  }
}

void NodeRuntime::flush_stream(StreamLocal& stream) {
  if (!stream.sync) return;
  if (stream.exec) {
    // Post the flush as the stream's last task (FIFO after all queued work),
    // wait for its shard to go quiet, then deliver every pending completion
    // — so flushed output follows in-flight output in exactly inline order,
    // and (at shutdown) precedes this node's own telemetry record and ack.
    ++stream.exec_inflight;
    StreamLocal* sp = &stream;
    executor_->post(stream.spec.id, [this, sp] {
      ExecCompletion completion;
      completion.stream_id = sp->spec.id;
      completion.from_post = true;
      completion.up_outputs = run_upstream_batches(*sp, sp->sync->flush(sp->ctx));
      sp->up_filter->flush(completion.up_outputs, sp->ctx);
      executor_->set_deadline(sp->spec.id, -1);
      exec_enqueue(std::move(completion));
    });
    executor_->drain_stream(stream.spec.id);
    exec_drain_completions();
    return;
  }
  process_batches(stream, stream.sync->flush(stream.ctx));
  std::vector<PacketPtr> finals;
  stream.up_filter->flush(finals, stream.ctx);
  emit_upstream(stream, finals);
}

void NodeRuntime::flush_all_streams() {
  for (auto& [stream_id, stream] : streams_) flush_stream(stream);
}

void NodeRuntime::poll_timeouts(std::int64_t now) {
  for (auto& [stream_id, stream] : streams_) {
    // Executor streams arm their deadlines on their own shard (the loop may
    // not touch their sync policy at all).
    if (!stream.sync || stream.exec) continue;
    const auto deadline = stream.sync->next_deadline();
    if (deadline && *deadline <= now) {
      process_batches(stream, stream.sync->drain_ready(now, stream.ctx));
    }
  }
}

void NodeRuntime::poll_liveness(std::int64_t now) {
  if (!liveness_ || done_ || crashed_) return;
  // Explicit heartbeats on channels that have been send-idle too long.
  if (parent_link_ && !upstream_parked_ && liveness_->parent_heartbeat_due(now)) {
    send_parent(make_heartbeat_packet());
    metrics_.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
    if (last_parent_hb_sent_ < 0) last_parent_hb_sent_ = now;
  }
  for (const std::uint32_t slot : liveness_->children_heartbeat_due(now)) {
    if (slot < child_links_.size() && child_links_[slot] && child_alive_[slot]) {
      send_child(slot, make_heartbeat_packet());
      metrics_.heartbeats_sent.fetch_add(1, std::memory_order_relaxed);
    }
  }
  // Failure declarations: a silent peer is treated exactly like an EOF.
  for (const std::uint32_t slot : liveness_->timed_out_children(now)) {
    if (slot >= child_alive_.size() || !child_alive_[slot]) {
      liveness_->drop_child(slot);
      continue;
    }
    TBON_WARN("node " << id_ << " heartbeat timeout: declaring child slot "
                      << slot << " dead");
    if (child_links_[slot]) child_links_[slot]->close();
    note_child_gone(slot);
  }
  // A parked node is between parents on purpose: the old channel going
  // quiet must not trigger spurious re-adoption mid-rehome.
  if (!shutting_down_ && !upstream_parked_ && role_ != NodeRole::kRoot &&
      liveness_->parent_timed_out(now)) {
    TBON_WARN("node " << id_ << " heartbeat timeout: declaring parent dead");
    if (parent_link_) parent_link_->close();
    handle_parent_lost();
  }
}

std::optional<std::int64_t> NodeRuntime::earliest_deadline() const {
  std::optional<std::int64_t> earliest;
  for (const auto& [stream_id, stream] : streams_) {
    if (!stream.sync || stream.exec) continue;  // exec: worker-side deadlines
    const auto deadline = stream.sync->next_deadline();
    if (deadline && (!earliest || *deadline < *earliest)) earliest = deadline;
  }
  if (liveness_) {
    const auto deadline = liveness_->next_deadline();
    if (deadline && (!earliest || *deadline < *earliest)) earliest = deadline;
  }
  if (telemetry_armed_ && !shutting_down_ &&
      (!earliest || telemetry_next_ < *earliest)) {
    earliest = telemetry_next_;
  }
  return earliest;
}

void NodeRuntime::poll_telemetry(std::int64_t now) {
  if (!telemetry_armed_ || shutting_down_ || done_ || crashed_) return;
  if (now < telemetry_next_) return;
  telemetry_next_ = now + telemetry_interval_ns_;
  publish_telemetry();
}

void NodeRuntime::refresh_gauges() {
  metrics_.inbox_depth.store(inbox_->size(), std::memory_order_relaxed);
  std::uint64_t depth = 0;
  for (const auto& [stream_id, stream] : streams_) {
    if (stream.exec) {
      // The shard owns the sync policy; use the completion-updated mirror.
      depth += stream.exec_buffered;
    } else if (stream.sync) {
      depth += stream.sync->buffered();
    }
  }
  metrics_.sync_depth.store(depth, std::memory_order_relaxed);
  if (executor_) {
    metrics_.exec_queue_depth.store(executor_->queue_depth(),
                                    std::memory_order_relaxed);
  }
}

void NodeRuntime::fill_tenant_rollups(NodeTelemetry& record) const noexcept {
  record.tenants = tenants_->snapshot();
  record.tenant_sends_throttled = 0;
  record.tenant_packets_shed = 0;
  for (const TenantTelemetry& tenant : record.tenants) {
    record.tenant_sends_throttled += tenant.sends_throttled;
    record.tenant_packets_shed += tenant.packets_shed;
  }
}

void NodeRuntime::publish_telemetry() {
  refresh_gauges();
  NodeTelemetry record = metrics_.publish(id_, role_byte());
  fill_tenant_rollups(record);
  const PacketPtr packet =
      make_telemetry_packet(id_, serialize_records({&record, 1}));
  if (role_ == NodeRole::kRoot) {
    // The root's own record goes straight to the collector; child records
    // arrive through the telemetry stream's merge filter like any other
    // upstream result.
    if (delegate_ != nullptr) delegate_->on_result(kTelemetryStream, packet);
  } else {
    send_parent(packet);
  }
}

void NodeRuntime::forward_down(const PacketPtr& packet) {
  for (std::uint32_t slot = 0; slot < child_links_.size(); ++slot) {
    if (child_links_[slot] && child_alive_[slot]) send_child(slot, packet);
  }
}

void NodeRuntime::forward_down_to_participants(const StreamLocal& stream,
                                               const PacketPtr& packet) {
  for (const std::uint32_t slot : stream.participating_slots) {
    if (slot >= child_links_.size() || !child_links_[slot] || !child_alive_[slot]) {
      continue;
    }
    if (!topic_routed_to_slot(stream, slot)) {
      // Pub/sub pruning: no subscriber for this topic lives in that subtree.
      metrics_.topic_packets_pruned.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    send_child(slot, packet);
  }
}

bool NodeRuntime::topic_routed_to_slot(const StreamLocal& stream,
                                       std::uint32_t slot) const {
  const std::string& topic = stream.spec.topic_path;
  if (topic.empty()) return true;  // untopiced stream: classic multicast
  for (const auto& [prefix, ranks] : subs_) {
    if (!topic_matches(prefix, topic)) continue;
    for (const std::uint32_t rank : ranks) {
      const auto route = rank_routes_.find(rank);
      if (route != rank_routes_.end() && route->second == slot) return true;
    }
  }
  return false;
}

void NodeRuntime::handle_downstream_data(const PacketPtr& packet) {
  const bool deferred = consume_downstream_data(packet);
  if (!deferred && packet->stream_id() != kTelemetryStream) {
    note_consumed(Origin::kParent, 0, 1, grant_share(packet->stream_id()));
  }
}

/// Returns true when the packet was dispatched to the executor (its credit
/// is deferred to completion delivery), false when handled to completion.
bool NodeRuntime::consume_downstream_data(const PacketPtr& packet) {
  const bool telemetry = packet->stream_id() == kTelemetryStream;
  if (telemetry) {
    metrics_.telemetry_packets.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.packets_down.fetch_add(1, std::memory_order_relaxed);
    metrics_.bytes_down.fetch_add(packet->payload_bytes(), std::memory_order_relaxed);
  }

  if (role_ == NodeRole::kLeaf) {
    if (delegate_ != nullptr) delegate_->on_downstream(packet);
    return false;
  }
  const auto it = streams_.find(packet->stream_id());
  if (it == streams_.end()) {
    metrics_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
    TBON_WARN("node " << id_ << " dropping downstream packet for unknown stream "
                      << packet->stream_id());
    return false;
  }
  StreamLocal& stream = it->second;
  if (stream.fast_down) {
    // Identity downstream filter: multicast the packet reference as-is
    // (one shared object across all child queues, relayed verbatim by fd
    // links), accounting the forwarding overhead as filter latency.
    const auto fast_start = now_ns();
    forward_down_to_participants(stream, packet);
    const auto fast_elapsed = static_cast<std::uint64_t>(now_ns() - fast_start);
    metrics_.filter_ns.fetch_add(fast_elapsed, std::memory_order_relaxed);
    metrics_.observe_filter_latency(fast_elapsed);
    return false;
  }
  if (stream.exec) {
    const bool small = inline_cutoff(exec_options_) > 0 &&
                       packet->payload_bytes() < inline_cutoff(exec_options_) &&
                       stream.exec_inflight == 0 && !stream.exec_deadline_armed;
    if (!small) {
      exec_dispatch_downstream(stream, packet);
      return true;
    }
    // Small-packet path: stream idle on its shard, run the down filter here
    // (it never touches the sync policy, so no deadline bookkeeping needed).
    metrics_.exec_inline.fetch_add(1, std::memory_order_relaxed);
  }
  std::vector<PacketPtr> outputs;
  const auto start = now_ns();
  const PacketPtr inputs[] = {packet};
  stream.down_filter->filter(inputs, outputs, stream.ctx);
  const auto elapsed = static_cast<std::uint64_t>(now_ns() - start);
  if (!telemetry) {
    metrics_.filter_ns.fetch_add(elapsed, std::memory_order_relaxed);
    metrics_.observe_filter_latency(elapsed);
  }
  for (const PacketPtr& output : outputs) {
    forward_down_to_participants(stream, output);
  }
  return false;
}

void NodeRuntime::close_all_links() {
  if (parent_link_) parent_link_->close();
  for (auto& link : child_links_) {
    if (link) link->close();
  }
}

}  // namespace tbon
