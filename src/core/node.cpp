#include "core/node.hpp"

#include <algorithm>
#include <chrono>

#include "common/log.hpp"
#include "common/timer.hpp"

namespace tbon {

NodeRuntime::NodeRuntime(const Topology& topology, NodeId id, FilterRegistry& registry,
                         Delegate* delegate)
    : topology_(topology),
      id_(id),
      role_(topology.is_root(id)   ? NodeRole::kRoot
            : topology.is_leaf(id) ? NodeRole::kLeaf
                                   : NodeRole::kInternal),
      registry_(registry),
      delegate_(delegate),
      inbox_(std::make_shared<Inbox>(/*capacity=*/4096)),
      child_alive_(topology.node(id).children.size(), true),
      child_acked_(topology.node(id).children.size(), false),
      live_children_(topology.node(id).children.size()),
      next_dynamic_slot_(
          static_cast<std::uint32_t>(topology.node(id).children.size())) {
  // Peer-message routing table: which child slot serves which back-end rank.
  const auto& children = topology_.node(id_).children;
  for (std::uint32_t slot = 0; slot < children.size(); ++slot) {
    for (const std::uint32_t rank : topology_.subtree_leaf_ranks(children[slot])) {
      rank_routes_[rank] = slot;
    }
  }
}

std::uint32_t NodeRuntime::reserve_child_slot() noexcept {
  return next_dynamic_slot_.fetch_add(1, std::memory_order_relaxed);
}

void NodeRuntime::request_attach(std::uint32_t slot, std::uint32_t backend_rank,
                                 LinkPtr link) {
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    pending_attaches_.emplace_back(slot, backend_rank, std::move(link));
  }
  inbox_->push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
}

void NodeRuntime::request_route(std::uint32_t backend_rank, std::uint32_t slot) {
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    pending_routes_.emplace_back(backend_rank, slot);
  }
  inbox_->push(Envelope{Origin::kParent, 0, make_attach_marker_packet()});
}

void NodeRuntime::process_pending_attaches() {
  std::vector<std::tuple<std::uint32_t, std::uint32_t, LinkPtr>> batch;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> routes;
  {
    std::lock_guard<std::mutex> lock(attach_mutex_);
    batch.swap(pending_attaches_);
    routes.swap(pending_routes_);
  }
  for (const auto& [backend_rank, slot] : routes) {
    rank_routes_[backend_rank] = slot;
  }
  for (auto& [slot, backend_rank, link] : batch) {
    if (child_links_.size() <= slot) {
      child_links_.resize(slot + 1);
      child_alive_.resize(slot + 1, false);
      child_acked_.resize(slot + 1, false);
    }
    child_links_[slot] = std::move(link);
    child_alive_[slot] = true;
    child_acked_[slot] = false;
    ++live_children_;
    rank_routes_[backend_rank] = slot;
    TBON_INFO("node " << id_ << " attached dynamic back-end rank " << backend_rank
                      << " at slot " << slot);
    for (auto& [stream_id, stream] : streams_) {
      if (stream.slot_to_sync_index.size() <= slot) {
        stream.slot_to_sync_index.resize(slot + 1, -1);
      }
      // Dynamic back-ends join every all-endpoints stream; streams over an
      // explicit endpoint set keep their membership.
      if (stream.spec.endpoints.empty()) {
        stream.slot_to_sync_index[slot] =
            static_cast<std::int32_t>(stream.participating_slots.size());
        stream.participating_slots.push_back(slot);
        if (stream.sync) stream.sync->child_added();
      }
      // Replay the announcement so the newcomer knows the stream exists.
      child_links_[slot]->send(stream.spec.to_packet());
    }
    if (shutting_down_) {
      child_links_[slot]->send(make_shutdown_packet());
      ++shutdown_acks_needed_;
    }
  }
}

void NodeRuntime::run() {
  using namespace std::chrono_literals;
  while (!done_) {
    std::optional<Envelope> envelope;
    if (const auto deadline = earliest_deadline()) {
      const auto wait_ns = *deadline - now_ns();
      if (wait_ns > 0) {
        envelope = inbox_->pop_for(std::chrono::nanoseconds(wait_ns));
      } else {
        envelope = inbox_->try_pop();
      }
    } else {
      envelope = inbox_->pop_for(200ms);
    }
    if (envelope) {
      handle_envelope(std::move(*envelope));
    } else if (inbox_->closed() && inbox_->size() == 0) {
      // The node was killed (failure injection) or orphaned: signal EOF to
      // all peers and stop.
      TBON_DEBUG("node " << id_ << " inbox closed; exiting");
      close_all_links();
      return;
    }
    poll_timeouts();
  }
  close_all_links();
}

void NodeRuntime::handle_envelope(Envelope&& envelope) {
  if (!envelope.packet) {
    // EOF marker from a peer.
    if (envelope.origin == Origin::kChild) {
      note_child_gone(envelope.child_slot);
    } else {
      // Parent is gone: the subtree can no longer deliver results; shut down.
      TBON_DEBUG("node " << id_ << " lost its parent; shutting down subtree");
      if (!shutting_down_) handle_shutdown();
      // No parent to ack to: finish immediately once children are gone.
      if (role_ == NodeRole::kLeaf || shutdown_acks_needed_ == 0) done_ = true;
    }
    return;
  }

  const Packet& packet = *envelope.packet;
  if (packet.stream_id() == kControlStream) {
    handle_control(envelope);
    return;
  }

  if (envelope.origin == Origin::kChild) {
    handle_upstream_data(envelope.child_slot, envelope.packet);
  } else {
    handle_downstream_data(envelope.packet);
  }
}

void NodeRuntime::handle_control(const Envelope& envelope) {
  const Packet& packet = *envelope.packet;
  switch (packet.tag()) {
    case kTagNewStream:
      handle_new_stream(StreamSpec::from_packet(packet));
      forward_down(envelope.packet);
      break;
    case kTagDeleteStream:
      handle_delete_stream(static_cast<std::uint32_t>(packet.get_i64(0)));
      forward_down(envelope.packet);
      break;
    case kTagLoadFilter:
      // Idempotent per process: the registry tracks loaded paths.
      try {
        registry_.load_library(packet.get_str(0));
      } catch (const FilterError& error) {
        TBON_ERROR("node " << id_ << ": " << error.what());
      }
      forward_down(envelope.packet);
      break;
    case kTagShutdown:
      if (!shutting_down_) handle_shutdown();
      break;
    case kTagShutdownAck:
      if (envelope.origin == Origin::kChild && shutdown_acks_needed_ > 0 &&
          envelope.child_slot < child_acked_.size() &&
          !child_acked_[envelope.child_slot]) {
        child_acked_[envelope.child_slot] = true;
        --shutdown_acks_needed_;
        maybe_finish_shutdown();
      }
      break;
    case kTagPeerMessage:
      route_peer_message(envelope);
      break;
    case kTagAttachChild:
      process_pending_attaches();
      break;
    default:
      TBON_WARN("node " << id_ << " dropping unknown control tag " << packet.tag());
  }
}

void NodeRuntime::route_peer_message(const Envelope& envelope) {
  const Packet& wrapper = *envelope.packet;
  if (role_ == NodeRole::kLeaf) {
    // Arrived at the destination back-end.
    if (delegate_ != nullptr) delegate_->on_peer_message(unwrap_peer_packet(wrapper));
    return;
  }
  const std::uint32_t dst = peer_packet_destination(wrapper);
  const auto route = rank_routes_.find(dst);
  if (route != rank_routes_.end()) {
    const std::uint32_t slot = route->second;
    if (slot < child_links_.size() && child_links_[slot] && child_alive_[slot]) {
      child_links_[slot]->send(envelope.packet);
    } else {
      TBON_WARN("node " << id_ << " dropping peer message for dead subtree of rank "
                        << dst);
    }
    return;
  }
  // Not in this subtree: forward toward the root ("using the internal
  // process-tree to route back-end to back-end messages", paper §2.1).
  if (parent_link_) {
    parent_link_->send(envelope.packet);
  } else {
    TBON_WARN("node " << id_ << " dropping peer message for unknown rank " << dst);
  }
}

void NodeRuntime::handle_new_stream(const StreamSpec& spec) {
  if (streams_.count(spec.id) != 0) return;  // duplicate announcement

  StreamLocal stream;
  stream.spec = spec;

  const auto& children = topology_.node(id_).children;
  stream.slot_to_sync_index.assign(std::max(children.size(), child_links_.size()), -1);
  for (std::uint32_t slot = 0; slot < children.size(); ++slot) {
    const auto subtree_ranks = topology_.subtree_leaf_ranks(children[slot]);
    const bool participates =
        spec.endpoints.empty() ||
        std::any_of(subtree_ranks.begin(), subtree_ranks.end(),
                    [&](std::uint32_t rank) { return spec.contains(rank); });
    if (participates) {
      stream.slot_to_sync_index[slot] =
          static_cast<std::int32_t>(stream.participating_slots.size());
      stream.participating_slots.push_back(slot);
    }
  }
  // Dynamically attached children (slots beyond the static topology) join
  // every all-endpoints stream.
  for (std::uint32_t slot = static_cast<std::uint32_t>(children.size());
       slot < child_links_.size(); ++slot) {
    if (child_links_[slot] && spec.endpoints.empty()) {
      stream.slot_to_sync_index[slot] =
          static_cast<std::int32_t>(stream.participating_slots.size());
      stream.participating_slots.push_back(slot);
    }
  }

  stream.ctx.node_id = id_;
  stream.ctx.stream_id = spec.id;
  stream.ctx.num_children = stream.participating_slots.size();
  stream.ctx.is_root = role_ == NodeRole::kRoot;
  stream.ctx.is_leaf = role_ == NodeRole::kLeaf;
  stream.ctx.params = spec.parsed_params();

  if (role_ != NodeRole::kLeaf) {
    stream.sync = registry_.make_sync(spec.up_sync, stream.ctx);
    stream.up_filter = registry_.make_transform(spec.up_transform, stream.ctx);
    stream.down_filter = registry_.make_transform(spec.down_transform, stream.ctx);
    // A child may have died before this stream was announced; the sync
    // policy must not wait for it.
    for (const std::uint32_t slot : stream.participating_slots) {
      if (slot < child_alive_.size() && !child_alive_[slot]) {
        stream.sync->child_failed(
            static_cast<std::size_t>(stream.slot_to_sync_index[slot]));
      }
    }
  }

  streams_.emplace(spec.id, std::move(stream));
  if (delegate_ != nullptr) delegate_->on_stream_known(spec);
}

void NodeRuntime::handle_delete_stream(std::uint32_t stream_id) {
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) return;
  flush_stream(it->second);
  streams_.erase(it);
  if (delegate_ != nullptr) delegate_->on_stream_deleted(stream_id);
}

void NodeRuntime::handle_shutdown() {
  shutting_down_ = true;
  shutdown_acks_needed_ = live_children_;
  if (role_ == NodeRole::kLeaf && delegate_ != nullptr) delegate_->on_shutdown();
  // Forward to every live child; leaves have none.
  for (std::uint32_t slot = 0; slot < child_links_.size(); ++slot) {
    if (child_links_[slot] && child_alive_[slot]) {
      child_links_[slot]->send(make_shutdown_packet());
    }
  }
  maybe_finish_shutdown();
}

void NodeRuntime::maybe_finish_shutdown() {
  if (!shutting_down_ || shutdown_acks_needed_ > 0 || done_) return;
  // Every subtree is quiescent: deliver what the sync filters still hold,
  // give transformation filters their finish() hook, then ack upward.
  flush_all_streams();
  if (parent_link_) {
    parent_link_->send(make_shutdown_ack_packet());
  }
  if (role_ == NodeRole::kRoot && delegate_ != nullptr) {
    delegate_->on_shutdown_complete();
  }
  done_ = true;
}

void NodeRuntime::note_child_gone(std::uint32_t slot) {
  if (slot >= child_alive_.size() || !child_alive_[slot]) return;
  child_alive_[slot] = false;
  --live_children_;
  TBON_DEBUG("node " << id_ << " lost child slot " << slot);
  for (auto& [stream_id, stream] : streams_) {
    if (!stream.sync) continue;
    const auto sync_index = stream.slot_to_sync_index[slot];
    if (sync_index >= 0) {
      stream.sync->child_failed(static_cast<std::size_t>(sync_index));
      // Failure may complete a pending wave for the survivors.
      process_batches(stream, stream.sync->drain_ready(now_ns()));
    }
  }
  if (shutting_down_ && shutdown_acks_needed_ > 0 && !child_acked_[slot]) {
    child_acked_[slot] = true;
    --shutdown_acks_needed_;
    maybe_finish_shutdown();
  }
}

void NodeRuntime::handle_upstream_data(std::uint32_t slot, const PacketPtr& packet) {
  metrics_.packets_up.fetch_add(1, std::memory_order_relaxed);
  metrics_.bytes_up.fetch_add(packet->payload_bytes(), std::memory_order_relaxed);

  const auto it = streams_.find(packet->stream_id());
  if (it == streams_.end()) {
    TBON_WARN("node " << id_ << " dropping packet for unknown stream "
                      << packet->stream_id());
    return;
  }
  StreamLocal& stream = it->second;
  if (slot >= stream.slot_to_sync_index.size()) {
    TBON_WARN("node " << id_ << " dropping packet from unwired child slot " << slot);
    return;
  }
  const auto sync_index = stream.slot_to_sync_index[slot];
  if (sync_index < 0) {
    TBON_WARN("node " << id_ << " dropping packet from non-participating child");
    return;
  }
  stream.sync->on_packet(static_cast<std::size_t>(sync_index), packet);
  process_batches(stream, stream.sync->drain_ready(now_ns()));
}

void NodeRuntime::process_batches(StreamLocal& stream,
                                  std::vector<SyncPolicy::Batch> batches) {
  for (auto& batch : batches) {
    if (batch.empty()) continue;
    metrics_.waves.fetch_add(1, std::memory_order_relaxed);
    std::vector<PacketPtr> outputs;
    const auto start = now_ns();
    stream.up_filter->transform(batch, outputs, stream.ctx);
    metrics_.filter_ns.fetch_add(static_cast<std::uint64_t>(now_ns() - start),
                                 std::memory_order_relaxed);
    emit_upstream(stream, outputs);
  }
}

void NodeRuntime::emit_upstream(StreamLocal& stream, std::span<const PacketPtr> packets) {
  for (const PacketPtr& packet : packets) {
    if (role_ == NodeRole::kRoot) {
      if (delegate_ != nullptr) delegate_->on_result(stream.spec.id, packet);
    } else if (parent_link_) {
      parent_link_->send(packet);
    }
  }
}

void NodeRuntime::flush_stream(StreamLocal& stream) {
  if (!stream.sync) return;
  process_batches(stream, stream.sync->flush());
  std::vector<PacketPtr> finals;
  stream.up_filter->finish(finals, stream.ctx);
  emit_upstream(stream, finals);
}

void NodeRuntime::flush_all_streams() {
  for (auto& [stream_id, stream] : streams_) flush_stream(stream);
}

void NodeRuntime::poll_timeouts() {
  const auto now = now_ns();
  for (auto& [stream_id, stream] : streams_) {
    if (!stream.sync) continue;
    const auto deadline = stream.sync->next_deadline();
    if (deadline && *deadline <= now) {
      process_batches(stream, stream.sync->drain_ready(now));
    }
  }
}

std::optional<std::int64_t> NodeRuntime::earliest_deadline() const {
  std::optional<std::int64_t> earliest;
  for (const auto& [stream_id, stream] : streams_) {
    if (!stream.sync) continue;
    const auto deadline = stream.sync->next_deadline();
    if (deadline && (!earliest || *deadline < *earliest)) earliest = deadline;
  }
  return earliest;
}

void NodeRuntime::forward_down(const PacketPtr& packet) {
  for (std::uint32_t slot = 0; slot < child_links_.size(); ++slot) {
    if (child_links_[slot] && child_alive_[slot]) child_links_[slot]->send(packet);
  }
}

void NodeRuntime::forward_down_to_participants(const StreamLocal& stream,
                                               const PacketPtr& packet) {
  for (const std::uint32_t slot : stream.participating_slots) {
    if (slot < child_links_.size() && child_links_[slot] && child_alive_[slot]) {
      child_links_[slot]->send(packet);
    }
  }
}

void NodeRuntime::handle_downstream_data(const PacketPtr& packet) {
  metrics_.packets_down.fetch_add(1, std::memory_order_relaxed);
  metrics_.bytes_down.fetch_add(packet->payload_bytes(), std::memory_order_relaxed);

  if (role_ == NodeRole::kLeaf) {
    if (delegate_ != nullptr) delegate_->on_downstream(packet);
    return;
  }
  const auto it = streams_.find(packet->stream_id());
  if (it == streams_.end()) {
    TBON_WARN("node " << id_ << " dropping downstream packet for unknown stream "
                      << packet->stream_id());
    return;
  }
  StreamLocal& stream = it->second;
  std::vector<PacketPtr> outputs;
  const auto start = now_ns();
  const PacketPtr inputs[] = {packet};
  stream.down_filter->transform(inputs, outputs, stream.ctx);
  metrics_.filter_ns.fetch_add(static_cast<std::uint64_t>(now_ns() - start),
                               std::memory_order_relaxed);
  for (const PacketPtr& output : outputs) {
    forward_down_to_participants(stream, output);
  }
}

void NodeRuntime::close_all_links() {
  if (parent_link_) parent_link_->close();
  for (auto& link : child_links_) {
    if (link) link->close();
  }
}

}  // namespace tbon
