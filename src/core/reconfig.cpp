#include "core/reconfig.hpp"

#include <tuple>

namespace tbon {

std::optional<TopologyDelta> PlacementPolicy::propose(
    std::span<const NodeLoad> candidates, const ReconfigOptions& options) {
  if (options.split_fan_in == 0 && options.split_queue_depth == 0) {
    return std::nullopt;
  }
  for (const NodeLoad& load : candidates) {
    const bool hot_fan_in =
        options.split_fan_in && load.fan_in >= options.split_fan_in;
    const bool hot_queue = options.split_queue_depth &&
                           load.exec_queue_depth >= options.split_queue_depth;
    // A saturated interior needs at least two children to have anything to
    // migrate; propose one split per inspection so cooldown paces the churn.
    if ((hot_fan_in || hot_queue) && load.fan_in >= 2) {
      return TopologyDelta().split(load.node);
    }
  }
  return std::nullopt;
}

NodeId LoadBalancedPolicy::choose_parent(std::span<const NodeLoad> candidates) {
  if (candidates.empty()) return kAutoPlacement;
  const NodeLoad* best = &candidates.front();
  for (const NodeLoad& load : candidates.subspan(1)) {
    const auto key = [](const NodeLoad& l) {
      return std::tuple(l.fan_in, l.exec_queue_depth, l.inbox_depth, l.node);
    };
    if (key(load) < key(*best)) best = &load;
  }
  return best->node;
}

NodeId ManualPolicy::choose_parent(std::span<const NodeLoad> candidates) {
  if (next_ < targets_.size()) return targets_[next_++];
  return candidates.empty() ? kAutoPlacement : candidates.front().node;
}

}  // namespace tbon
