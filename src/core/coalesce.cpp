#include "core/coalesce.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/archive.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/timer.hpp"
#include "core/flow_control.hpp"
#include "core/packet.hpp"
#include "core/protocol.hpp"

namespace tbon {

void BatchingOptions::serialize(BinaryWriter& writer) const {
  writer.put(static_cast<std::uint8_t>(enabled_ ? 1 : 0));
  writer.put(static_cast<std::uint64_t>(max_bytes_));
  writer.put(static_cast<std::uint64_t>(max_packets_));
  writer.put(static_cast<std::int64_t>(max_delay_ns_));
  writer.put(static_cast<std::uint8_t>(adaptive_ ? 1 : 0));
  writer.put(static_cast<std::uint64_t>(adaptive_cutoff_));
}

BatchingOptions BatchingOptions::deserialize(BinaryReader& reader) {
  BatchingOptions o;
  o.enabled_ = reader.get<std::uint8_t>() != 0;
  o.max_bytes_ = static_cast<std::size_t>(reader.get<std::uint64_t>());
  o.max_packets_ = static_cast<std::size_t>(reader.get<std::uint64_t>());
  o.max_delay_ns_ = reader.get<std::int64_t>();
  o.adaptive_ = reader.get<std::uint8_t>() != 0;
  o.adaptive_cutoff_ = static_cast<std::size_t>(reader.get<std::uint64_t>());
  return o;
}

// ---- batch wire frame -------------------------------------------------------

bool is_batch_frame(std::span<const std::byte> frame) noexcept {
  if (frame.size() < sizeof(std::uint32_t)) return false;
  std::uint32_t head = 0;
  std::memcpy(&head, frame.data(), sizeof(head));
  return head == kBatchMarker;
}

Bytes encode_batch_frame(std::span<const PacketPtr> packets) {
  BinaryWriter writer;
  writer.put(kBatchMarker);
  writer.put(static_cast<std::uint32_t>(packets.size()));
  for (const PacketPtr& packet : packets) {
    BinaryWriter body;
    packet->serialize(body);
    writer.put_bytes(body.bytes());
  }
  return writer.take();
}

std::vector<PacketPtr> decode_batch_frame(Bytes frame, bool zero_copy) {
  BufferPtr buffer;
  std::span<const std::byte> data;
  if (zero_copy) {
    buffer = std::make_shared<const Buffer>(std::move(frame));
    data = buffer->span();
  } else {
    data = frame;
  }
  BinaryReader reader(data);
  if (reader.get<std::uint32_t>() != kBatchMarker) {
    throw CodecError("not a batch frame");
  }
  const auto count = reader.get<std::uint32_t>();
  if (count == 0) throw CodecError("batch frame with zero packets");
  if (count > kMaxBatchPackets) {
    throw CodecError("batch frame count " + std::to_string(count) + " exceeds cap");
  }
  std::vector<PacketPtr> packets;
  packets.reserve(std::min<std::size_t>(count, reader.remaining() / 12 + 1));
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto length = reader.get<std::uint32_t>();
    PacketPtr packet;
    if (zero_copy) {
      const std::size_t offset = reader.position();
      reader.skip(length);  // throws CodecError when truncated
      packet = Packet::deserialize_view(BufferView(buffer, offset, length));
      // deserialize_view trims trailing bytes; a trimmed packet means the
      // declared length and the packet's wire form disagree.
      if (packet->wire().size() != length) {
        throw CodecError("batch entry length mismatch");
      }
    } else {
      BinaryReader body(reader.take_span(length));
      packet = Packet::deserialize(body);
      if (!body.exhausted()) throw CodecError("batch entry length mismatch");
    }
    // Control and telemetry never ride in batches (the coalescer flushes
    // around them); in particular a credit grant smuggled into a batch must
    // not reach a CreditSink.
    if (packet->stream_id() == kControlStream ||
        packet->stream_id() == kTelemetryStream) {
      throw CodecError("control packet inside batch frame");
    }
    packets.push_back(std::move(packet));
  }
  if (!reader.exhausted()) throw CodecError("trailing bytes after batch frame");
  return packets;
}

// ---- coalescer --------------------------------------------------------------

CoalescingLink::CoalescingLink(std::shared_ptr<Link> inner, BatchingOptions options,
                               MetricsRegistry* metrics,
                               std::shared_ptr<CreditGate> gate,
                               std::shared_ptr<BatchFlusher> flusher)
    : inner_(std::move(inner)),
      options_(options),
      metrics_(metrics),
      gate_(std::move(gate)),
      flusher_(std::move(flusher)) {}

bool CoalescingLink::send(const PacketPtr& packet) {
  return send_batch({&packet, 1});
}

bool CoalescingLink::send_batch(std::span<const PacketPtr> packets) {
  if (packets.empty()) return true;
  std::unique_lock<std::mutex> lock(mutex_);
  if (closed_) return false;
  bool ok = true;
  for (const PacketPtr& packet : packets) {
    const bool bypass =
        flow_control_exempt(*packet) ||
        (options_.adaptive() && packet->payload_bytes() >= options_.adaptive_cutoff());
    if (bypass) {
      // Flush first so the bypassing packet does not overtake buffered ones.
      ok = flush_locked(FlushReason::kEager) && ok;
      ok = inner_->send(packet) && ok;
      continue;
    }
    buffer_.push_back(packet);
    buffered_bytes_ += packet->payload_bytes();
    if (buffer_.size() >= options_.max_packets() ||
        buffered_bytes_ >= options_.max_bytes() || options_.max_delay_ns() == 0) {
      ok = flush_locked(FlushReason::kSize) && ok;
    } else if (gate_ != nullptr && gate_->available() == 0) {
      // This packet holds the window's last credit: everything buffered must
      // reach the receiver or it can never be consumed and granted against.
      ok = flush_locked(FlushReason::kPressure) && ok;
    }
  }
  bool newly_armed = false;
  if (!buffer_.empty() && deadline_ns_ == 0) {
    deadline_ns_ = now_ns() + options_.max_delay_ns();
    newly_armed = true;
  }
  const std::int64_t deadline = deadline_ns_;
  const auto flusher = flusher_.lock();
  lock.unlock();
  if (newly_armed && flusher != nullptr) flusher->note_armed(deadline);
  return ok;
}

void CoalescingLink::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return;
  flush_locked(FlushReason::kEager);
  closed_ = true;
  inner_->close();
}

bool CoalescingLink::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return false;
  return flush_locked(FlushReason::kEager);
}

std::int64_t CoalescingLink::flush_due(std::int64_t now_ns) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (deadline_ns_ != 0 && now_ns >= deadline_ns_) {
    flush_locked(FlushReason::kDeadline);
  }
  return deadline_ns_;
}

bool CoalescingLink::flush_locked(FlushReason reason) {
  deadline_ns_ = 0;
  if (buffer_.empty()) return true;
  std::vector<PacketPtr> out;
  out.swap(buffer_);
  buffered_bytes_ = 0;
  if (metrics_ != nullptr) {
    metrics_->observe_batch_flush(out.size());
    MetricsRegistry::Counter* cause = nullptr;
    switch (reason) {
      case FlushReason::kSize: cause = &metrics_->batch_flush_size; break;
      case FlushReason::kDeadline: cause = &metrics_->batch_flush_deadline; break;
      case FlushReason::kPressure: cause = &metrics_->batch_flush_pressure; break;
      case FlushReason::kEager: cause = &metrics_->batch_flush_eager; break;
    }
    cause->fetch_add(1, std::memory_order_relaxed);
  }
  return inner_->send_batch(out);
}

// ---- deadline service -------------------------------------------------------

void BatchFlusher::attach(const std::shared_ptr<CoalescingLink>& link) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopped_) return;
  links_.push_back(link);
  if (!started_) {
    started_ = true;
    thread_ = std::jthread([this](const std::stop_token& token) { run(token); });
  }
}

void BatchFlusher::note_armed(std::int64_t deadline_ns) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (next_wake_ns_ != 0 && next_wake_ns_ <= deadline_ns) return;
    next_wake_ns_ = deadline_ns;
  }
  cv_.notify_all();
}

void BatchFlusher::stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (thread_.joinable()) {
    thread_.request_stop();
    cv_.notify_all();
    thread_.join();
  }
}

void BatchFlusher::run(const std::stop_token& token) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!token.stop_requested() && !stopped_) {
    if (next_wake_ns_ == 0) {
      cv_.wait(lock, [&] {
        return stopped_ || token.stop_requested() || next_wake_ns_ != 0;
      });
      continue;
    }
    const std::int64_t now = now_ns();
    if (next_wake_ns_ > now) {
      cv_.wait_for(lock, std::chrono::nanoseconds(next_wake_ns_ - now));
      continue;
    }
    next_wake_ns_ = 0;
    const auto links = links_;  // service outside the lock: flushes may block
    lock.unlock();
    std::int64_t earliest = 0;
    bool any_dead = false;
    const std::int64_t service_now = now_ns();
    for (const auto& weak : links) {
      const auto link = weak.lock();
      if (link == nullptr) {
        any_dead = true;
        continue;
      }
      const std::int64_t due = link->flush_due(service_now);
      if (due != 0 && (earliest == 0 || due < earliest)) earliest = due;
    }
    lock.lock();
    if (any_dead) {
      std::erase_if(links_, [](const auto& weak) { return weak.expired(); });
    }
    if (earliest != 0 && (next_wake_ns_ == 0 || earliest < next_wake_ns_)) {
      next_wake_ns_ = earliest;
    }
  }
}

std::shared_ptr<Link> maybe_coalesce(std::shared_ptr<Link> raw,
                                     const BatchingOptions& options,
                                     MetricsRegistry* metrics,
                                     std::shared_ptr<CreditGate> gate,
                                     const std::shared_ptr<BatchFlusher>& flusher) {
  if (!options.enabled()) return raw;
  auto link = std::make_shared<CoalescingLink>(std::move(raw), options, metrics,
                                               std::move(gate), flusher);
  if (flusher != nullptr) flusher->attach(link);
  return link;
}

}  // namespace tbon
