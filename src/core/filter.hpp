// The data-filter abstraction — the heart of the TBON model.
//
// "A filter can be any function that inputs a set of packets and outputs a
// single packet" (paper §2.1; the general model allows multiple outputs, so
// our interface appends to an output vector).  Filters are instantiated once
// per (node, stream): instance members ARE the persistent filter state the
// paper describes ("persistent filter state, used to carry side-effects from
// one filter execution to the next").
//
// Two filter kinds exist, as in MRNet:
//  * TransformFilter — aggregates/reduces one synchronized batch of packets.
//  * SyncPolicy      — decides *when* buffered upstream packets are grouped
//                      into a batch and delivered to the transformation
//                      filter (wait_for_all, time_out, null).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "core/packet.hpp"
#include "core/tenant.hpp"
#include "telemetry/metrics.hpp"

namespace tbon {

/// The stream's participating-children set at this node, as the runtime
/// currently sees it.  `live[i]` is indexed by sync index (the dense
/// per-stream child ordering sync policies see); entries flip to false when
/// a child is declared dead and new children append as they are adopted.
struct MembershipSnapshot {
  std::size_t num_live = 0;   ///< children currently expected to contribute
  std::size_t num_total = 0;  ///< sync slots ever allocated (== live.size())
  std::vector<bool> live;     ///< liveness by sync index
};

/// Telemetry hook handed to filters through FilterContext.  Cheap to copy;
/// all methods are safe no-ops when telemetry is disabled.  Counts land in
/// the node's MetricsRegistry and aggregate tree-wide like every other
/// metric (filter_custom_events / the filter latency histogram).
class TelemetryScope {
 public:
  TelemetryScope() = default;
  TelemetryScope(MetricsRegistry* metrics, int worker) noexcept
      : metrics_(metrics), worker_(worker) {}

  /// False when the network runs with telemetry disabled.
  bool enabled() const noexcept { return metrics_ != nullptr; }

  /// Worker thread executing this filter call: 0..N-1 under the
  /// FilterExecutor, -1 when running inline on the node's event loop.
  int worker() const noexcept { return worker_; }

  /// Bump the node's custom-event counter (visible tree-wide as
  /// `filter_custom_events`) — a lightweight way for filters to export
  /// domain events without their own plumbing.
  void count(std::uint64_t n = 1) const noexcept {
    if (metrics_) {
      metrics_->filter_custom_events.fetch_add(n, std::memory_order_relaxed);
    }
  }

  /// Record a duration in the node's filter-latency histogram.
  void observe_latency(std::uint64_t ns) const noexcept {
    if (metrics_) metrics_->observe_filter_latency(ns);
  }

 private:
  MetricsRegistry* metrics_ = nullptr;
  int worker_ = -1;
};

/// Everything a filter can consult while running: placement (node id, role),
/// stream identity and parameters, a live membership snapshot, and a
/// telemetry scope.  One context per (node, stream) filter instance; the
/// runtime keeps it current and passes it to every hook, replacing the old
/// ad-hoc setter threading.  A filter call may rely on the context being
/// stable for the duration of that call (the runtime only mutates it
/// between calls, on the same shard that runs the filter).
struct FilterContext {
  std::uint32_t node_id = 0;       ///< topology node this instance runs on
  std::uint32_t stream_id = 0;     ///< stream this instance serves
  std::size_t num_children = 0;    ///< live stream-participating children here
  bool is_root = false;            ///< true at the front-end node
  bool is_leaf = false;            ///< true at a back-end node
  Config params;                   ///< per-stream parameters (key=value)
  std::string topic;               ///< stream's topic path ("" = untopiced)
  std::string tenant;              ///< owning tenant name ("" = none)
  Priority priority = Priority::kNormal;  ///< stream's drain class
  MembershipSnapshot membership;   ///< per-sync-index liveness view
  TelemetryScope telemetry;        ///< custom counters + latency histogram
};

/// A change in a stream's participating-children set at one node, caused by
/// failure detection (child died / was declared dead) or re-adoption (a new
/// child was grafted in).  Stateful filters use this to re-baseline instead
/// of waiting forever for contributions that will never arrive.
struct MembershipChange {
  std::size_t child = 0;         ///< sync index of the affected child
  bool added = false;            ///< true: grafted in; false: gone
  std::size_t num_children = 0;  ///< live participating children *after* the change
  /// With `added`: the child is a previously-retired sync index resuming
  /// contribution (a re-populated relay interior), not a brand-new slot.
  bool revived = false;
};

/// Transformation filter: reduces one synchronized batch of upstream packets
/// (or one downstream packet) into zero or more output packets.
///
/// New code overrides the context-taking hooks — filter() / flush() /
/// membership_changed().  The context-free spellings (transform, finish,
/// on_membership_change) are deprecated: their new-style counterparts
/// forward to them by default, so existing filters keep working unchanged,
/// and test_compat_api pins the forwarding behaviour.
class TransformFilter {
 public:
  virtual ~TransformFilter() = default;

  /// Process a batch.  `in` is never empty.  Outputs are appended to `out`
  /// and forwarded toward the parent (upstream) or the children (downstream).
  virtual void filter(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                      FilterContext& ctx) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    transform(in, out, ctx);
#pragma GCC diagnostic pop
  }

  /// Batch-first hook: process several *independent* single-packet waves in
  /// one invocation.  The runtime calls this when a coalesced batch arrives
  /// on a null-sync stream — each packet in `in` is its own wave, so the
  /// required semantics are exactly `for each p: filter({p}, out, ctx)`,
  /// which is what the default does (every existing filter keeps working
  /// and produces byte-identical output).  Override when per-wave work can
  /// be amortized across the batch (vectorized kernels, shared lookups);
  /// overrides must preserve the one-wave-per-packet contract.  Do NOT
  /// reduce across `in` here — cross-packet aggregation is what filter()
  /// with a grouping SyncPolicy is for.
  virtual void filter_batch(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                            FilterContext& ctx) {
    for (const PacketPtr& packet : in) {
      filter({&packet, 1}, out, ctx);
    }
  }

  /// Called once when the stream shuts down; filters holding buffered state
  /// (e.g. time-aligned aggregation) may emit final packets here.
  virtual void flush(std::vector<PacketPtr>& out, FilterContext& ctx) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    finish(out, ctx);
#pragma GCC diagnostic pop
  }

  /// The stream's membership changed at this node (failure or re-adoption).
  /// `ctx.num_children` / `ctx.membership` already reflect the new state.
  /// Filters keyed on the expected number of contributors re-baseline here
  /// and may emit buffered aggregates that the change just completed;
  /// stateless filters ignore it (default).
  virtual void membership_changed(const MembershipChange& change,
                                  std::vector<PacketPtr>& out, FilterContext& ctx) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    on_membership_change(change, out, ctx);
#pragma GCC diagnostic pop
  }

  /// \deprecated Override filter(in, out, FilterContext&) instead.
  [[deprecated("override filter(in, out, FilterContext&) instead")]]
  virtual void transform(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                         const FilterContext& ctx) {
    (void)in;
    (void)out;
    (void)ctx;
    throw std::logic_error("TransformFilter: neither filter() nor transform() overridden");
  }

  /// \deprecated Override flush(out, FilterContext&) instead.
  [[deprecated("override flush(out, FilterContext&) instead")]]
  virtual void finish(std::vector<PacketPtr>& out, const FilterContext& ctx) {
    (void)out;
    (void)ctx;
  }

  /// \deprecated Override membership_changed(change, out, FilterContext&) instead.
  [[deprecated("override membership_changed(change, out, FilterContext&) instead")]]
  virtual void on_membership_change(const MembershipChange& change,
                                    std::vector<PacketPtr>& out,
                                    const FilterContext& ctx) {
    (void)change;
    (void)out;
    (void)ctx;
  }
};

/// Synchronization filter: groups upstream packets into batches.
///
/// The runtime calls on_packet() for each arriving packet, then drain_ready()
/// to collect complete batches.  Policies with time-based behaviour report a
/// deadline via next_deadline(); the runtime wakes the node at that time and
/// calls drain_ready() again.  flush() empties all buffers (stream teardown).
class SyncPolicy {
 public:
  virtual ~SyncPolicy() = default;

  using Batch = std::vector<PacketPtr>;

  /// A packet arrived from stream-participating child slot `child`.
  virtual void on_packet(std::size_t child, PacketPtr packet, FilterContext& ctx) {
    (void)ctx;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    on_packet(child, std::move(packet));
#pragma GCC diagnostic pop
  }

  /// Return every batch that is ready at monotonic time `now_ns`.
  virtual std::vector<Batch> drain_ready(std::int64_t now_ns, FilterContext& ctx) {
    (void)ctx;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    return drain_ready(now_ns);
#pragma GCC diagnostic pop
  }

  /// Deliver everything still buffered, regardless of completeness.
  virtual std::vector<Batch> flush(FilterContext& ctx) {
    (void)ctx;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    return flush();
#pragma GCC diagnostic pop
  }

  /// Unified membership hook used by the recovery subsystem; the default
  /// forwards to the context-free spelling, whose own default forwards to
  /// child_failed()/child_added() so existing policies (e.g. wait_for_all
  /// shrinking its expected-child set) work unchanged.
  virtual void membership_changed(const MembershipChange& change, FilterContext& ctx) {
    (void)ctx;
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    on_membership_change(change);
#pragma GCC diagnostic pop
  }

  /// Monotonic deadline at which drain_ready() should be re-polled, if any.
  virtual std::optional<std::int64_t> next_deadline() const { return std::nullopt; }

  /// Packets currently buffered awaiting batch formation (telemetry gauge).
  virtual std::size_t buffered() const { return 0; }

  /// A child was declared failed; stop waiting for it (reliability hook —
  /// wait_for_all degrades to the surviving children).
  virtual void child_failed(std::size_t child) { (void)child; }

  /// A child was attached at runtime (dynamic topology, paper §2.2:
  /// "back-end processes may join after the internal tree has been
  /// instantiated"); the policy should start expecting it.
  virtual void child_added() {}

  /// A previously-failed/retired child index resumed contributing (planned
  /// reconfiguration re-populated an emptied relay subtree); the policy
  /// should expect it again.  The default is a no-op: index-agnostic
  /// policies (timeout, null) need nothing, and appending a fresh index
  /// here would deadlock index-tracking policies, so those override it
  /// (wait_for_all re-arms the existing index).
  virtual void child_revived(std::size_t child) { (void)child; }

  /// \deprecated Override on_packet(child, packet, FilterContext&) instead.
  [[deprecated("override on_packet(child, packet, FilterContext&) instead")]]
  virtual void on_packet(std::size_t child, PacketPtr packet) {
    (void)child;
    (void)packet;
    throw std::logic_error("SyncPolicy: neither on_packet overload overridden");
  }

  /// \deprecated Override drain_ready(now_ns, FilterContext&) instead.
  [[deprecated("override drain_ready(now_ns, FilterContext&) instead")]]
  virtual std::vector<Batch> drain_ready(std::int64_t now_ns) {
    (void)now_ns;
    throw std::logic_error("SyncPolicy: neither drain_ready overload overridden");
  }

  /// \deprecated Override flush(FilterContext&) instead.
  [[deprecated("override flush(FilterContext&) instead")]]
  virtual std::vector<Batch> flush() {
    throw std::logic_error("SyncPolicy: neither flush overload overridden");
  }

  /// \deprecated Override membership_changed(change, FilterContext&) instead.
  [[deprecated("override membership_changed(change, FilterContext&) instead")]]
  virtual void on_membership_change(const MembershipChange& change) {
    if (change.added) {
      if (change.revived) {
        child_revived(change.child);
      } else {
        child_added();
      }
    } else {
      child_failed(change.child);
    }
  }
};

/// Factory signatures used by the registry.
using TransformFactory =
    std::function<std::unique_ptr<TransformFilter>(const FilterContext& ctx)>;
using SyncFactory = std::function<std::unique_ptr<SyncPolicy>(const FilterContext& ctx)>;

}  // namespace tbon
