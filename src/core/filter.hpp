// The data-filter abstraction — the heart of the TBON model.
//
// "A filter can be any function that inputs a set of packets and outputs a
// single packet" (paper §2.1; the general model allows multiple outputs, so
// our interface appends to an output vector).  Filters are instantiated once
// per (node, stream): instance members ARE the persistent filter state the
// paper describes ("persistent filter state, used to carry side-effects from
// one filter execution to the next").
//
// Two filter kinds exist, as in MRNet:
//  * TransformFilter — aggregates/reduces one synchronized batch of packets.
//  * SyncPolicy      — decides *when* buffered upstream packets are grouped
//                      into a batch and delivered to the transformation
//                      filter (wait_for_all, time_out, null).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/packet.hpp"

namespace tbon {

/// Static information a filter can consult while running.
struct FilterContext {
  std::uint32_t node_id = 0;       ///< topology node this instance runs on
  std::uint32_t stream_id = 0;     ///< stream this instance serves
  std::size_t num_children = 0;    ///< stream-participating children here
  bool is_root = false;            ///< true at the front-end node
  bool is_leaf = false;            ///< true at a back-end node
  Config params;                   ///< per-stream parameters (key=value)
};

/// A change in a stream's participating-children set at one node, caused by
/// failure detection (child died / was declared dead) or re-adoption (a new
/// child was grafted in).  Stateful filters use this to re-baseline instead
/// of waiting forever for contributions that will never arrive.
struct MembershipChange {
  std::size_t child = 0;         ///< sync index of the affected child
  bool added = false;            ///< true: grafted in; false: gone
  std::size_t num_children = 0;  ///< live participating children *after* the change
};

/// Transformation filter: reduces one synchronized batch of upstream packets
/// (or one downstream packet) into zero or more output packets.
class TransformFilter {
 public:
  virtual ~TransformFilter() = default;

  /// Process a batch.  `in` is never empty.  Outputs are appended to `out`
  /// and forwarded toward the parent (upstream) or the children (downstream).
  virtual void transform(std::span<const PacketPtr> in, std::vector<PacketPtr>& out,
                         const FilterContext& ctx) = 0;

  /// Called once when the stream shuts down; filters holding buffered state
  /// (e.g. time-aligned aggregation) may emit final packets here.
  virtual void finish(std::vector<PacketPtr>& out, const FilterContext& ctx) {
    (void)out;
    (void)ctx;
  }

  /// The stream's membership changed at this node (failure or re-adoption).
  /// `ctx.num_children` already reflects the new count.  Filters keyed on
  /// the expected number of contributors re-baseline here and may emit
  /// buffered aggregates that the change just completed; stateless filters
  /// ignore it (default).
  virtual void on_membership_change(const MembershipChange& change,
                                    std::vector<PacketPtr>& out,
                                    const FilterContext& ctx) {
    (void)change;
    (void)out;
    (void)ctx;
  }
};

/// Synchronization filter: groups upstream packets into batches.
///
/// The runtime calls on_packet() for each arriving packet, then drain_ready()
/// to collect complete batches.  Policies with time-based behaviour report a
/// deadline via next_deadline(); the runtime wakes the node at that time and
/// calls drain_ready() again.  flush() empties all buffers (stream teardown).
class SyncPolicy {
 public:
  virtual ~SyncPolicy() = default;

  using Batch = std::vector<PacketPtr>;

  /// A packet arrived from stream-participating child slot `child`.
  virtual void on_packet(std::size_t child, PacketPtr packet) = 0;

  /// Return every batch that is ready at monotonic time `now_ns`.
  virtual std::vector<Batch> drain_ready(std::int64_t now_ns) = 0;

  /// Monotonic deadline at which drain_ready() should be re-polled, if any.
  virtual std::optional<std::int64_t> next_deadline() const { return std::nullopt; }

  /// Deliver everything still buffered, regardless of completeness.
  virtual std::vector<Batch> flush() = 0;

  /// Packets currently buffered awaiting batch formation (telemetry gauge).
  virtual std::size_t buffered() const { return 0; }

  /// A child was declared failed; stop waiting for it (reliability hook —
  /// wait_for_all degrades to the surviving children).
  virtual void child_failed(std::size_t child) { (void)child; }

  /// A child was attached at runtime (dynamic topology, paper §2.2:
  /// "back-end processes may join after the internal tree has been
  /// instantiated"); the policy should start expecting it.
  virtual void child_added() {}

  /// Unified membership hook used by the recovery subsystem; the default
  /// forwards to child_failed()/child_added() so existing policies (e.g.
  /// wait_for_all shrinking its expected-child set) work unchanged.
  virtual void on_membership_change(const MembershipChange& change) {
    if (change.added) {
      child_added();
    } else {
      child_failed(change.child);
    }
  }
};

/// Factory signatures used by the registry.
using TransformFactory =
    std::function<std::unique_ptr<TransformFilter>(const FilterContext& ctx)>;
using SyncFactory = std::function<std::unique_ptr<SyncPolicy>(const FilterContext& ctx)>;

}  // namespace tbon
