// Adaptive small-packet batching — per-channel coalescing of data packets
// into multi-packet wire frames.
//
// The paper's flagship workload (Paradyn startup, §2.2) is millions of tiny
// packets, where per-packet framing, wakeups and credit accounting dominate.
// A CoalescingLink decorates a channel's raw link and aggregates data
// packets, flushing as one multi-packet frame when any trigger fires:
//
//  * size      — buffered bytes or packet count reach the configured cap;
//  * deadline  — the oldest buffered packet has waited max_delay (a
//                BatchFlusher thread services deadlines, since back-end
//                application threads have no event loop of their own);
//  * pressure  — the channel's credit window is exhausted: anything still
//                buffered must reach the receiver or it can never be
//                consumed, granted against, and the sender unblocked;
//  * bypass    — a control or telemetry packet (recovery and shutdown
//                latency stay untouched) or, in adaptive mode, a payload at
//                or above the cutoff (the 64 KiB zero-copy path stays a
//                single-packet frame) flushes the buffer and goes alone.
//
// Credits stay per-packet: FlowControlledLink wraps the coalescer, so every
// data packet acquires its credit *before* being buffered, and a batch
// frame simply carries several already-accounted packets (granted back
// per-packet by the receiver as each one is consumed).
//
// The wire form is self-describing: a frame whose first u32 is kBatchMarker
// (never a valid stream id) is a batch — see encode_batch_frame().
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "common/buffer.hpp"
#include "core/runtime.hpp"

namespace tbon {

class CreditGate;

/// Upper bound on packets per batch frame; a decoded count above this is
/// malformed (a hostile count must not pre-reserve unbounded memory).
inline constexpr std::uint32_t kMaxBatchPackets = 1u << 16;

/// Batching knobs, in the typed-builder style of TopologyOptions: start from
/// a factory, chain setters, hand the result to NetworkOptions::batching.
///
///   options.batching = BatchingOptions::on()
///                          .max_packets(128)
///                          .max_delay(std::chrono::microseconds(250));
///
/// Default-constructed (and ::off()) batching is disabled and every send
/// behaves exactly as before this subsystem existed.
class BatchingOptions {
 public:
  BatchingOptions() = default;

  /// Batching disabled; all sends are single-packet frames (the default).
  static BatchingOptions off() { return BatchingOptions(); }

  /// Batching enabled with the default thresholds: 16 KiB / 64 packets /
  /// 1 ms deadline, adaptive large-payload bypass at 4 KiB.
  static BatchingOptions on() {
    BatchingOptions o;
    o.enabled_ = true;
    return o;
  }

  /// Flush when this many payload bytes are buffered.
  BatchingOptions& max_bytes(std::size_t bytes) {
    max_bytes_ = bytes;
    return *this;
  }

  /// Flush when this many packets are buffered (clamped to kMaxBatchPackets).
  BatchingOptions& max_packets(std::size_t packets) {
    max_packets_ = packets < kMaxBatchPackets ? packets : kMaxBatchPackets;
    if (max_packets_ == 0) max_packets_ = 1;
    return *this;
  }

  /// Flush the oldest buffered packet after this long (the deadline timer).
  BatchingOptions& max_delay(std::chrono::nanoseconds delay) {
    max_delay_ns_ = delay.count() > 0 ? delay.count() : 0;
    return *this;
  }

  /// Adaptive mode: payloads at or above adaptive_cutoff() bypass the
  /// buffer and go out alone, keeping the large-payload zero-copy path.
  BatchingOptions& adaptive(bool on) {
    adaptive_ = on;
    return *this;
  }

  /// Payload size at which adaptive mode stops coalescing.
  BatchingOptions& adaptive_cutoff(std::size_t bytes) {
    adaptive_cutoff_ = bytes;
    return *this;
  }

  bool enabled() const noexcept { return enabled_; }
  std::size_t max_bytes() const noexcept { return max_bytes_; }
  std::size_t max_packets() const noexcept { return max_packets_; }
  std::int64_t max_delay_ns() const noexcept { return max_delay_ns_; }
  bool adaptive() const noexcept { return adaptive_; }
  std::size_t adaptive_cutoff() const noexcept { return adaptive_cutoff_; }

  /// Wire form for shipping the options to remote node processes.
  void serialize(BinaryWriter& writer) const;
  static BatchingOptions deserialize(BinaryReader& reader);

 private:
  bool enabled_ = false;
  std::size_t max_bytes_ = 16 * 1024;
  std::size_t max_packets_ = 64;
  std::int64_t max_delay_ns_ = 1'000'000;  // 1 ms
  bool adaptive_ = true;
  std::size_t adaptive_cutoff_ = 4096;
};

// ---- batch wire frame -------------------------------------------------------

/// True when `frame` begins with kBatchMarker (a multi-packet frame).
bool is_batch_frame(std::span<const std::byte> frame) noexcept;

/// Encode packets into one batch frame payload (no outer length prefix):
/// u32 kBatchMarker, u32 count, then count x (u32 length + packet bytes).
Bytes encode_batch_frame(std::span<const PacketPtr> packets);

/// Decode a batch frame.  All-or-nothing: every packet is validated before
/// any is returned, so a malformed frame has no side effects — the caller
/// drops it without delivering envelopes or minting credits.  Rejects empty
/// batches, counts above kMaxBatchPackets, length/size mismatches, trailing
/// bytes, and control/telemetry packets smuggled inside a batch (throws
/// CodecError).  With `zero_copy`, decoded packets alias the frame buffer.
std::vector<PacketPtr> decode_batch_frame(Bytes frame, bool zero_copy);

// ---- coalescer --------------------------------------------------------------

class BatchFlusher;

/// Link decorator that buffers data packets and forwards them to the inner
/// link as multi-packet batches (inner->send_batch).  Thread-safe like every
/// Link.  Wrap it *inside* FlowControlledLink so credits are accounted
/// per-packet before buffering; give it the same channel's CreditGate so it
/// can flush on window exhaustion.
class CoalescingLink final : public Link {
 public:
  /// `flusher`, when given, services this link's deadline timer.  `gate`,
  /// when given, triggers the credit-pressure flush.  `metrics`, when given,
  /// receives the batch_* counters and must outlive the link.
  CoalescingLink(std::shared_ptr<Link> inner, BatchingOptions options,
                 MetricsRegistry* metrics = nullptr,
                 std::shared_ptr<CreditGate> gate = nullptr,
                 std::shared_ptr<BatchFlusher> flusher = nullptr);

  bool send(const PacketPtr& packet) override;
  bool send_batch(std::span<const PacketPtr> packets) override;
  void close() override;

  /// Flush whatever is buffered now (counted as an eager flush).
  bool flush() override;

  /// Flush if the deadline has passed; returns the (re)armed deadline in
  /// now_ns() terms, or 0 when nothing is buffered.  BatchFlusher only.
  std::int64_t flush_due(std::int64_t now_ns);

 private:
  enum class FlushReason { kSize, kDeadline, kPressure, kEager };

  bool flush_locked(FlushReason reason);

  std::mutex mutex_;
  std::shared_ptr<Link> inner_;
  BatchingOptions options_;
  MetricsRegistry* metrics_;
  std::shared_ptr<CreditGate> gate_;
  // Weak on purpose: the flusher's service thread can hold the last
  // shared_ptr to a link mid-teardown, and a link holding the last strong
  // flusher reference would then run ~BatchFlusher — and join the service
  // thread — *on* the service thread.
  std::weak_ptr<BatchFlusher> flusher_;
  std::vector<PacketPtr> buffer_;
  std::size_t buffered_bytes_ = 0;
  std::int64_t deadline_ns_ = 0;  ///< 0 = nothing buffered
  bool closed_ = false;
};

/// One deadline-service thread per process: coalescing links register here,
/// and the thread sleeps until the earliest armed deadline, flushing links
/// that are due.  Needed because a back-end's sends happen on application
/// threads with no event loop to post timers on.  The thread starts lazily
/// on the first attach — create the flusher before forking, attach after.
class BatchFlusher : public std::enable_shared_from_this<BatchFlusher> {
 public:
  BatchFlusher() = default;
  ~BatchFlusher() { stop(); }

  BatchFlusher(const BatchFlusher&) = delete;
  BatchFlusher& operator=(const BatchFlusher&) = delete;

  /// Register a link for deadline service (weak: links may die first).
  void attach(const std::shared_ptr<CoalescingLink>& link);

  /// A link armed a deadline; wake the service thread if it is earlier than
  /// the current wake target.
  void note_armed(std::int64_t deadline_ns);

  /// Stop and join the service thread (idempotent; destructor calls it).
  void stop();

 private:
  void run(const std::stop_token& token);

  std::mutex mutex_;
  std::condition_variable_any cv_;
  std::vector<std::weak_ptr<CoalescingLink>> links_;
  std::int64_t next_wake_ns_ = 0;  ///< 0 = nothing armed
  bool started_ = false;
  bool stopped_ = false;
  std::jthread thread_;
};

/// Wrap `raw` in a CoalescingLink when `options` enable batching (attaching
/// it to `flusher` when given); otherwise return `raw` unchanged.
std::shared_ptr<Link> maybe_coalesce(std::shared_ptr<Link> raw,
                                     const BatchingOptions& options,
                                     MetricsRegistry* metrics,
                                     std::shared_ptr<CreditGate> gate,
                                     const std::shared_ptr<BatchFlusher>& flusher);

}  // namespace tbon
