#include "core/registry.hpp"

#include <dlfcn.h>

#include "common/error.hpp"
#include "core/builtin_filters.hpp"

namespace tbon {

FilterRegistry& FilterRegistry::instance() {
  static FilterRegistry* registry = [] {
    auto* r = new FilterRegistry();  // intentionally leaked: lives for the process
    register_builtin_filters(*r);
    return r;
  }();
  return *registry;
}

void FilterRegistry::register_transform(const std::string& name, TransformFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!transforms_.emplace(name, std::move(factory)).second) {
    throw FilterError("duplicate transform filter '" + name + "'");
  }
}

void FilterRegistry::register_sync(const std::string& name, SyncFactory factory) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!syncs_.emplace(name, std::move(factory)).second) {
    throw FilterError("duplicate sync filter '" + name + "'");
  }
}

bool FilterRegistry::has_transform(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return transforms_.count(name) != 0;
}

bool FilterRegistry::has_sync(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return syncs_.count(name) != 0;
}

std::unique_ptr<TransformFilter> FilterRegistry::make_transform(
    const std::string& name, const FilterContext& ctx) const {
  TransformFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = transforms_.find(name);
    if (it == transforms_.end()) throw FilterError("unknown transform filter '" + name + "'");
    factory = it->second;
  }
  return factory(ctx);
}

std::unique_ptr<SyncPolicy> FilterRegistry::make_sync(const std::string& name,
                                                      const FilterContext& ctx) const {
  SyncFactory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = syncs_.find(name);
    if (it == syncs_.end()) throw FilterError("unknown sync filter '" + name + "'");
    factory = it->second;
  }
  return factory(ctx);
}

void FilterRegistry::load_library(const std::string& path) {
  {
    // Loading is idempotent per path: in the threaded instantiation every
    // communication process shares this registry, and the LOAD_FILTER
    // control packet reaches each of them.
    std::lock_guard<std::mutex> lock(mutex_);
    if (loaded_paths_.count(path) != 0) return;
  }
  void* handle = dlopen(path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    throw FilterError("dlopen(" + path + ") failed: " + dlerror());
  }
  auto entry = reinterpret_cast<tbon_register_filters_fn>(
      dlsym(handle, "tbon_register_filters"));
  if (entry == nullptr) {
    dlclose(handle);
    throw FilterError(path + " does not export tbon_register_filters");
  }
  entry(this);
  std::lock_guard<std::mutex> lock(mutex_);
  loaded_libraries_.push_back(handle);
  loaded_paths_.insert(path);
}

std::vector<std::string> FilterRegistry::transform_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(transforms_.size());
  for (const auto& [name, _] : transforms_) names.push_back(name);
  return names;
}

std::vector<std::string> FilterRegistry::sync_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(syncs_.size());
  for (const auto& [name, _] : syncs_) names.push_back(name);
  return names;
}

}  // namespace tbon
