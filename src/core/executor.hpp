// FilterExecutor: a per-node pool of worker threads that runs filter work
// off the event loop, so the loop shrinks to pure I/O + control (heartbeats,
// credits, adoption never wait behind a slow filter).
//
// Ordering model — "stream sharding":
//   * Every stream is pinned to one worker: shard = hash(stream_id) % N.
//   * Each stream has its own FIFO run queue; a worker executes one stream's
//     tasks strictly in post order.
// Together these preserve per-stream FIFO delivery and stateful-filter
// sequencing *exactly* (a stream's sync policy and transformation filter are
// only ever touched from its shard), while distinct streams execute
// concurrently on distinct workers.
//
// The executor knows nothing about packets or links: the NodeRuntime posts
// closures that run the sync/filter machinery and hand their outputs back to
// the event loop as completion records (see node.hpp).  Timed sync policies
// (time_out) are served by per-stream deadline polls that fire on the
// stream's own shard, so even timer-driven drains keep the sharding
// guarantee.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <condition_variable>
#include <thread>
#include <vector>

#include "core/tenant.hpp"
#include "telemetry/metrics.hpp"

namespace tbon {

/// Typed executor configuration (part of NetworkOptions).  The default —
/// zero workers — keeps today's inline behaviour: every filter runs on the
/// node's event-loop thread and existing programs are unchanged.
// The pragma pair covers the implicitly-defined constructors, which touch
// the deprecated member's default initializer; only explicit user mentions
// of the knob should warn.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
struct ExecutionOptions {
  /// Worker threads per interior node (the front-end and every internal
  /// communication process; leaves run no filters).  0 = inline.
  std::uint32_t num_workers = 0;

  /// Per-stream run-queue bound.  A full queue blocks the event loop's
  /// post(), which in turn stops the loop from returning flow-control
  /// credits — worker-queue occupancy therefore counts against the
  /// channel's credit window and the bounded-depth guarantee survives.
  std::size_t stream_queue_capacity = 1024;

  /// Packets with payloads smaller than this run inline on the event loop
  /// when their stream has no work in flight (cuts the handoff cost for
  /// tiny packets without ever reordering a stream).  0 = always dispatch.
  /// \deprecated Superseded by adaptive batching (NetworkOptions::batching):
  /// a coalesced run of small packets reaches its filter as one dispatch,
  /// which amortizes the handoff this knob worked around packet-by-packet.
  /// Still honoured when set; pinned in tests/test_compat_api.cpp.
  [[deprecated("superseded by NetworkOptions::batching (see docs/batching.md); still honoured when set")]]
  std::size_t inline_below_bytes = 0;

  bool enabled() const noexcept { return num_workers > 0; }
};
#pragma GCC diagnostic pop

class FilterExecutor {
 public:
  using Task = std::function<void()>;
  /// Deadline poll: runs on the stream's shard when its armed deadline
  /// expires (the executor-mode replacement for the loop's poll_timeouts).
  using DeadlinePoll = std::function<void(std::int64_t now_ns)>;

  /// `metrics` (optional) receives exec_tasks / exec_task_ns /
  /// exec_queue_peak as work flows through; workers start immediately.
  FilterExecutor(const ExecutionOptions& options, MetricsRegistry* metrics);
  ~FilterExecutor();

  FilterExecutor(const FilterExecutor&) = delete;
  FilterExecutor& operator=(const FilterExecutor&) = delete;

  std::uint32_t num_workers() const noexcept {
    return static_cast<std::uint32_t>(workers_.size());
  }

  /// The worker a stream is pinned to (stable for the executor's lifetime).
  std::uint32_t shard_of(std::uint32_t stream_id) const noexcept;

  /// Register a stream before posting work for it.  `poll` may be empty for
  /// streams whose sync policy never arms deadlines.  `priority` places the
  /// stream's tasks in its shard's weighted drain (control > high > normal >
  /// bulk with weights 4/2/1 below control, which always drains first) so a
  /// bulk flood sharing a shard cannot starve a high-priority stream.
  void add_stream(std::uint32_t stream_id, DeadlinePoll poll,
                  Priority priority = Priority::kNormal);

  /// Unregister (call only after drain_stream: no tasks may be in flight).
  void remove_stream(std::uint32_t stream_id);

  /// Enqueue a task on the stream's shard, preserving per-stream FIFO order.
  /// Blocks while the stream's queue is at capacity (backpressure toward
  /// the event loop, which is what keeps credits unreturned).
  void post(std::uint32_t stream_id, Task task);

  /// Arm (or clear, with deadline_ns < 0) the stream's drain deadline.
  /// Called from the stream's own shard at the end of each task, so it can
  /// never race that stream's execution.
  void set_deadline(std::uint32_t stream_id, std::int64_t deadline_ns);

  /// Barrier: every task posted so far (all streams) has finished.
  void drain();

  /// Barrier for one stream's queue.
  void drain_stream(std::uint32_t stream_id);

  /// True when the stream has no queued or executing task (event-loop
  /// callers use this for the inline-below-bytes fast path).
  bool stream_idle(std::uint32_t stream_id) const;

  /// Tasks currently queued across all streams (telemetry gauge).
  std::uint64_t queue_depth() const;

  /// Stop workers after their current task, abandoning queued work (crash
  /// teardown; orderly shutdown drains first).  Idempotent.
  void stop();

 private:
  struct StreamState {
    DeadlinePoll poll;
    Priority priority = Priority::kNormal;
    std::size_t queued = 0;           ///< tasks waiting in the run queue
    bool running = false;             ///< a task or poll is executing now
    std::int64_t deadline_ns = -1;    ///< armed drain deadline; -1 = none
  };

  struct Worker {
    mutable std::mutex mutex;
    std::condition_variable wake;     ///< work arrived / deadline re-armed / stop
    std::condition_variable settled;  ///< task finished (post backpressure, drains)
    /// Per-priority cross-stream FIFOs; within one class tasks run in post
    /// order, so per-stream FIFO holds (a stream lives in exactly one class).
    std::array<std::deque<std::pair<std::uint32_t, Task>>, kNumPriorities> queues;
    std::map<std::uint32_t, StreamState> streams;
    std::size_t executing = 0;        ///< tasks/polls running right now
    /// Weighted-round-robin drain state over kHigh/kNormal/kBulk.
    std::size_t wrr_class = static_cast<std::size_t>(Priority::kHigh);
    std::uint32_t wrr_left = 0;
    std::jthread thread;
  };

  bool pop_task_locked(Worker& worker, std::uint32_t& stream_id, Task& task);
  void worker_loop(Worker& worker);

  ExecutionOptions options_;
  MetricsRegistry* metrics_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
};

}  // namespace tbon
