#include "core/tenant.hpp"

#include "core/protocol.hpp"

namespace tbon {

void TenantTable::register_stream(std::uint32_t stream_id, Priority priority,
                                  const std::string& tenant_name,
                                  const TenantOptions& budget) {
  std::lock_guard lock(mutex_);
  std::uint16_t index = kNoTenant;
  if (!tenant_name.empty()) {
    const auto it = tenant_index_.find(tenant_name);
    if (it != tenant_index_.end()) {
      index = it->second;
      tenants_[index]->budget = budget;
    } else if (tenants_.size() < kNoTenant) {
      index = static_cast<std::uint16_t>(tenants_.size());
      auto cell = std::make_unique<Tenant>();
      cell->name = tenant_name;
      cell->budget = budget;
      tenants_.push_back(std::move(cell));
      tenant_index_.emplace(tenant_name, index);
    }
  }
  streams_[stream_id] = StreamClass{priority, index};
}

void TenantTable::forget_stream(std::uint32_t stream_id) {
  std::lock_guard lock(mutex_);
  streams_.erase(stream_id);
}

Priority TenantTable::priority_of(std::uint32_t stream_id) const {
  return classify(stream_id).priority;
}

TenantTable::StreamClass TenantTable::classify(std::uint32_t stream_id) const {
  if (stream_id == kControlStream || stream_id == kTelemetryStream) {
    return StreamClass{Priority::kControl, kNoTenant};
  }
  std::lock_guard lock(mutex_);
  const auto it = streams_.find(stream_id);
  if (it == streams_.end()) return StreamClass{};
  return it->second;
}

TenantOptions TenantTable::budget(std::uint16_t tenant) const {
  std::lock_guard lock(mutex_);
  if (tenant >= tenants_.size()) return TenantOptions();
  return tenants_[tenant]->budget;
}

TenantTable::Tenant* TenantTable::tenant_cell(std::uint16_t tenant) const noexcept {
  std::lock_guard lock(mutex_);
  if (tenant >= tenants_.size()) return nullptr;
  return tenants_[tenant].get();
}

void TenantTable::note_send(std::uint16_t tenant, std::uint64_t bytes) noexcept {
  Tenant* cell = tenant_cell(tenant);
  if (!cell) return;
  cell->packets.fetch_add(1, std::memory_order_relaxed);
  cell->bytes.fetch_add(bytes, std::memory_order_relaxed);
}

void TenantTable::note_throttled(std::uint16_t tenant) noexcept {
  Tenant* cell = tenant_cell(tenant);
  if (!cell) return;
  cell->sends_throttled.fetch_add(1, std::memory_order_relaxed);
}

void TenantTable::note_shed(std::uint16_t tenant, std::uint64_t packets) noexcept {
  Tenant* cell = tenant_cell(tenant);
  if (!cell) return;
  cell->packets_shed.fetch_add(packets, std::memory_order_relaxed);
}

std::vector<TenantTelemetry> TenantTable::snapshot() const {
  std::lock_guard lock(mutex_);
  std::vector<TenantTelemetry> out;
  out.reserve(tenants_.size());
  for (const auto& cell : tenants_) {
    TenantTelemetry t;
    t.name = cell->name;
    t.packets = cell->packets.load(std::memory_order_relaxed);
    t.bytes = cell->bytes.load(std::memory_order_relaxed);
    t.sends_throttled = cell->sends_throttled.load(std::memory_order_relaxed);
    t.packets_shed = cell->packets_shed.load(std::memory_order_relaxed);
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace tbon
