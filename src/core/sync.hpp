// MRNet's three built-in synchronization filters.
//
//  * WaitForAll — "delivers packets in groups based on packet receipt from
//    all downstream children".
//  * TimeOut    — "delivers packets received within a specified window"
//    (parameter `window_ms`, default 50).
//  * NullSync   — "delivers packets immediately upon receipt".
#pragma once

#include <deque>
#include <vector>

#include "core/filter.hpp"

namespace tbon {

/// Wave-synchronous delivery: one batch per "wave", containing exactly one
/// packet from every live participating child.  Leaves (num_children == 0)
/// never buffer.
class WaitForAllSync final : public SyncPolicy {
 public:
  explicit WaitForAllSync(const FilterContext& ctx);

  void on_packet(std::size_t child, PacketPtr packet, FilterContext& ctx) override;
  std::vector<Batch> drain_ready(std::int64_t now_ns, FilterContext& ctx) override;
  std::vector<Batch> flush(FilterContext& ctx) override;
  std::size_t buffered() const override;
  void child_failed(std::size_t child) override;
  void child_added() override;
  void child_revived(std::size_t child) override;

 private:
  bool wave_ready() const;

  std::vector<std::deque<PacketPtr>> per_child_;
  std::vector<bool> alive_;
  std::size_t num_alive_ = 0;
};

/// Window-based delivery: the first packet of a batch opens a window of
/// `window_ms` milliseconds; everything received before it closes is
/// delivered together.
class TimeOutSync final : public SyncPolicy {
 public:
  explicit TimeOutSync(const FilterContext& ctx);

  void on_packet(std::size_t child, PacketPtr packet, FilterContext& ctx) override;
  std::vector<Batch> drain_ready(std::int64_t now_ns, FilterContext& ctx) override;
  std::optional<std::int64_t> next_deadline() const override;
  std::vector<Batch> flush(FilterContext& ctx) override;
  std::size_t buffered() const override { return pending_.size(); }

 private:
  std::int64_t window_ns_;
  std::int64_t deadline_ns_ = -1;  // -1: no open window
  Batch pending_;
};

/// Immediate delivery: each packet forms its own batch.
class NullSync final : public SyncPolicy {
 public:
  explicit NullSync(const FilterContext&) {}

  void on_packet(std::size_t child, PacketPtr packet, FilterContext& ctx) override;
  std::vector<Batch> drain_ready(std::int64_t now_ns, FilterContext& ctx) override;
  std::vector<Batch> flush(FilterContext& ctx) override;

 private:
  std::vector<Batch> ready_;
};

}  // namespace tbon
