// Multi-process TBON instantiation: one OS process per tree node.
//
// create_process() forks the tree recursively — each node's process forks
// its own children, so every edge's socketpair is created in the common
// ancestor and inherited by exactly the two endpoint processes.  Back-end
// processes run the user-supplied `backend_main`; communication processes
// run NodeRuntime event loops; the calling process keeps the front-end.
//
// This is the paper's deployment model on one host: real processes, real
// kernel FIFO channels, real packet serialization.  MRNet's rsh/ssh remote
// spawn is replaced by fork() (DESIGN.md §5) — orthogonal to everything the
// paper measures.
//
// Restrictions relative to the threaded instantiation:
//  * call create_process() before spawning threads in the parent (fork),
//  * custom filters must be registered (or dlopen-loadable) before the call
//    so children inherit them,
//  * backend(rank)/run_backends()/kill_node() are unavailable — back-ends
//    live in their own processes and interact via `backend_main`.
#pragma once

#include <functional>

#include "core/network.hpp"

namespace tbon {

/// Per-back-end entry point executed in the back-end's own process.
using BackendMain = std::function<void(BackEnd&)>;

/// Wire used for each tree edge in the multi-process instantiation.
/// kSocketpair is the default (nothing to configure); kTcp runs every edge
/// over a loopback TCP connection — the transport MRNet itself uses.
enum class EdgeTransport { kSocketpair, kTcp };

/// Fork a process tree for `topology`; returns the front-end-side network.
/// Throws TransportError on fork/socketpair/connect failure.  `recovery`
/// enables the fault-tolerance subsystem (heartbeats, orphan re-adoption via
/// a front-end rendezvous port, deterministic fault injection); the options
/// are inherited by every forked node.
[[deprecated("use Network::create(NetworkOptions) with mode = kProcess")]]
std::unique_ptr<Network> create_process_network(
    const Topology& topology, BackendMain backend_main,
    EdgeTransport transport = EdgeTransport::kSocketpair,
    RecoveryOptions recovery = {});

}  // namespace tbon
