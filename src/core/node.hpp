// NodeRuntime: the event loop run by every process slot in the tree.
//
// One NodeRuntime instance serves one topology node.  It pops envelopes from
// its inbox and:
//   * routes downstream packets toward participating children (applying the
//     stream's downstream transformation filter),
//   * feeds upstream packets through the stream's synchronization filter and
//     transformation filter, forwarding the results toward the root,
//   * executes the control protocol (stream creation/teardown, dynamic
//     filter loading, shutdown with acknowledgements),
//   * detects peer failure (EOF envelopes) and degrades gracefully:
//     wait_for_all stops waiting on dead children.
//
// The same class is used for the front-end (role kRoot: results go to the
// Delegate instead of a parent link), internal communication processes
// (role kInternal) and back-ends (role kLeaf: downstream packets go to the
// Delegate; upstream sends bypass the runtime via the parent link).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <tuple>
#include <memory>
#include <vector>

#include "core/executor.hpp"
#include "core/flow_control.hpp"
#include "core/protocol.hpp"
#include "core/registry.hpp"
#include "core/runtime.hpp"
#include "core/tenant.hpp"
#include "recovery/fault_injector.hpp"
#include "recovery/heartbeat.hpp"
#include "topology/topology.hpp"

namespace tbon {

enum class NodeRole : std::uint8_t { kRoot, kInternal, kLeaf };

class NodeRuntime {
 public:
  /// Callbacks into the endpoint layer; all invoked on the runtime thread.
  class Delegate {
   public:
    virtual ~Delegate() = default;
    /// Root only: a fully aggregated upstream packet is available.
    virtual void on_result(std::uint32_t stream_id, PacketPtr packet) {
      (void)stream_id;
      (void)packet;
    }
    /// Leaf only: a downstream packet arrived for this back-end.
    virtual void on_downstream(PacketPtr packet) { (void)packet; }
    /// Any node: a stream now exists locally (leaves use this to unblock
    /// sends; the root uses it for bookkeeping).
    virtual void on_stream_known(const StreamSpec& spec) { (void)spec; }
    /// A stream was deleted.
    virtual void on_stream_deleted(std::uint32_t stream_id) { (void)stream_id; }
    /// Root only: every subtree acknowledged shutdown.
    virtual void on_shutdown_complete() {}
    /// Leaf only: the network is shutting down.
    virtual void on_shutdown() {}
    /// Leaf only: a tree-routed back-end-to-back-end message arrived.
    virtual void on_peer_message(PacketPtr inner) { (void)inner; }
    /// Root only: a subscription change reached the root (every subscribe /
    /// unsubscribe propagates to the front-end, which uses this to answer
    /// subscriber_count / wait_subscribers).
    virtual void on_subscription(const std::string& prefix, std::uint32_t rank,
                                 bool added) {
      (void)prefix;
      (void)rank;
      (void)added;
    }
    /// Root only: a reconfiguration operation's acknowledgement arrived
    /// (planned detach / quiesce / rehome; see src/core/reconfig.hpp).
    virtual void on_reconfig_ack(std::int64_t op_id, std::uint32_t subject) {
      (void)op_id;
      (void)subject;
    }
    /// Leaf only: the reconfiguration protocol is quiescing this back-end;
    /// application sends must pause until on_reconfig_resume.
    virtual void on_reconfig_pause() {}
    virtual void on_reconfig_resume() {}
  };

  NodeRuntime(const Topology& topology, NodeId id, FilterRegistry& registry,
              Delegate* delegate);

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  /// Wiring (call before run()).
  void set_parent_link(LinkPtr link) { parent_link_ = std::move(link); }
  void add_child_link(LinkPtr link) { child_links_.push_back(std::move(link)); }
  const InboxPtr& inbox() const noexcept { return inbox_; }

  /// Dynamic topology support (threaded instantiation): reserve a child
  /// slot, then hand the runtime a link to the new child.  The runtime wires
  /// it on its own thread when the kTagAttachChild marker arrives, replaying
  /// existing stream announcements to the newcomer.  `backend_rank` is used
  /// for peer-message routing.
  std::uint32_t reserve_child_slot() noexcept;
  void request_attach(std::uint32_t slot, std::uint32_t backend_rank, LinkPtr link);

  /// Tell this node (an ancestor of a dynamic attach) that back-end
  /// `backend_rank` is reachable through child `slot`.
  void request_route(std::uint32_t backend_rank, std::uint32_t slot);

  /// Withdraw a rank route (planned subtree migration: the old path's
  /// ancestors stop claiming reachability).  Unroutes queued before routes
  /// are applied first, so an unroute+route pair re-points a rank atomically
  /// from the runtime thread's perspective.
  void request_unroute(std::uint32_t backend_rank);

  /// Planned departure of child `slot` (engine-driven dynamic-leaf moves):
  /// the runtime applies membership compensation on its own thread exactly
  /// as if the child had acknowledged a detach.  Safe from any thread.
  void request_detach(std::uint32_t slot);

  /// Called (on the runtime thread) when a kTagRehome frame targets this
  /// node: re-wire under `new_parent` and return true, or false to fail the
  /// operation (the runtime then crashes so its children re-adopt).  Without
  /// a handler the orphan handler is used as a fallback, ignoring
  /// `new_parent` — the process/remote instantiations re-home through the
  /// same rendezvous path as fault recovery.
  void set_rehome_handler(std::function<bool(NodeRuntime&, NodeId)> handler) {
    rehome_handler_ = std::move(handler);
  }

  /// Back-end ranks currently served by this node's subtree: the static
  /// subtree ranks plus dynamically attached/adopted ones, minus departed
  /// children.  A leaf returns its own rank.
  std::vector<std::uint32_t> served_ranks() const;

  /// Children wired and alive right now (engine load gauge).
  std::size_t live_child_count() const noexcept { return live_children_; }

  // ---- flow control (src/core/flow_control.hpp) ---------------------------

  /// Enable credit accounting for data this node consumes, and grow the
  /// inbox so that exempt control/telemetry traffic never blocks behind the
  /// credit-bounded data plane.  Call before run().
  void set_flow_control(const FlowControlOptions& options);

  /// Install the callback that returns credits for data consumed from the
  /// parent channel / from child `slot`.  Threaded networks grant straight
  /// into the shared CreditGate; process mode sends a kTagCredit frame on
  /// the channel.  Safe from any thread (re-adoption replaces granters of a
  /// running node).
  void set_parent_granter(std::function<void(std::uint32_t)> granter);
  void set_child_granter(std::uint32_t slot,
                         std::function<void(std::uint32_t)> granter);

  /// Register a sender-side flow-controlled link whose pending ring this
  /// runtime's event loop flushes whenever it wakes (gate drain hooks push a
  /// wakeup marker into the inbox).  Safe from any thread.
  void register_fc_link(std::shared_ptr<FlowControlledLink> link);

  // ---- parallel filter execution (src/core/executor.hpp) ------------------

  /// Enable the stream-sharded filter worker pool: sync + transformation
  /// filter work runs on N workers (per-stream FIFO preserved; distinct
  /// streams concurrent) while this event loop keeps doing pure I/O +
  /// control.  Workers hand results back as completion records the loop
  /// delivers, so every send still happens on the loop thread and credits
  /// for dispatched packets are only returned once their filter work has
  /// completed.  Leaves ignore this (they run no filters).  Call before
  /// run(); num_workers = 0 keeps today's inline behaviour.
  void set_execution(const ExecutionOptions& options);

  // ---- recovery subsystem (src/recovery/) ---------------------------------

  /// Enable heartbeat-based failure detection on every channel of this node.
  /// Call before run().
  void set_recovery(const HeartbeatConfig& config);

  /// Deterministic fault injection; consulted on every data packet and send.
  void set_fault_injector(std::shared_ptr<FaultInjector> injector);

  /// Called (on the runtime thread) when the parent channel dies while the
  /// network is not shutting down.  Return true once re-adopted (the runtime
  /// keeps running under the new parent); false to give up, in which case
  /// the runtime dies abruptly so its own children re-adopt in turn.
  /// Without a handler the legacy behaviour applies: orderly subtree
  /// shutdown.
  void set_orphan_handler(std::function<bool(NodeRuntime&)> handler);

  /// Called after an injected crash closed all links.  The multi-process
  /// instantiation installs `std::_Exit(0)` here; the default (threaded)
  /// simply stops the event loop.
  void set_crash_handler(std::function<void()> handler);

  /// Adopt an orphaned subtree serving back-end `ranks` at child `slot`
  /// (same marker mechanics as request_attach; safe from any thread).  The
  /// subtree joins every stream whose endpoint set intersects `ranks`, and
  /// existing stream announcements are replayed to it.
  void request_adopt(std::uint32_t slot, std::vector<std::uint32_t> ranks,
                     LinkPtr link);

  /// Advance the parent-channel epoch (call while re-adopting, on the
  /// runtime thread).  Envelopes from a previous parent carry the old epoch
  /// and are discarded, so a stale EOF cannot re-orphan the node.
  std::uint32_t bump_parent_epoch() noexcept { return ++parent_epoch_; }
  std::uint32_t parent_epoch() const noexcept { return parent_epoch_; }

  /// True once this runtime stopped for any reason (crash, orphaned,
  /// shutdown); used when picking a live ancestor for adoption.
  bool is_dead() const noexcept { return dead_.load(std::memory_order_acquire); }

  NodeId id() const noexcept { return id_; }
  NodeRole role() const noexcept { return role_; }
  NodeMetrics& metrics() noexcept { return metrics_; }

  /// This node's tenant table: stream -> (priority, tenant) classification
  /// plus per-tenant budgets and counters.  Created with the runtime; shared
  /// with the sender-side FlowControlledLinks wired to this node so their
  /// sends are classified by the streams this node has announced.
  const TenantTablePtr& tenants() const noexcept { return tenants_; }

  /// Live snapshot of this node's metrics (does not advance the telemetry
  /// publish sequence).
  NodeTelemetry telemetry_snapshot() const noexcept {
    NodeTelemetry r = metrics_.peek(id_, role_byte());
    fill_tenant_rollups(r);
    return r;
  }

  /// Process envelopes until shutdown completes or the inbox is destroyed.
  void run();

 private:
  struct StreamLocal {
    StreamSpec spec;
    FilterContext ctx;
    std::unique_ptr<SyncPolicy> sync;
    std::unique_ptr<TransformFilter> up_filter;
    std::unique_ptr<TransformFilter> down_filter;
    /// child slot -> index the sync policy sees, or -1 if not participating.
    std::vector<std::int32_t> slot_to_sync_index;
    /// child slots participating in this stream, in slot order.
    std::vector<std::uint32_t> participating_slots;
    /// Fast pass-through lanes: when a direction has only identity filters
    /// ("null" sync + "passthrough" transform up; "passthrough" down), the
    /// runtime forwards packets without touching the sync/filter machinery —
    /// a wire-backed packet then crosses the node with zero payload copies.
    /// Telemetry counters are accounted exactly as on the slow path.
    bool fast_up = false;
    bool fast_down = false;
    /// Upstream sync is "null" (one singleton wave per packet): a coalesced
    /// run of N packets can be handed to the transformation filter as ONE
    /// filter_batch() call — N independent waves, amortized — with output
    /// byte-identical to N single-packet invocations.
    bool null_sync = false;
    /// Executor mode: sync/filter/ctx are only ever touched on the stream's
    /// shard once this is set (the loop dispatches tasks instead of running
    /// the machinery itself).  The remaining fields are loop-owned mirrors.
    bool exec = false;
    std::size_t exec_inflight = 0;   ///< loop-posted tasks not yet delivered
    bool exec_deadline_armed = false;  ///< sync had a deadline after last task
    std::uint64_t exec_buffered = 0;   ///< sync->buffered() after last task
  };

  /// What a worker hands back to the event loop after running filter work:
  /// outputs to send (the loop owns all links), the stream's post-task sync
  /// state (deadline / buffered mirrors), and the deferred flow-control
  /// credit for the packet that triggered the task.
  struct ExecCompletion {
    std::uint32_t stream_id = 0;
    std::vector<PacketPtr> up_outputs;    ///< toward the parent / root delegate
    std::vector<PacketPtr> down_outputs;  ///< multicast to participating children
    bool from_post = false;        ///< loop-posted task (vs worker deadline poll)
    bool deadline_armed = false;
    std::uint64_t buffered = 0;
    std::uint32_t credits = 0;     ///< credits to return on delivery (one per
                                   ///< packet the task consumed; a coalesced
                                   ///< run carries its whole count)
    Origin credit_origin = Origin::kParent;
    std::uint32_t credit_slot = 0;
  };

  void handle_envelope(Envelope&& envelope);
  void handle_control(const Envelope& envelope);
  void handle_subscription(const Envelope& envelope, bool added);
  /// True when downstream data on `stream` should reach child `slot`:
  /// untopiced streams go to every participant; topiced streams only where a
  /// subtree subscription prefix-matches the topic.
  bool topic_routed_to_slot(const StreamLocal& stream, std::uint32_t slot) const;
  void fill_tenant_rollups(NodeTelemetry& record) const noexcept;
  void route_peer_message(const Envelope& envelope);
  void process_pending_attaches();
  void wire_dynamic_child(std::uint32_t slot, std::vector<std::uint32_t> ranks,
                          LinkPtr link);
  void handle_new_stream(const StreamSpec& spec);
  void handle_delete_stream(std::uint32_t stream_id);
  void handle_detach(const Envelope& envelope);
  void handle_quiesce(const Envelope& envelope);
  void handle_rehome(const Envelope& envelope);
  void handle_reconfig_ack(const Envelope& envelope);
  /// kTagMembership from a child: retire (live == false) or revive its slot
  /// in every stream's wave sync; the link itself stays wired.
  void handle_membership(const Envelope& envelope);
  /// True when the slot both has a live link and serves at least one
  /// back-end (emptied relay interiors stay linked but stop contributing).
  bool slot_contributes(std::uint32_t slot) const;
  /// Tell the parent this subtree just lost its last contributing back-end
  /// (or regained its first), so wave syncs upstream never stall on it.
  void notify_parent_membership(bool live);
  /// Route a control frame one hop toward back-end `rank`; `allow_dead`
  /// lets a rehome frame cross the membership-removed edge at the old
  /// parent.  Returns false (and counts a drop) when no route exists.
  bool route_down_via_rank(std::uint32_t rank, const PacketPtr& packet,
                           bool allow_dead);
  /// Replay emissions parked while quiesced to the (new) parent, in order.
  void unpark_upstream();
  void handle_parent_lost();
  void handle_shutdown();
  void crash();
  bool send_parent(const PacketPtr& packet);
  bool send_child(std::uint32_t slot, const PacketPtr& packet);
  void poll_liveness(std::int64_t now);
  void apply_membership_change(StreamLocal& stream, std::size_t sync_index,
                               bool added, bool revived = false);
  std::size_t live_participants(const StreamLocal& stream) const;
  void note_child_gone(std::uint32_t slot);
  void handle_upstream_data(std::uint32_t slot, const PacketPtr& packet);
  void handle_downstream_data(const PacketPtr& packet);
  bool consume_upstream_data(std::uint32_t slot, const PacketPtr& packet);
  bool consume_downstream_data(const PacketPtr& packet);
  void handle_upstream_batch(std::uint32_t slot, std::span<const PacketPtr> packets);
  void consume_upstream_run(std::uint32_t slot, std::span<const PacketPtr> run);
  std::vector<PacketPtr> run_upstream_filter_batch(StreamLocal& stream,
                                                   std::span<const PacketPtr> run);
  void process_batches(StreamLocal& stream, std::vector<SyncPolicy::Batch> batches);
  std::vector<PacketPtr> run_upstream_batches(StreamLocal& stream,
                                              std::vector<SyncPolicy::Batch> batches);
  MembershipSnapshot membership_snapshot(const StreamLocal& stream) const;
  void exec_register_stream(StreamLocal& stream);
  void exec_dispatch_upstream(StreamLocal& stream, std::size_t sync_index,
                              PacketPtr packet, std::uint32_t slot);
  void exec_dispatch_upstream_run(StreamLocal& stream, std::size_t sync_index,
                                  std::span<const PacketPtr> run, std::uint32_t slot,
                                  std::uint32_t credits);
  void exec_dispatch_downstream(StreamLocal& stream, PacketPtr packet);
  void exec_run_inline_upstream(StreamLocal& stream, std::size_t sync_index,
                                const PacketPtr& packet);
  void exec_enqueue(ExecCompletion&& completion);
  void exec_drain_completions();
  void exec_deliver(ExecCompletion&& completion);
  void emit_upstream(StreamLocal& stream, std::span<const PacketPtr> packets);
  void flush_stream(StreamLocal& stream);
  void flush_all_streams();
  void poll_timeouts(std::int64_t now);
  void poll_telemetry(std::int64_t now);
  /// `share` is the consuming stream's tenant credit share, used to pace
  /// grants so a small-share tenant's consumption refills the sender in
  /// proportionally larger, rarer quanta (weighted credit grants).
  void note_consumed(Origin origin, std::uint32_t slot, std::uint32_t count = 1,
                     double share = 1.0);
  /// Tenant credit share of `stream_id` for grant weighting (1.0 when the
  /// stream is untenanted or unknown).
  double grant_share(std::uint32_t stream_id) const;
  void flush_partial_grants();
  void pump_fc_links();
  void publish_telemetry();
  void refresh_gauges();
  std::uint8_t role_byte() const noexcept {
    return role_ == NodeRole::kRoot ? 0 : role_ == NodeRole::kInternal ? 1 : 2;
  }
  std::optional<std::int64_t> earliest_deadline() const;
  void forward_down(const PacketPtr& packet);
  void forward_down_to_participants(const StreamLocal& stream, const PacketPtr& packet);
  void maybe_finish_shutdown();
  void close_all_links();

  const Topology& topology_;
  NodeId id_;
  NodeRole role_;
  FilterRegistry& registry_;
  Delegate* delegate_;

  InboxPtr inbox_;
  LinkPtr parent_link_;
  std::vector<LinkPtr> child_links_;
  std::vector<bool> child_alive_;
  /// Parallel to child_alive_: false marks a slot whose subtree has no
  /// contributing back-ends left (an emptied relay interior after a merge
  /// or planned removals).  The link stays usable; wave syncs skip it.
  std::vector<bool> child_contributing_;
  std::vector<bool> child_acked_;  ///< shutdown ack received from this slot
  /// Atomic so the reconfiguration engine can read the fan-in gauge live.
  std::atomic<std::size_t> live_children_{0};
  std::size_t contributing_children_ = 0;

  /// Back-end rank -> child slot whose subtree serves it (peer routing).
  std::map<std::uint32_t, std::uint32_t> rank_routes_;

  /// Topic subscriptions seen by this node: prefix -> subscriber ranks.
  /// Rank-keyed (not slot-keyed) so re-adoption needs no re-sync: adopters
  /// are always ancestors of the orphan, so they already hold every
  /// subscription, and rank_routes_ re-points ranks at the new slot.
  std::map<std::string, std::set<std::uint32_t>> subs_;

  /// Stream classification + tenant budgets/counters for this node.
  TenantTablePtr tenants_ = std::make_shared<TenantTable>();

  /// Dynamic-attach plumbing.  All topology requests (attach, adopt, route,
  /// unroute, detach) share ONE queue drained in request order: with separate
  /// per-kind queues, a detach requested after an attach of the same slot
  /// could be applied first — note_child_gone on the not-yet-wired slot is a
  /// no-op, the removal is silently lost, and the parent later waits forever
  /// for a shutdown ack from the already-stopped leaf.
  struct PendingChildOp {
    enum class Kind { kAttach, kAdopt, kRoute, kUnroute, kDetach };
    Kind kind;
    std::uint32_t slot = 0;                 // attach/adopt/route/detach
    std::uint32_t backend_rank = 0;         // attach/route/unroute
    std::vector<std::uint32_t> ranks;       // adopt
    LinkPtr link;                           // attach/adopt
  };
  std::mutex attach_mutex_;
  std::vector<PendingChildOp> pending_child_ops_;
  std::atomic<std::uint32_t> next_dynamic_slot_;

  /// Back-end ranks served through each dynamically wired slot (attach and
  /// adopt); lets handle_new_stream compute endpoint membership for them.
  std::map<std::uint32_t, std::vector<std::uint32_t>> dynamic_slot_ranks_;

  std::map<std::uint32_t, StreamLocal> streams_;
  NodeMetrics metrics_;

  /// Flow control: per-channel consumed-since-last-grant counts, the
  /// granters that return credits to senders, and sender-side wrappers whose
  /// pending rings this loop pumps.  fc_mutex_ guards all three (granters
  /// are replaced from other threads during re-adoption); granters run
  /// outside the lock.
  FlowControlOptions fc_;
  std::mutex fc_mutex_;
  struct FcChannel {
    std::uint32_t consumed = 0;
    /// Share-weighted consumption since the last grant (weighted credit
    /// grants: sum of count * tenant credit share per note_consumed).
    double weighted = 0.0;
    std::function<void(std::uint32_t)> granter;
  };
  FcChannel fc_parent_;
  std::map<std::uint32_t, FcChannel> fc_children_;
  std::vector<std::shared_ptr<FlowControlledLink>> fc_pump_;

  /// Parallel filter execution: the worker pool plus the completion queue
  /// workers feed and the loop drains (a marker envelope wakes an idle loop;
  /// exec_wake_pending_ coalesces markers so a burst of completions costs
  /// one wakeup).
  ExecutionOptions exec_options_;
  std::unique_ptr<FilterExecutor> executor_;
  std::mutex exec_mutex_;
  std::deque<ExecCompletion> exec_completions_;
  bool exec_wake_pending_ = false;

  // Telemetry publishing (armed when the reserved telemetry stream is
  // announced; the publish interval rides in the stream params).
  bool telemetry_armed_ = false;
  std::int64_t telemetry_interval_ns_ = 0;
  std::int64_t telemetry_next_ = 0;
  std::int64_t last_parent_hb_sent_ = -1;  ///< pending heartbeat RTT probe

  // Recovery state.
  HeartbeatConfig hb_config_;
  std::unique_ptr<PeerLiveness> liveness_;
  std::shared_ptr<FaultInjector> injector_;
  std::function<bool(NodeRuntime&)> orphan_handler_;
  std::function<bool(NodeRuntime&, NodeId)> rehome_handler_;
  std::function<void()> crash_handler_;
  std::uint32_t parent_epoch_ = 0;

  /// Quiesce state: while parked, upstream emissions are buffered (in order)
  /// instead of sent, parent heartbeats stop, and the parent channel is not
  /// subject to liveness timeout — the node is between parents on purpose.
  bool upstream_parked_ = false;
  std::vector<PacketPtr> parked_upstream_;
  std::atomic<bool> dead_{false};
  bool crashed_ = false;

  bool shutting_down_ = false;
  std::size_t shutdown_acks_needed_ = 0;
  bool done_ = false;
};

}  // namespace tbon
