#include "core/sync.hpp"

#include <algorithm>

#include "common/timer.hpp"

namespace tbon {

// ---- WaitForAllSync ---------------------------------------------------------

WaitForAllSync::WaitForAllSync(const FilterContext& ctx)
    : per_child_(ctx.num_children),
      alive_(per_child_.size(), true),
      num_alive_(per_child_.size()) {}

void WaitForAllSync::on_packet(std::size_t child, PacketPtr packet,
                               FilterContext&) {
  per_child_.at(child).push_back(std::move(packet));
}

bool WaitForAllSync::wave_ready() const {
  if (num_alive_ == 0) {
    // All children failed: deliver whatever remains rather than deadlock.
    return std::any_of(per_child_.begin(), per_child_.end(),
                       [](const auto& q) { return !q.empty(); });
  }
  for (std::size_t c = 0; c < per_child_.size(); ++c) {
    if (alive_[c] && per_child_[c].empty()) return false;
  }
  return true;
}

std::vector<SyncPolicy::Batch> WaitForAllSync::drain_ready(std::int64_t,
                                                           FilterContext&) {
  std::vector<Batch> batches;
  while (wave_ready()) {
    Batch wave;
    for (auto& queue : per_child_) {
      if (!queue.empty()) {
        wave.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    if (wave.empty()) break;
    batches.push_back(std::move(wave));
  }
  return batches;
}

std::vector<SyncPolicy::Batch> WaitForAllSync::flush(FilterContext&) {
  // Deliver remaining packets as (partial) waves, preserving per-child FIFO
  // order: repeatedly take the front packet of every non-empty child queue.
  std::vector<Batch> batches;
  while (true) {
    Batch wave;
    for (auto& queue : per_child_) {
      if (!queue.empty()) {
        wave.push_back(std::move(queue.front()));
        queue.pop_front();
      }
    }
    if (wave.empty()) break;
    batches.push_back(std::move(wave));
  }
  return batches;
}

std::size_t WaitForAllSync::buffered() const {
  std::size_t total = 0;
  for (const auto& queue : per_child_) total += queue.size();
  return total;
}

void WaitForAllSync::child_added() {
  per_child_.emplace_back();
  alive_.push_back(true);
  ++num_alive_;
}

void WaitForAllSync::child_failed(std::size_t child) {
  if (child < alive_.size() && alive_[child]) {
    alive_[child] = false;
    --num_alive_;
  }
}

void WaitForAllSync::child_revived(std::size_t child) {
  // The index already has a (now empty) queue; re-arming the alive flag is
  // all it takes to wait for the re-populated subtree again.
  if (child < alive_.size() && !alive_[child]) {
    alive_[child] = true;
    ++num_alive_;
  }
}

// ---- TimeOutSync ------------------------------------------------------------

TimeOutSync::TimeOutSync(const FilterContext& ctx)
    : window_ns_(ctx.params.get_int("window_ms", 50) * 1'000'000) {}

void TimeOutSync::on_packet(std::size_t, PacketPtr packet, FilterContext&) {
  // Arm the window when the first packet of a batch is buffered, not when
  // drain_ready() happens to run next: arming lazily let the window start
  // drift later than the packet that opened it, inflating delivery latency
  // by up to one event-loop iteration per batch.
  if (pending_.empty()) deadline_ns_ = now_ns() + window_ns_;
  pending_.push_back(std::move(packet));
}

std::vector<SyncPolicy::Batch> TimeOutSync::drain_ready(std::int64_t now_ns,
                                                        FilterContext&) {
  if (pending_.empty()) {
    deadline_ns_ = -1;
    return {};
  }
  // Buffered packets with no armed window deliver immediately.  Re-arming
  // here used to double-arm the timer: on_packet opens the window, and a
  // drain that raced the disarm (e.g. after a send blocked on upstream
  // flow control) would start a *second* window, silently delaying the
  // batch by up to window_ms beyond the packet that opened it.
  if (now_ns < deadline_ns_) return {};
  deadline_ns_ = -1;
  std::vector<Batch> batches;
  batches.push_back(std::move(pending_));
  pending_.clear();
  return batches;
}

std::optional<std::int64_t> TimeOutSync::next_deadline() const {
  if (deadline_ns_ < 0) return std::nullopt;
  return deadline_ns_;
}

std::vector<SyncPolicy::Batch> TimeOutSync::flush(FilterContext&) {
  if (pending_.empty()) return {};
  std::vector<Batch> batches;
  batches.push_back(std::move(pending_));
  pending_.clear();
  deadline_ns_ = -1;
  return batches;
}

// ---- NullSync ---------------------------------------------------------------

void NullSync::on_packet(std::size_t, PacketPtr packet, FilterContext&) {
  ready_.push_back(Batch{std::move(packet)});
}

std::vector<SyncPolicy::Batch> NullSync::drain_ready(std::int64_t, FilterContext&) {
  return std::exchange(ready_, {});
}

std::vector<SyncPolicy::Batch> NullSync::flush(FilterContext&) {
  return std::exchange(ready_, {});
}

}  // namespace tbon
