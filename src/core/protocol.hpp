// Control protocol and stream specifications.
//
// Control messages are ordinary packets on the reserved control stream
// (stream id 0), distinguished by tag.  This mirrors MRNet, where network
// management rides the same FIFO channels as application data — which is
// what guarantees, for example, that a NEW_STREAM notification reaches a
// back-end before any data packet on that stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "core/filter_params.hpp"
#include "core/packet.hpp"
#include "core/tenant.hpp"

namespace tbon {

/// Control packet tags (application tags must be >= kFirstAppTag).
enum ControlTag : std::int32_t {
  kTagNewStream = 1,
  kTagDeleteStream = 2,
  kTagShutdown = 3,
  kTagShutdownAck = 4,
  kTagLoadFilter = 5,
  /// Back-end to back-end message routed through the tree (paper §2.1:
  /// "using the internal process-tree to route back-end to back-end
  /// messages").  Payload: "i64 bytes" = (destination rank, serialized
  /// application packet).
  kTagPeerMessage = 6,
  /// In-process marker waking a node to wire pending dynamic children
  /// (threaded instantiation only; carries no payload).
  kTagAttachChild = 7,
  /// Liveness probe sent on an idle channel (recovery subsystem); consumed
  /// by the receiving node, never forwarded, carries no payload.
  kTagHeartbeat = 8,
  /// Targeted failure injection: the node whose id matches the "i64"
  /// payload crashes abruptly (no shutdown handshake); everyone else
  /// forwards the packet down the tree.
  kTagDie = 9,
  /// Metrics snapshot riding the reserved telemetry stream (not stream 0):
  /// payload "bytes" = serialize_records() of one or more NodeTelemetry
  /// records, merged on the way up by the `metrics_merge` built-in filter.
  kTagTelemetry = 10,
  /// Flow-control credit grant: the receiver of a channel returns `count`
  /// send credits to the channel's sender (process mode; threaded channels
  /// grant through a shared CreditGate instead).  Payload: "i64 i64" =
  /// (count, channel id).  Consumed by the sender's fd reader thread, never
  /// enqueued or forwarded.
  kTagCredit = 11,
  /// Topic subscription: src_rank is the subscribing back-end rank (or
  /// kFrontEndRank for the front-end), payload "str" = topic prefix.  Each
  /// node on the path records (prefix -> rank) and forwards the frame to its
  /// parent, so every ancestor of a subscriber knows to route matching topic
  /// streams down that subtree.  Never forwarded downward.
  kTagSubscribe = 12,
  /// Subscription withdrawal; same shape as kTagSubscribe.
  kTagUnsubscribe = 13,
  /// Planned back-end departure (reconfiguration subsystem,
  /// src/core/reconfig.hpp).  Payload "i64 i64" = (op id, target rank);
  /// routed down the tree via rank routes.  The target leaf acknowledges
  /// with kTagReconfigAck and exits cleanly; its parent treats the ack like
  /// a planned EOF (membership compensation, no re-adoption).
  kTagDetach = 14,
  /// Phase one of a planned subtree move.  Payload "i64 i64 i64" =
  /// (op id, target node, via rank); `via rank` is any back-end rank in the
  /// target's subtree, used to route the frame since interior nodes have no
  /// rank of their own.  The target parks its upstream (buffering emissions)
  /// and acknowledges; the ack's first hop doubles as the planned-departure
  /// signal at the old parent.
  kTagQuiesce = 15,
  /// Phase two: re-home the quiesced subtree.  Payload "i64 i64 i64 i64" =
  /// (op id, target node, new parent, via rank).  Routed like kTagQuiesce
  /// but allowed to cross the membership-removed edge at the old parent.
  kTagRehome = 16,
  /// Reconfiguration acknowledgement flowing up to the root.  Payload
  /// "i64 i64 i64" = (op id, subject node, kind: ReconfigAckKind).  The
  /// first hop of a detach/quiesce ack applies the planned removal at the
  /// parent, then forwards the ack rewritten as kForwarded.
  kTagReconfigAck = 17,

  /// Upstream structural notification: the sender's subtree lost its last
  /// contributing back-end (payload 0) or regained its first (payload 1)
  /// through planned reconfiguration or failure.  The parent retires or
  /// revives the child's slot in every stream's wave sync without touching
  /// the link, so wait_for_all never stalls on an emptied relay interior.
  kTagMembership = 18,
};

/// Discriminator carried by kTagReconfigAck frames.
enum class ReconfigAckKind : std::uint8_t {
  kDetach = 0,     ///< first hop: planned leaf departure at this parent
  kQuiesce = 1,    ///< first hop: subtree quiesced; detach it from this parent
  kRehome = 2,     ///< subtree re-wired under its new parent
  kForwarded = 3,  ///< already applied below; relay to the root untouched
};

/// Reserved stream carrying in-band telemetry (auto-created when
/// TelemetryOptions::enabled); far above any application stream id.
inline constexpr std::uint32_t kTelemetryStream = 0xFFFFFFFEu;

/// First u32 of a multi-packet (batch) wire frame.  A packet frame starts
/// with its stream id, and no stream is ever allocated this value, so one
/// 4-byte peek tells a reader which decoder to use (see core/coalesce.hpp).
inline constexpr std::uint32_t kBatchMarker = 0xFFFFFFFDu;

/// First tag value available to applications.
inline constexpr std::int32_t kFirstAppTag = 100;

/// Everything a node needs to know to participate in a stream.
///
/// Also the typed builder handed to FrontEnd::open_stream — start from the
/// topic() factory (or designated initializers) and chain:
///
///   network->front_end().open_stream(StreamSpec::topic("/app/metrics")
///                                        .priority(Priority::kHigh)
///                                        .tenant("acme")
///                                        .up("sum"));
///
/// It stays an aggregate on purpose: pre-redesign call sites using
/// designated initializers (`.up_transform = "sum"`) keep compiling.
struct StreamSpec {
  std::uint32_t id = 0;
  /// Participating back-end ranks, sorted.  Empty means "all back-ends".
  std::vector<std::uint32_t> endpoints;
  std::string up_transform = "passthrough";
  std::string up_sync = "wait_for_all";
  std::string down_transform = "passthrough";
  /// Space-separated key=value parameters made available to filters.
  std::string params;
  /// Topic path ("/app/metrics").  Empty = untopiced: downstream packets are
  /// broadcast to all participants exactly as before topics existed.  A
  /// topiced stream's downstream packets reach only subtrees with a matching
  /// prefix subscription.
  std::string topic_path;
  /// Drain-order class; clamped to the tenant's priority ceiling at open.
  Priority priority_class = Priority::kNormal;
  /// Owning tenant ("" = untenanted: exempt from tenant budgets).
  std::string tenant_name;
  /// Tenant budget, resolved from NetworkOptions::tenancy by open_stream and
  /// carried on the wire so every node enforces the same caps.
  double tenant_credit_share = 1.0;
  std::uint64_t tenant_max_inflight_bytes = 0;
  Priority tenant_priority_ceiling = Priority::kHigh;

  /// Builder entry point: a spec publishing under `path`.
  static StreamSpec topic(std::string path) {
    StreamSpec spec;
    spec.topic_path = std::move(path);
    return spec;
  }

  StreamSpec& priority(Priority p) {
    priority_class = p == Priority::kControl ? Priority::kHigh : p;
    return *this;
  }
  StreamSpec& tenant(std::string name) {
    tenant_name = std::move(name);
    return *this;
  }
  StreamSpec& up(std::string transform) {
    up_transform = std::move(transform);
    return *this;
  }
  StreamSpec& sync(std::string policy) {
    up_sync = std::move(policy);
    return *this;
  }
  StreamSpec& down(std::string transform) {
    down_transform = std::move(transform);
    return *this;
  }
  StreamSpec& to(std::vector<std::uint32_t> ranks) {
    endpoints = std::move(ranks);
    return *this;
  }
  StreamSpec& with_params(const FilterParams& p) {
    params = p.to_wire();
    return *this;
  }

  /// The tenant budget carried by this spec, as a TenantOptions.
  TenantOptions tenant_budget() const {
    return TenantOptions()
        .credit_share(tenant_credit_share)
        .max_inflight_bytes(tenant_max_inflight_bytes)
        .priority_ceiling(tenant_priority_ceiling);
  }

  /// True when back-end `rank` participates.
  bool contains(std::uint32_t rank) const noexcept {
    if (endpoints.empty()) return true;
    for (const std::uint32_t e : endpoints) {
      if (e == rank) return true;
    }
    return false;
  }

  Config parsed_params() const {
    Config config;
    std::size_t pos = 0;
    while (pos < params.size()) {
      auto end = params.find(' ', pos);
      if (end == std::string::npos) end = params.size();
      config.add(std::string_view(params).substr(pos, end - pos));
      pos = end + 1;
    }
    return config;
  }

  /// Encode as a control packet on the control stream.
  PacketPtr to_packet() const;
  static StreamSpec from_packet(const Packet& packet);

  friend bool operator==(const StreamSpec&, const StreamSpec&) = default;
};

/// Build the simple control packets.
PacketPtr make_shutdown_packet();
PacketPtr make_shutdown_ack_packet();
PacketPtr make_delete_stream_packet(std::uint32_t stream_id);
PacketPtr make_load_filter_packet(const std::string& library_path);
PacketPtr make_attach_marker_packet();
PacketPtr make_heartbeat_packet();
PacketPtr make_die_packet(std::uint32_t target_node);

/// Wrap serialized NodeTelemetry records (see src/telemetry/metrics.hpp)
/// for the reserved telemetry stream.  `src` is the publishing node's id.
/// The view is adopted, not copied.
PacketPtr make_telemetry_packet(std::uint32_t src, BufferView records);

/// The serialized records carried by a telemetry packet (aliases the
/// packet's buffer; no copy).
const BufferView& telemetry_packet_records(const Packet& packet);

/// Node targeted by a kTagDie packet.
std::uint32_t die_packet_target(const Packet& packet);

/// Largest credit count a grant may carry; larger (or zero, or negative)
/// counts are rejected as malformed.
inline constexpr std::uint32_t kMaxCreditGrant = 1u << 20;

/// Build a credit grant returning `count` credits on channel `channel_id`
/// (ids disambiguate grants across re-adoption epochs; 0 for static edges).
PacketPtr make_credit_packet(std::uint32_t count, std::uint32_t channel_id = 0);

/// Validated accessors for credit grants; throw CodecError when the payload
/// is truncated or the count is outside [1, kMaxCreditGrant] — a zero or
/// overflowing window must never silently reach a CreditGate.
std::uint32_t credit_packet_count(const Packet& packet);
std::uint32_t credit_packet_channel(const Packet& packet);

/// Build a topic (un)subscription frame for `prefix`, attributed to
/// subscriber `rank` (kFrontEndRank for the front-end).
PacketPtr make_subscribe_packet(std::uint32_t rank, const std::string& prefix,
                                bool subscribe = true);

/// The topic prefix carried by a kTagSubscribe / kTagUnsubscribe frame;
/// throws CodecError when the payload is malformed (hostile frames must not
/// escape a reader thread as std::out_of_range).
std::string subscribe_packet_prefix(const Packet& packet);

/// True when `topic` falls under subscription `prefix` (plain string-prefix
/// match: "/app" covers "/app/metrics"; "" covers everything).
inline bool topic_matches(const std::string& prefix,
                          const std::string& topic) noexcept {
  return topic.compare(0, prefix.size(), prefix) == 0;
}

/// Build the reconfiguration-protocol frames (kTagDetach / kTagQuiesce /
/// kTagRehome / kTagReconfigAck; see src/core/reconfig.hpp).
PacketPtr make_detach_packet(std::int64_t op_id, std::uint32_t target_rank);
PacketPtr make_quiesce_packet(std::int64_t op_id, std::uint32_t target_node,
                              std::uint32_t via_rank);
PacketPtr make_rehome_packet(std::int64_t op_id, std::uint32_t target_node,
                             std::uint32_t new_parent, std::uint32_t via_rank);
PacketPtr make_reconfig_ack_packet(std::int64_t op_id, std::uint32_t subject,
                                   ReconfigAckKind kind);

/// kTagMembership frame: `live` false retires the sender's child slot from
/// every stream's wave sync at the parent, true revives it.
PacketPtr make_membership_packet(bool live);
bool membership_packet_live(const Packet& packet);

/// Validated accessors for the reconfiguration frames; throw CodecError on
/// truncated or mistyped payloads (these cross process boundaries).
std::int64_t reconfig_op_id(const Packet& packet);
std::uint32_t reconfig_target(const Packet& packet);      ///< rank (detach) / node
std::uint32_t quiesce_via_rank(const Packet& packet);     ///< field 2
std::uint32_t rehome_new_parent(const Packet& packet);    ///< field 2
std::uint32_t rehome_via_rank(const Packet& packet);      ///< field 3
std::uint32_t reconfig_ack_subject(const Packet& packet);
ReconfigAckKind reconfig_ack_kind(const Packet& packet);

/// Wrap an application packet for tree routing to back-end `dst_rank`.
PacketPtr make_peer_packet(std::uint32_t dst_rank, const Packet& inner);

/// Destination rank of a peer message.
std::uint32_t peer_packet_destination(const Packet& wrapper);

/// Recover the application packet carried by a peer message.
PacketPtr unwrap_peer_packet(const Packet& wrapper);

}  // namespace tbon
