#include "core/packet.hpp"

#include <sstream>

#include "common/error.hpp"

namespace tbon {

Packet::Packet(std::uint32_t stream_id, std::int32_t tag, std::uint32_t src_rank,
               DataFormat format, std::vector<DataValue> values)
    : stream_id_(stream_id),
      tag_(tag),
      src_rank_(src_rank),
      format_(std::move(format)),
      values_(std::move(values)) {
  if (!format_.matches(values_)) {
    throw CodecError("packet payload does not match format '" + format_.to_string() + "'");
  }
  for (const DataValue& v : values_) payload_bytes_ += value_payload_bytes(v);
}

Packet::Packet(std::uint32_t stream_id, std::int32_t tag, std::uint32_t src_rank,
               DataFormat format, BufferView wire, std::size_t payload_offset,
               std::size_t payload_bytes)
    : stream_id_(stream_id),
      tag_(tag),
      src_rank_(src_rank),
      format_(std::move(format)),
      wire_(std::move(wire)),
      payload_offset_(payload_offset),
      payload_bytes_(payload_bytes) {}

PacketPtr Packet::make(std::uint32_t stream_id, std::int32_t tag,
                       std::uint32_t src_rank, std::string_view format_string,
                       std::vector<DataValue> values) {
  return std::make_shared<const Packet>(stream_id, tag, src_rank,
                                        DataFormat(format_string), std::move(values));
}

PacketPtr Packet::make_view(std::uint32_t stream_id, std::int32_t tag,
                            std::uint32_t src_rank, BufferView payload) {
  return std::make_shared<const Packet>(stream_id, tag, src_rank, DataFormat("bytes"),
                                        std::vector<DataValue>{std::move(payload)});
}

const std::vector<DataValue>& Packet::values() const {
  std::call_once(values_once_, [this] {
    if (has_wire()) materialize();
  });
  return values_;
}

void Packet::materialize() const {
  // Structure was validated by deserialize_view's skim pass, so this cannot
  // throw; `bytes` fields come back as subviews pinning the frame.
  BinaryReader reader(wire_.span());
  reader.skip(payload_offset_);
  values_ = unpack_values_backed(reader, format_, wire_);
}

BufferView Packet::payload_view() const {
  if (has_wire()) {
    return wire_.subview(payload_offset_, wire_.size() - payload_offset_);
  }
  BinaryWriter writer;
  pack_values(writer, format_, values_);
  return BufferView(writer.take());
}

void Packet::serialize(BinaryWriter& writer) const {
  if (has_wire()) {
    // The retained frame IS the serialized form; relay it verbatim.
    writer.put_raw(wire_);
    return;
  }
  writer.put(stream_id_);
  writer.put(tag_);
  writer.put(src_rank_);
  writer.put_string(format_.to_string());
  pack_values(writer, format_, values_);
}

void Packet::serialize_segments(SegmentWriter& writer) const {
  if (has_wire()) {
    if (wire_.size() >= SegmentWriter::kExternalCutoff) {
      writer.put_payload(wire_);  // one external segment, no copy
    } else {
      writer.put_raw(wire_);  // tiny frame: cheaper coalesced than as an iovec
    }
    return;
  }
  writer.put(stream_id_);
  writer.put(tag_);
  writer.put(src_rank_);
  writer.put_string_header(format_.to_string());
  pack_values_segments(writer, format_, values_);
}

PacketPtr Packet::deserialize(BinaryReader& reader) {
  const auto stream_id = reader.get<std::uint32_t>();
  const auto tag = reader.get<std::int32_t>();
  const auto src_rank = reader.get<std::uint32_t>();
  DataFormat format(reader.get_string());
  auto values = unpack_values(reader, format);
  return std::make_shared<const Packet>(stream_id, tag, src_rank, std::move(format),
                                        std::move(values));
}

PacketPtr Packet::deserialize_view(BufferView frame) {
  BinaryReader reader(frame.span());
  const auto stream_id = reader.get<std::uint32_t>();
  const auto tag = reader.get<std::int32_t>();
  const auto src_rank = reader.get<std::uint32_t>();
  DataFormat format(reader.get_string());
  const std::size_t payload_offset = reader.position();
  const std::size_t payload_bytes = skim_values(reader, format);
  // Trim trailing bytes so the retained frame is exactly the packet's wire
  // form (relaying it verbatim must be byte-identical to serialize()).
  BufferView wire = frame.subview(0, reader.position());
  return std::make_shared<const Packet>(stream_id, tag, src_rank, std::move(format),
                                        std::move(wire), payload_offset, payload_bytes);
}

std::string Packet::to_string() const {
  std::ostringstream out;
  out << "stream=" << stream_id_ << " tag=" << tag_ << " src=";
  if (src_rank_ == kFrontEndRank) {
    out << "FE";
  } else {
    out << src_rank_;
  }
  for (const DataValue& v : values()) out << ' ' << value_to_string(v);
  return out.str();
}

}  // namespace tbon
