#include "core/packet.hpp"

#include <sstream>

#include "common/error.hpp"

namespace tbon {

Packet::Packet(std::uint32_t stream_id, std::int32_t tag, std::uint32_t src_rank,
               DataFormat format, std::vector<DataValue> values)
    : stream_id_(stream_id),
      tag_(tag),
      src_rank_(src_rank),
      format_(std::move(format)),
      values_(std::move(values)) {
  if (!format_.matches(values_)) {
    throw CodecError("packet payload does not match format '" + format_.to_string() + "'");
  }
}

PacketPtr Packet::make(std::uint32_t stream_id, std::int32_t tag,
                       std::uint32_t src_rank, std::string_view format_string,
                       std::vector<DataValue> values) {
  return std::make_shared<const Packet>(stream_id, tag, src_rank,
                                        DataFormat(format_string), std::move(values));
}

std::size_t Packet::payload_bytes() const noexcept {
  std::size_t total = 0;
  for (const DataValue& v : values_) total += value_payload_bytes(v);
  return total;
}

void Packet::serialize(BinaryWriter& writer) const {
  writer.put(stream_id_);
  writer.put(tag_);
  writer.put(src_rank_);
  writer.put_string(format_.to_string());
  pack_values(writer, format_, values_);
}

PacketPtr Packet::deserialize(BinaryReader& reader) {
  const auto stream_id = reader.get<std::uint32_t>();
  const auto tag = reader.get<std::int32_t>();
  const auto src_rank = reader.get<std::uint32_t>();
  DataFormat format(reader.get_string());
  auto values = unpack_values(reader, format);
  return std::make_shared<const Packet>(stream_id, tag, src_rank, std::move(format),
                                        std::move(values));
}

std::string Packet::to_string() const {
  std::ostringstream out;
  out << "stream=" << stream_id_ << " tag=" << tag_ << " src=";
  if (src_rank_ == kFrontEndRank) {
    out << "FE";
  } else {
    out << src_rank_;
  }
  for (const DataValue& v : values_) out << ' ' << value_to_string(v);
  return out.str();
}

}  // namespace tbon
