// Delegate implementations shared by the threaded and multi-process
// instantiations.  Internal header (included by network.cpp and
// process_network.cpp only).
#pragma once

#include "core/network.hpp"

namespace tbon {

class Network::RootDelegate final : public NodeRuntime::Delegate {
 public:
  explicit RootDelegate(Network& network) : network_(network) {}

  void on_result(std::uint32_t stream_id, PacketPtr packet) override {
    network_.on_result(stream_id, std::move(packet));
  }
  void on_stream_deleted(std::uint32_t stream_id) override {
    network_.on_stream_deleted(stream_id);
  }
  void on_subscription(const std::string& prefix, std::uint32_t rank,
                       bool added) override {
    network_.on_subscription(prefix, rank, added);
  }
  void on_shutdown_complete() override { network_.on_shutdown_complete(); }
  void on_reconfig_ack(std::int64_t op_id, NodeId subject) override {
    network_.on_reconfig_ack(op_id, subject);
  }

 private:
  Network& network_;
};

/// Bridges NodeRuntime callbacks at a leaf into a BackEnd handle.
class BackEndDelegate final : public NodeRuntime::Delegate {
 public:
  explicit BackEndDelegate(BackEnd& backend) : backend_(backend) {}

  void on_downstream(PacketPtr packet) override {
    backend_.downstream_.push(std::move(packet));
  }

  void on_stream_known(const StreamSpec& spec) override {
    {
      std::lock_guard<std::mutex> lock(backend_.mutex_);
      backend_.known_streams_.insert(spec.id);
    }
    backend_.stream_known_cv_.notify_all();
  }

  void on_stream_deleted(std::uint32_t stream_id) override {
    std::lock_guard<std::mutex> lock(backend_.mutex_);
    backend_.known_streams_.erase(stream_id);
  }

  void on_shutdown() override {
    {
      std::lock_guard<std::mutex> lock(backend_.mutex_);
      backend_.shutting_down_ = true;
    }
    backend_.downstream_.close();
    backend_.peer_messages_.close();
    backend_.stream_known_cv_.notify_all();
  }

  void on_peer_message(PacketPtr inner) override {
    backend_.peer_messages_.push(std::move(inner));
  }

  void on_reconfig_pause() override { backend_.pause_sends(); }
  void on_reconfig_resume() override { backend_.resume_sends(); }

 private:
  BackEnd& backend_;
};

class Network::LeafDelegate final : public NodeRuntime::Delegate {
 public:
  explicit LeafDelegate(BackEnd& backend) : impl_(backend) {}
  void on_downstream(PacketPtr packet) override { impl_.on_downstream(std::move(packet)); }
  void on_stream_known(const StreamSpec& spec) override { impl_.on_stream_known(spec); }
  void on_stream_deleted(std::uint32_t id) override { impl_.on_stream_deleted(id); }
  void on_shutdown() override { impl_.on_shutdown(); }
  void on_peer_message(PacketPtr inner) override {
    impl_.on_peer_message(std::move(inner));
  }
  void on_reconfig_pause() override { impl_.on_reconfig_pause(); }
  void on_reconfig_resume() override { impl_.on_reconfig_resume(); }

 private:
  BackEndDelegate impl_;
};

}  // namespace tbon
