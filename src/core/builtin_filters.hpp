// MRNet's built-in transformation filters: avg, sum, min, max, count, concat
// (paper §2.2), plus a passthrough and an exact weighted average.
//
// Semantics (all field-wise over the packet payload; every packet in a batch
// must share the format of the first):
//
//  * sum/min/max — numeric scalar fields and numeric vector fields are
//    reduced element-wise across the batch.  These reductions are
//    associative and commutative, so a tree of them computes the same result
//    as a flat fold — the property that makes TBON aggregation exact.
//  * count — emits a single "u64" packet.  Inputs of format "u64" are summed
//    (so counts compose through the tree); any other format counts one per
//    packet at the leaves of the reduction.
//  * avg — element-wise arithmetic mean of the batch.  NOTE: exact only when
//    every input aggregates the same number of endpoints (balanced trees);
//    this mirrors MRNet.  Use `wavg` for the exact tree-safe version.
//  * wavg — exact weighted mean: packets carry "vf64 u64" (sums, weight);
//    the filter adds sums and weights.  The front-end divides at the end.
//  * concat — vector and string fields are concatenated across the batch in
//    child order; numeric scalar fields are not allowed (wrap scalars in
//    one-element vectors at the back-ends).
//  * passthrough — forwards every input packet unchanged.
#pragma once

#include "core/filter.hpp"

namespace tbon {

/// Register the built-in transformation filters and synchronization policies
/// under their MRNet names ("sum", "min", "max", "avg", "wavg", "count",
/// "concat", "passthrough"; "wait_for_all", "time_out", "null").  Called
/// automatically by FilterRegistry::instance().
class FilterRegistry;
void register_builtin_filters(FilterRegistry& registry);

}  // namespace tbon
