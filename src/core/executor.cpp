#include "core/executor.hpp"

#include <chrono>

#include "common/timer.hpp"

namespace tbon {

namespace {

/// splitmix64 finalizer: stream ids are small sequential integers, so a
/// plain modulo would shard id and id+N onto the same worker in lockstep;
/// mixing first spreads any id pattern evenly across the pool.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Drain weights per priority class.  kControl's weight is unused (its queue
/// is always drained first); high : normal : bulk share slots 4 : 2 : 1.
constexpr std::array<std::uint32_t, kNumPriorities> kDrainWeights{0, 4, 2, 1};

}  // namespace

FilterExecutor::FilterExecutor(const ExecutionOptions& options,
                               MetricsRegistry* metrics)
    : options_(options), metrics_(metrics) {
  workers_.reserve(options_.num_workers);
  for (std::uint32_t i = 0; i < options_.num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start only after the vector is complete: worker_loop never touches
  // workers_ but keeping construction and launch separate is free insurance.
  for (auto& worker : workers_) {
    worker->thread = std::jthread([this, w = worker.get()] { worker_loop(*w); });
  }
  if (metrics_) {
    metrics_->exec_workers.store(options_.num_workers, std::memory_order_relaxed);
  }
}

FilterExecutor::~FilterExecutor() { stop(); }

std::uint32_t FilterExecutor::shard_of(std::uint32_t stream_id) const noexcept {
  return static_cast<std::uint32_t>(mix64(stream_id) % workers_.size());
}

void FilterExecutor::add_stream(std::uint32_t stream_id, DeadlinePoll poll,
                                Priority priority) {
  Worker& worker = *workers_[shard_of(stream_id)];
  std::lock_guard<std::mutex> lock(worker.mutex);
  StreamState& state = worker.streams[stream_id];
  state.poll = std::move(poll);
  state.priority = priority;
  state.deadline_ns = -1;
}

void FilterExecutor::remove_stream(std::uint32_t stream_id) {
  Worker& worker = *workers_[shard_of(stream_id)];
  std::lock_guard<std::mutex> lock(worker.mutex);
  worker.streams.erase(stream_id);
}

void FilterExecutor::post(std::uint32_t stream_id, Task task) {
  Worker& worker = *workers_[shard_of(stream_id)];
  std::unique_lock<std::mutex> lock(worker.mutex);
  StreamState& state = worker.streams[stream_id];
  // Backpressure: a full per-stream queue parks the posting event loop,
  // which stops consuming envelopes and returning credits — exactly how
  // worker occupancy is made to count against the credit window.
  worker.settled.wait(lock, [&] {
    return state.queued < options_.stream_queue_capacity ||
           stop_.load(std::memory_order_relaxed);
  });
  if (stop_.load(std::memory_order_relaxed)) return;
  ++state.queued;
  worker.queues[static_cast<std::size_t>(state.priority)].emplace_back(
      stream_id, std::move(task));
  if (metrics_) update_max(metrics_->exec_queue_peak, state.queued);
  worker.wake.notify_one();
}

void FilterExecutor::set_deadline(std::uint32_t stream_id, std::int64_t deadline_ns) {
  Worker& worker = *workers_[shard_of(stream_id)];
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    const auto it = worker.streams.find(stream_id);
    if (it == worker.streams.end()) return;
    it->second.deadline_ns = deadline_ns;
  }
  worker.wake.notify_one();
}

void FilterExecutor::drain() {
  const auto all_empty = [](const Worker& worker) {
    for (const auto& queue : worker.queues) {
      if (!queue.empty()) return false;
    }
    return true;
  };
  for (auto& worker : workers_) {
    std::unique_lock<std::mutex> lock(worker->mutex);
    worker->settled.wait(lock, [&] {
      return (all_empty(*worker) && worker->executing == 0) ||
             stop_.load(std::memory_order_relaxed);
    });
  }
}

void FilterExecutor::drain_stream(std::uint32_t stream_id) {
  Worker& worker = *workers_[shard_of(stream_id)];
  std::unique_lock<std::mutex> lock(worker.mutex);
  worker.settled.wait(lock, [&] {
    const auto it = worker.streams.find(stream_id);
    if (it == worker.streams.end()) return true;
    return (it->second.queued == 0 && !it->second.running) ||
           stop_.load(std::memory_order_relaxed);
  });
}

bool FilterExecutor::stream_idle(std::uint32_t stream_id) const {
  const Worker& worker = *workers_[shard_of(stream_id)];
  std::lock_guard<std::mutex> lock(worker.mutex);
  const auto it = worker.streams.find(stream_id);
  if (it == worker.streams.end()) return true;
  return it->second.queued == 0 && !it->second.running;
}

std::uint64_t FilterExecutor::queue_depth() const {
  std::uint64_t depth = 0;
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    for (const auto& queue : worker->queues) depth += queue.size();
  }
  return depth;
}

void FilterExecutor::stop() {
  stop_.store(true, std::memory_order_relaxed);
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      // Abandon queued tasks (crash semantics; orderly paths drain first)
      // and zero the per-stream counts so blocked posters wake cleanly.
      for (auto& queue : worker->queues) queue.clear();
      for (auto& [stream_id, state] : worker->streams) state.queued = 0;
    }
    worker->wake.notify_all();
    worker->settled.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

bool FilterExecutor::pop_task_locked(Worker& worker, std::uint32_t& stream_id,
                                     Task& task) {
  const auto take = [&](std::size_t cls) {
    auto& queue = worker.queues[cls];
    stream_id = queue.front().first;
    task = std::move(queue.front().second);
    queue.pop_front();
    if (metrics_) {
      MetricsRegistry::Counter* drained[] = {
          &metrics_->prio_drained_control, &metrics_->prio_drained_high,
          &metrics_->prio_drained_normal, &metrics_->prio_drained_bulk};
      drained[cls]->fetch_add(1, std::memory_order_relaxed);
    }
  };
  // Control always preempts the weighted classes.
  if (!worker.queues[static_cast<std::size_t>(Priority::kControl)].empty()) {
    take(static_cast<std::size_t>(Priority::kControl));
    return true;
  }
  // Weighted round-robin over high/normal/bulk: each class gets up to its
  // weight in consecutive slots, then the turn passes on.  An empty class
  // forfeits its turn, so a lone class still drains at full speed.
  for (std::size_t scanned = 0; scanned < kNumPriorities - 1; ++scanned) {
    auto& queue = worker.queues[worker.wrr_class];
    if (!queue.empty() && worker.wrr_left > 0) {
      const std::size_t cls = worker.wrr_class;
      if (--worker.wrr_left == 0) {
        worker.wrr_class = worker.wrr_class == kNumPriorities - 1
                               ? static_cast<std::size_t>(Priority::kHigh)
                               : worker.wrr_class + 1;
        worker.wrr_left = kDrainWeights[worker.wrr_class];
      }
      take(cls);
      return true;
    }
    worker.wrr_class = worker.wrr_class == kNumPriorities - 1
                           ? static_cast<std::size_t>(Priority::kHigh)
                           : worker.wrr_class + 1;
    worker.wrr_left = kDrainWeights[worker.wrr_class];
  }
  return false;
}

void FilterExecutor::worker_loop(Worker& worker) {
  std::unique_lock<std::mutex> lock(worker.mutex);
  if (worker.wrr_left == 0) {
    worker.wrr_left = kDrainWeights[worker.wrr_class];
  }
  while (!stop_.load(std::memory_order_relaxed)) {
    std::uint32_t stream_id = 0;
    Task task;
    if (pop_task_locked(worker, stream_id, task)) {
      const auto it = worker.streams.find(stream_id);
      if (it != worker.streams.end()) {
        --it->second.queued;
        it->second.running = true;
      }
      ++worker.executing;
      lock.unlock();
      const std::int64_t start = now_ns();
      task();
      const auto elapsed = static_cast<std::uint64_t>(now_ns() - start);
      if (metrics_) {
        metrics_->exec_tasks.fetch_add(1, std::memory_order_relaxed);
        metrics_->exec_task_ns.fetch_add(elapsed, std::memory_order_relaxed);
      }
      lock.lock();
      --worker.executing;
      const auto after = worker.streams.find(stream_id);
      if (after != worker.streams.end()) after->second.running = false;
      worker.settled.notify_all();
      continue;
    }

    // Idle: fire an expired drain deadline on this shard, or sleep until
    // the earliest one (tasks take priority — every task re-polls its
    // stream's sync policy anyway, so a due deadline is never starved).
    const std::int64_t now = now_ns();
    std::int64_t earliest = -1;
    std::uint32_t due_stream = 0;
    StreamState* due = nullptr;
    for (auto& [stream_id, state] : worker.streams) {
      if (state.deadline_ns < 0) continue;
      if (state.deadline_ns <= now) {
        due_stream = stream_id;
        due = &state;
        break;
      }
      if (earliest < 0 || state.deadline_ns < earliest) earliest = state.deadline_ns;
    }
    if (due != nullptr) {
      due->deadline_ns = -1;
      const DeadlinePoll poll = due->poll;
      due->running = true;
      ++worker.executing;
      lock.unlock();
      if (poll) poll(now);
      lock.lock();
      --worker.executing;
      const auto after = worker.streams.find(due_stream);
      if (after != worker.streams.end()) after->second.running = false;
      worker.settled.notify_all();
      continue;
    }
    if (earliest >= 0) {
      worker.wake.wait_for(lock, std::chrono::nanoseconds(earliest - now));
    } else {
      worker.wake.wait(lock);
    }
  }
}

}  // namespace tbon
