#include "core/filter_params.hpp"

#include <sstream>

#include "common/error.hpp"

namespace tbon {
namespace {

void validate_token(const std::string& token, const char* what) {
  if (token.find(' ') != std::string::npos || token.find('=') != std::string::npos) {
    throw ParseError(std::string("filter param ") + what + " '" + token +
                     "' must not contain ' ' or '='");
  }
}

}  // namespace

FilterParams& FilterParams::set(std::string key, std::string value) {
  if (key.empty()) throw ParseError("filter param key must not be empty");
  validate_token(key, "key");
  validate_token(value, "value");
  values_[std::move(key)] = std::move(value);
  return *this;
}

FilterParams& FilterParams::set(std::string key, std::int64_t value) {
  return set(std::move(key), std::to_string(value));
}

FilterParams& FilterParams::set(std::string key, double value) {
  std::ostringstream out;
  out << value;  // round-trips through Config::get_double
  return set(std::move(key), out.str());
}

FilterParams& FilterParams::set(std::string key, bool value) {
  return set(std::move(key), std::string(value ? "true" : "false"));
}

std::string FilterParams::to_wire() const {
  std::string wire;
  for (const auto& [key, value] : values_) {
    if (!wire.empty()) wire += ' ';
    wire += key;
    wire += '=';
    wire += value;
  }
  return wire;
}

FilterParams FilterParams::from_wire(std::string_view wire) {
  FilterParams params;
  std::size_t pos = 0;
  while (pos < wire.size()) {
    auto end = wire.find(' ', pos);
    if (end == std::string_view::npos) end = wire.size();
    const std::string_view token = wire.substr(pos, end - pos);
    pos = end + 1;
    if (token.empty()) continue;
    const auto eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      throw ParseError("malformed filter param token '" + std::string(token) + "'");
    }
    params.values_[std::string(token.substr(0, eq))] = std::string(token.substr(eq + 1));
  }
  return params;
}

}  // namespace tbon
