#include "core/protocol.hpp"

namespace tbon {
namespace {
constexpr std::string_view kSpecFormat = "i64 vi64 str str str str";
}

PacketPtr StreamSpec::to_packet() const {
  std::vector<std::int64_t> ranks(endpoints.begin(), endpoints.end());
  return Packet::make(kControlStream, kTagNewStream, kFrontEndRank, kSpecFormat,
                      {static_cast<std::int64_t>(id), std::move(ranks), up_transform,
                       up_sync, down_transform, params});
}

StreamSpec StreamSpec::from_packet(const Packet& packet) {
  StreamSpec spec;
  spec.id = static_cast<std::uint32_t>(packet.get_i64(0));
  for (const std::int64_t rank : packet.get_vi64(1)) {
    spec.endpoints.push_back(static_cast<std::uint32_t>(rank));
  }
  spec.up_transform = packet.get_str(2);
  spec.up_sync = packet.get_str(3);
  spec.down_transform = packet.get_str(4);
  spec.params = packet.get_str(5);
  return spec;
}

PacketPtr make_shutdown_packet() {
  return Packet::make(kControlStream, kTagShutdown, kFrontEndRank, "", {});
}

PacketPtr make_shutdown_ack_packet() {
  return Packet::make(kControlStream, kTagShutdownAck, kFrontEndRank, "", {});
}

PacketPtr make_delete_stream_packet(std::uint32_t stream_id) {
  return Packet::make(kControlStream, kTagDeleteStream, kFrontEndRank, "i64",
                      {static_cast<std::int64_t>(stream_id)});
}

PacketPtr make_load_filter_packet(const std::string& library_path) {
  return Packet::make(kControlStream, kTagLoadFilter, kFrontEndRank, "str",
                      {library_path});
}

PacketPtr make_attach_marker_packet() {
  return Packet::make(kControlStream, kTagAttachChild, kFrontEndRank, "", {});
}

PacketPtr make_heartbeat_packet() {
  return Packet::make(kControlStream, kTagHeartbeat, kFrontEndRank, "", {});
}

PacketPtr make_die_packet(std::uint32_t target_node) {
  return Packet::make(kControlStream, kTagDie, kFrontEndRank, "i64",
                      {static_cast<std::int64_t>(target_node)});
}

std::uint32_t die_packet_target(const Packet& packet) {
  return static_cast<std::uint32_t>(packet.get_i64(0));
}

PacketPtr make_credit_packet(std::uint32_t count, std::uint32_t channel_id) {
  return Packet::make(kControlStream, kTagCredit, kFrontEndRank, "i64 i64",
                      {static_cast<std::int64_t>(count),
                       static_cast<std::int64_t>(channel_id)});
}

namespace {

/// Field access hardened against truncated or mistyped grant payloads: a
/// hostile frame must surface as CodecError (counted, reader survives), not
/// as std::out_of_range / bad_variant_access escaping the reader thread.
std::int64_t credit_field(const Packet& packet, std::size_t index) {
  try {
    return packet.get_i64(index);
  } catch (const std::exception&) {
    throw CodecError("malformed credit grant payload");
  }
}

}  // namespace

std::uint32_t credit_packet_count(const Packet& packet) {
  const std::int64_t count = credit_field(packet, 0);
  if (count < 1 || count > static_cast<std::int64_t>(kMaxCreditGrant)) {
    throw CodecError("credit grant count out of range");
  }
  return static_cast<std::uint32_t>(count);
}

std::uint32_t credit_packet_channel(const Packet& packet) {
  const std::int64_t id = credit_field(packet, 1);
  if (id < 0 || id > static_cast<std::int64_t>(UINT32_MAX)) {
    throw CodecError("credit grant channel id out of range");
  }
  return static_cast<std::uint32_t>(id);
}

PacketPtr make_telemetry_packet(std::uint32_t src, BufferView records) {
  return Packet::make(kTelemetryStream, kTagTelemetry, src, "bytes",
                      {std::move(records)});
}

const BufferView& telemetry_packet_records(const Packet& packet) {
  return packet.get_bytes(0);
}

PacketPtr make_peer_packet(std::uint32_t dst_rank, const Packet& inner) {
  BinaryWriter writer;
  inner.serialize(writer);
  return Packet::make(kControlStream, kTagPeerMessage, inner.src_rank(), "i64 bytes",
                      {static_cast<std::int64_t>(dst_rank), writer.take()});
}

std::uint32_t peer_packet_destination(const Packet& wrapper) {
  return static_cast<std::uint32_t>(wrapper.get_i64(0));
}

PacketPtr unwrap_peer_packet(const Packet& wrapper) {
  // The inner packet aliases the wrapper's buffer (which the returned
  // packet's views pin alive); nothing is copied at unwrap.
  return Packet::deserialize_view(wrapper.get_bytes(1));
}

}  // namespace tbon
