#include "core/protocol.hpp"

namespace tbon {
namespace {
// Fields 0-5 are the pre-tenancy spec; 6-11 carry topic/priority/tenant and
// ride the same kTagNewStream frame.  from_packet tolerates the short form
// so captures of the old wire format still decode.
constexpr std::string_view kSpecFormat =
    "i64 vi64 str str str str str i64 str f64 i64 i64";

Priority clamp_priority(std::int64_t raw) noexcept {
  if (raw < 0 || raw >= static_cast<std::int64_t>(kNumPriorities)) {
    return Priority::kNormal;
  }
  return static_cast<Priority>(raw);
}
}  // namespace

PacketPtr StreamSpec::to_packet() const {
  std::vector<std::int64_t> ranks(endpoints.begin(), endpoints.end());
  return Packet::make(
      kControlStream, kTagNewStream, kFrontEndRank, kSpecFormat,
      {static_cast<std::int64_t>(id), std::move(ranks), up_transform, up_sync,
       down_transform, params, topic_path,
       static_cast<std::int64_t>(priority_class), tenant_name,
       tenant_credit_share, static_cast<std::int64_t>(tenant_max_inflight_bytes),
       static_cast<std::int64_t>(tenant_priority_ceiling)});
}

StreamSpec StreamSpec::from_packet(const Packet& packet) {
  StreamSpec spec;
  spec.id = static_cast<std::uint32_t>(packet.get_i64(0));
  for (const std::int64_t rank : packet.get_vi64(1)) {
    spec.endpoints.push_back(static_cast<std::uint32_t>(rank));
  }
  spec.up_transform = packet.get_str(2);
  spec.up_sync = packet.get_str(3);
  spec.down_transform = packet.get_str(4);
  spec.params = packet.get_str(5);
  if (packet.arity() > 6) {
    spec.topic_path = packet.get_str(6);
    spec.priority_class = clamp_priority(packet.get_i64(7));
    spec.tenant_name = packet.get_str(8);
    const double share = packet.get_f64(9);
    spec.tenant_credit_share = (share > 0.0 && share <= 1.0) ? share : 1.0;
    const std::int64_t cap = packet.get_i64(10);
    spec.tenant_max_inflight_bytes =
        cap > 0 ? static_cast<std::uint64_t>(cap) : 0;
    spec.tenant_priority_ceiling = clamp_priority(packet.get_i64(11));
  }
  return spec;
}

PacketPtr make_shutdown_packet() {
  return Packet::make(kControlStream, kTagShutdown, kFrontEndRank, "", {});
}

PacketPtr make_shutdown_ack_packet() {
  return Packet::make(kControlStream, kTagShutdownAck, kFrontEndRank, "", {});
}

PacketPtr make_delete_stream_packet(std::uint32_t stream_id) {
  return Packet::make(kControlStream, kTagDeleteStream, kFrontEndRank, "i64",
                      {static_cast<std::int64_t>(stream_id)});
}

PacketPtr make_load_filter_packet(const std::string& library_path) {
  return Packet::make(kControlStream, kTagLoadFilter, kFrontEndRank, "str",
                      {library_path});
}

PacketPtr make_attach_marker_packet() {
  return Packet::make(kControlStream, kTagAttachChild, kFrontEndRank, "", {});
}

PacketPtr make_heartbeat_packet() {
  return Packet::make(kControlStream, kTagHeartbeat, kFrontEndRank, "", {});
}

PacketPtr make_die_packet(std::uint32_t target_node) {
  return Packet::make(kControlStream, kTagDie, kFrontEndRank, "i64",
                      {static_cast<std::int64_t>(target_node)});
}

std::uint32_t die_packet_target(const Packet& packet) {
  return static_cast<std::uint32_t>(packet.get_i64(0));
}

PacketPtr make_credit_packet(std::uint32_t count, std::uint32_t channel_id) {
  return Packet::make(kControlStream, kTagCredit, kFrontEndRank, "i64 i64",
                      {static_cast<std::int64_t>(count),
                       static_cast<std::int64_t>(channel_id)});
}

namespace {

/// Field access hardened against truncated or mistyped grant payloads: a
/// hostile frame must surface as CodecError (counted, reader survives), not
/// as std::out_of_range / bad_variant_access escaping the reader thread.
std::int64_t credit_field(const Packet& packet, std::size_t index) {
  try {
    return packet.get_i64(index);
  } catch (const std::exception&) {
    throw CodecError("malformed credit grant payload");
  }
}

}  // namespace

std::uint32_t credit_packet_count(const Packet& packet) {
  const std::int64_t count = credit_field(packet, 0);
  if (count < 1 || count > static_cast<std::int64_t>(kMaxCreditGrant)) {
    throw CodecError("credit grant count out of range");
  }
  return static_cast<std::uint32_t>(count);
}

std::uint32_t credit_packet_channel(const Packet& packet) {
  const std::int64_t id = credit_field(packet, 1);
  if (id < 0 || id > static_cast<std::int64_t>(UINT32_MAX)) {
    throw CodecError("credit grant channel id out of range");
  }
  return static_cast<std::uint32_t>(id);
}

PacketPtr make_telemetry_packet(std::uint32_t src, BufferView records) {
  return Packet::make(kTelemetryStream, kTagTelemetry, src, "bytes",
                      {std::move(records)});
}

const BufferView& telemetry_packet_records(const Packet& packet) {
  return packet.get_bytes(0);
}

PacketPtr make_subscribe_packet(std::uint32_t rank, const std::string& prefix,
                                bool subscribe) {
  return Packet::make(kControlStream,
                      subscribe ? kTagSubscribe : kTagUnsubscribe, rank, "str",
                      {prefix});
}

std::string subscribe_packet_prefix(const Packet& packet) {
  // Hardened like credit_field: a truncated or mistyped subscription frame
  // surfaces as CodecError, not std::out_of_range, on a reader thread.
  try {
    return packet.get_str(0);
  } catch (const std::exception&) {
    throw CodecError("malformed subscription payload");
  }
}

PacketPtr make_detach_packet(std::int64_t op_id, std::uint32_t target_rank) {
  return Packet::make(kControlStream, kTagDetach, kFrontEndRank, "i64 i64",
                      {op_id, static_cast<std::int64_t>(target_rank)});
}

PacketPtr make_quiesce_packet(std::int64_t op_id, std::uint32_t target_node,
                              std::uint32_t via_rank) {
  return Packet::make(kControlStream, kTagQuiesce, kFrontEndRank, "i64 i64 i64",
                      {op_id, static_cast<std::int64_t>(target_node),
                       static_cast<std::int64_t>(via_rank)});
}

PacketPtr make_rehome_packet(std::int64_t op_id, std::uint32_t target_node,
                             std::uint32_t new_parent, std::uint32_t via_rank) {
  return Packet::make(kControlStream, kTagRehome, kFrontEndRank,
                      "i64 i64 i64 i64",
                      {op_id, static_cast<std::int64_t>(target_node),
                       static_cast<std::int64_t>(new_parent),
                       static_cast<std::int64_t>(via_rank)});
}

PacketPtr make_reconfig_ack_packet(std::int64_t op_id, std::uint32_t subject,
                                   ReconfigAckKind kind) {
  return Packet::make(kControlStream, kTagReconfigAck, kFrontEndRank,
                      "i64 i64 i64",
                      {op_id, static_cast<std::int64_t>(subject),
                       static_cast<std::int64_t>(kind)});
}

PacketPtr make_membership_packet(bool live) {
  return Packet::make(kControlStream, kTagMembership, kFrontEndRank, "i64",
                      {std::int64_t{live ? 1 : 0}});
}

bool membership_packet_live(const Packet& packet) {
  try {
    return packet.get_i64(0) != 0;
  } catch (const std::exception&) {
    throw CodecError("malformed membership payload");
  }
}

namespace {

// Hardened like credit_field: reconfiguration frames cross process/socket
// boundaries, so malformed payloads must surface as CodecError.
std::int64_t reconfig_field(const Packet& packet, std::size_t index) {
  try {
    return packet.get_i64(index);
  } catch (const std::exception&) {
    throw CodecError("malformed reconfiguration payload");
  }
}

std::uint32_t reconfig_u32(const Packet& packet, std::size_t index) {
  const std::int64_t v = reconfig_field(packet, index);
  if (v < 0 || v > static_cast<std::int64_t>(UINT32_MAX)) {
    throw CodecError("reconfiguration field out of range");
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

std::int64_t reconfig_op_id(const Packet& packet) {
  return reconfig_field(packet, 0);
}

std::uint32_t reconfig_target(const Packet& packet) {
  return reconfig_u32(packet, 1);
}

std::uint32_t quiesce_via_rank(const Packet& packet) {
  return reconfig_u32(packet, 2);
}

std::uint32_t rehome_new_parent(const Packet& packet) {
  return reconfig_u32(packet, 2);
}

std::uint32_t rehome_via_rank(const Packet& packet) {
  return reconfig_u32(packet, 3);
}

std::uint32_t reconfig_ack_subject(const Packet& packet) {
  return reconfig_u32(packet, 1);
}

ReconfigAckKind reconfig_ack_kind(const Packet& packet) {
  const std::int64_t kind = reconfig_field(packet, 2);
  if (kind < 0 || kind > static_cast<std::int64_t>(ReconfigAckKind::kForwarded)) {
    throw CodecError("reconfiguration ack kind out of range");
  }
  return static_cast<ReconfigAckKind>(kind);
}

PacketPtr make_peer_packet(std::uint32_t dst_rank, const Packet& inner) {
  BinaryWriter writer;
  inner.serialize(writer);
  return Packet::make(kControlStream, kTagPeerMessage, inner.src_rank(), "i64 bytes",
                      {static_cast<std::int64_t>(dst_rank), writer.take()});
}

std::uint32_t peer_packet_destination(const Packet& wrapper) {
  return static_cast<std::uint32_t>(wrapper.get_i64(0));
}

PacketPtr unwrap_peer_packet(const Packet& wrapper) {
  // The inner packet aliases the wrapper's buffer (which the returned
  // packet's views pin alive); nothing is copied at unwrap.
  return Packet::deserialize_view(wrapper.get_bytes(1));
}

}  // namespace tbon
