// Vectorized element-wise reduction kernels for the builtin filters.
//
// Each kernel applies one scalar operation lane-wise over contiguous
// arrays: acc[i] = op(acc[i], next[i]).  Dispatch is compile-time — AVX2
// when the translation unit is built for a target that has it, else SSE2
// (the x86-64 baseline), else the plain loop — so there is no runtime
// branching and no new build flags: the same source gets faster when the
// toolchain targets a wider ISA.
//
// Bit-exactness contract: every kernel produces results byte-identical to
// the scalar expression it replaces (std::min / std::max / operator+ /
// operator/), including NaN propagation and signed-zero selection.  That is
// why min/max use an explicit compare-and-blend of the *same* predicate the
// scalar code evaluates — (b < a) ? b : a — instead of the asymmetric
// MINPD/MAXPD instructions, whose unordered-operand rule differs from
// std::min.  The batched-vs-unbatched byte-identity tests rely on this.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__SSE2__)
#include <immintrin.h>
#endif

namespace tbon::simd {

/// acc[i] += next[i]
inline void add_f64(double* acc, const double* next, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_loadu_pd(next + i)));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(acc + i,
                  _mm_add_pd(_mm_loadu_pd(acc + i), _mm_loadu_pd(next + i)));
  }
#endif
  for (; i < n; ++i) acc[i] += next[i];
}

/// acc[i] = std::min(acc[i], next[i])  — i.e. (next < acc) ? next : acc
inline void min_f64(double* acc, const double* next, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(acc + i);
    const __m256d b = _mm256_loadu_pd(next + i);
    const __m256d take_b = _mm256_cmp_pd(b, a, _CMP_LT_OQ);
    _mm256_storeu_pd(acc + i, _mm256_blendv_pd(a, b, take_b));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    const __m128d a = _mm_loadu_pd(acc + i);
    const __m128d b = _mm_loadu_pd(next + i);
    const __m128d take_b = _mm_cmplt_pd(b, a);
    _mm_storeu_pd(acc + i, _mm_or_pd(_mm_and_pd(take_b, b), _mm_andnot_pd(take_b, a)));
  }
#endif
  for (; i < n; ++i) acc[i] = next[i] < acc[i] ? next[i] : acc[i];
}

/// acc[i] = std::max(acc[i], next[i])  — i.e. (acc < next) ? next : acc
inline void max_f64(double* acc, const double* next, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256d a = _mm256_loadu_pd(acc + i);
    const __m256d b = _mm256_loadu_pd(next + i);
    const __m256d take_b = _mm256_cmp_pd(a, b, _CMP_LT_OQ);
    _mm256_storeu_pd(acc + i, _mm256_blendv_pd(a, b, take_b));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    const __m128d a = _mm_loadu_pd(acc + i);
    const __m128d b = _mm_loadu_pd(next + i);
    const __m128d take_b = _mm_cmplt_pd(a, b);
    _mm_storeu_pd(acc + i, _mm_or_pd(_mm_and_pd(take_b, b), _mm_andnot_pd(take_b, a)));
  }
#endif
  for (; i < n; ++i) acc[i] = acc[i] < next[i] ? next[i] : acc[i];
}

/// acc[i] /= divisor  (IEEE division, lane-wise — used by the avg filter)
inline void div_f64(double* acc, double divisor, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  const __m256d d4 = _mm256_set1_pd(divisor);
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(acc + i, _mm256_div_pd(_mm256_loadu_pd(acc + i), d4));
  }
#elif defined(__SSE2__)
  const __m128d d2 = _mm_set1_pd(divisor);
  for (; i + 2 <= n; i += 2) {
    _mm_storeu_pd(acc + i, _mm_div_pd(_mm_loadu_pd(acc + i), d2));
  }
#endif
  for (; i < n; ++i) acc[i] /= divisor;
}

/// acc[i] += next[i]
inline void add_i64(std::int64_t* acc, const std::int64_t* next, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(next + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i), _mm256_add_epi64(a, b));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(next + i));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i), _mm_add_epi64(a, b));
  }
#endif
  for (; i < n; ++i) acc[i] += next[i];
}

#if defined(__SSE2__) && !defined(__AVX2__)
/// Per-lane signed 64-bit a > b built from 32-bit compares (SSE2 has no
/// PCMPGTQ).  The signed order of the high dwords decides; when the high
/// dwords are equal, the *unsigned* order of the low dwords does — biasing
/// both by 0x80000000 makes PCMPGTD behave unsigned.  The verdict lands in
/// each lane's high dword; the final shuffle spreads it across all 64 bits
/// so the result is a full-lane mask like PCMPGTQ's.
inline __m128i cmpgt_epi64_sse2(__m128i a, __m128i b) {
  const __m128i bias = _mm_set1_epi32(static_cast<int>(0x80000000u));
  const __m128i hi_gt = _mm_cmpgt_epi32(a, b);
  const __m128i hi_eq = _mm_cmpeq_epi32(a, b);
  const __m128i lo_gt =
      _mm_cmpgt_epi32(_mm_xor_si128(a, bias), _mm_xor_si128(b, bias));
  // Lift each lane's low-dword verdict into its high dword, then combine.
  const __m128i lo_in_hi = _mm_shuffle_epi32(lo_gt, _MM_SHUFFLE(2, 2, 0, 0));
  const __m128i gt = _mm_or_si128(hi_gt, _mm_and_si128(hi_eq, lo_in_hi));
  return _mm_shuffle_epi32(gt, _MM_SHUFFLE(3, 3, 1, 1));
}
#endif

/// acc[i] = std::min(acc[i], next[i]).  AVX2 has VPCMPGTQ; the SSE2 path
/// synthesizes the same full-lane compare mask from 32-bit ops.
inline void min_i64(std::int64_t* acc, const std::int64_t* next, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(next + i));
    const __m256i take_b = _mm256_cmpgt_epi64(a, b);  // a > b  <=>  b < a
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_blendv_epi8(a, b, take_b));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(next + i));
    const __m128i take_b = cmpgt_epi64_sse2(a, b);  // a > b  <=>  b < a
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i),
                     _mm_or_si128(_mm_and_si128(take_b, b),
                                  _mm_andnot_si128(take_b, a)));
  }
#endif
  for (; i < n; ++i) acc[i] = next[i] < acc[i] ? next[i] : acc[i];
}

/// acc[i] = std::max(acc[i], next[i])
inline void max_i64(std::int64_t* acc, const std::int64_t* next, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 4 <= n; i += 4) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(next + i));
    const __m256i take_b = _mm256_cmpgt_epi64(b, a);  // b > a  <=>  a < b
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + i),
                        _mm256_blendv_epi8(a, b, take_b));
  }
#elif defined(__SSE2__)
  for (; i + 2 <= n; i += 2) {
    const __m128i a = _mm_loadu_si128(reinterpret_cast<const __m128i*>(acc + i));
    const __m128i b = _mm_loadu_si128(reinterpret_cast<const __m128i*>(next + i));
    const __m128i take_b = cmpgt_epi64_sse2(b, a);  // b > a  <=>  a < b
    _mm_storeu_si128(reinterpret_cast<__m128i*>(acc + i),
                     _mm_or_si128(_mm_and_si128(take_b, b),
                                  _mm_andnot_si128(take_b, a)));
  }
#endif
  for (; i < n; ++i) acc[i] = acc[i] < next[i] ? next[i] : acc[i];
}

}  // namespace tbon::simd
