#include "core/flow_control.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "telemetry/metrics.hpp"

namespace tbon {

// ---- CreditGate -------------------------------------------------------------

CreditGate::Acquire CreditGate::try_acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_) return Acquire::kClosed;
  if (available_ == 0) return Acquire::kExhausted;
  --available_;
  peak_ = std::max(peak_, window_ - available_);
  return Acquire::kOk;
}

CreditGate::Acquire CreditGate::acquire_for(std::int64_t timeout_ns) {
  std::unique_lock<std::mutex> lock(mutex_);
  credits_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                    [&] { return available_ > 0 || closed_; });
  if (closed_) return Acquire::kClosed;
  if (available_ == 0) return Acquire::kExhausted;
  --available_;
  peak_ = std::max(peak_, window_ - available_);
  return Acquire::kOk;
}

void CreditGate::grant(std::uint32_t n) {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    const std::uint64_t refilled = std::uint64_t{available_} + n;
    available_ = refilled > window_ ? window_
                                    : static_cast<std::uint32_t>(refilled);
    hook = drain_hook_;
  }
  credits_.notify_all();
  if (hook) hook();
}

void CreditGate::reset() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    available_ = window_;
    hook = drain_hook_;
  }
  credits_.notify_all();
  if (hook) hook();
}

void CreditGate::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  credits_.notify_all();
}

std::uint32_t CreditGate::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return available_;
}

std::uint32_t CreditGate::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_ - available_;
}

std::uint32_t CreditGate::in_flight_peak() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::uint32_t CreditGate::window() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_;
}

bool CreditGate::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void CreditGate::set_drain_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_hook_ = std::move(hook);
}

// ---- FlowControlledLink -----------------------------------------------------

FlowControlledLink::FlowControlledLink(std::shared_ptr<Link> inner,
                                       std::shared_ptr<CreditGate> gate,
                                       const FlowControlOptions& options,
                                       MetricsRegistry* metrics,
                                       bool fail_fast_throws)
    : inner_(std::move(inner)),
      gate_(std::move(gate)),
      options_(options),
      metrics_(metrics),
      fail_fast_throws_(fail_fast_throws),
      pending_(options.window()) {}

FlowControlledLink::~FlowControlledLink() {
  // A wrapper replaced without close() (e.g. RelinkableLink swap during
  // re-adoption) still accounts for the packets its ring is abandoning.
  std::size_t shed = 0;
  while (pending_.try_pop()) ++shed;
  count_shed(shed);
  if (shed && metrics_) {
    metrics_->fc_pending_depth.fetch_sub(shed, std::memory_order_relaxed);
  }
}

void FlowControlledLink::count_shed(std::uint64_t n) {
  if (n && metrics_) {
    metrics_->fc_packets_shed.fetch_add(n, std::memory_order_relaxed);
  }
}

bool FlowControlledLink::send_with_credit_locked(const PacketPtr& packet) {
  if (metrics_) {
    metrics_->fc_credits_consumed.fetch_add(1, std::memory_order_relaxed);
    update_max(metrics_->fc_inflight_peak, gate_->in_flight_peak());
  }
  return inner_->send(packet);
}

bool FlowControlledLink::flush_pending_locked() {
  while (pending_.size() > 0) {
    const auto acquired = gate_->try_acquire();
    if (acquired != CreditGate::Acquire::kOk) break;
    auto queued = pending_.try_pop();
    if (!queued) {  // ring raced empty; return the unused credit
      gate_->grant(1);
      break;
    }
    if (metrics_) {
      metrics_->fc_pending_depth.fetch_sub(1, std::memory_order_relaxed);
    }
    send_with_credit_locked(*queued);
  }
  const bool drained = pending_.size() == 0;
  has_pending_.store(!drained, std::memory_order_relaxed);
  return drained;
}

bool FlowControlledLink::send(const PacketPtr& packet) {
  // Control/telemetry traffic (and EOF markers) bypasses credits *and* the
  // wrapper lock: a sender blocked on credits must never delay the control
  // plane that will eventually produce those credits.
  if (!packet || flow_control_exempt(*packet)) return inner_->send(packet);

  std::lock_guard<std::mutex> lock(mutex_);
  if (flush_pending_locked()) {  // FIFO: older queued packets go first
    const auto acquired = gate_->try_acquire();
    if (acquired == CreditGate::Acquire::kOk) {
      return send_with_credit_locked(packet);
    }
    if (acquired == CreditGate::Acquire::kClosed) return false;
  }

  switch (options_.policy) {
    case FlowControlPolicy::kBlock: {
      if (metrics_) {
        metrics_->fc_sends_blocked.fetch_add(1, std::memory_order_relaxed);
      }
      const std::int64_t start = now_ns();
      const auto acquired =
          gate_->acquire_for(std::int64_t{options_.block_timeout_ms} * 1'000'000);
      if (metrics_) {
        metrics_->fc_blocked_ns.fetch_add(
            static_cast<std::uint64_t>(now_ns() - start),
            std::memory_order_relaxed);
      }
      if (acquired == CreditGate::Acquire::kOk) {
        return send_with_credit_locked(packet);
      }
      if (acquired == CreditGate::Acquire::kClosed) return false;
      count_shed(1);  // timed out: shed rather than wedge the caller forever
      return true;
    }
    case FlowControlPolicy::kDropOldest: {
      const std::size_t evicted = pending_.push_evict_oldest(packet);
      count_shed(evicted);
      if (metrics_ && evicted < 1) {
        metrics_->fc_pending_depth.fetch_add(1, std::memory_order_relaxed);
      }
      has_pending_.store(true, std::memory_order_relaxed);
      return true;
    }
    case FlowControlPolicy::kFailFast: {
      if (fail_fast_throws_) {
        throw FlowControlError("credit window exhausted (capacity " +
                               std::to_string(gate_->window()) + ")");
      }
      count_shed(1);
      return true;
    }
  }
  return false;  // unreachable
}

void FlowControlledLink::pump() {
  if (!has_pending_.load(std::memory_order_relaxed)) return;
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // a sender holds the lane; it will flush
  flush_pending_locked();
}

void FlowControlledLink::close() {
  pump();          // last chance to deliver pending packets against credits
  gate_->close();  // wakes blocked senders before we contend for the lock
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t shed = 0;
  while (pending_.try_pop()) ++shed;
  count_shed(shed);
  if (shed && metrics_) {
    metrics_->fc_pending_depth.fetch_sub(shed, std::memory_order_relaxed);
  }
  has_pending_.store(false, std::memory_order_relaxed);
  inner_->close();
}

}  // namespace tbon
