#include "core/flow_control.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "telemetry/metrics.hpp"

namespace tbon {

// ---- CreditGate -------------------------------------------------------------

bool CreditGate::admissible_locked(const Request& request) const {
  if (available_ == 0) return false;
  if (request.priority == Priority::kBulk &&
      prio_inflight_[static_cast<std::size_t>(Priority::kBulk)] >= bulk_cap_) {
    return false;
  }
  if (request.tenant != TenantTable::kNoTenant) {
    const auto it = tenant_inflight_.find(request.tenant);
    if (it != tenant_inflight_.end() && it->second.credits > 0) {
      if (request.max_credits && it->second.credits >= request.max_credits) {
        return false;
      }
      // The byte cap never blocks a tenant with nothing in flight, so one
      // oversized packet cannot wedge its tenant forever.
      if (request.max_bytes &&
          it->second.bytes + request.bytes > request.max_bytes) {
        return false;
      }
    }
  }
  return true;
}

CreditGate::Acquire CreditGate::acquire_locked(const Request& request) {
  if (closed_) return Acquire::kClosed;
  if (!admissible_locked(request)) {
    return available_ == 0 ? Acquire::kExhausted : Acquire::kThrottled;
  }
  --available_;
  peak_ = std::max(peak_, window_ - available_);
  holds_.push_back(Hold{request.tenant,
                        static_cast<std::uint8_t>(request.priority),
                        request.bytes});
  ++prio_inflight_[static_cast<std::size_t>(request.priority)];
  if (request.tenant != TenantTable::kNoTenant) {
    Inflight& inflight = tenant_inflight_[request.tenant];
    ++inflight.credits;
    inflight.bytes += request.bytes;
  }
  return Acquire::kOk;
}

CreditGate::Acquire CreditGate::try_acquire(const Request& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  return acquire_locked(request);
}

CreditGate::Acquire CreditGate::acquire_for(std::int64_t timeout_ns,
                                            const Request& request) {
  std::unique_lock<std::mutex> lock(mutex_);
  credits_.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                    [&] { return admissible_locked(request) || closed_; });
  return acquire_locked(request);
}

void CreditGate::grant(std::uint32_t n) {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    // Grants arrive in consumption order, which matches send order, so the
    // oldest holds are the ones being returned.  Guard against n exceeding
    // the holds (stale grants racing a reset are clamped like before).
    std::uint32_t release = n;
    while (release-- && !holds_.empty()) {
      const Hold& hold = holds_.front();
      --prio_inflight_[hold.priority];
      if (hold.tenant != TenantTable::kNoTenant) {
        const auto it = tenant_inflight_.find(hold.tenant);
        if (it != tenant_inflight_.end()) {
          if (it->second.credits) --it->second.credits;
          it->second.bytes -= std::min(it->second.bytes, hold.bytes);
        }
      }
      holds_.pop_front();
    }
    const std::uint64_t refilled = std::uint64_t{available_} + n;
    available_ = refilled > window_ ? window_
                                    : static_cast<std::uint32_t>(refilled);
    hook = drain_hook_;
  }
  credits_.notify_all();
  if (hook) hook();
}

void CreditGate::reset() {
  std::function<void()> hook;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return;
    available_ = window_;
    holds_.clear();
    tenant_inflight_.clear();
    prio_inflight_.fill(0);
    hook = drain_hook_;
  }
  credits_.notify_all();
  if (hook) hook();
}

void CreditGate::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  credits_.notify_all();
}

std::uint32_t CreditGate::available() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return available_;
}

std::uint32_t CreditGate::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_ - available_;
}

std::uint32_t CreditGate::in_flight_peak() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return peak_;
}

std::uint32_t CreditGate::window() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return window_;
}

bool CreditGate::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

void CreditGate::set_drain_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mutex_);
  drain_hook_ = std::move(hook);
}

// ---- FlowControlledLink -----------------------------------------------------

FlowControlledLink::FlowControlledLink(std::shared_ptr<Link> inner,
                                       std::shared_ptr<CreditGate> gate,
                                       const FlowControlOptions& options,
                                       MetricsRegistry* metrics,
                                       bool fail_fast_throws,
                                       std::shared_ptr<TenantTable> tenants)
    : inner_(std::move(inner)),
      gate_(std::move(gate)),
      options_(options),
      metrics_(metrics),
      fail_fast_throws_(fail_fast_throws),
      tenants_(std::move(tenants)) {}

FlowControlledLink::~FlowControlledLink() {
  // A wrapper replaced without close() (e.g. RelinkableLink swap during
  // re-adoption) still accounts for the packets its rings are abandoning.
  count_shed(drop_all_pending_locked());
}

void FlowControlledLink::count_shed(std::uint64_t n, std::uint16_t tenant) {
  if (!n) return;
  if (metrics_) {
    metrics_->fc_packets_shed.fetch_add(n, std::memory_order_relaxed);
  }
  if (tenants_) tenants_->note_shed(tenant, n);
}

FlowControlledLink::SendClass FlowControlledLink::classify(
    const Packet& packet) const {
  SendClass cls;
  cls.request.bytes = packet.payload_bytes();
  if (!tenants_) return cls;
  const TenantTable::StreamClass sc = tenants_->classify(packet.stream_id());
  cls.request.priority = sc.priority;
  cls.request.tenant = sc.tenant;
  cls.tenant = sc.tenant;
  if (sc.tenant != TenantTable::kNoTenant) {
    const TenantOptions budget = tenants_->budget(sc.tenant);
    if (budget.credit_share() < 1.0) {
      const auto share = static_cast<std::uint32_t>(
          budget.credit_share() * gate_->window());
      cls.request.max_credits = share ? share : 1;
    }
    cls.request.max_bytes = budget.max_inflight_bytes();
  }
  return cls;
}

bool FlowControlledLink::send_with_credit_locked(const PacketPtr& packet,
                                                 const SendClass& cls) {
  if (metrics_) {
    metrics_->fc_credits_consumed.fetch_add(1, std::memory_order_relaxed);
    update_max(metrics_->fc_inflight_peak, gate_->in_flight_peak());
  }
  if (tenants_) tenants_->note_send(cls.tenant, cls.request.bytes);
  return inner_->send(packet);
}

bool FlowControlledLink::flush_pending_locked() {
  // Strict priority order: control first, bulk last.  A throttled head (its
  // tenant is at budget) parks its class and lets lower classes proceed; an
  // empty window stops the flush outright.
  for (auto& ring : pending_) {
    while (!ring.empty()) {
      const SendClass cls = classify(*ring.front());
      const auto acquired = gate_->try_acquire(cls.request);
      if (acquired == CreditGate::Acquire::kThrottled) break;
      if (acquired != CreditGate::Acquire::kOk) {
        has_pending_.store(pending_count_ != 0, std::memory_order_relaxed);
        return pending_count_ == 0;
      }
      PacketPtr packet = std::move(ring.front());
      ring.pop_front();
      --pending_count_;
      if (metrics_) {
        metrics_->fc_pending_depth.fetch_sub(1, std::memory_order_relaxed);
      }
      send_with_credit_locked(packet, cls);
    }
  }
  has_pending_.store(pending_count_ != 0, std::memory_order_relaxed);
  return pending_count_ == 0;
}

void FlowControlledLink::push_pending_locked(const PacketPtr& packet,
                                             Priority priority) {
  const std::size_t capacity = options_.window();
  const auto incoming = static_cast<std::size_t>(priority);
  while (pending_count_ >= capacity) {
    // Evict from the lowest-priority non-empty class.  When the incoming
    // packet itself is the lowest class present, it is the victim.
    std::size_t victim = pending_.size();
    for (std::size_t c = pending_.size(); c-- > 0;) {
      if (!pending_[c].empty()) {
        victim = c;
        break;
      }
    }
    if (victim == pending_.size() || victim < incoming) {
      count_shed(1, tenants_ ? classify(*packet).tenant : TenantTable::kNoTenant);
      return;
    }
    PacketPtr evicted = std::move(pending_[victim].front());
    pending_[victim].pop_front();
    --pending_count_;
    count_shed(1, tenants_ ? classify(*evicted).tenant : TenantTable::kNoTenant);
    if (metrics_) {
      metrics_->fc_pending_depth.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  pending_[incoming].push_back(packet);
  ++pending_count_;
  if (metrics_) {
    metrics_->fc_pending_depth.fetch_add(1, std::memory_order_relaxed);
  }
  has_pending_.store(true, std::memory_order_relaxed);
}

std::size_t FlowControlledLink::drop_all_pending_locked() {
  std::size_t shed = 0;
  for (auto& ring : pending_) {
    shed += ring.size();
    ring.clear();
  }
  pending_count_ = 0;
  if (shed && metrics_) {
    metrics_->fc_pending_depth.fetch_sub(shed, std::memory_order_relaxed);
  }
  has_pending_.store(false, std::memory_order_relaxed);
  return shed;
}

bool FlowControlledLink::send_unavailable_locked(const PacketPtr& packet,
                                                 const SendClass& cls,
                                                 CreditGate::Acquire acquired) {
  if (acquired == CreditGate::Acquire::kClosed) return false;
  if (acquired == CreditGate::Acquire::kThrottled && tenants_) {
    tenants_->note_throttled(cls.tenant);
  }
  switch (options_.policy) {
    case FlowControlPolicy::kBlock: {
      if (metrics_) {
        metrics_->fc_sends_blocked.fetch_add(1, std::memory_order_relaxed);
      }
      // The credits we are about to wait for can only come from the receiver
      // consuming packets already admitted — anything still sitting in a
      // coalescing inner's buffer would never arrive.  Push it out first.
      inner_->flush();
      const std::int64_t start = now_ns();
      const auto blocked = gate_->acquire_for(
          std::int64_t{options_.block_timeout_ms} * 1'000'000, cls.request);
      if (metrics_) {
        metrics_->fc_blocked_ns.fetch_add(
            static_cast<std::uint64_t>(now_ns() - start),
            std::memory_order_relaxed);
      }
      if (blocked == CreditGate::Acquire::kOk) {
        return send_with_credit_locked(packet, cls);
      }
      if (blocked == CreditGate::Acquire::kClosed) return false;
      count_shed(1, cls.tenant);  // timed out: shed, don't wedge the caller
      return true;
    }
    case FlowControlPolicy::kDropOldest: {
      push_pending_locked(packet, cls.request.priority);
      return true;
    }
    case FlowControlPolicy::kFailFast: {
      if (fail_fast_throws_) {
        throw FlowControlError("credit window exhausted (capacity " +
                               std::to_string(gate_->window()) + ")");
      }
      count_shed(1, cls.tenant);
      return true;
    }
  }
  return false;  // unreachable
}

bool FlowControlledLink::send(const PacketPtr& packet) {
  // Control/telemetry traffic (and EOF markers) bypasses credits *and* the
  // wrapper lock: a sender blocked on credits must never delay the control
  // plane that will eventually produce those credits.
  if (!packet || flow_control_exempt(*packet)) return inner_->send(packet);

  std::lock_guard<std::mutex> lock(mutex_);
  const SendClass cls = classify(*packet);
  if (flush_pending_locked()) {  // FIFO: older queued packets go first
    const auto acquired = gate_->try_acquire(cls.request);
    if (acquired == CreditGate::Acquire::kOk) {
      return send_with_credit_locked(packet, cls);
    }
    return send_unavailable_locked(packet, cls, acquired);
  }
  return send_unavailable_locked(packet, cls, CreditGate::Acquire::kExhausted);
}

bool FlowControlledLink::send_batch(std::span<const PacketPtr> packets) {
  if (packets.empty()) return true;
  if (packets.size() == 1) return send(packets.front());

  std::lock_guard<std::mutex> lock(mutex_);
  flush_pending_locked();
  bool ok = true;
  std::size_t start = 0;  // first packet of the current admitted run
  auto flush_run = [&](std::size_t end) {
    if (end > start) {
      ok = inner_->send_batch(packets.subspan(start, end - start)) && ok;
      start = end;
    }
  };
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const PacketPtr& packet = packets[i];
    if (!packet || flow_control_exempt(*packet)) {
      // Exempt packets go out alone (a batch frame must carry only data
      // packets — receivers reject smuggled control/telemetry), in order.
      flush_run(i);
      ok = inner_->send(packet) && ok;
      start = i + 1;
      continue;
    }
    const SendClass cls = classify(*packet);
    const auto acquired = gate_->try_acquire(cls.request);
    if (acquired == CreditGate::Acquire::kOk) {
      if (metrics_) {
        metrics_->fc_credits_consumed.fetch_add(1, std::memory_order_relaxed);
        update_max(metrics_->fc_inflight_peak, gate_->in_flight_peak());
      }
      if (tenants_) tenants_->note_send(cls.tenant, cls.request.bytes);
      // Hand the run over the moment it drains the window: the receiver can
      // start consuming (and granting) while the rest of the batch is still
      // being admitted.
      if (gate_->available() == 0) flush_run(i + 1);
      continue;
    }
    // Out of credits mid-batch: emit the admitted run as one frame, push
    // this packet through the single-send policy path, start a new run.
    flush_run(i);
    ok = send_unavailable_locked(packet, cls, acquired) && ok;
    start = i + 1;
  }
  flush_run(packets.size());
  // Burst boundary: a batch is a complete unit of upstream work, and unless
  // the window ended exactly exhausted (which already pressure-flushed a
  // coalescing inner), nothing downstream is guaranteed to move the tail.
  // Buffered tail packets hold credits; if no further send ever comes, the
  // receiver can neither consume nor grant — flush deterministically instead
  // of relying on the window parity the per-packet path happens to have.
  ok = inner_->flush() && ok;
  return ok;
}

bool FlowControlledLink::flush() {
  pump();
  return inner_->flush();
}

void FlowControlledLink::pump() {
  if (!has_pending_.load(std::memory_order_relaxed)) return;
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) return;  // a sender holds the lane; it will flush
  flush_pending_locked();
}

void FlowControlledLink::close() {
  pump();          // last chance to deliver pending packets against credits
  gate_->close();  // wakes blocked senders before we contend for the lock
  std::lock_guard<std::mutex> lock(mutex_);
  count_shed(drop_all_pending_locked());
  inner_->close();
}

}  // namespace tbon
