// A small discrete-event simulation engine.
//
// Used by the benchmark harness to model queueing behaviour that a one-core
// host cannot exhibit natively — e.g. the front-end of a flat one-to-many
// organization saturating under the offered load of hundreds of daemons
// (paper §2.2), which is a single-server queue fed by n arrival processes.
//
// Events are (time, sequence, callback); sequence numbers break ties so
// execution is deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tbon::sim {

class Simulator {
 public:
  using Callback = std::function<void()>;

  double now() const noexcept { return now_; }

  /// Schedule `callback` at absolute time `when` (>= now).
  void schedule_at(double when, Callback callback);

  /// Schedule `callback` `delay` seconds from now.
  void schedule_in(double delay, Callback callback) {
    schedule_at(now_ + delay, std::move(callback));
  }

  /// Run until the event queue empties or the clock passes `t_end`.
  void run_until(double t_end);

  /// Run until the event queue empties.
  void run() { run_until(1e300); }

  std::uint64_t events_executed() const noexcept { return executed_; }

 private:
  struct Event {
    double time;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  double now_ = 0.0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

/// A FIFO single-server queue (one CPU handling packets sequentially).
/// Tracks utilization and the maximum backlog reached.
class Server {
 public:
  explicit Server(Simulator& sim) : sim_(sim) {}

  /// Enqueue a job taking `service_seconds`; `on_done` fires at completion.
  void submit(double service_seconds, Simulator::Callback on_done = {});

  std::size_t queue_length() const noexcept { return queued_; }
  std::size_t max_queue_length() const noexcept { return max_queued_; }
  double busy_seconds() const noexcept { return busy_; }
  std::uint64_t completed() const noexcept { return completed_; }

 private:
  void start_next();

  struct Job {
    double service_seconds;
    Simulator::Callback on_done;
  };

  Simulator& sim_;
  std::queue<Job> jobs_;
  bool serving_ = false;
  std::size_t queued_ = 0;
  std::size_t max_queued_ = 0;
  double busy_ = 0.0;
  std::uint64_t completed_ = 0;
};

}  // namespace tbon::sim
