// Critical-path (makespan) analysis of one tree-structured computation wave.
//
// In the paper's experiment every node runs once per wave: leaves compute,
// parents merge after *all* their children finish (wait_for_all), and the
// measured time is "from the broadcast of a control message ... until the
// results ... are available at the front-end" (§3.2).  On a real cluster
// each node has its own CPU, so the end-to-end time is the longest
// dependency path:
//
//   finish(leaf)     = compute(leaf)
//   finish(internal) = max over children c of
//                        ( finish(c) + link(bytes sent by c) ) + compute(node)
//   makespan         = finish(root) + broadcast depth * link latency
//
// This module evaluates that recursion either from modeled costs or from
// *measured* per-node compute durations recorded by TraceRecorder during a
// real run of the full TBON stack — which is how the Figure 4 bench turns
// a one-core execution into the cluster-equivalent number (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/trace.hpp"
#include "sim/models.hpp"
#include "topology/topology.hpp"

namespace tbon::sim {

/// Per-node inputs to the recursion.
struct NodeCost {
  double compute_seconds = 0.0;  ///< this node's filter/compute time
  std::uint64_t bytes_up = 0;    ///< payload this node sends to its parent
};

/// Evaluate the critical path.  `costs` must cover every node in `topology`
/// (missing nodes count as zero).  The returned makespan includes the
/// downstream control broadcast (depth * link latency), matching the paper's
/// measurement window.
double critical_path_seconds(const Topology& topology,
                             const std::map<NodeId, NodeCost>& costs,
                             const LinkModel& link);

/// Build per-node costs from TraceRecorder events: compute time is the sum
/// of a node's recorded durations; bytes_up is the bytes_out of its last
/// event (what it finally forwarded).
std::map<NodeId, NodeCost> costs_from_trace(std::span<const TraceEvent> events);

/// Evaluate the critical path from a modeled workload instead of a trace:
/// every leaf processes `points_per_leaf` input points and forwards
/// `forwarded_points`; every internal node merges fanout * forwarded_points.
double modeled_makespan(const Topology& topology, const MeanShiftCostModel& cost,
                        const LinkModel& link, double points_per_leaf,
                        double forwarded_points);

}  // namespace tbon::sim
