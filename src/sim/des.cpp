#include "sim/des.hpp"

#include "common/error.hpp"

namespace tbon::sim {

void Simulator::schedule_at(double when, Callback callback) {
  if (when < now_) throw Error("cannot schedule an event in the past");
  queue_.push(Event{when, next_sequence_++, std::move(callback)});
}

void Simulator::run_until(double t_end) {
  while (!queue_.empty() && queue_.top().time <= t_end) {
    // priority_queue::top() is const; move via const_cast is UB, so copy the
    // callback handle (cheap: std::function) before popping.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.callback();
  }
  if (queue_.empty() && now_ < t_end) {
    // Clock rests at the last executed event when the queue drains.
    return;
  }
  now_ = std::max(now_, std::min(t_end, now_));
}

void Server::submit(double service_seconds, Simulator::Callback on_done) {
  jobs_.push(Job{service_seconds, std::move(on_done)});
  ++queued_;
  max_queued_ = std::max(max_queued_, queued_);
  if (!serving_) start_next();
}

void Server::start_next() {
  if (jobs_.empty()) {
    serving_ = false;
    return;
  }
  serving_ = true;
  Job job = std::move(jobs_.front());
  jobs_.pop();
  --queued_;
  busy_ += job.service_seconds;
  sim_.schedule_in(job.service_seconds, [this, done = std::move(job.on_done)]() {
    ++completed_;
    if (done) done();
    start_next();
  });
}

}  // namespace tbon::sim
