// Performance models: network links and mean-shift compute costs.
//
// The paper's testbed is "a cluster of 2.8–3.2 GHz Pentium 4 workstations
// ... inter-connected by a Gigabit Ethernet network"; the LinkModel defaults
// approximate that fabric.  Compute costs are NOT assumed: they are
// calibrated from real executions of this repository's own mean-shift code
// (fit_linear over measured samples), so the figure-reproduction benches
// combine measured compute with modeled communication (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <span>

namespace tbon::sim {

/// Point-to-point link: latency plus bandwidth-limited transfer.
struct LinkModel {
  double latency_seconds = 100e-6;        ///< ~LAN round-trip/2 on GigE
  double bandwidth_bytes_per_second = 117e6;  ///< ~1 Gb/s minus framing

  double transfer_seconds(std::uint64_t bytes) const noexcept {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// A zero-cost link (pure compute critical path).
  static LinkModel free() noexcept { return LinkModel{0.0, 1e300}; }
};

/// Least-squares fit of y = a * x + b over measured samples.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;

  double operator()(double x) const noexcept { return slope * x + intercept; }
};

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Calibrated cost model for the distributed mean-shift phases.
///
///   leaf_seconds(n)  — run the full leaf step on n input points
///   merge_seconds(n) — merge+re-shift n incoming points at a parent
///   forwarded_bytes(points) — wire size of a LocalResult with that many points
struct MeanShiftCostModel {
  LinearFit leaf;          ///< seconds vs input points
  LinearFit merge;         ///< seconds vs merged input points (linear part)
  /// Quadratic merge coefficient (seconds per merged-point^2).  Merging at a
  /// node re-runs mean-shift seeded by every child peak, so both the seed
  /// count and the per-seed scan grow with fan-in: cost ~ O(n_in^2).  This
  /// is precisely the paper's flat-tree consolidation bottleneck.
  double merge_quad = 0.0;
  double bytes_per_point = 16.0;
  double fixed_bytes = 256.0;

  double leaf_seconds(double points) const noexcept { return leaf(points); }
  double merge_seconds(double points_in) const noexcept {
    return merge(points_in) + merge_quad * points_in * points_in;
  }
  std::uint64_t forwarded_bytes(double points) const noexcept {
    return static_cast<std::uint64_t>(points * bytes_per_point + fixed_bytes);
  }
};

}  // namespace tbon::sim
