#include "sim/models.hpp"

#include "common/error.hpp"

namespace tbon::sim {

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size() || xs.empty()) {
    throw Error("fit_linear needs equal-length, non-empty samples");
  }
  const auto n = static_cast<double>(xs.size());
  double sum_x = 0.0, sum_y = 0.0, sum_xx = 0.0, sum_xy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
    sum_xx += xs[i] * xs[i];
    sum_xy += xs[i] * ys[i];
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  LinearFit fit;
  if (denom == 0.0) {
    // All x identical: degenerate; model as constant.
    fit.slope = 0.0;
    fit.intercept = sum_y / n;
  } else {
    fit.slope = (n * sum_xy - sum_x * sum_y) / denom;
    fit.intercept = (sum_y - fit.slope * sum_x) / n;
  }
  return fit;
}

}  // namespace tbon::sim
