#include "sim/critical_path.hpp"

#include <algorithm>

namespace tbon::sim {
namespace {

double finish_time(const Topology& topology, NodeId id,
                   const std::map<NodeId, NodeCost>& costs, const LinkModel& link,
                   std::vector<double>& memo, std::vector<bool>& known) {
  if (known[id]) return memo[id];
  const auto it = costs.find(id);
  const NodeCost cost = it != costs.end() ? it->second : NodeCost{};
  double children_done = 0.0;
  for (const NodeId child : topology.node(id).children) {
    const double child_finish =
        finish_time(topology, child, costs, link, memo, known);
    const auto child_it = costs.find(child);
    const std::uint64_t child_bytes =
        child_it != costs.end() ? child_it->second.bytes_up : 0;
    children_done =
        std::max(children_done, child_finish + link.transfer_seconds(child_bytes));
  }
  memo[id] = children_done + cost.compute_seconds;
  known[id] = true;
  return memo[id];
}

}  // namespace

double critical_path_seconds(const Topology& topology,
                             const std::map<NodeId, NodeCost>& costs,
                             const LinkModel& link) {
  std::vector<double> memo(topology.num_nodes(), 0.0);
  std::vector<bool> known(topology.num_nodes(), false);
  const double upstream = finish_time(topology, topology.root(), costs, link, memo, known);
  // Control broadcast: one latency per level (pipelined down the tree).
  const double broadcast =
      static_cast<double>(topology.depth()) * link.latency_seconds;
  return broadcast + upstream;
}

std::map<NodeId, NodeCost> costs_from_trace(std::span<const TraceEvent> events) {
  std::map<NodeId, NodeCost> costs;
  for (const TraceEvent& event : events) {
    NodeCost& cost = costs[event.node_id];
    cost.compute_seconds += static_cast<double>(event.duration_ns()) * 1e-9;
    cost.bytes_up = event.bytes_out;  // last event wins: the final forward
  }
  return costs;
}

double modeled_makespan(const Topology& topology, const MeanShiftCostModel& cost,
                        const LinkModel& link, double points_per_leaf,
                        double forwarded_points) {
  std::map<NodeId, NodeCost> costs;
  for (NodeId id = 0; id < topology.num_nodes(); ++id) {
    NodeCost node;
    if (topology.is_leaf(id)) {
      node.compute_seconds = cost.leaf_seconds(points_per_leaf);
      node.bytes_up = cost.forwarded_bytes(forwarded_points);
    } else {
      const double fanout = static_cast<double>(topology.node(id).children.size());
      node.compute_seconds = cost.merge_seconds(fanout * forwarded_points);
      node.bytes_up = cost.forwarded_bytes(forwarded_points);
    }
    costs[id] = node;
  }
  return critical_path_seconds(topology, costs, link);
}

}  // namespace tbon::sim
