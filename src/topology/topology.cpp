#include "topology/topology.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>

namespace tbon {
namespace {

std::size_t parse_size(std::string_view text) {
  std::size_t value = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    throw ParseError("expected a number, got '" + std::string(text) + "'");
  }
  return value;
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> parts;
  std::size_t pos = 0;
  while (true) {
    const auto next = text.find(sep, pos);
    if (next == std::string_view::npos) {
      parts.push_back(text.substr(pos));
      return parts;
    }
    parts.push_back(text.substr(pos, next - pos));
    pos = next + 1;
  }
}

}  // namespace

Topology::Topology(std::vector<TopologyNode> nodes) : nodes_(std::move(nodes)) {
  validate();
  index_leaves();
}

void Topology::validate() const {
  if (nodes_.empty()) throw TopologyError("empty topology");
  if (nodes_[0].parent != kNoNode) throw TopologyError("node 0 must be the root");
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    const auto parent = nodes_[id].parent;
    if (parent == kNoNode) throw TopologyError("multiple roots");
    if (parent >= nodes_.size()) throw TopologyError("dangling parent link");
    const auto& siblings = nodes_[parent].children;
    if (std::find(siblings.begin(), siblings.end(), id) == siblings.end()) {
      throw TopologyError("parent/child links disagree");
    }
  }
  // Reachability from root (also rejects cycles: a cycle is unreachable
  // because every node has exactly one parent and node 0 has none).
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> stack = {0};
  seen[0] = true;
  std::size_t visited = 0;
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    ++visited;
    for (NodeId child : nodes_[id].children) {
      if (child >= nodes_.size()) throw TopologyError("dangling child link");
      if (nodes_[child].parent != id) throw TopologyError("child link without parent link");
      if (seen[child]) throw TopologyError("node with two parents");
      seen[child] = true;
      stack.push_back(child);
    }
  }
  if (visited != nodes_.size()) throw TopologyError("unreachable nodes (cycle or forest)");
}

void Topology::index_leaves() {
  // DFS in child order gives deterministic back-end ranks.
  std::vector<NodeId> stack = {0};
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (nodes_[id].children.empty()) {
      leaves_.push_back(id);
    } else {
      // Push children reversed so the leftmost child is visited first.
      for (auto it = nodes_[id].children.rbegin(); it != nodes_[id].children.rend(); ++it) {
        stack.push_back(*it);
      }
    }
  }
}

Topology Topology::single() { return Topology({TopologyNode{}}); }

Topology Topology::flat(std::size_t leaves) {
  if (leaves == 0) throw TopologyError("flat topology needs at least one leaf");
  std::vector<TopologyNode> nodes(1 + leaves);
  for (std::size_t i = 0; i < leaves; ++i) {
    const NodeId id = static_cast<NodeId>(1 + i);
    nodes[id].parent = 0;
    nodes[0].children.push_back(id);
  }
  return Topology(std::move(nodes));
}

Topology Topology::balanced(std::size_t fanout, std::size_t depth) {
  std::vector<std::size_t> fanouts(depth, fanout);
  return from_fanouts(fanouts);
}

Topology Topology::balanced_for_leaves(std::size_t fanout, std::size_t leaves) {
  if (fanout < 2) throw TopologyError("balanced_for_leaves needs fanout >= 2");
  if (leaves == 0) throw TopologyError("need at least one leaf");
  if (leaves <= fanout) return flat(leaves);
  // Level sizes bottom-up: each level holds ceil(below / fanout) nodes, so
  // no node exceeds `fanout` children and no internal node is wasted.
  const auto ceil_div = [](std::size_t a, std::size_t b) { return (a + b - 1) / b; };
  std::vector<std::size_t> level_sizes = {leaves};
  while (level_sizes.back() > fanout) {
    level_sizes.push_back(ceil_div(level_sizes.back(), fanout));
  }
  // Build top-down (root, then level_sizes in reverse), distributing each
  // level's nodes round-robin over the level above so sibling counts differ
  // by at most one.
  std::vector<TopologyNode> nodes(1);
  std::vector<NodeId> level = {0};
  for (auto it = level_sizes.rbegin(); it != level_sizes.rend(); ++it) {
    std::vector<NodeId> next;
    next.reserve(*it);
    for (std::size_t i = 0; i < *it; ++i) {
      const NodeId parent = level[i % level.size()];
      const NodeId id = static_cast<NodeId>(nodes.size());
      nodes.push_back(TopologyNode{.parent = parent, .children = {}, .host = "localhost"});
      nodes[parent].children.push_back(id);
      next.push_back(id);
    }
    level = std::move(next);
  }
  return Topology(std::move(nodes));
}

Topology Topology::from_fanouts(std::span<const std::size_t> fanouts) {
  std::vector<TopologyNode> nodes(1);
  std::vector<NodeId> level = {0};
  for (std::size_t fanout : fanouts) {
    if (fanout == 0) throw TopologyError("zero fanout level");
    std::vector<NodeId> next;
    next.reserve(level.size() * fanout);
    for (NodeId parent : level) {
      for (std::size_t i = 0; i < fanout; ++i) {
        const NodeId id = static_cast<NodeId>(nodes.size());
        nodes.push_back(TopologyNode{.parent = parent, .children = {}, .host = "localhost"});
        nodes[parent].children.push_back(id);
        next.push_back(id);
      }
    }
    level = std::move(next);
  }
  return Topology(std::move(nodes));
}

Topology Topology::knomial(std::size_t k, std::size_t dim) {
  if (k < 2) throw TopologyError("knomial needs k >= 2");
  // A k-nomial tree of dimension d has k^d nodes.  The root has d*(k-1)
  // children; the subtree rooted at the child created in round i is a
  // k-nomial tree of dimension i.  We build it recursively.
  std::vector<TopologyNode> nodes(1);
  // build(parent, dimension): append a k-nomial subtree under `parent`.
  auto build = [&](auto&& self, NodeId parent, std::size_t dimension) -> void {
    for (std::size_t round = 0; round < dimension; ++round) {
      for (std::size_t copy = 0; copy < k - 1; ++copy) {
        const NodeId id = static_cast<NodeId>(nodes.size());
        nodes.push_back(TopologyNode{.parent = parent, .children = {}, .host = "localhost"});
        nodes[parent].children.push_back(id);
        self(self, id, round);
      }
    }
  };
  build(build, 0, dim);
  return Topology(std::move(nodes));
}

Topology Topology::from_parents(std::span<const NodeId> parents) {
  std::vector<TopologyNode> nodes(parents.size());
  for (NodeId id = 0; id < parents.size(); ++id) {
    nodes[id].parent = parents[id];
    if (parents[id] != kNoNode) {
      if (parents[id] >= parents.size()) throw TopologyError("dangling parent link");
      nodes[parents[id]].children.push_back(id);
    }
  }
  return Topology(std::move(nodes));
}

Topology Topology::parse(std::string_view spec) {
  return TopologyOptions::from_spec(spec).build();
}

// ---- TopologyOptions --------------------------------------------------------

TopologyOptions TopologyOptions::single() { return {}; }

TopologyOptions TopologyOptions::flat(std::size_t leaves) {
  TopologyOptions options;
  options.shape_ = Shape::kFlat;
  options.arg0_ = leaves;
  return options;
}

TopologyOptions TopologyOptions::balanced(std::size_t fanout, std::size_t depth) {
  TopologyOptions options;
  options.shape_ = Shape::kBalanced;
  options.arg0_ = fanout;
  options.arg1_ = depth;
  return options;
}

TopologyOptions TopologyOptions::balanced_for_leaves(std::size_t fanout,
                                                     std::size_t leaves) {
  TopologyOptions options;
  options.shape_ = Shape::kBalancedForLeaves;
  options.arg0_ = fanout;
  options.arg1_ = leaves;
  return options;
}

TopologyOptions TopologyOptions::fanouts(std::vector<std::size_t> per_level) {
  TopologyOptions options;
  options.shape_ = Shape::kFanouts;
  options.per_level_ = std::move(per_level);
  return options;
}

TopologyOptions TopologyOptions::knomial(std::size_t k, std::size_t dim) {
  TopologyOptions options;
  options.shape_ = Shape::kKnomial;
  options.arg0_ = k;
  options.arg1_ = dim;
  return options;
}

TopologyOptions TopologyOptions::edges(std::vector<NodeId> parents) {
  TopologyOptions options;
  options.shape_ = Shape::kEdges;
  options.parents_ = std::move(parents);
  return options;
}

TopologyOptions TopologyOptions::from_spec(std::string_view spec) {
  if (spec == "single") return single();
  const auto colon = spec.find(':');
  if (colon == std::string_view::npos) throw ParseError("bad topology spec '" + std::string(spec) + "'");
  const auto kind = spec.substr(0, colon);
  const auto rest = spec.substr(colon + 1);
  if (kind == "flat") return flat(parse_size(rest));
  if (kind == "bal") {
    const auto x = rest.find('x');
    if (x == std::string_view::npos) throw ParseError("bal spec needs FANOUTxDEPTH");
    return balanced(parse_size(rest.substr(0, x)), parse_size(rest.substr(x + 1)));
  }
  if (kind == "auto") {
    const auto parts = split(rest, ':');
    if (parts.size() != 2) throw ParseError("auto spec needs FANOUT:LEAVES");
    return balanced_for_leaves(parse_size(parts[0]), parse_size(parts[1]));
  }
  if (kind == "fanouts") {
    std::vector<std::size_t> per_level;
    for (const auto part : split(rest, ',')) per_level.push_back(parse_size(part));
    return fanouts(std::move(per_level));
  }
  if (kind == "knomial") {
    const auto parts = split(rest, ':');
    if (parts.size() != 2) throw ParseError("knomial spec needs K:DIM");
    return knomial(parse_size(parts[0]), parse_size(parts[1]));
  }
  throw ParseError("unknown topology kind '" + std::string(kind) + "'");
}

Topology Topology::with_placements(
    std::span<const std::pair<NodeId, std::string>> placements) const {
  Topology out = *this;
  for (const auto& [id, host_port] : placements) {
    if (id >= out.nodes_.size()) {
      throw TopologyError("placement for node " + std::to_string(id) +
                          " is outside the tree");
    }
    if (!host_port.empty()) out.nodes_[id].host = host_port;
  }
  return out;
}

TopologyOptions& TopologyOptions::at(NodeId node, std::string host_port) {
  placements_.emplace_back(node, std::move(host_port));
  return *this;
}

TopologyOptions& TopologyOptions::hosts(std::vector<std::string> host_ports) {
  for (NodeId id = 0; id < host_ports.size(); ++id) {
    placements_.emplace_back(id, std::move(host_ports[id]));
  }
  return *this;
}

Topology TopologyOptions::build() const {
  if (!placements_.empty()) return build_shape().with_placements(placements_);
  return build_shape();
}

Topology TopologyOptions::build_shape() const {
  switch (shape_) {
    case Shape::kSingle:
      return Topology::single();
    case Shape::kFlat:
      return Topology::flat(arg0_);
    case Shape::kBalanced:
      return Topology::balanced(arg0_, arg1_);
    case Shape::kBalancedForLeaves:
      return Topology::balanced_for_leaves(arg0_, arg1_);
    case Shape::kFanouts:
      return Topology::from_fanouts(per_level_);
    case Shape::kKnomial:
      return Topology::knomial(arg0_, arg1_);
    case Shape::kEdges:
      return Topology::from_parents(parents_);
  }
  throw TopologyError("unreachable topology shape");
}

std::uint32_t Topology::leaf_rank(NodeId id) const {
  const auto it = std::find(leaves_.begin(), leaves_.end(), id);
  if (it == leaves_.end()) throw TopologyError("node is not a leaf");
  return static_cast<std::uint32_t>(it - leaves_.begin());
}

std::size_t Topology::num_internal() const noexcept {
  std::size_t count = 0;
  for (NodeId id = 1; id < nodes_.size(); ++id) {
    if (!nodes_[id].children.empty()) ++count;
  }
  return count;
}

double Topology::internal_overhead() const noexcept {
  return leaves_.empty() ? 0.0
                         : static_cast<double>(num_internal()) /
                               static_cast<double>(leaves_.size());
}

std::size_t Topology::depth() const noexcept {
  std::size_t deepest = 0;
  for (NodeId leaf : leaves_) {
    std::size_t hops = 0;
    for (NodeId id = leaf; nodes_[id].parent != kNoNode; id = nodes_[id].parent) ++hops;
    deepest = std::max(deepest, hops);
  }
  return deepest;
}

std::size_t Topology::max_fanout() const noexcept {
  std::size_t widest = 0;
  for (const auto& node : nodes_) widest = std::max(widest, node.children.size());
  return widest;
}

std::vector<NodeId> Topology::path_to_root(NodeId id) const {
  std::vector<NodeId> path;
  for (NodeId cur = id;; cur = nodes_.at(cur).parent) {
    path.push_back(cur);
    if (nodes_.at(cur).parent == kNoNode) break;
  }
  return path;
}

std::vector<std::uint32_t> Topology::subtree_leaf_ranks(NodeId id) const {
  std::vector<std::uint32_t> ranks;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    const NodeId cur = stack.back();
    stack.pop_back();
    if (nodes_.at(cur).children.empty()) {
      ranks.push_back(leaf_rank(cur));
    } else {
      for (NodeId child : nodes_[cur].children) stack.push_back(child);
    }
  }
  std::sort(ranks.begin(), ranks.end());
  return ranks;
}

void Topology::serialize(BinaryWriter& writer) const {
  writer.put(static_cast<std::uint32_t>(nodes_.size()));
  for (const auto& node : nodes_) {
    writer.put(node.parent);
    writer.put_string(node.host);
  }
}

Topology Topology::deserialize(BinaryReader& reader) {
  const auto count = reader.get<std::uint32_t>();
  // Each node needs at least its parent id plus a string length prefix.
  if (count > reader.remaining() / 8) {
    throw CodecError("topology node count exceeds remaining payload");
  }
  std::vector<NodeId> parents(count, kNoNode);
  std::vector<std::string> hosts(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    parents[i] = reader.get<NodeId>();
    hosts[i] = reader.get_string();
  }
  Topology topology = from_parents(parents);
  for (std::uint32_t i = 0; i < count; ++i) topology.nodes_[i].host = std::move(hosts[i]);
  return topology;
}

std::string Topology::to_dot() const {
  std::ostringstream out;
  out << "digraph tbon {\n  rankdir=TB;\n";
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const char* shape = is_root(id) ? "doubleoctagon" : (is_leaf(id) ? "box" : "ellipse");
    out << "  n" << id << " [shape=" << shape << "];\n";
  }
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    for (NodeId child : nodes_[id].children) {
      out << "  n" << id << " -> n" << child << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace tbon
