// Process-tree topology specification.
//
// A Topology describes the shape of a TBON: node 0 is the front-end (root),
// the leaves are back-ends, and every other node is a communication process.
// MRNet lets tools specify "a tree organization of any shape or size
// including balanced (k-ary) and skewed (k-nomial) trees"; the builders
// below cover those shapes plus the flat one-to-many organization that the
// paper's evaluation uses as its baseline.
//
// Topologies are immutable after construction and validated (single root,
// acyclic, every non-root reachable from the root).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/archive.hpp"
#include "common/error.hpp"

namespace tbon {

using NodeId = std::uint32_t;
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

/// A single process slot in the tree.
struct TopologyNode {
  NodeId parent = kNoNode;            ///< kNoNode for the root.
  std::vector<NodeId> children;       ///< ordered; empty for back-ends.
  /// Placement: "host" or "host:port".  Informational for the threaded and
  /// multi-process instantiations; for create_remote it names the machine
  /// the node's process is launched on and (optionally) the fixed port its
  /// child-facing listener binds (omitted/0 -> ephemeral).
  std::string host = "localhost";
};

class Topology {
 public:
  // ---- builders -----------------------------------------------------------

  /// The degenerate single-process "tree" (front-end only, doing all work
  /// itself); used as the paper's `single` baseline.
  static Topology single();

  /// One-to-many: the front-end is directly connected to `leaves` back-ends
  /// (the paper's "1-deep (shallow)" tree).
  static Topology flat(std::size_t leaves);

  /// Fully balanced tree with `fanout` children per internal node and
  /// `depth` hops from root to every leaf (depth 2 == the paper's "2-deep").
  static Topology balanced(std::size_t fanout, std::size_t depth);

  /// Balanced tree for a target number of leaves: depth is the smallest d
  /// with fanout^d >= leaves; the leaf level may be uneven (leaves are
  /// distributed round-robin over the last internal level).
  static Topology balanced_for_leaves(std::size_t fanout, std::size_t leaves);

  /// Tree built from explicit per-level fanouts; `fanouts[i]` is the number
  /// of children of every node at level i.
  static Topology from_fanouts(std::span<const std::size_t> fanouts);

  /// Skewed k-nomial tree of dimension `dim` (2-nomial == binomial): the
  /// classic "skewed" shape MRNet supports.  Has k^... no fixed arity; node
  /// degrees shrink along the tree.
  static Topology knomial(std::size_t k, std::size_t dim);

  /// Build from explicit parent links (parent[0] must be kNoNode).
  static Topology from_parents(std::span<const NodeId> parents);

  [[deprecated("use TopologyOptions::from_spec (or a typed TopologyOptions builder)")]]
  static Topology parse(std::string_view spec);

  // ---- queries ------------------------------------------------------------

  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  const TopologyNode& node(NodeId id) const { return nodes_.at(id); }
  NodeId root() const noexcept { return 0; }

  bool is_root(NodeId id) const noexcept { return id == 0; }
  bool is_leaf(NodeId id) const { return nodes_.at(id).children.empty(); }

  /// Back-ends in deterministic (DFS) order; index in this vector is the
  /// back-end's *rank*.
  const std::vector<NodeId>& leaves() const noexcept { return leaves_; }
  std::size_t num_leaves() const noexcept { return leaves_.size(); }

  /// Rank of a leaf node; throws if `id` is not a leaf.
  std::uint32_t leaf_rank(NodeId id) const;

  /// Communication processes: every node that is neither the root nor a
  /// leaf.  This matches the paper's §3.2 accounting ("16 (6.25%) internal
  /// nodes are needed to connect 256 back-ends").
  std::size_t num_internal() const noexcept;

  /// Internal nodes as a fraction of back-ends (the §3.2 overhead metric).
  double internal_overhead() const noexcept;

  /// Hops from the root to the deepest leaf (0 for single()).
  std::size_t depth() const noexcept;

  /// Largest number of children of any node.
  std::size_t max_fanout() const noexcept;

  /// All node ids on the path from `id` up to and including the root.
  std::vector<NodeId> path_to_root(NodeId id) const;

  /// Leaf ranks reachable in the subtree rooted at `id`.
  std::vector<std::uint32_t> subtree_leaf_ranks(NodeId id) const;

  /// Copy with updated placement strings ("host" or "host:port") for the
  /// given nodes; builder support for TopologyOptions::at()/hosts().
  Topology with_placements(
      std::span<const std::pair<NodeId, std::string>> placements) const;

  // ---- serialization / output ---------------------------------------------

  void serialize(BinaryWriter& writer) const;
  static Topology deserialize(BinaryReader& reader);

  /// Graphviz rendering for documentation and debugging.
  std::string to_dot() const;

  friend bool operator==(const Topology& a, const Topology& b) {
    if (a.nodes_.size() != b.nodes_.size()) return false;
    for (std::size_t i = 0; i < a.nodes_.size(); ++i) {
      if (a.nodes_[i].parent != b.nodes_[i].parent ||
          a.nodes_[i].children != b.nodes_[i].children ||
          a.nodes_[i].host != b.nodes_[i].host) {
        return false;
      }
    }
    return true;
  }

 private:
  explicit Topology(std::vector<TopologyNode> nodes);
  void validate() const;
  void index_leaves();

  std::vector<TopologyNode> nodes_;
  std::vector<NodeId> leaves_;
};

/// Typed topology specification — the replacement for the stringly
/// `Topology::parse` specs.  Pick a shape with a named factory, then pass the
/// options anywhere a `Topology` is expected (the implicit conversion runs
/// the builder), e.g.
///
///   Network::create({.topology = TopologyOptions::balanced(16, 2)});
///
/// Validation happens in `build()`, so malformed options (zero fanout, a
/// dangling parent link) fail with the same TopologyError/ParseError the
/// direct builders throw.  `from_spec` accepts the legacy compact strings
/// for CLI tools that take the shape on the command line.
class TopologyOptions {
 public:
  /// Degenerate single-process tree (front-end only).
  static TopologyOptions single();

  /// One-to-many: the front-end directly parents `leaves` back-ends.
  static TopologyOptions flat(std::size_t leaves);

  /// Balanced k-ary tree: `fanout` children per internal node, `depth` hops
  /// from root to every leaf.
  static TopologyOptions balanced(std::size_t fanout, std::size_t depth);

  /// Balanced tree sized for a target leaf count (uneven last level).
  static TopologyOptions balanced_for_leaves(std::size_t fanout, std::size_t leaves);

  /// Explicit per-level fanouts: `per_level[i]` children for every node at
  /// level i.
  static TopologyOptions fanouts(std::vector<std::size_t> per_level);

  /// Skewed k-nomial tree of dimension `dim` (2-nomial == binomial).
  static TopologyOptions knomial(std::size_t k, std::size_t dim);

  /// Explicit edge list as parent links; `parents[0]` must be kNoNode.
  static TopologyOptions edges(std::vector<NodeId> parents);

  /// Parse a legacy compact spec string (the CLI-facing entry point):
  ///   "single"            -> single()
  ///   "flat:64"           -> flat(64)
  ///   "bal:16x2"          -> balanced(fanout 16, depth 2)
  ///   "auto:16:300"       -> balanced_for_leaves(16, 300)
  ///   "fanouts:4,8,2"     -> fanouts({4,8,2})
  ///   "knomial:2:6"       -> knomial(2, 6)
  static TopologyOptions from_spec(std::string_view spec);

  /// Place one node: `host_port` is "host" or "host:port" (the port fixes
  /// the node's child-facing listener for create_remote; otherwise the OS
  /// assigns one).  Unplaced nodes default to "localhost".
  TopologyOptions& at(NodeId node, std::string host_port);

  /// Bulk placement: `host_ports[i]` places node i.  Entries beyond the
  /// built tree's size throw TopologyError from build(); empty strings keep
  /// the default.
  TopologyOptions& hosts(std::vector<std::string> host_ports);

  /// Materialize (and validate) the topology.
  Topology build() const;
  operator Topology() const { return build(); }  // NOLINT(google-explicit-constructor)

 private:
  enum class Shape : std::uint8_t {
    kSingle, kFlat, kBalanced, kBalancedForLeaves, kFanouts, kKnomial, kEdges,
  };

  TopologyOptions() = default;

  Topology build_shape() const;

  Shape shape_ = Shape::kSingle;
  std::size_t arg0_ = 0;  ///< leaves / fanout / k, by shape.
  std::size_t arg1_ = 0;  ///< depth / target leaves / dim, by shape.
  std::vector<std::size_t> per_level_;
  std::vector<NodeId> parents_;
  std::vector<std::pair<NodeId, std::string>> placements_;
};

}  // namespace tbon
