// MRNet-style topology configuration files.
//
// MRNet tools describe process trees in a config format where each line maps
// a parent slot to its children:
//
//     # front-end on the first host
//     host0:0 => host1:0 host1:1 ;
//     host1:0 => host2:0 host2:1 host2:2 ;
//     host1:1 => host3:0 ;
//
// A slot is "hostname:index".  The root is the parent that never appears as
// a child.  This module parses that format into a Topology (preserving the
// host placement hints) and renders a Topology back into it, so existing
// MRNet topology files can drive this library.
#pragma once

#include <string>
#include <string_view>

#include "topology/topology.hpp"

namespace tbon {

/// Parse MRNet config text; throws ParseError on malformed input and
/// TopologyError on structural problems (no root, two roots, cycles...).
Topology parse_mrnet_config(std::string_view text);

/// Render a topology in the same format (one line per internal node).
std::string to_mrnet_config(const Topology& topology);

}  // namespace tbon
