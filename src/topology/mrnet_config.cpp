#include "topology/mrnet_config.hpp"

#include <map>
#include <sstream>
#include <vector>

namespace tbon {
namespace {

struct Slot {
  std::string host;
  std::uint32_t index = 0;

  bool operator<(const Slot& other) const {
    if (host != other.host) return host < other.host;
    return index < other.index;
  }
  bool operator==(const Slot& other) const = default;

  std::string to_string() const { return host + ":" + std::to_string(index); }
};

Slot parse_slot(std::string_view token) {
  const auto colon = token.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 >= token.size()) {
    throw ParseError("bad slot '" + std::string(token) + "' (expected host:index)");
  }
  Slot slot;
  slot.host = std::string(token.substr(0, colon));
  const auto digits = token.substr(colon + 1);
  std::uint32_t index = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      throw ParseError("bad slot index in '" + std::string(token) + "'");
    }
    index = index * 10 + static_cast<std::uint32_t>(c - '0');
  }
  slot.index = index;
  return slot;
}

/// Tokenize, dropping comments (# to end of line) and treating "=>" and ";"
/// as standalone tokens.
std::vector<std::string> tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '#') {
      flush();
      while (i < text.size() && text[i] != '\n') ++i;
    } else if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
      flush();
    } else if (c == ';') {
      flush();
      tokens.emplace_back(";");
    } else if (c == '=' && i + 1 < text.size() && text[i + 1] == '>') {
      flush();
      tokens.emplace_back("=>");
      ++i;
    } else {
      current.push_back(c);
    }
  }
  flush();
  return tokens;
}

}  // namespace

Topology parse_mrnet_config(std::string_view text) {
  const auto tokens = tokenize(text);
  // parent slot -> ordered children slots
  std::map<Slot, std::vector<Slot>> edges;
  std::map<Slot, int> in_degree;

  std::size_t cursor = 0;
  while (cursor < tokens.size()) {
    const Slot parent = parse_slot(tokens[cursor++]);
    if (cursor >= tokens.size() || tokens[cursor] != "=>") {
      throw ParseError("expected '=>' after " + parent.to_string());
    }
    ++cursor;
    auto& children = edges[parent];  // creates the parent entry
    in_degree.emplace(parent, 0);
    bool terminated = false;
    while (cursor < tokens.size()) {
      if (tokens[cursor] == ";") {
        ++cursor;
        terminated = true;
        break;
      }
      const Slot child = parse_slot(tokens[cursor++]);
      children.push_back(child);
      ++in_degree[child];
    }
    if (!terminated) throw ParseError("missing ';' after children of " + parent.to_string());
    if (children.empty()) throw ParseError(parent.to_string() + " declares no children");
  }
  if (edges.empty()) throw ParseError("empty topology config");

  // The root is the slot that is a parent but never a child.
  std::vector<Slot> roots;
  for (const auto& [slot, degree] : in_degree) {
    if (degree == 0) roots.push_back(slot);
  }
  if (roots.size() != 1) {
    throw TopologyError("config must have exactly one root, found " +
                        std::to_string(roots.size()));
  }
  for (const auto& [slot, degree] : in_degree) {
    if (degree > 1) {
      throw TopologyError(slot.to_string() + " has multiple parents");
    }
  }

  // Assign node ids by BFS from the root (root = 0), preserving child order.
  std::map<Slot, NodeId> ids;
  std::vector<Slot> order = {roots[0]};
  ids[roots[0]] = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto it = edges.find(order[i]);
    if (it == edges.end()) continue;
    for (const Slot& child : it->second) {
      if (ids.count(child)) throw TopologyError("duplicate child " + child.to_string());
      ids[child] = static_cast<NodeId>(order.size());
      order.push_back(child);
    }
  }
  if (order.size() != in_degree.size()) {
    throw TopologyError("config contains nodes unreachable from the root");
  }

  std::vector<NodeId> parents(order.size(), kNoNode);
  for (const auto& [parent, children] : edges) {
    for (const Slot& child : children) {
      parents[ids[child]] = ids[parent];
    }
  }
  Topology topology = Topology::from_parents(parents);
  // from_parents rebuilds children in id order, which matches the BFS
  // numbering above, so child order is preserved.  Attach host hints via
  // serialization round-trip (hosts are carried in the serialized form).
  BinaryWriter writer;
  writer.put(static_cast<std::uint32_t>(order.size()));
  for (std::size_t i = 0; i < order.size(); ++i) {
    writer.put(parents[i]);
    writer.put_string(order[i].host);
  }
  BinaryReader reader(writer.bytes());
  return Topology::deserialize(reader);
}

std::string to_mrnet_config(const Topology& topology) {
  // Slot indices are per-host counters in node-id order.
  std::map<std::string, std::uint32_t> next_index;
  std::vector<Slot> slots(topology.num_nodes());
  for (NodeId id = 0; id < topology.num_nodes(); ++id) {
    const std::string& host = topology.node(id).host;
    slots[id] = Slot{host, next_index[host]++};
  }
  std::ostringstream out;
  for (NodeId id = 0; id < topology.num_nodes(); ++id) {
    const auto& children = topology.node(id).children;
    if (children.empty()) continue;
    out << slots[id].to_string() << " =>";
    for (const NodeId child : children) out << ' ' << slots[child].to_string();
    out << " ;\n";
  }
  return out.str();
}

}  // namespace tbon
