#include "recovery/heartbeat.hpp"

#include <algorithm>

namespace tbon {

PeerLiveness::PeerLiveness(const HeartbeatConfig& config, bool has_parent,
                           std::size_t num_children, std::int64_t now)
    : config_(config) {
  if (has_parent) {
    parent_.active = true;
    parent_.last_recv = parent_.last_send = now;
  }
  children_.resize(num_children);
  for (auto& child : children_) {
    child.active = true;
    child.last_recv = child.last_send = now;
  }
}

void PeerLiveness::note_recv_parent(std::int64_t now) {
  if (parent_.active) parent_.last_recv = now;
}

void PeerLiveness::note_send_parent(std::int64_t now) {
  if (parent_.active) parent_.last_send = now;
}

void PeerLiveness::note_recv_child(std::uint32_t slot, std::int64_t now) {
  if (slot < children_.size() && children_[slot].active) {
    children_[slot].last_recv = now;
  }
}

void PeerLiveness::note_send_child(std::uint32_t slot, std::int64_t now) {
  if (slot < children_.size() && children_[slot].active) {
    children_[slot].last_send = now;
  }
}

void PeerLiveness::ensure_child(std::uint32_t slot, std::int64_t now) {
  if (children_.size() <= slot) children_.resize(slot + 1);
  if (!children_[slot].active) {
    children_[slot].active = true;
    children_[slot].last_recv = children_[slot].last_send = now;
  }
}

void PeerLiveness::drop_child(std::uint32_t slot) {
  if (slot < children_.size()) children_[slot].active = false;
}

void PeerLiveness::reset_parent(std::int64_t now) {
  parent_.active = true;
  parent_.last_recv = parent_.last_send = now;
}

void PeerLiveness::drop_parent() { parent_.active = false; }

bool PeerLiveness::parent_heartbeat_due(std::int64_t now) const {
  return parent_.active && now - parent_.last_send >= config_.interval_ns;
}

bool PeerLiveness::parent_timed_out(std::int64_t now) const {
  return parent_.active && now - parent_.last_recv >= config_.timeout_ns;
}

std::vector<std::uint32_t> PeerLiveness::children_heartbeat_due(
    std::int64_t now) const {
  std::vector<std::uint32_t> due;
  for (std::uint32_t slot = 0; slot < children_.size(); ++slot) {
    if (children_[slot].active && now - children_[slot].last_send >= config_.interval_ns) {
      due.push_back(slot);
    }
  }
  return due;
}

std::vector<std::uint32_t> PeerLiveness::timed_out_children(std::int64_t now) const {
  std::vector<std::uint32_t> dead;
  for (std::uint32_t slot = 0; slot < children_.size(); ++slot) {
    if (children_[slot].active && now - children_[slot].last_recv >= config_.timeout_ns) {
      dead.push_back(slot);
    }
  }
  return dead;
}

void PeerLiveness::merge_deadline(const Channel& channel,
                                  std::optional<std::int64_t>& earliest) const {
  if (!channel.active) return;
  const std::int64_t next =
      std::min(channel.last_send + config_.interval_ns,
               channel.last_recv + config_.timeout_ns);
  if (!earliest || next < *earliest) earliest = next;
}

std::optional<std::int64_t> PeerLiveness::next_deadline() const {
  std::optional<std::int64_t> earliest;
  merge_deadline(parent_, earliest);
  for (const Channel& child : children_) merge_deadline(child, earliest);
  return earliest;
}

}  // namespace tbon
