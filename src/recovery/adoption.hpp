// Orphan re-adoption: reconnecting a subtree whose parent died.
//
// When a communication process fails, its children are orphaned.  Instead of
// amputating the subtree (the pre-recovery behaviour), each orphan climbs to
// its nearest live ancestor and re-attaches there, carrying the set of
// back-end ranks its subtree serves so the adopter can recompute stream
// membership and peer-message routes (cf. TreeP, where subtree re-adoption
// is a first-class protocol operation).
//
//  * Threaded instantiation: the orphan's runtime swaps queue links — the
//    Network arbitrates via NodeRuntime::request_adopt.
//  * Multi-process instantiation: the front-end publishes a TCP rendezvous
//    port before spawning the tree; orphans reconnect there and introduce
//    themselves with an OrphanHello frame (RendezvousServer accepts and
//    hands the connection to the root runtime).
//
// RelinkableLink makes the swap transparent to application threads: a
// back-end handle keeps sending on the same Link object while the channel
// underneath is replaced mid-flight.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/runtime.hpp"
#include "transport/tcp.hpp"

namespace tbon {

/// A Link whose underlying channel can be atomically replaced (re-adoption).
/// send() on a dead channel blocks for up to `relink_wait` for a replacement
/// before giving up, so application sends issued during the recovery window
/// are retried on the new parent instead of being dropped.
class RelinkableLink final : public Link {
 public:
  explicit RelinkableLink(std::shared_ptr<Link> inner,
                          std::chrono::milliseconds relink_wait =
                              std::chrono::milliseconds(10'000))
      : inner_(std::move(inner)), relink_wait_(relink_wait) {}

  bool send(const PacketPtr& packet) override;
  bool flush() override;
  void close() override;

  /// Swap in a fresh channel to the new parent; wakes blocked senders.
  void relink(std::shared_ptr<Link> inner);

 private:
  std::mutex mutex_;
  std::condition_variable relinked_;
  std::shared_ptr<Link> inner_;
  std::uint64_t generation_ = 0;
  bool closed_ = false;
  const std::chrono::milliseconds relink_wait_;
};

/// First frame an orphan sends on a rendezvous connection: who it is and
/// which back-end ranks its subtree serves.
struct OrphanHello {
  std::uint32_t node = 0;
  std::vector<std::uint32_t> ranks;
};

Bytes encode_orphan_hello(const OrphanHello& hello);
OrphanHello decode_orphan_hello(std::span<const std::byte> bytes);

/// Front-end side of the multi-process re-adoption protocol: a TCP listener
/// on an ephemeral loopback port whose acceptor thread reads each orphan's
/// hello and hands (connection, hello) to the adoption callback.
class RendezvousServer {
 public:
  using AdoptFn = std::function<void(Fd connection, const OrphanHello& hello)>;

  RendezvousServer() = default;
  /// Bind an explicit host:port (port 0 = ephemeral) so orphans on other
  /// hosts can reach the rendezvous (the remote instantiation).
  explicit RendezvousServer(const TcpEndpoint& endpoint) : listener_(endpoint) {}
  ~RendezvousServer() { stop(); }

  RendezvousServer(const RendezvousServer&) = delete;
  RendezvousServer& operator=(const RendezvousServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }
  /// Raw listening fd, so forked children can close their inherited copy.
  int listener_fd() const noexcept { return listener_.fd(); }

  /// Launch the acceptor thread.  Must be called after any fork (threads do
  /// not survive fork); the listener itself binds at construction so the
  /// port is known before children are spawned.
  void start(AdoptFn on_orphan);

  /// Stop accepting and join the acceptor thread (idempotent).
  void stop();

 private:
  void accept_loop();

  TcpListener listener_;
  AdoptFn on_orphan_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

/// Orphan side: connect to the rendezvous endpoint — retrying with capped
/// exponential backoff while the front-end is busy adopting siblings — and
/// send the hello frame.  Returns the connected socket; throws
/// TransportError once the timeout elapses.
Fd orphan_reconnect(const TcpEndpoint& endpoint, const OrphanHello& hello,
                    int timeout_ms = 10'000);

/// Loopback convenience overload (the multi-process instantiation).
Fd orphan_reconnect(std::uint16_t port, const OrphanHello& hello);

}  // namespace tbon
