// Heartbeat / liveness layer for every tree channel.
//
// The TBON (paper §2) degrades a subtree only when a peer's channel reports
// EOF.  A hung or silently partitioned peer never reports EOF, so this
// module adds a bound on detection latency: every channel carries liveness
// information, piggybacked on ordinary data traffic and supplemented by
// explicit heartbeat packets when a channel has been idle for longer than
// the configured interval.  A peer that has been silent for longer than the
// configured timeout is declared dead, which triggers the same degradation
// and re-adoption machinery as an EOF (see adoption.hpp).
//
// PeerLiveness is pure bookkeeping — no threads, no clocks of its own; the
// owning NodeRuntime feeds it monotonic timestamps (common/timer.hpp) from
// its event loop, which makes it unit-testable with synthetic time.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace tbon {

/// Detection parameters.  Disabled (all zero) by default: heartbeats cost a
/// wakeup per interval per channel, so they are strictly opt-in.
struct HeartbeatConfig {
  std::int64_t interval_ns = 0;  ///< send a heartbeat after this much idle time
  std::int64_t timeout_ns = 0;   ///< declare a silent peer dead after this long

  bool enabled() const noexcept { return interval_ns > 0 && timeout_ns > 0; }
};

/// Per-peer liveness state for one node: the parent channel plus one entry
/// per child slot.  "recv" is any traffic from the peer (data, control or
/// heartbeat — piggybacking); "send" is any traffic we pushed toward it.
class PeerLiveness {
 public:
  PeerLiveness(const HeartbeatConfig& config, bool has_parent,
               std::size_t num_children, std::int64_t now);

  // ---- event feed ----------------------------------------------------------
  void note_recv_parent(std::int64_t now);
  void note_send_parent(std::int64_t now);
  void note_recv_child(std::uint32_t slot, std::int64_t now);
  void note_send_child(std::uint32_t slot, std::int64_t now);

  /// Start tracking a (possibly dynamic) child slot; idempotent.
  void ensure_child(std::uint32_t slot, std::int64_t now);
  /// Stop tracking a child (EOF seen or declared dead).
  void drop_child(std::uint32_t slot);
  /// Restart the parent channel clock (after re-adoption).
  void reset_parent(std::int64_t now);
  /// Stop tracking the parent channel (orphaned with no re-adoption).
  void drop_parent();

  // ---- queries -------------------------------------------------------------
  bool parent_tracked() const noexcept { return parent_.active; }
  bool parent_heartbeat_due(std::int64_t now) const;
  bool parent_timed_out(std::int64_t now) const;
  /// Tracked child slots whose send side is idle past the interval.
  std::vector<std::uint32_t> children_heartbeat_due(std::int64_t now) const;
  /// Tracked child slots silent for longer than the timeout.
  std::vector<std::uint32_t> timed_out_children(std::int64_t now) const;

  /// Earliest future instant at which a heartbeat becomes due or a peer
  /// would time out; nullopt when nothing is tracked.
  std::optional<std::int64_t> next_deadline() const;

 private:
  struct Channel {
    std::int64_t last_recv = 0;
    std::int64_t last_send = 0;
    bool active = false;
  };

  void merge_deadline(const Channel& channel,
                      std::optional<std::int64_t>& earliest) const;

  HeartbeatConfig config_;
  Channel parent_;
  std::vector<Channel> children_;
};

}  // namespace tbon
