#include "recovery/adoption.hpp"

#include "common/log.hpp"

namespace tbon {

// ---- RelinkableLink ---------------------------------------------------------

bool RelinkableLink::send(const PacketPtr& packet) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    if (closed_) return false;
    const std::shared_ptr<Link> inner = inner_;
    const std::uint64_t generation = generation_;
    lock.unlock();
    // The underlying send may block (bounded queue, kernel buffer); never
    // hold our mutex across it or relink() would deadlock with senders.
    if (inner->send(packet)) return true;
    lock.lock();
    if (generation_ != generation) continue;  // already relinked: retry now
    const bool swapped = relinked_.wait_for(
        lock, relink_wait_, [&] { return closed_ || generation_ != generation; });
    if (!swapped || closed_) return false;
  }
}

bool RelinkableLink::flush() {
  std::shared_ptr<Link> inner;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return false;
    inner = inner_;
  }
  return inner ? inner->flush() : true;
}

void RelinkableLink::close() {
  std::shared_ptr<Link> inner;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    inner = inner_;
  }
  relinked_.notify_all();
  if (inner) inner->close();
}

void RelinkableLink::relink(std::shared_ptr<Link> inner) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      if (inner) inner->close();
      return;
    }
    inner_ = std::move(inner);
    ++generation_;
  }
  relinked_.notify_all();
}

// ---- hello codec ------------------------------------------------------------

Bytes encode_orphan_hello(const OrphanHello& hello) {
  BinaryWriter writer;
  writer.put(hello.node);
  writer.put_vector<std::uint32_t>(hello.ranks);
  return writer.take();
}

OrphanHello decode_orphan_hello(std::span<const std::byte> bytes) {
  BinaryReader reader(bytes);
  OrphanHello hello;
  hello.node = reader.get<std::uint32_t>();
  hello.ranks = reader.get_vector<std::uint32_t>();
  return hello;
}

// ---- RendezvousServer -------------------------------------------------------

void RendezvousServer::start(AdoptFn on_orphan) {
  on_orphan_ = std::move(on_orphan);
  thread_ = std::thread([this] { accept_loop(); });
}

void RendezvousServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    Fd connection;
    try {
      connection = listener_.accept();
    } catch (const std::exception& error) {
      if (!stopping_.load(std::memory_order_acquire)) {
        TBON_WARN("rendezvous accept failed: " << error.what());
      }
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) return;
    try {
      const auto frame = read_frame(connection.get());
      if (!frame) continue;  // peer vanished before introducing itself
      const OrphanHello hello = decode_orphan_hello(*frame);
      TBON_INFO("rendezvous: adopting orphan node " << hello.node << " serving "
                                                    << hello.ranks.size()
                                                    << " back-end rank(s)");
      on_orphan_(std::move(connection), hello);
    } catch (const std::exception& error) {
      TBON_WARN("rendezvous: dropping bad orphan connection: " << error.what());
    }
  }
}

void RendezvousServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) {
    // Wake the blocking accept() with a throwaway self-connection.
    try {
      Fd wake = tcp_connect(listener_.port());
    } catch (const std::exception&) {
      // Listener already unusable; the acceptor will exit on its own error.
    }
    thread_.join();
  }
  listener_.close();
}

// ---- orphan client ----------------------------------------------------------

Fd orphan_reconnect(const TcpEndpoint& endpoint, const OrphanHello& hello,
                    int timeout_ms) {
  Fd connection = tcp_connect(endpoint, timeout_ms);
  write_frame(connection.get(), encode_orphan_hello(hello));
  return connection;
}

Fd orphan_reconnect(std::uint16_t port, const OrphanHello& hello) {
  return orphan_reconnect(TcpEndpoint{.host = "127.0.0.1", .port = port}, hello);
}

}  // namespace tbon
