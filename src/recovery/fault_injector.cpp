#include "recovery/fault_injector.hpp"

#include <algorithm>

namespace tbon {

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  std::vector<std::uint32_t> nodes;
  for (const FaultSpec& spec : plan_.faults) nodes.push_back(spec.node);
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  states_.reserve(nodes.size());
  for (const std::uint32_t node : nodes) {
    states_.emplace_back(node, std::make_unique<NodeState>());
  }
}

FaultInjector::NodeState* FaultInjector::state_for(std::uint32_t node) const {
  const auto it = std::lower_bound(
      states_.begin(), states_.end(), node,
      [](const auto& entry, std::uint32_t id) { return entry.first < id; });
  if (it == states_.end() || it->first != node) return nullptr;
  return it->second.get();
}

FaultAction FaultInjector::on_data_packet(std::uint32_t node) {
  NodeState* state = state_for(node);
  if (state == nullptr) return FaultAction::kNone;
  const std::uint64_t count =
      state->data_packets.fetch_add(1, std::memory_order_relaxed) + 1;
  for (const FaultSpec& spec : plan_.faults) {
    if (spec.node != node || count != spec.after_packets) continue;
    switch (spec.kind) {
      case FaultKind::kKillAfterPackets:
        state->killed.store(true, std::memory_order_relaxed);
        return FaultAction::kKill;
      case FaultKind::kMuteAfterPackets:
        state->muted.store(true, std::memory_order_relaxed);
        break;
      case FaultKind::kDelaySends:
        break;  // delay is unconditional, not packet-count-triggered
    }
  }
  return FaultAction::kNone;
}

bool FaultInjector::sends_muted(std::uint32_t node) const {
  const NodeState* state = state_for(node);
  return state != nullptr && state->muted.load(std::memory_order_relaxed);
}

std::int64_t FaultInjector::send_delay_ns(std::uint32_t node) const {
  if (state_for(node) == nullptr) return 0;
  for (const FaultSpec& spec : plan_.faults) {
    if (spec.node == node && spec.kind == FaultKind::kDelaySends) {
      return spec.delay_ns;
    }
  }
  return 0;
}

std::uint64_t FaultInjector::data_packets(std::uint32_t node) const {
  const NodeState* state = state_for(node);
  return state == nullptr ? 0 : state->data_packets.load(std::memory_order_relaxed);
}

}  // namespace tbon
