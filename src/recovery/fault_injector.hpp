// Deterministic fault injection for recovery testing.
//
// Timing-based failure tests are inherently flaky; this harness instead
// trips faults at exact points in the packet flow: "node 3 crashes after
// processing its 4th data packet", "node 1 goes mute (simulated hang) after
// its 2nd", "node 2 delays every send by 1 ms".  Both network
// instantiations consult one FaultInjector from their NodeRuntime event
// loops; in the multi-process instantiation every process builds its own
// injector from the same inherited FaultPlan, so the per-node counters are
// naturally per-process and the semantics are identical.
//
// Counters only advance on *data* packets (stream id != control stream):
// control traffic and heartbeats vary with timing, data waves do not, which
// is what makes kill-at-packet-N reproducible in CI.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace tbon {

enum class FaultKind : std::uint8_t {
  kKillAfterPackets,  ///< crash abruptly when the Nth data packet arrives
  kMuteAfterPackets,  ///< keep running but drop every send (simulated hang)
  kDelaySends,        ///< sleep delay_ns before every send
};

/// One planned fault at one node.
struct FaultSpec {
  std::uint32_t node = 0;
  FaultKind kind = FaultKind::kKillAfterPackets;
  std::uint64_t after_packets = 1;  ///< trip on the Nth data packet (1-based)
  std::int64_t delay_ns = 0;        ///< kDelaySends only
};

/// A reproducible failure scenario: an ordered list of faults.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  bool empty() const noexcept { return faults.empty(); }

  FaultPlan& kill(std::uint32_t node, std::uint64_t after_packets) {
    faults.push_back({node, FaultKind::kKillAfterPackets, after_packets, 0});
    return *this;
  }
  FaultPlan& mute(std::uint32_t node, std::uint64_t after_packets) {
    faults.push_back({node, FaultKind::kMuteAfterPackets, after_packets, 0});
    return *this;
  }
  FaultPlan& delay(std::uint32_t node, std::int64_t delay_ns) {
    faults.push_back({node, FaultKind::kDelaySends, 0, delay_ns});
    return *this;
  }
};

/// What the runtime must do with the data packet it is about to process.
enum class FaultAction : std::uint8_t { kNone, kKill };

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Count one data packet at `node`; returns kKill when a planned crash
  /// trips (the caller must drop the packet and die without handshakes).
  FaultAction on_data_packet(std::uint32_t node);

  /// True once a mute fault has tripped at `node`: all its sends (including
  /// heartbeats and shutdown acks) must be silently dropped.
  bool sends_muted(std::uint32_t node) const;

  /// Per-send delay for `node`, or 0.
  std::int64_t send_delay_ns(std::uint32_t node) const;

  /// Data packets counted at `node` so far (test introspection).
  std::uint64_t data_packets(std::uint32_t node) const;

 private:
  struct NodeState {
    std::atomic<std::uint64_t> data_packets{0};
    std::atomic<bool> muted{false};
    std::atomic<bool> killed{false};
  };

  NodeState* state_for(std::uint32_t node) const;

  FaultPlan plan_;
  // One entry per node mentioned in the plan, id-sorted, fixed after
  // construction — lock-free lookup from every node thread.
  std::vector<std::pair<std::uint32_t, std::unique_ptr<NodeState>>> states_;
};

}  // namespace tbon
