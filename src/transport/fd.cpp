#include "transport/fd.hpp"

#include <limits.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace tbon {
namespace {

std::string errno_string() { return std::strerror(errno); }

/// Write the whole buffer, retrying on EINTR and short writes.  Uses
/// send(MSG_NOSIGNAL) so that writing to a crashed peer surfaces as EPIPE
/// (-> TransportError, handled by the links) instead of a fatal SIGPIPE.
void write_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + written, size - written);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError("write failed: " + errno_string());
    }
    written += static_cast<std::size_t>(n);
  }
}

/// read() exactly `size` bytes; false on clean EOF at a frame boundary.
bool read_all(int fd, std::byte* data, std::size_t size) {
  std::size_t consumed = 0;
  while (consumed < size) {
    const ssize_t n = ::read(fd, data + consumed, size - consumed);
    if (n < 0) {
      if (errno == EINTR) continue;
      // ECONNRESET from a dead peer is EOF for our purposes.
      if (errno == ECONNRESET) return false;
      throw TransportError("read failed: " + errno_string());
    }
    if (n == 0) {
      if (consumed == 0) return false;  // orderly EOF between frames
      throw TransportError("EOF inside a frame");
    }
    consumed += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Fd, Fd> make_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw TransportError("socketpair failed: " + errno_string());
  }
  return {Fd(fds[0]), Fd(fds[1])};
}

void write_frame(int fd, std::span<const std::byte> payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::byte header[4];
  std::memcpy(header, &length, 4);
  write_all(fd, header, 4);
  write_all(fd, payload.data(), payload.size());
}

void write_frame_segments(int fd, std::span<const SegmentWriter::Segment> segments,
                          std::size_t total) {
  const auto length = static_cast<std::uint32_t>(total);
  std::byte header[4];
  std::memcpy(header, &length, 4);

  std::vector<iovec> iov;
  iov.reserve(segments.size() + 1);
  iov.push_back({header, 4});
  for (const SegmentWriter::Segment& seg : segments) {
    iov.push_back({const_cast<std::byte*>(seg.data), seg.size});
  }

  std::size_t next = 0;
  while (next < iov.size()) {
    msghdr msg{};
    msg.msg_iov = iov.data() + next;
    msg.msg_iovlen = std::min<std::size_t>(iov.size() - next, IOV_MAX);
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::writev(fd, msg.msg_iov, static_cast<int>(msg.msg_iovlen));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError("writev failed: " + errno_string());
    }
    // Skip fully-written iovecs; trim a partially-written one in place.
    auto advanced = static_cast<std::size_t>(n);
    while (next < iov.size() && advanced >= iov[next].iov_len) {
      advanced -= iov[next].iov_len;
      ++next;
    }
    if (next < iov.size() && advanced > 0) {
      iov[next].iov_base = static_cast<char*>(iov[next].iov_base) + advanced;
      iov[next].iov_len -= advanced;
    }
  }
}

std::optional<Bytes> read_frame(int fd) {
  std::byte header[4];
  if (!read_all(fd, header, 4)) return std::nullopt;
  std::uint32_t length = 0;
  std::memcpy(&length, header, 4);
  constexpr std::uint32_t kMaxFrame = 1u << 30;
  if (length > kMaxFrame) throw TransportError("oversized frame");
  Bytes payload(length);
  if (length > 0 && !read_all(fd, payload.data(), length)) {
    throw TransportError("EOF inside a frame body");
  }
  return payload;
}

void shutdown_write(int fd) noexcept { ::shutdown(fd, SHUT_WR); }

void set_socket_buffers(int fd, std::size_t bytes) noexcept {
  const int size = static_cast<int>(
      std::min<std::size_t>(bytes, std::numeric_limits<int>::max()));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &size, sizeof(size));
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &size, sizeof(size));
}

}  // namespace tbon
