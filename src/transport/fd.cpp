#include "transport/fd.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace tbon {
namespace {

std::string errno_string() { return std::strerror(errno); }

/// Write the whole buffer, retrying on EINTR and short writes.  Uses
/// send(MSG_NOSIGNAL) so that writing to a crashed peer surfaces as EPIPE
/// (-> TransportError, handled by the links) instead of a fatal SIGPIPE.
void write_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    ssize_t n = ::send(fd, data + written, size - written, MSG_NOSIGNAL);
    if (n < 0 && errno == ENOTSOCK) {
      n = ::write(fd, data + written, size - written);
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      throw TransportError("write failed: " + errno_string());
    }
    written += static_cast<std::size_t>(n);
  }
}

/// read() exactly `size` bytes; false on clean EOF at a frame boundary.
bool read_all(int fd, std::byte* data, std::size_t size) {
  std::size_t consumed = 0;
  while (consumed < size) {
    const ssize_t n = ::read(fd, data + consumed, size - consumed);
    if (n < 0) {
      if (errno == EINTR) continue;
      // ECONNRESET from a dead peer is EOF for our purposes.
      if (errno == ECONNRESET) return false;
      throw TransportError("read failed: " + errno_string());
    }
    if (n == 0) {
      if (consumed == 0) return false;  // orderly EOF between frames
      throw TransportError("EOF inside a frame");
    }
    consumed += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void Fd::reset() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Fd, Fd> make_socketpair() {
  int fds[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) != 0) {
    throw TransportError("socketpair failed: " + errno_string());
  }
  return {Fd(fds[0]), Fd(fds[1])};
}

void write_frame(int fd, std::span<const std::byte> payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::byte header[4];
  std::memcpy(header, &length, 4);
  write_all(fd, header, 4);
  write_all(fd, payload.data(), payload.size());
}

std::optional<Bytes> read_frame(int fd) {
  std::byte header[4];
  if (!read_all(fd, header, 4)) return std::nullopt;
  std::uint32_t length = 0;
  std::memcpy(&length, header, 4);
  constexpr std::uint32_t kMaxFrame = 1u << 30;
  if (length > kMaxFrame) throw TransportError("oversized frame");
  Bytes payload(length);
  if (length > 0 && !read_all(fd, payload.data(), length)) {
    throw TransportError("EOF inside a frame body");
  }
  return payload;
}

void shutdown_write(int fd) noexcept { ::shutdown(fd, SHUT_WR); }

}  // namespace tbon
