// Byte-level OS transport: RAII file descriptors, socketpair channels and
// length-prefixed frame I/O.
//
// MRNet connects its communication processes with TCP; our multi-process
// instantiation runs on one host, so each tree edge is a Unix socketpair —
// the same kernel-buffered, back-pressured FIFO byte stream semantics
// without needing remote spawn (see DESIGN.md §5).  A localhost TCP path is
// provided in tcp.hpp for fidelity to the paper's transport.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>

#include "common/archive.hpp"
#include "common/buffer.hpp"

namespace tbon {

/// RAII wrapper around a file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) noexcept : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const noexcept { return fd_; }
  bool valid() const noexcept { return fd_ >= 0; }
  int release() noexcept { return std::exchange(fd_, -1); }
  void reset() noexcept;

 private:
  int fd_ = -1;
};

/// Create a connected pair of stream sockets (AF_UNIX, SOCK_STREAM).
std::pair<Fd, Fd> make_socketpair();

/// Write a length-prefixed frame; throws TransportError on failure.
void write_frame(int fd, std::span<const std::byte> payload);

/// Write a length-prefixed frame from a scatter-gather segment list in one
/// writev/sendmsg call (no coalescing copy); `total` must equal the summed
/// segment sizes.  Throws TransportError on failure.
void write_frame_segments(int fd, std::span<const SegmentWriter::Segment> segments,
                          std::size_t total);

/// Read one length-prefixed frame; nullopt on orderly EOF, throws on error.
std::optional<Bytes> read_frame(int fd);

/// Shut down the write side so the peer's read_frame sees EOF.
void shutdown_write(int fd) noexcept;

/// Best-effort SO_SNDBUF/SO_RCVBUF sizing.  With credit-based flow control
/// the kernel buffers only need to absorb one credit window; without a
/// clamp their defaults add an invisible, unaccounted queue on every edge.
/// Errors are ignored (the kernel may round or refuse).
void set_socket_buffers(int fd, std::size_t bytes) noexcept;

}  // namespace tbon
