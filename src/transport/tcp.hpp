// TCP transport — the wire MRNet actually uses.
//
// The multi-process launcher defaults to socketpairs (no ports to manage),
// but this module lets tests, examples and the remote instantiation run
// edges over real TCP sockets: a listener (loopback-ephemeral by default,
// or bound to an explicit host:port for multi-host trees), plus
// connect/accept helpers.  Frames use the same length-prefix codec as
// fd.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "transport/fd.hpp"

namespace tbon {

/// A resolvable TCP address.  `host` accepts dotted quads or names
/// ("127.0.0.1", "localhost", "node7.cluster"); resolution happens at
/// connect/bind time via getaddrinfo.
struct TcpEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;

  std::string to_string() const { return host + ":" + std::to_string(port); }
};

/// Parse "host:port", "host" (-> default_port) or ":port" (-> default
/// host).  Throws ParseError on a malformed port.
TcpEndpoint parse_endpoint(std::string_view spec, std::uint16_t default_port = 0);

/// Listening TCP socket.  The default constructor binds 127.0.0.1 on an
/// ephemeral port (the historical rendezvous behaviour); the endpoint
/// constructor binds an explicit host:port (port 0 still means ephemeral).
class TcpListener {
 public:
  TcpListener();
  explicit TcpListener(const TcpEndpoint& endpoint);

  /// The port the OS assigned (== the requested port unless it was 0).
  std::uint16_t port() const noexcept { return port_; }

  /// The raw listening fd (so forked children can close their inherited
  /// copy); -1 after close().
  int fd() const noexcept { return socket_.get(); }

  /// Block until a client connects; returns the connected socket.
  Fd accept();

  /// Like accept(), but gives up after `timeout_ms`; returns an invalid Fd
  /// on timeout.
  Fd accept_for(int timeout_ms);

  /// Close the listening socket (e.g. in a forked child that must only
  /// connect, never accept).
  void close() noexcept { socket_.reset(); }

 private:
  void bind_and_listen(const TcpEndpoint& endpoint);

  Fd socket_;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port; single attempt, throws TransportError on
/// failure (callers that need to ride out a not-yet-listening peer use the
/// endpoint overload below).
Fd tcp_connect(std::uint16_t port);

/// Connect to an endpoint, retrying transient failures (ECONNREFUSED,
/// unreachable networks, kernel backlog overflow) with capped exponential
/// backoff — 1 ms doubling to a 200 ms cap — until `timeout_ms` elapses.
/// `timeout_ms == 0` means a single attempt.  Throws TransportError once
/// the deadline passes or on a non-transient error.
Fd tcp_connect(const TcpEndpoint& endpoint, int timeout_ms = 10'000);

}  // namespace tbon
