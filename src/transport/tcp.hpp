// Localhost TCP transport — the wire MRNet actually uses.
//
// The multi-process launcher defaults to socketpairs (no ports to manage),
// but this module lets tests and examples run edges over real TCP sockets:
// a listener on an ephemeral port, plus connect/accept helpers.  Frames use
// the same length-prefix codec as fd.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "transport/fd.hpp"

namespace tbon {

/// Listening TCP socket bound to 127.0.0.1 on an ephemeral port.
class TcpListener {
 public:
  TcpListener();

  /// The port the OS assigned.
  std::uint16_t port() const noexcept { return port_; }

  /// The raw listening fd (so forked children can close their inherited
  /// copy); -1 after close().
  int fd() const noexcept { return socket_.get(); }

  /// Block until a client connects; returns the connected socket.
  Fd accept();

  /// Close the listening socket (e.g. in a forked child that must only
  /// connect, never accept).
  void close() noexcept { socket_.reset(); }

 private:
  Fd socket_;
  std::uint16_t port_ = 0;
};

/// Connect to 127.0.0.1:port; throws TransportError on failure.
Fd tcp_connect(std::uint16_t port);

}  // namespace tbon
