#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace tbon {
namespace {

std::string errno_string() { return std::strerror(errno); }

void enable_nodelay(int fd) {
  // Small control packets should not wait for Nagle coalescing.
  int flag = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
}

/// Resolve host -> IPv4 sockaddr_in.  Throws TransportError on failure.
sockaddr_in resolve(const std::string& host, std::uint16_t port) {
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (host.empty() || host == "localhost") {
    address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    return address;
  }
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) == 1) return address;

  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &results);
  if (rc != 0 || results == nullptr) {
    throw TransportError("cannot resolve host '" + host +
                         "': " + ::gai_strerror(rc));
  }
  address.sin_addr = reinterpret_cast<sockaddr_in*>(results->ai_addr)->sin_addr;
  ::freeaddrinfo(results);
  return address;
}

/// Failures worth retrying while the peer's listener is (re)starting.
bool transient_connect_error(int err) {
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case ETIMEDOUT:
    case EHOSTUNREACH:
    case ENETUNREACH:
    case EAGAIN:
      return true;
    default:
      return false;
  }
}

Fd connect_once(const sockaddr_in& address) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw TransportError("socket failed: " + errno_string());
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address)) != 0) {
    if (errno != EINTR) return Fd();  // caller decides retry vs throw
  }
  enable_nodelay(fd.get());
  return fd;
}

}  // namespace

TcpEndpoint parse_endpoint(std::string_view spec, std::uint16_t default_port) {
  TcpEndpoint endpoint;
  endpoint.port = default_port;
  const std::size_t colon = spec.rfind(':');
  std::string_view host = spec;
  if (colon != std::string_view::npos) {
    host = spec.substr(0, colon);
    const std::string_view digits = spec.substr(colon + 1);
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value);
    if (ec != std::errc{} || ptr != digits.data() + digits.size() ||
        value > 65535) {
      throw ParseError("bad port in endpoint '" + std::string(spec) + "'");
    }
    endpoint.port = static_cast<std::uint16_t>(value);
  }
  if (!host.empty()) endpoint.host = std::string(host);
  return endpoint;
}

TcpListener::TcpListener() { bind_and_listen({.host = "127.0.0.1", .port = 0}); }

TcpListener::TcpListener(const TcpEndpoint& endpoint) { bind_and_listen(endpoint); }

void TcpListener::bind_and_listen(const TcpEndpoint& endpoint) {
  socket_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket_.valid()) throw TransportError("socket failed: " + errno_string());

  int reuse = 1;
  ::setsockopt(socket_.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  const sockaddr_in address = resolve(endpoint.host, endpoint.port);
  if (::bind(socket_.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    const int err = errno;
    std::string message = "bind to " + endpoint.host + ":" +
                          std::to_string(endpoint.port) +
                          " failed: " + std::strerror(err);
    if (err == EADDRINUSE) {
      message += " (port " + std::to_string(endpoint.port) +
                 " is already in use)";
    }
    throw TransportError(message);
  }
  if (::listen(socket_.get(), 128) != 0) {
    throw TransportError("listen failed: " + errno_string());
  }
  sockaddr_in bound{};
  socklen_t length = sizeof(bound);
  if (::getsockname(socket_.get(), reinterpret_cast<sockaddr*>(&bound), &length) != 0) {
    throw TransportError("getsockname failed: " + errno_string());
  }
  port_ = ntohs(bound.sin_port);
}

Fd TcpListener::accept() {
  while (true) {
    const int fd = ::accept(socket_.get(), nullptr, nullptr);
    if (fd >= 0) {
      enable_nodelay(fd);
      return Fd(fd);
    }
    if (errno != EINTR) throw TransportError("accept failed: " + errno_string());
  }
}

Fd TcpListener::accept_for(int timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) return Fd();
    pollfd waiter{.fd = socket_.get(), .events = POLLIN, .revents = 0};
    const int ready = ::poll(&waiter, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw TransportError("poll failed: " + errno_string());
    }
    if (ready == 0) return Fd();  // timeout
    const int fd = ::accept(socket_.get(), nullptr, nullptr);
    if (fd >= 0) {
      enable_nodelay(fd);
      return Fd(fd);
    }
    if (errno != EINTR && errno != EAGAIN && errno != ECONNABORTED) {
      throw TransportError("accept failed: " + errno_string());
    }
  }
}

Fd tcp_connect(std::uint16_t port) {
  const sockaddr_in address = resolve("127.0.0.1", port);
  Fd fd = connect_once(address);
  if (!fd.valid()) throw TransportError("connect failed: " + errno_string());
  return fd;
}

Fd tcp_connect(const TcpEndpoint& endpoint, int timeout_ms) {
  const sockaddr_in address = resolve(endpoint.host, endpoint.port);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  // Capped exponential backoff: 1 ms doubling to 200 ms.  A freshly exec'd
  // peer whose listener is not up yet refuses the first attempts; a fixed
  // sleep either wastes the common fast case or thrashes the slow one.
  std::chrono::milliseconds backoff{1};
  constexpr std::chrono::milliseconds kBackoffCap{200};
  while (true) {
    Fd fd = connect_once(address);
    if (fd.valid()) return fd;
    const int err = errno;
    if (!transient_connect_error(err) ||
        std::chrono::steady_clock::now() + backoff > deadline) {
      throw TransportError("connect to " + endpoint.to_string() +
                           " failed: " + std::strerror(err));
    }
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, kBackoffCap);
  }
}

}  // namespace tbon
