#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/error.hpp"

namespace tbon {
namespace {

std::string errno_string() { return std::strerror(errno); }

void enable_nodelay(int fd) {
  // Small control packets should not wait for Nagle coalescing.
  int flag = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &flag, sizeof(flag));
}

}  // namespace

TcpListener::TcpListener() {
  socket_ = Fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket_.valid()) throw TransportError("socket failed: " + errno_string());

  int reuse = 1;
  ::setsockopt(socket_.get(), SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = 0;  // ephemeral
  if (::bind(socket_.get(), reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0) {
    throw TransportError("bind failed: " + errno_string());
  }
  if (::listen(socket_.get(), 128) != 0) {
    throw TransportError("listen failed: " + errno_string());
  }
  socklen_t length = sizeof(address);
  if (::getsockname(socket_.get(), reinterpret_cast<sockaddr*>(&address), &length) != 0) {
    throw TransportError("getsockname failed: " + errno_string());
  }
  port_ = ntohs(address.sin_port);
}

Fd TcpListener::accept() {
  while (true) {
    const int fd = ::accept(socket_.get(), nullptr, nullptr);
    if (fd >= 0) {
      enable_nodelay(fd);
      return Fd(fd);
    }
    if (errno != EINTR) throw TransportError("accept failed: " + errno_string());
  }
}

Fd tcp_connect(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw TransportError("socket failed: " + errno_string());

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  address.sin_port = htons(port);
  while (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&address),
                   sizeof(address)) != 0) {
    if (errno != EINTR) throw TransportError("connect failed: " + errno_string());
  }
  enable_nodelay(fd.get());
  return fd;
}

}  // namespace tbon
