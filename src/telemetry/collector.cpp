#include "telemetry/collector.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace tbon {
namespace {

void accumulate(NodeTelemetry& total, const NodeTelemetry& r) {
  total.packets_up += r.packets_up;
  total.packets_down += r.packets_down;
  total.bytes_up += r.bytes_up;
  total.bytes_down += r.bytes_down;
  total.waves += r.waves;
  total.filter_ns += r.filter_ns;
  total.telemetry_packets += r.telemetry_packets;
  total.heartbeats_sent += r.heartbeats_sent;
  total.heartbeats_received += r.heartbeats_received;
  total.peer_messages_routed += r.peer_messages_routed;
  total.packets_dropped += r.packets_dropped;
  total.orphaned_events += r.orphaned_events;
  total.adoptions += r.adoptions;
  total.faults_injected += r.faults_injected;
  total.wire_bytes_out += r.wire_bytes_out;
  total.wire_bytes_in += r.wire_bytes_in;
  total.fc_sends_blocked += r.fc_sends_blocked;
  total.fc_blocked_ns += r.fc_blocked_ns;
  total.fc_packets_shed += r.fc_packets_shed;
  total.fc_credits_consumed += r.fc_credits_consumed;
  total.fc_credits_granted += r.fc_credits_granted;
  total.fc_invalid_grants += r.fc_invalid_grants;
  total.exec_tasks += r.exec_tasks;
  total.exec_task_ns += r.exec_task_ns;
  total.exec_inline += r.exec_inline;
  total.filter_custom_events += r.filter_custom_events;
  total.net_accepts += r.net_accepts;
  total.net_connects += r.net_connects;
  total.net_handshakes_failed += r.net_handshakes_failed;
  total.net_reconnects += r.net_reconnects;
  total.net_frames_in += r.net_frames_in;
  total.net_frames_out += r.net_frames_out;
  total.net_partial_writes += r.net_partial_writes;
  total.net_wakeups += r.net_wakeups;
  total.batch_frames_out += r.batch_frames_out;
  total.batch_packets_out += r.batch_packets_out;
  total.batch_flush_size += r.batch_flush_size;
  total.batch_flush_deadline += r.batch_flush_deadline;
  total.batch_flush_pressure += r.batch_flush_pressure;
  total.batch_flush_eager += r.batch_flush_eager;
  total.batch_frames_in += r.batch_frames_in;
  total.batch_packets_in += r.batch_packets_in;
  total.batch_frames_rejected += r.batch_frames_rejected;
  total.inbox_depth += r.inbox_depth;
  total.sync_depth += r.sync_depth;
  total.fc_inflight_peak = std::max(total.fc_inflight_peak, r.fc_inflight_peak);
  total.fc_pending_depth += r.fc_pending_depth;
  total.exec_workers += r.exec_workers;
  total.exec_queue_depth += r.exec_queue_depth;
  total.exec_queue_peak = std::max(total.exec_queue_peak, r.exec_queue_peak);
  total.heartbeat_rtt_ns = std::max(total.heartbeat_rtt_ns, r.heartbeat_rtt_ns);
  total.net_connections += r.net_connections;
  total.net_send_queue_peak =
      std::max(total.net_send_queue_peak, r.net_send_queue_peak);
  total.net_threads += r.net_threads;
  total.prio_drained_control += r.prio_drained_control;
  total.prio_drained_high += r.prio_drained_high;
  total.prio_drained_normal += r.prio_drained_normal;
  total.prio_drained_bulk += r.prio_drained_bulk;
  total.topic_packets_pruned += r.topic_packets_pruned;
  total.tenant_sends_throttled += r.tenant_sends_throttled;
  total.tenant_packets_shed += r.tenant_packets_shed;
  total.reconfig_ops += r.reconfig_ops;
  total.reconfig_ops_failed += r.reconfig_ops_failed;
  total.reconfig_joins += r.reconfig_joins;
  total.reconfig_detaches += r.reconfig_detaches;
  total.reconfig_moves += r.reconfig_moves;
  total.reconfig_splits += r.reconfig_splits;
  total.reconfig_merges += r.reconfig_merges;
  total.fc_weighted_grants += r.fc_weighted_grants;
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    total.filter_latency_hist[b] += r.filter_latency_hist[b];
  }
  for (std::size_t b = 0; b < kBatchBuckets; ++b) {
    total.batch_ppf_hist[b] += r.batch_ppf_hist[b];
  }
  // Tenant rollups merge by name so the tree-wide total reads as one row
  // per tenant regardless of which nodes carried its traffic.
  for (const TenantTelemetry& t : r.tenants) {
    auto it = std::find_if(total.tenants.begin(), total.tenants.end(),
                           [&](const TenantTelemetry& x) { return x.name == t.name; });
    if (it == total.tenants.end()) {
      total.tenants.push_back(t);
    } else {
      it->packets += t.packets;
      it->bytes += t.bytes;
      it->sends_throttled += t.sends_throttled;
      it->packets_shed += t.packets_shed;
    }
  }
}

void json_string(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void json_record(std::ostringstream& out, const NodeTelemetry& r) {
  out << "{\"node\":" << r.node << ",\"role\":" << static_cast<unsigned>(r.role)
      << ",\"seq\":" << r.seq << ",\"packets_up\":" << r.packets_up
      << ",\"packets_down\":" << r.packets_down << ",\"bytes_up\":" << r.bytes_up
      << ",\"bytes_down\":" << r.bytes_down << ",\"waves\":" << r.waves
      << ",\"filter_ns\":" << r.filter_ns
      << ",\"telemetry_packets\":" << r.telemetry_packets
      << ",\"heartbeats_sent\":" << r.heartbeats_sent
      << ",\"heartbeats_received\":" << r.heartbeats_received
      << ",\"peer_messages_routed\":" << r.peer_messages_routed
      << ",\"packets_dropped\":" << r.packets_dropped
      << ",\"orphaned_events\":" << r.orphaned_events
      << ",\"adoptions\":" << r.adoptions
      << ",\"faults_injected\":" << r.faults_injected
      << ",\"wire_bytes_out\":" << r.wire_bytes_out
      << ",\"wire_bytes_in\":" << r.wire_bytes_in
      << ",\"fc_sends_blocked\":" << r.fc_sends_blocked
      << ",\"fc_blocked_ns\":" << r.fc_blocked_ns
      << ",\"fc_packets_shed\":" << r.fc_packets_shed
      << ",\"fc_credits_consumed\":" << r.fc_credits_consumed
      << ",\"fc_credits_granted\":" << r.fc_credits_granted
      << ",\"fc_invalid_grants\":" << r.fc_invalid_grants
      << ",\"exec_tasks\":" << r.exec_tasks
      << ",\"exec_task_ns\":" << r.exec_task_ns
      << ",\"exec_inline\":" << r.exec_inline
      << ",\"filter_custom_events\":" << r.filter_custom_events
      << ",\"net_accepts\":" << r.net_accepts
      << ",\"net_connects\":" << r.net_connects
      << ",\"net_handshakes_failed\":" << r.net_handshakes_failed
      << ",\"net_reconnects\":" << r.net_reconnects
      << ",\"net_frames_in\":" << r.net_frames_in
      << ",\"net_frames_out\":" << r.net_frames_out
      << ",\"net_partial_writes\":" << r.net_partial_writes
      << ",\"net_wakeups\":" << r.net_wakeups
      << ",\"batch_frames_out\":" << r.batch_frames_out
      << ",\"batch_packets_out\":" << r.batch_packets_out
      << ",\"batch_flush_size\":" << r.batch_flush_size
      << ",\"batch_flush_deadline\":" << r.batch_flush_deadline
      << ",\"batch_flush_pressure\":" << r.batch_flush_pressure
      << ",\"batch_flush_eager\":" << r.batch_flush_eager
      << ",\"batch_frames_in\":" << r.batch_frames_in
      << ",\"batch_packets_in\":" << r.batch_packets_in
      << ",\"batch_frames_rejected\":" << r.batch_frames_rejected
      << ",\"inbox_depth\":" << r.inbox_depth
      << ",\"sync_depth\":" << r.sync_depth
      << ",\"fc_inflight_peak\":" << r.fc_inflight_peak
      << ",\"fc_pending_depth\":" << r.fc_pending_depth
      << ",\"exec_workers\":" << r.exec_workers
      << ",\"exec_queue_depth\":" << r.exec_queue_depth
      << ",\"exec_queue_peak\":" << r.exec_queue_peak
      << ",\"heartbeat_rtt_ns\":" << r.heartbeat_rtt_ns
      << ",\"net_connections\":" << r.net_connections
      << ",\"net_send_queue_peak\":" << r.net_send_queue_peak
      << ",\"net_threads\":" << r.net_threads
      << ",\"prio_drained_control\":" << r.prio_drained_control
      << ",\"prio_drained_high\":" << r.prio_drained_high
      << ",\"prio_drained_normal\":" << r.prio_drained_normal
      << ",\"prio_drained_bulk\":" << r.prio_drained_bulk
      << ",\"topic_packets_pruned\":" << r.topic_packets_pruned
      << ",\"tenant_sends_throttled\":" << r.tenant_sends_throttled
      << ",\"tenant_packets_shed\":" << r.tenant_packets_shed
      << ",\"reconfig_ops\":" << r.reconfig_ops
      << ",\"reconfig_ops_failed\":" << r.reconfig_ops_failed
      << ",\"reconfig_joins\":" << r.reconfig_joins
      << ",\"reconfig_detaches\":" << r.reconfig_detaches
      << ",\"reconfig_moves\":" << r.reconfig_moves
      << ",\"reconfig_splits\":" << r.reconfig_splits
      << ",\"reconfig_merges\":" << r.reconfig_merges
      << ",\"fc_weighted_grants\":" << r.fc_weighted_grants
      << ",\"filter_latency_hist\":[";
  for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
    if (b != 0) out << ',';
    out << r.filter_latency_hist[b];
  }
  out << "],\"batch_ppf_hist\":[";
  for (std::size_t b = 0; b < kBatchBuckets; ++b) {
    if (b != 0) out << ',';
    out << r.batch_ppf_hist[b];
  }
  out << "],\"tenants\":[";
  for (std::size_t i = 0; i < r.tenants.size(); ++i) {
    const TenantTelemetry& t = r.tenants[i];
    if (i != 0) out << ',';
    out << "{\"name\":";
    json_string(out, t.name);
    out << ",\"packets\":" << t.packets << ",\"bytes\":" << t.bytes
        << ",\"sends_throttled\":" << t.sends_throttled
        << ",\"packets_shed\":" << t.packets_shed << '}';
  }
  out << "]}";
}

void json_summary(std::ostringstream& out, const char* name, const Summary& s) {
  out << '"' << name << "\":{\"count\":" << s.count << ",\"mean\":" << s.mean
      << ",\"p50\":" << s.p50 << ",\"p95\":" << s.p95 << ",\"min\":" << s.min
      << ",\"max\":" << s.max << '}';
}

}  // namespace

const NodeTelemetry* TreeMetricsSnapshot::find(std::uint32_t node) const noexcept {
  const auto it = std::lower_bound(
      nodes.begin(), nodes.end(), node,
      [](const NodeTelemetry& r, std::uint32_t id) { return r.node < id; });
  if (it == nodes.end() || it->node != node) return nullptr;
  return &*it;
}

std::string TreeMetricsSnapshot::to_json() const {
  std::ostringstream out;
  out << "{\"nodes_reporting\":" << nodes_reporting << ",\"total\":";
  json_record(out, total);
  out << ',';
  json_summary(out, "filter_ms_per_node", filter_ms_per_node);
  out << ',';
  json_summary(out, "packets_up_per_node", packets_up_per_node);
  out << ',';
  json_summary(out, "inbox_depth_per_node", inbox_depth_per_node);
  out << ",\"nodes\":[";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i != 0) out << ',';
    json_record(out, nodes[i]);
  }
  out << "]}";
  return out.str();
}

void TelemetryCollector::ingest(std::span<const std::byte> payload) {
  std::vector<NodeTelemetry> records;
  try {
    records = deserialize_records(payload);
  } catch (const CodecError&) {
    std::lock_guard lock(mutex_);
    ++malformed_;
    return;
  }
  ingest_records(records);
}

void TelemetryCollector::ingest_records(std::span<const NodeTelemetry> records) {
  const std::int64_t arrival = now_ns();
  std::lock_guard lock(mutex_);
  for (const NodeTelemetry& r : records) {
    auto [it, inserted] = nodes_.try_emplace(r.node, r, arrival);
    if (!inserted && r.seq >= it->second.first.seq) {
      it->second = {r, arrival};
    }
  }
}

void TelemetryCollector::freeze() {
  std::lock_guard lock(mutex_);
  if (!frozen_at_) frozen_at_ = now_ns();
}

std::int64_t TelemetryCollector::effective_now() const {
  return frozen_at_ ? *frozen_at_ : now_ns();
}

TreeMetricsSnapshot TelemetryCollector::snapshot() const {
  TreeMetricsSnapshot snap;
  {
    std::lock_guard lock(mutex_);
    const std::int64_t cutoff = effective_now() - age_out_ns_;
    for (const auto& [node, entry] : nodes_) {
      if (entry.second < cutoff) continue;  // stopped reporting: aged out
      snap.nodes.push_back(entry.first);    // map order == node-id order
    }
  }
  snap.nodes_reporting = snap.nodes.size();
  std::vector<double> filter_ms, packets_up, inbox_depth;
  filter_ms.reserve(snap.nodes.size());
  packets_up.reserve(snap.nodes.size());
  inbox_depth.reserve(snap.nodes.size());
  for (const NodeTelemetry& r : snap.nodes) {
    accumulate(snap.total, r);
    filter_ms.push_back(static_cast<double>(r.filter_ns) / 1e6);
    packets_up.push_back(static_cast<double>(r.packets_up));
    inbox_depth.push_back(static_cast<double>(r.inbox_depth));
  }
  snap.filter_ms_per_node = summarize(filter_ms);
  snap.packets_up_per_node = summarize(packets_up);
  snap.inbox_depth_per_node = summarize(inbox_depth);
  return snap;
}

std::uint64_t TelemetryCollector::malformed_payloads() const {
  std::lock_guard lock(mutex_);
  return malformed_;
}

}  // namespace tbon
