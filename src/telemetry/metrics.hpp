// Per-node metrics for the in-band telemetry subsystem.
//
// Every tree node owns one MetricsRegistry: a set of lock-cheap (relaxed
// atomic) counters, gauges and one log2-bucketed latency histogram, updated
// from the node's event loop with no locks and no allocation.  A registry is
// snapshotted into a NodeTelemetry record — the plain-value unit that flows
// up the reserved telemetry stream, where interior nodes combine records
// with merge_records() (the `metrics_merge` built-in filter): the TBON
// aggregates observability data about itself with the same machinery its
// applications use (paper §2.2's built-in filters, dogfooded).
//
// merge_records() keeps, per node id, the record with the highest publish
// sequence number.  max-by-seq is associative and commutative, so the merge
// is insensitive to tree shape and to re-adoption moving a subtree's records
// onto a different path to the root.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/archive.hpp"

namespace tbon {

/// Buckets of the filter-latency histogram: bucket b counts executions with
/// duration in [1us << (b-1), 1us << b) (bucket 0: < 1us; last: overflow).
inline constexpr std::size_t kLatencyBuckets = 16;

/// Buckets of the packets-per-flush histogram kept by the batching
/// coalescer: bucket b counts flushes carrying (2^(b-1), 2^b] packets
/// (bucket 0: exactly 1; last: overflow).
inline constexpr std::size_t kBatchBuckets = 8;

/// One tenant's counter rollup inside a NodeTelemetry record (wire v6);
/// the collector aggregates these tree-wide by name.
struct TenantTelemetry {
  std::string name;
  std::uint64_t packets = 0;          ///< data packets sent on links
  std::uint64_t bytes = 0;            ///< payload bytes sent on links
  std::uint64_t sends_throttled = 0;  ///< sends delayed by the tenant budget
  std::uint64_t packets_shed = 0;     ///< packets dropped charged to the tenant

  bool operator==(const TenantTelemetry&) const = default;
};

/// Plain-value snapshot of one node's metrics — the record carried by
/// telemetry packets and returned by Network::node_metrics().
struct NodeTelemetry {
  std::uint32_t node = 0;
  std::uint8_t role = 0;  ///< 0 = root, 1 = internal, 2 = leaf
  std::uint64_t seq = 0;  ///< publish sequence; merge keeps the max per node

  // Counters (monotonic over the node's lifetime).
  std::uint64_t packets_up = 0;    ///< application data packets received from children
  std::uint64_t packets_down = 0;  ///< application data packets received from the parent
  std::uint64_t bytes_up = 0;
  std::uint64_t bytes_down = 0;
  std::uint64_t waves = 0;      ///< sync batches run through the upstream filter
  std::uint64_t filter_ns = 0;  ///< total time inside transform()
  std::uint64_t telemetry_packets = 0;  ///< telemetry-stream packets handled
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t peer_messages_routed = 0;
  std::uint64_t packets_dropped = 0;  ///< unroutable / unknown-stream drops
  std::uint64_t orphaned_events = 0;  ///< parent-channel losses seen
  std::uint64_t adoptions = 0;        ///< successful re-adoptions of this node
  std::uint64_t faults_injected = 0;  ///< injected crashes at this node
  std::uint64_t wire_bytes_out = 0;   ///< serialized bytes written (process mode)
  std::uint64_t wire_bytes_in = 0;    ///< serialized bytes read (process mode)

  // Flow control (credit-based; see src/core/flow_control.hpp).
  std::uint64_t fc_sends_blocked = 0;    ///< sends that waited for credits
  std::uint64_t fc_blocked_ns = 0;       ///< total time spent waiting for credits
  std::uint64_t fc_packets_shed = 0;     ///< packets dropped by flow control
  std::uint64_t fc_credits_consumed = 0; ///< credits spent sending data packets
  std::uint64_t fc_credits_granted = 0;  ///< credits returned to channel senders
  std::uint64_t fc_invalid_grants = 0;   ///< malformed/stale credit grants rejected

  // Parallel filter execution (src/core/executor.hpp).
  std::uint64_t exec_tasks = 0;      ///< filter tasks run on worker threads
  std::uint64_t exec_task_ns = 0;    ///< total worker busy time (utilization)
  std::uint64_t exec_inline = 0;     ///< packets run inline via inline_below_bytes
  std::uint64_t filter_custom_events = 0;  ///< TelemetryScope::count() bumps

  // Remote connection subsystem (src/net/; zero everywhere else).
  std::uint64_t net_accepts = 0;           ///< sockets accepted by the event loop
  std::uint64_t net_connects = 0;          ///< outbound link connections established
  std::uint64_t net_handshakes_failed = 0; ///< malformed/timed-out/rejected handshakes
  std::uint64_t net_reconnects = 0;        ///< parent channels re-established after loss
  std::uint64_t net_frames_in = 0;         ///< frames decoded by the event loop
  std::uint64_t net_frames_out = 0;        ///< frames fully written by the event loop
  std::uint64_t net_partial_writes = 0;    ///< writev calls that left a send in flight
  std::uint64_t net_wakeups = 0;           ///< eventfd wake-channel notifications

  // Adaptive small-packet batching (src/core/coalesce.hpp).
  std::uint64_t batch_frames_out = 0;      ///< coalescer flushes (frames handed to the wire)
  std::uint64_t batch_packets_out = 0;     ///< data packets those flushes carried
  std::uint64_t batch_flush_size = 0;      ///< flushes fired by byte/count thresholds
  std::uint64_t batch_flush_deadline = 0;  ///< flushes fired by the deadline timer
  std::uint64_t batch_flush_pressure = 0;  ///< flushes fired by credit-window exhaustion
  std::uint64_t batch_flush_eager = 0;     ///< flushes forced by control/large-payload bypass or close
  std::uint64_t batch_frames_in = 0;       ///< multi-packet wire frames decoded
  std::uint64_t batch_packets_in = 0;      ///< packets carried by decoded batch frames
  std::uint64_t batch_frames_rejected = 0; ///< malformed batch frames dropped (reader survives)

  // Multi-tenant streams (src/core/tenant.hpp; wire v6).
  std::uint64_t prio_drained_control = 0;  ///< executor tasks drained from the control class
  std::uint64_t prio_drained_high = 0;
  std::uint64_t prio_drained_normal = 0;
  std::uint64_t prio_drained_bulk = 0;
  std::uint64_t topic_packets_pruned = 0;  ///< downstream sends skipped: no subscriber below
  std::uint64_t tenant_sends_throttled = 0; ///< sum over tenants (convenience rollup)
  std::uint64_t tenant_packets_shed = 0;    ///< sum over tenants (convenience rollup)

  // Planned reconfiguration (src/core/reconfig.hpp; wire v7).
  std::uint64_t reconfig_ops = 0;         ///< reconfigure() operations applied (root)
  std::uint64_t reconfig_ops_failed = 0;  ///< operations rejected/failed/timed out (root)
  std::uint64_t reconfig_joins = 0;       ///< planned back-end joins wired (root)
  std::uint64_t reconfig_detaches = 0;    ///< planned departures applied at this parent
  std::uint64_t reconfig_moves = 0;       ///< times this node was re-homed (planned)
  std::uint64_t reconfig_splits = 0;      ///< interior splits applied (root)
  std::uint64_t reconfig_merges = 0;      ///< interior merges applied (root)
  std::uint64_t fc_weighted_grants = 0;   ///< grants paced by tenant credit share

  // Gauges (sampled at publish time).
  std::uint64_t inbox_depth = 0;  ///< envelopes queued in the node's inbox
  std::uint64_t sync_depth = 0;   ///< packets buffered across sync policies
  std::uint64_t fc_inflight_peak = 0;  ///< max credits in flight on any channel
  std::uint64_t fc_pending_depth = 0;  ///< packets queued in drop_oldest rings
  std::uint64_t exec_workers = 0;      ///< configured filter worker threads
  std::uint64_t exec_queue_depth = 0;  ///< tasks queued across worker shards
  std::uint64_t exec_queue_peak = 0;   ///< max depth any stream's run queue hit
  std::int64_t heartbeat_rtt_ns = -1;  ///< last parent heartbeat RTT; -1 unknown
  std::uint64_t net_connections = 0;     ///< sockets the event loop has owned (monotonic)
  std::uint64_t net_send_queue_peak = 0; ///< max bytes queued behind one socket
  std::uint64_t net_threads = 0;         ///< OS threads in this process (/proc/self/task)

  std::array<std::uint64_t, kLatencyBuckets> filter_latency_hist{};
  /// Packets-per-flush distribution (see kBatchBuckets).
  std::array<std::uint64_t, kBatchBuckets> batch_ppf_hist{};

  /// Per-tenant rollups from this node's TenantTable, in registration
  /// order.  Filled by the runtime at publish time (the registry's atomic
  /// counters cannot hold strings).
  std::vector<TenantTelemetry> tenants;

  friend bool operator==(const NodeTelemetry&, const NodeTelemetry&) = default;
};

/// Histogram bucket for a duration in nanoseconds (see kLatencyBuckets).
inline std::size_t latency_bucket(std::uint64_t ns) noexcept {
  const std::uint64_t us = ns >> 10;  // ~microseconds, power-of-two cheap
  if (us == 0) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width(us));
  return b < kLatencyBuckets ? b : kLatencyBuckets - 1;
}

/// Histogram bucket for a flush of `packets` packets (see kBatchBuckets).
inline std::size_t batch_bucket(std::uint64_t packets) noexcept {
  if (packets <= 1) return 0;
  const auto b = static_cast<std::size_t>(std::bit_width(packets - 1));
  return b < kBatchBuckets ? b : kBatchBuckets - 1;
}

/// The live, writable side: one per NodeRuntime.  All mutators are relaxed
/// atomics — safe to bump from the runtime thread while another thread (the
/// Network's node_metrics(), tests) reads a snapshot.
class MetricsRegistry {
 public:
  using Counter = std::atomic<std::uint64_t>;

  Counter packets_up{0};
  Counter packets_down{0};
  Counter bytes_up{0};
  Counter bytes_down{0};
  Counter waves{0};
  Counter filter_ns{0};
  Counter telemetry_packets{0};
  Counter heartbeats_sent{0};
  Counter heartbeats_received{0};
  Counter peer_messages_routed{0};
  Counter packets_dropped{0};
  Counter orphaned_events{0};
  Counter adoptions{0};
  Counter faults_injected{0};
  Counter wire_bytes_out{0};
  Counter wire_bytes_in{0};

  Counter fc_sends_blocked{0};
  Counter fc_blocked_ns{0};
  Counter fc_packets_shed{0};
  Counter fc_credits_consumed{0};
  Counter fc_credits_granted{0};
  Counter fc_invalid_grants{0};

  Counter exec_tasks{0};
  Counter exec_task_ns{0};
  Counter exec_inline{0};
  Counter filter_custom_events{0};

  Counter net_accepts{0};
  Counter net_connects{0};
  Counter net_handshakes_failed{0};
  Counter net_reconnects{0};
  Counter net_frames_in{0};
  Counter net_frames_out{0};
  Counter net_partial_writes{0};
  Counter net_wakeups{0};

  Counter batch_frames_out{0};
  Counter batch_packets_out{0};
  Counter batch_flush_size{0};
  Counter batch_flush_deadline{0};
  Counter batch_flush_pressure{0};
  Counter batch_flush_eager{0};
  Counter batch_frames_in{0};
  Counter batch_packets_in{0};
  Counter batch_frames_rejected{0};

  Counter prio_drained_control{0};
  Counter prio_drained_high{0};
  Counter prio_drained_normal{0};
  Counter prio_drained_bulk{0};
  Counter topic_packets_pruned{0};

  Counter reconfig_ops{0};
  Counter reconfig_ops_failed{0};
  Counter reconfig_joins{0};
  Counter reconfig_detaches{0};
  Counter reconfig_moves{0};
  Counter reconfig_splits{0};
  Counter reconfig_merges{0};
  Counter fc_weighted_grants{0};

  Counter inbox_depth{0};  ///< gauge, refreshed each telemetry tick
  Counter sync_depth{0};   ///< gauge, refreshed each telemetry tick
  Counter fc_inflight_peak{0};  ///< gauge, monotonic max (update_max)
  Counter fc_pending_depth{0};  ///< gauge, live delta-maintained
  Counter exec_workers{0};      ///< gauge, set once at executor start
  Counter exec_queue_depth{0};  ///< gauge, refreshed each telemetry tick
  Counter exec_queue_peak{0};   ///< gauge, monotonic max (update_max)
  std::atomic<std::int64_t> heartbeat_rtt_ns{-1};
  /// Monotonic count of sockets the loop has ever registered.  Not a live
  /// gauge on purpose: the tree snapshot is frozen at shutdown, when live
  /// connection counts have already collapsed to ~0 and churn (reconnects)
  /// is the interesting signal.
  Counter net_connections{0};
  Counter net_send_queue_peak{0}; ///< gauge, monotonic max (update_max)
  Counter net_threads{0};         ///< gauge, sampled by the loop from /proc

  /// Record one filter execution in the latency histogram.
  void observe_filter_latency(std::uint64_t ns) noexcept {
    hist_[latency_bucket(ns)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Record one coalescer flush of `packets` packets.
  void observe_batch_flush(std::uint64_t packets) noexcept {
    batch_frames_out.fetch_add(1, std::memory_order_relaxed);
    batch_packets_out.fetch_add(packets, std::memory_order_relaxed);
    batch_hist_[batch_bucket(packets)].fetch_add(1, std::memory_order_relaxed);
  }

  /// Snapshot into a record, advancing the publish sequence number.
  NodeTelemetry publish(std::uint32_t node, std::uint8_t role) noexcept {
    NodeTelemetry r = peek(node, role);
    r.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    return r;
  }

  /// Snapshot without advancing the sequence (introspection, tests).
  NodeTelemetry peek(std::uint32_t node, std::uint8_t role) const noexcept {
    NodeTelemetry r;
    r.node = node;
    r.role = role;
    r.seq = seq_.load(std::memory_order_relaxed);
    r.packets_up = packets_up.load(std::memory_order_relaxed);
    r.packets_down = packets_down.load(std::memory_order_relaxed);
    r.bytes_up = bytes_up.load(std::memory_order_relaxed);
    r.bytes_down = bytes_down.load(std::memory_order_relaxed);
    r.waves = waves.load(std::memory_order_relaxed);
    r.filter_ns = filter_ns.load(std::memory_order_relaxed);
    r.telemetry_packets = telemetry_packets.load(std::memory_order_relaxed);
    r.heartbeats_sent = heartbeats_sent.load(std::memory_order_relaxed);
    r.heartbeats_received = heartbeats_received.load(std::memory_order_relaxed);
    r.peer_messages_routed = peer_messages_routed.load(std::memory_order_relaxed);
    r.packets_dropped = packets_dropped.load(std::memory_order_relaxed);
    r.orphaned_events = orphaned_events.load(std::memory_order_relaxed);
    r.adoptions = adoptions.load(std::memory_order_relaxed);
    r.faults_injected = faults_injected.load(std::memory_order_relaxed);
    r.wire_bytes_out = wire_bytes_out.load(std::memory_order_relaxed);
    r.wire_bytes_in = wire_bytes_in.load(std::memory_order_relaxed);
    r.fc_sends_blocked = fc_sends_blocked.load(std::memory_order_relaxed);
    r.fc_blocked_ns = fc_blocked_ns.load(std::memory_order_relaxed);
    r.fc_packets_shed = fc_packets_shed.load(std::memory_order_relaxed);
    r.fc_credits_consumed = fc_credits_consumed.load(std::memory_order_relaxed);
    r.fc_credits_granted = fc_credits_granted.load(std::memory_order_relaxed);
    r.fc_invalid_grants = fc_invalid_grants.load(std::memory_order_relaxed);
    r.exec_tasks = exec_tasks.load(std::memory_order_relaxed);
    r.exec_task_ns = exec_task_ns.load(std::memory_order_relaxed);
    r.exec_inline = exec_inline.load(std::memory_order_relaxed);
    r.filter_custom_events = filter_custom_events.load(std::memory_order_relaxed);
    r.net_accepts = net_accepts.load(std::memory_order_relaxed);
    r.net_connects = net_connects.load(std::memory_order_relaxed);
    r.net_handshakes_failed = net_handshakes_failed.load(std::memory_order_relaxed);
    r.net_reconnects = net_reconnects.load(std::memory_order_relaxed);
    r.net_frames_in = net_frames_in.load(std::memory_order_relaxed);
    r.net_frames_out = net_frames_out.load(std::memory_order_relaxed);
    r.net_partial_writes = net_partial_writes.load(std::memory_order_relaxed);
    r.net_wakeups = net_wakeups.load(std::memory_order_relaxed);
    r.batch_frames_out = batch_frames_out.load(std::memory_order_relaxed);
    r.batch_packets_out = batch_packets_out.load(std::memory_order_relaxed);
    r.batch_flush_size = batch_flush_size.load(std::memory_order_relaxed);
    r.batch_flush_deadline = batch_flush_deadline.load(std::memory_order_relaxed);
    r.batch_flush_pressure = batch_flush_pressure.load(std::memory_order_relaxed);
    r.batch_flush_eager = batch_flush_eager.load(std::memory_order_relaxed);
    r.batch_frames_in = batch_frames_in.load(std::memory_order_relaxed);
    r.batch_packets_in = batch_packets_in.load(std::memory_order_relaxed);
    r.batch_frames_rejected = batch_frames_rejected.load(std::memory_order_relaxed);
    r.prio_drained_control = prio_drained_control.load(std::memory_order_relaxed);
    r.prio_drained_high = prio_drained_high.load(std::memory_order_relaxed);
    r.prio_drained_normal = prio_drained_normal.load(std::memory_order_relaxed);
    r.prio_drained_bulk = prio_drained_bulk.load(std::memory_order_relaxed);
    r.topic_packets_pruned = topic_packets_pruned.load(std::memory_order_relaxed);
    r.reconfig_ops = reconfig_ops.load(std::memory_order_relaxed);
    r.reconfig_ops_failed = reconfig_ops_failed.load(std::memory_order_relaxed);
    r.reconfig_joins = reconfig_joins.load(std::memory_order_relaxed);
    r.reconfig_detaches = reconfig_detaches.load(std::memory_order_relaxed);
    r.reconfig_moves = reconfig_moves.load(std::memory_order_relaxed);
    r.reconfig_splits = reconfig_splits.load(std::memory_order_relaxed);
    r.reconfig_merges = reconfig_merges.load(std::memory_order_relaxed);
    r.fc_weighted_grants = fc_weighted_grants.load(std::memory_order_relaxed);
    r.inbox_depth = inbox_depth.load(std::memory_order_relaxed);
    r.sync_depth = sync_depth.load(std::memory_order_relaxed);
    r.fc_inflight_peak = fc_inflight_peak.load(std::memory_order_relaxed);
    r.fc_pending_depth = fc_pending_depth.load(std::memory_order_relaxed);
    r.exec_workers = exec_workers.load(std::memory_order_relaxed);
    r.exec_queue_depth = exec_queue_depth.load(std::memory_order_relaxed);
    r.exec_queue_peak = exec_queue_peak.load(std::memory_order_relaxed);
    r.heartbeat_rtt_ns = heartbeat_rtt_ns.load(std::memory_order_relaxed);
    r.net_connections = net_connections.load(std::memory_order_relaxed);
    r.net_send_queue_peak = net_send_queue_peak.load(std::memory_order_relaxed);
    r.net_threads = net_threads.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < kLatencyBuckets; ++b) {
      r.filter_latency_hist[b] = hist_[b].load(std::memory_order_relaxed);
    }
    for (std::size_t b = 0; b < kBatchBuckets; ++b) {
      r.batch_ppf_hist[b] = batch_hist_[b].load(std::memory_order_relaxed);
    }
    return r;
  }

 private:
  std::atomic<std::uint64_t> seq_{0};
  std::array<Counter, kLatencyBuckets> hist_{};
  std::array<Counter, kBatchBuckets> batch_hist_{};
};

/// Monotonic-max update for peak-style gauges (fc_inflight_peak).
inline void update_max(MetricsRegistry::Counter& counter,
                       std::uint64_t value) noexcept {
  std::uint64_t current = counter.load(std::memory_order_relaxed);
  while (current < value && !counter.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

// ---- wire form and merge ----------------------------------------------------

/// Serialize records into the payload of a telemetry packet.
Bytes serialize_records(std::span<const NodeTelemetry> records);

/// Inverse of serialize_records; throws CodecError on malformed input.
std::vector<NodeTelemetry> deserialize_records(std::span<const std::byte> payload);

/// Merge record sets: per node id, the record with the highest seq wins
/// (ties keep the left operand's).  Output is sorted by node id.  This
/// operation is associative and commutative — see test_telemetry.cpp.
std::vector<NodeTelemetry> merge_records(std::span<const NodeTelemetry> a,
                                         std::span<const NodeTelemetry> b);

}  // namespace tbon
