// Front-end side of the telemetry subsystem: accumulates the merged records
// arriving on the reserved telemetry stream into a live model of the tree,
// ages out nodes that stopped reporting (died without a successor publish),
// and renders typed or JSON snapshots for FrontEnd::metrics().
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "telemetry/metrics.hpp"

namespace tbon {

/// Tree-wide view assembled by the front-end: one record per live node plus
/// field-wise aggregates and cross-node summaries.
struct TreeMetricsSnapshot {
  /// Live nodes (reported within the age-out window), sorted by node id.
  std::vector<NodeTelemetry> nodes;

  /// Field-wise sum over `nodes` (gauges summed too; heartbeat_rtt_ns is the
  /// max across nodes, seq/role meaningless and left 0).
  NodeTelemetry total;

  /// Cross-node distributions (count/mean/p50/p95 over per-node values).
  Summary filter_ms_per_node;     ///< cumulative filter time, milliseconds
  Summary packets_up_per_node;
  Summary inbox_depth_per_node;

  std::size_t nodes_reporting = 0;  ///< == nodes.size()

  /// Record for one node, or nullptr if it is not (or no longer) reporting.
  const NodeTelemetry* find(std::uint32_t node) const noexcept;

  /// Machine-readable dump for external tooling.
  std::string to_json() const;
};

/// Thread-safe accumulator fed by the root's telemetry-stream results.
class TelemetryCollector {
 public:
  /// `age_out_ns`: a node whose latest record is older than this is dropped
  /// from snapshots (it died, or its subtree is partitioned).
  explicit TelemetryCollector(std::int64_t age_out_ns) : age_out_ns_(age_out_ns) {}

  /// Ingest one telemetry packet payload (serialized records).
  /// Malformed payloads are counted and dropped, never thrown.
  void ingest(std::span<const std::byte> payload);

  void ingest_records(std::span<const NodeTelemetry> records);

  /// Stop aging: every node reporting at freeze time stays in snapshots
  /// forever.  Called when the network completes shutdown so post-shutdown
  /// metrics() reflect the final flush instead of an empty, aged-out tree.
  void freeze();

  TreeMetricsSnapshot snapshot() const;

  std::uint64_t malformed_payloads() const;

 private:
  std::int64_t effective_now() const;

  mutable std::mutex mutex_;
  std::int64_t age_out_ns_;
  std::optional<std::int64_t> frozen_at_;
  std::uint64_t malformed_ = 0;
  /// node id -> (latest record, local monotonic arrival time).
  std::map<std::uint32_t, std::pair<NodeTelemetry, std::int64_t>> nodes_;
};

}  // namespace tbon
