#include "telemetry/metrics.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace tbon {
namespace {

// v2: flow-control counters + gauges appended (credit-based flow control).
// v3: parallel-filter-execution counters + gauges appended (FilterExecutor).
// v4: remote connection-subsystem counters + gauges appended (src/net/).
// v5: small-packet batching counters + packets-per-flush histogram appended.
// v6: multi-tenant counters (priority drain, topic pruning, tenant rollups)
//     + variable-length per-tenant entries appended.
// v7: planned-reconfiguration counters + weighted-grant counter appended.
constexpr std::uint8_t kWireVersion = 7;

/// Upper bound on per-tenant entries in one record; a decoded count above
/// this is malformed (a hostile count must not pre-reserve unbounded memory).
constexpr std::uint32_t kMaxTenantEntries = 1u << 16;

void put_record(BinaryWriter& writer, const NodeTelemetry& r) {
  writer.put(r.node);
  writer.put(r.role);
  writer.put(r.seq);
  writer.put(r.packets_up);
  writer.put(r.packets_down);
  writer.put(r.bytes_up);
  writer.put(r.bytes_down);
  writer.put(r.waves);
  writer.put(r.filter_ns);
  writer.put(r.telemetry_packets);
  writer.put(r.heartbeats_sent);
  writer.put(r.heartbeats_received);
  writer.put(r.peer_messages_routed);
  writer.put(r.packets_dropped);
  writer.put(r.orphaned_events);
  writer.put(r.adoptions);
  writer.put(r.faults_injected);
  writer.put(r.wire_bytes_out);
  writer.put(r.wire_bytes_in);
  writer.put(r.fc_sends_blocked);
  writer.put(r.fc_blocked_ns);
  writer.put(r.fc_packets_shed);
  writer.put(r.fc_credits_consumed);
  writer.put(r.fc_credits_granted);
  writer.put(r.fc_invalid_grants);
  writer.put(r.exec_tasks);
  writer.put(r.exec_task_ns);
  writer.put(r.exec_inline);
  writer.put(r.filter_custom_events);
  writer.put(r.net_accepts);
  writer.put(r.net_connects);
  writer.put(r.net_handshakes_failed);
  writer.put(r.net_reconnects);
  writer.put(r.net_frames_in);
  writer.put(r.net_frames_out);
  writer.put(r.net_partial_writes);
  writer.put(r.net_wakeups);
  writer.put(r.batch_frames_out);
  writer.put(r.batch_packets_out);
  writer.put(r.batch_flush_size);
  writer.put(r.batch_flush_deadline);
  writer.put(r.batch_flush_pressure);
  writer.put(r.batch_flush_eager);
  writer.put(r.batch_frames_in);
  writer.put(r.batch_packets_in);
  writer.put(r.batch_frames_rejected);
  writer.put(r.inbox_depth);
  writer.put(r.sync_depth);
  writer.put(r.fc_inflight_peak);
  writer.put(r.fc_pending_depth);
  writer.put(r.exec_workers);
  writer.put(r.exec_queue_depth);
  writer.put(r.exec_queue_peak);
  writer.put(r.heartbeat_rtt_ns);
  writer.put(r.net_connections);
  writer.put(r.net_send_queue_peak);
  writer.put(r.net_threads);
  for (const std::uint64_t count : r.filter_latency_hist) writer.put(count);
  for (const std::uint64_t count : r.batch_ppf_hist) writer.put(count);
  writer.put(r.prio_drained_control);
  writer.put(r.prio_drained_high);
  writer.put(r.prio_drained_normal);
  writer.put(r.prio_drained_bulk);
  writer.put(r.topic_packets_pruned);
  writer.put(r.tenant_sends_throttled);
  writer.put(r.tenant_packets_shed);
  writer.put(static_cast<std::uint32_t>(r.tenants.size()));
  for (const TenantTelemetry& t : r.tenants) {
    writer.put_string(t.name);
    writer.put(t.packets);
    writer.put(t.bytes);
    writer.put(t.sends_throttled);
    writer.put(t.packets_shed);
  }
  writer.put(r.reconfig_ops);
  writer.put(r.reconfig_ops_failed);
  writer.put(r.reconfig_joins);
  writer.put(r.reconfig_detaches);
  writer.put(r.reconfig_moves);
  writer.put(r.reconfig_splits);
  writer.put(r.reconfig_merges);
  writer.put(r.fc_weighted_grants);
}

NodeTelemetry get_record(BinaryReader& reader) {
  NodeTelemetry r;
  r.node = reader.get<std::uint32_t>();
  r.role = reader.get<std::uint8_t>();
  r.seq = reader.get<std::uint64_t>();
  r.packets_up = reader.get<std::uint64_t>();
  r.packets_down = reader.get<std::uint64_t>();
  r.bytes_up = reader.get<std::uint64_t>();
  r.bytes_down = reader.get<std::uint64_t>();
  r.waves = reader.get<std::uint64_t>();
  r.filter_ns = reader.get<std::uint64_t>();
  r.telemetry_packets = reader.get<std::uint64_t>();
  r.heartbeats_sent = reader.get<std::uint64_t>();
  r.heartbeats_received = reader.get<std::uint64_t>();
  r.peer_messages_routed = reader.get<std::uint64_t>();
  r.packets_dropped = reader.get<std::uint64_t>();
  r.orphaned_events = reader.get<std::uint64_t>();
  r.adoptions = reader.get<std::uint64_t>();
  r.faults_injected = reader.get<std::uint64_t>();
  r.wire_bytes_out = reader.get<std::uint64_t>();
  r.wire_bytes_in = reader.get<std::uint64_t>();
  r.fc_sends_blocked = reader.get<std::uint64_t>();
  r.fc_blocked_ns = reader.get<std::uint64_t>();
  r.fc_packets_shed = reader.get<std::uint64_t>();
  r.fc_credits_consumed = reader.get<std::uint64_t>();
  r.fc_credits_granted = reader.get<std::uint64_t>();
  r.fc_invalid_grants = reader.get<std::uint64_t>();
  r.exec_tasks = reader.get<std::uint64_t>();
  r.exec_task_ns = reader.get<std::uint64_t>();
  r.exec_inline = reader.get<std::uint64_t>();
  r.filter_custom_events = reader.get<std::uint64_t>();
  r.net_accepts = reader.get<std::uint64_t>();
  r.net_connects = reader.get<std::uint64_t>();
  r.net_handshakes_failed = reader.get<std::uint64_t>();
  r.net_reconnects = reader.get<std::uint64_t>();
  r.net_frames_in = reader.get<std::uint64_t>();
  r.net_frames_out = reader.get<std::uint64_t>();
  r.net_partial_writes = reader.get<std::uint64_t>();
  r.net_wakeups = reader.get<std::uint64_t>();
  r.batch_frames_out = reader.get<std::uint64_t>();
  r.batch_packets_out = reader.get<std::uint64_t>();
  r.batch_flush_size = reader.get<std::uint64_t>();
  r.batch_flush_deadline = reader.get<std::uint64_t>();
  r.batch_flush_pressure = reader.get<std::uint64_t>();
  r.batch_flush_eager = reader.get<std::uint64_t>();
  r.batch_frames_in = reader.get<std::uint64_t>();
  r.batch_packets_in = reader.get<std::uint64_t>();
  r.batch_frames_rejected = reader.get<std::uint64_t>();
  r.inbox_depth = reader.get<std::uint64_t>();
  r.sync_depth = reader.get<std::uint64_t>();
  r.fc_inflight_peak = reader.get<std::uint64_t>();
  r.fc_pending_depth = reader.get<std::uint64_t>();
  r.exec_workers = reader.get<std::uint64_t>();
  r.exec_queue_depth = reader.get<std::uint64_t>();
  r.exec_queue_peak = reader.get<std::uint64_t>();
  r.heartbeat_rtt_ns = reader.get<std::int64_t>();
  r.net_connections = reader.get<std::uint64_t>();
  r.net_send_queue_peak = reader.get<std::uint64_t>();
  r.net_threads = reader.get<std::uint64_t>();
  for (std::uint64_t& count : r.filter_latency_hist) {
    count = reader.get<std::uint64_t>();
  }
  for (std::uint64_t& count : r.batch_ppf_hist) {
    count = reader.get<std::uint64_t>();
  }
  r.prio_drained_control = reader.get<std::uint64_t>();
  r.prio_drained_high = reader.get<std::uint64_t>();
  r.prio_drained_normal = reader.get<std::uint64_t>();
  r.prio_drained_bulk = reader.get<std::uint64_t>();
  r.topic_packets_pruned = reader.get<std::uint64_t>();
  r.tenant_sends_throttled = reader.get<std::uint64_t>();
  r.tenant_packets_shed = reader.get<std::uint64_t>();
  const auto tenant_count = reader.get<std::uint32_t>();
  if (tenant_count > kMaxTenantEntries) {
    throw CodecError("telemetry tenant entry count out of range");
  }
  r.tenants.reserve(tenant_count);
  for (std::uint32_t i = 0; i < tenant_count; ++i) {
    TenantTelemetry t;
    t.name = reader.get_string();
    t.packets = reader.get<std::uint64_t>();
    t.bytes = reader.get<std::uint64_t>();
    t.sends_throttled = reader.get<std::uint64_t>();
    t.packets_shed = reader.get<std::uint64_t>();
    r.tenants.push_back(std::move(t));
  }
  r.reconfig_ops = reader.get<std::uint64_t>();
  r.reconfig_ops_failed = reader.get<std::uint64_t>();
  r.reconfig_joins = reader.get<std::uint64_t>();
  r.reconfig_detaches = reader.get<std::uint64_t>();
  r.reconfig_moves = reader.get<std::uint64_t>();
  r.reconfig_splits = reader.get<std::uint64_t>();
  r.reconfig_merges = reader.get<std::uint64_t>();
  r.fc_weighted_grants = reader.get<std::uint64_t>();
  return r;
}

}  // namespace

Bytes serialize_records(std::span<const NodeTelemetry> records) {
  BinaryWriter writer;
  writer.put(kWireVersion);
  writer.put(static_cast<std::uint32_t>(records.size()));
  for (const NodeTelemetry& r : records) put_record(writer, r);
  return writer.take();
}

std::vector<NodeTelemetry> deserialize_records(std::span<const std::byte> payload) {
  BinaryReader reader(payload);
  const auto version = reader.get<std::uint8_t>();
  if (version != kWireVersion) {
    throw CodecError("unsupported telemetry wire version " + std::to_string(version));
  }
  const auto count = reader.get<std::uint32_t>();
  std::vector<NodeTelemetry> records;
  records.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) records.push_back(get_record(reader));
  return records;
}

std::vector<NodeTelemetry> merge_records(std::span<const NodeTelemetry> a,
                                         std::span<const NodeTelemetry> b) {
  std::map<std::uint32_t, NodeTelemetry> by_node;
  for (const NodeTelemetry& r : a) {
    const auto it = by_node.find(r.node);
    if (it == by_node.end() || r.seq > it->second.seq) by_node[r.node] = r;
  }
  for (const NodeTelemetry& r : b) {
    const auto it = by_node.find(r.node);
    if (it == by_node.end() || r.seq > it->second.seq) by_node[r.node] = r;
  }
  std::vector<NodeTelemetry> merged;
  merged.reserve(by_node.size());
  for (auto& [node, record] : by_node) merged.push_back(std::move(record));
  return merged;
}

}  // namespace tbon
