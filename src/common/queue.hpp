// Bounded, thread-safe MPMC queue with close semantics.
//
// This is the FIFO channel primitive of the in-process transport: each
// communication process owns one inbox; producers block when the queue is
// full (back-pressure, as TCP would provide in MRNet); close() wakes all
// waiters and makes further pops drain-then-fail.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tbon {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity = 1024) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocking push; returns false if the queue was closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Push that never blocks: when the queue is full the *oldest* item is
  /// evicted to make room (drop_oldest flow-control pending rings).  Returns
  /// the number of items evicted (0 or 1); returns 0 and drops `item` when
  /// the queue is closed.
  std::size_t push_evict_oldest(T item) {
    std::size_t evicted = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return 0;
      while (items_.size() >= capacity_ && !items_.empty()) {
        items_.pop_front();
        ++evicted;
      }
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return evicted;
  }

  /// Non-blocking push; returns false when full or closed.
  bool try_push(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; nullopt once the queue is closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    return take_front(lock);
  }

  /// Pop with timeout; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; });
    return take_front(lock);
  }

  /// Pop with an absolute deadline; nullopt on timeout or closed-and-drained.
  template <typename Clock, typename Duration>
  std::optional<T> pop_until(std::chrono::time_point<Clock, Duration> deadline) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_until(lock, deadline, [&] { return !items_.empty() || closed_; });
    return take_front(lock);
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    return take_front(lock);
  }

  /// Close the queue: producers fail, consumers drain remaining items.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  std::size_t capacity() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
  }

  /// Re-bound the queue (e.g. sized from flow-control windows after
  /// construction).  Growing wakes blocked producers; shrinking never drops
  /// items already queued — the bound applies to future pushes.
  void resize(std::size_t capacity) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      capacity_ = capacity ? capacity : 1;
    }
    not_full_.notify_all();
  }

 private:
  std::optional<T> take_front(std::unique_lock<std::mutex>& lock) {
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::size_t capacity_;
  bool closed_ = false;
};

}  // namespace tbon
