// Summary statistics used by the benchmark harness and tests.
#pragma once

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

namespace tbon {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// Compute count/mean/stddev/min/max/p50/p95 of a sample.
inline Summary summarize(std::span<const double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double v : sorted) sum += v;
  s.mean = sum / static_cast<double>(sorted.size());
  double sq = 0.0;
  for (double v : sorted) sq += (v - s.mean) * (v - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(sq / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  s.min = sorted.front();
  s.max = sorted.back();
  auto at_quantile = [&](double q) {
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  s.p50 = at_quantile(0.50);
  s.p95 = at_quantile(0.95);
  return s;
}

}  // namespace tbon
