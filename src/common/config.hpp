// Tiny "key=value" command-line/config parser for examples and benches.
//
// Usage:  Config cfg(argc, argv);        // parses trailing key=value args
//         int leaves = cfg.get_int("leaves", 16);
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tbon {

class Config {
 public:
  Config() = default;
  Config(int argc, char** argv);

  /// Parse one "key=value" token; tokens without '=' are ignored.
  void add(std::string_view token);

  bool has(const std::string& key) const { return values_.count(key) != 0; }

  std::string get(const std::string& key, std::string fallback = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback = 0) const;
  double get_double(const std::string& key, double fallback = 0.0) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace tbon
