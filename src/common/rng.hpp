// Deterministic random number generation.
//
// The synthetic workloads in the paper reproduction must be reproducible
// bit-for-bit across runs and platforms, so we use our own xoshiro256++
// generator and Box–Muller Gaussian sampling rather than the
// implementation-defined std::*_distribution.
#pragma once

#include <cmath>
#include <cstdint>
#include <numbers>

namespace tbon {

/// splitmix64: used to seed xoshiro from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ by Blackman & Vigna — fast, high-quality, deterministic.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x2545f4914f6cdd1dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
    has_cached_gaussian_ = false;
  }

  std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) for bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next_u64() % bound;  // modulo bias is irrelevant for workload synthesis
  }

  /// Standard normal via Box–Muller (deterministic given the seed).
  double gaussian() noexcept {
    if (has_cached_gaussian_) {
      has_cached_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = next_double();
    while (u1 <= 1e-300) u1 = next_double();
    const double u2 = next_double();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = radius * std::sin(angle);
    has_cached_gaussian_ = true;
    return radius * std::cos(angle);
  }

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev) noexcept {
    return mean + stddev * gaussian();
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace tbon
