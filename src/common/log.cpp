#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace tbon::log {
namespace {

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{[] {
    const char* env = std::getenv("TBON_LOG");
    return static_cast<int>(env != nullptr ? parse_level(env) : Level::kWarn);
  }()};
  return storage;
}

const char* level_name(Level l) noexcept {
  switch (l) {
    case Level::kError:
      return "ERROR";
    case Level::kWarn:
      return "WARN ";
    case Level::kInfo:
      return "INFO ";
    case Level::kDebug:
      return "DEBUG";
    case Level::kTrace:
      return "TRACE";
  }
  return "?????";
}

}  // namespace

Level level() noexcept { return static_cast<Level>(level_storage().load(std::memory_order_relaxed)); }

void set_level(Level l) noexcept {
  level_storage().store(static_cast<int>(l), std::memory_order_relaxed);
}

Level parse_level(std::string_view name) noexcept {
  if (name == "error") return Level::kError;
  if (name == "warn") return Level::kWarn;
  if (name == "info") return Level::kInfo;
  if (name == "debug") return Level::kDebug;
  if (name == "trace") return Level::kTrace;
  return Level::kWarn;
}

namespace detail {

void emit(Level l, const std::string& message) {
  static std::mutex mutex;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const double seconds = std::chrono::duration<double>(now).count();
  std::lock_guard<std::mutex> lock(mutex);
  std::fprintf(stderr, "[%12.6f] %s %s\n", seconds, level_name(l), message.c_str());
}

}  // namespace detail
}  // namespace tbon::log
