// Typed packet payloads and MRNet-style format strings.
//
// MRNet describes packet contents with printf-like format strings; we use a
// small space-separated type language instead:
//
//   i32 i64 u64 f64 str bytes vi64 vf64 vstr
//
// e.g. "i32 vf64 str" declares three fields: an int32, a vector of doubles
// and a string.  DataFormat parses and validates such strings once;
// DataValue holds one field; pack/unpack round-trip a field list through the
// binary archive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/archive.hpp"
#include "common/error.hpp"

namespace tbon {

enum class DataType : std::uint8_t {
  kInt32 = 0,
  kInt64,
  kUInt64,
  kFloat64,
  kString,
  kBytes,
  kVecInt64,
  kVecFloat64,
  kVecString,
};

/// Human-readable token for a type (the format-string vocabulary).
std::string_view type_name(DataType type) noexcept;

/// Parse a single token; throws ParseError for unknown tokens.
DataType parse_type(std::string_view token);

/// One payload field.
using DataValue = std::variant<std::int32_t, std::int64_t, std::uint64_t, double,
                               std::string, Bytes, std::vector<std::int64_t>,
                               std::vector<double>, std::vector<std::string>>;

/// The declared type of a DataValue.
DataType type_of(const DataValue& value) noexcept;

/// A parsed, validated format string.
class DataFormat {
 public:
  DataFormat() = default;

  /// Parse "i32 vf64 str"; throws ParseError on unknown tokens.
  explicit DataFormat(std::string_view format_string);

  const std::vector<DataType>& fields() const noexcept { return fields_; }
  std::size_t arity() const noexcept { return fields_.size(); }
  const std::string& to_string() const noexcept { return text_; }

  /// True when `values` matches this format field-for-field.
  bool matches(std::span<const DataValue> values) const noexcept;

  friend bool operator==(const DataFormat&, const DataFormat&) = default;

 private:
  std::vector<DataType> fields_;
  std::string text_;
};

/// Serialize values (which must match `format`) into `writer`.
void pack_values(BinaryWriter& writer, const DataFormat& format,
                 std::span<const DataValue> values);

/// Deserialize a value list matching `format`; throws CodecError on mismatch.
std::vector<DataValue> unpack_values(BinaryReader& reader, const DataFormat& format);

/// Rough in-memory footprint of a value, used for throughput accounting.
std::size_t value_payload_bytes(const DataValue& value) noexcept;

/// Render a value for diagnostics ("[1, 2, 3]", "\"abc\"", "42").
std::string value_to_string(const DataValue& value);

}  // namespace tbon
