// Typed packet payloads and MRNet-style format strings.
//
// MRNet describes packet contents with printf-like format strings; we use a
// small space-separated type language instead:
//
//   i32 i64 u64 f64 str bytes vi64 vf64 vstr
//
// e.g. "i32 vf64 str" declares three fields: an int32, a vector of doubles
// and a string.  DataFormat parses and validates such strings once;
// DataValue holds one field; pack/unpack round-trip a field list through the
// binary archive.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/archive.hpp"
#include "common/buffer.hpp"
#include "common/error.hpp"

namespace tbon {

enum class DataType : std::uint8_t {
  kInt32 = 0,
  kInt64,
  kUInt64,
  kFloat64,
  kString,
  kBytes,
  kVecInt64,
  kVecFloat64,
  kVecString,
};

/// Human-readable token for a type (the format-string vocabulary).
std::string_view type_name(DataType type) noexcept;

/// Parse a single token; throws ParseError for unknown tokens.
DataType parse_type(std::string_view token);

/// One payload field.  The `bytes` alternative is a refcounted BufferView,
/// so a blob deserialized off the wire aliases the receive buffer instead of
/// being copied; `Bytes` converts implicitly (adopted, not copied).
using DataValue = std::variant<std::int32_t, std::int64_t, std::uint64_t, double,
                               std::string, BufferView, std::vector<std::int64_t>,
                               std::vector<double>, std::vector<std::string>>;

/// The declared type of a DataValue.
DataType type_of(const DataValue& value) noexcept;

/// A parsed, validated format string.
class DataFormat {
 public:
  DataFormat() = default;

  /// Parse "i32 vf64 str"; throws ParseError on unknown tokens.
  explicit DataFormat(std::string_view format_string);

  const std::vector<DataType>& fields() const noexcept { return fields_; }
  std::size_t arity() const noexcept { return fields_.size(); }
  const std::string& to_string() const noexcept { return text_; }

  /// True when `values` matches this format field-for-field.
  bool matches(std::span<const DataValue> values) const noexcept;

  friend bool operator==(const DataFormat&, const DataFormat&) = default;

 private:
  std::vector<DataType> fields_;
  std::string text_;
};

/// Serialize values (which must match `format`) into `writer`.
void pack_values(BinaryWriter& writer, const DataFormat& format,
                 std::span<const DataValue> values);

/// Scatter-gather serialization: scalars and prefixes go to the writer's
/// scratch block, large payloads are referenced in place (no memcpy).  The
/// values must outlive any use of the writer's segment list.
void pack_values_segments(SegmentWriter& writer, const DataFormat& format,
                          std::span<const DataValue> values);

/// Deserialize a value list matching `format`; throws CodecError on mismatch.
std::vector<DataValue> unpack_values(BinaryReader& reader, const DataFormat& format);

/// Like unpack_values, but the reader's input is the span of `backing`:
/// `bytes` fields become subviews aliasing it instead of copies.
std::vector<DataValue> unpack_values_backed(BinaryReader& reader,
                                            const DataFormat& format,
                                            const BufferView& backing);

/// Validate the structure of a serialized value list without materializing
/// it: advances the reader past the values, throws CodecError on truncation
/// or corrupt counts, and returns the payload byte total (same accounting as
/// value_payload_bytes summed over the fields).
std::size_t skim_values(BinaryReader& reader, const DataFormat& format);

/// Rough in-memory footprint of a value, used for throughput accounting.
std::size_t value_payload_bytes(const DataValue& value) noexcept;

/// Render a value for diagnostics ("[1, 2, 3]", "\"abc\"", "42").
std::string value_to_string(const DataValue& value);

}  // namespace tbon
