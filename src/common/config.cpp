#include "common/config.hpp"

#include <cstdlib>

namespace tbon {

Config::Config(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) add(argv[i]);
}

void Config::add(std::string_view token) {
  const auto eq = token.find('=');
  if (eq == std::string_view::npos) return;
  values_[std::string(token.substr(0, eq))] = std::string(token.substr(eq + 1));
}

std::string Config::get(const std::string& key, std::string fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? it->second : fallback;
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? std::strtoll(it->second.c_str(), nullptr, 10) : fallback;
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it != values_.end() ? std::strtod(it->second.c_str(), nullptr) : fallback;
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace tbon
