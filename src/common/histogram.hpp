// Fixed-range histogram with exact merge.
//
// Histograms are one of the paper's examples of complex TBON aggregations:
// each back-end builds a local histogram and the tree merges them, which is
// exact because merging fixed-bin histograms is associative and commutative.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace tbon {

class Histogram {
 public:
  Histogram() = default;

  /// A histogram over [lo, hi) with `bins` equal-width bins; out-of-range
  /// samples are counted in underflow/overflow.
  Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
    if (!(hi > lo) || bins == 0) throw Error("invalid histogram range/bins");
  }

  void add(double sample, std::uint64_t weight = 1) noexcept {
    if (sample < lo_) {
      underflow_ += weight;
    } else if (sample >= hi_) {
      overflow_ += weight;
    } else {
      const auto bin = static_cast<std::size_t>((sample - lo_) / (hi_ - lo_) *
                                                static_cast<double>(counts_.size()));
      counts_[std::min(bin, counts_.size() - 1)] += weight;
    }
    total_ += weight;
  }

  /// Merge another histogram with identical bucketing; throws on mismatch.
  void merge(const Histogram& other) {
    if (other.counts_.size() != counts_.size() || other.lo_ != lo_ || other.hi_ != hi_) {
      throw Error("cannot merge histograms with different bucketing");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
  }

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  const std::vector<std::uint64_t>& bins() const noexcept { return counts_; }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Approximate quantile (bin midpoint of the bin containing rank q*total).
  double quantile(double q) const noexcept {
    if (total_ == 0 || counts_.empty()) return lo_;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t cumulative = underflow_;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
      cumulative += counts_[i];
      if (cumulative > rank) return lo_ + (static_cast<double>(i) + 0.5) * width;
    }
    return hi_;
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;

 private:
  double lo_ = 0.0;
  double hi_ = 1.0;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace tbon
