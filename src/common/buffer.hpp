// Refcounted buffers and zero-copy views — the aliasing layer under Packet.
//
// A Buffer owns one contiguous byte block (typically a frame read off the
// wire).  A BufferView is a non-owning window plus a refcount on whatever
// storage backs it, so a payload deserialized from a frame can alias the
// receive buffer instead of being copied into an owned vector: the view
// keeps the frame alive for exactly as long as any packet field refers to
// it.  SegmentWriter is the matching output half: it builds a scatter-gather
// segment list (small fields coalesced into a scratch block, large payloads
// referenced in place) that the fd transport hands to writev, so serializing
// a packet never memcpy's its payload either.
//
// CopyStats counts the payload memcpys that do happen (legacy copying
// paths, sub-cutoff coalescing, explicit to_bytes), so the benches can
// report copies-per-packet as a measured number instead of a claim.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace tbon {

using Bytes = std::vector<std::byte>;

/// Process-wide counters for payload byte copies (str/bytes/vector contents
/// memcpy'd between userspace buffers — header scalars and kernel I/O do not
/// count).  Relaxed atomics: the benches reset, run a workload, then read.
struct CopyStats {
  static inline std::atomic<std::uint64_t> payload_memcpys{0};
  static inline std::atomic<std::uint64_t> payload_bytes_copied{0};

  static void note(std::size_t bytes) noexcept {
    payload_memcpys.fetch_add(1, std::memory_order_relaxed);
    payload_bytes_copied.fetch_add(bytes, std::memory_order_relaxed);
  }
  static void reset() noexcept {
    payload_memcpys.store(0, std::memory_order_relaxed);
    payload_bytes_copied.store(0, std::memory_order_relaxed);
  }
  static std::uint64_t memcpys() noexcept {
    return payload_memcpys.load(std::memory_order_relaxed);
  }
  static std::uint64_t bytes_copied() noexcept {
    return payload_bytes_copied.load(std::memory_order_relaxed);
  }
};

/// An immutable refcounted byte block.  Fill `storage()` before publishing
/// the Buffer as a BufferPtr; after that the contents must not change.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(Bytes data) noexcept : data_(std::move(data)) {}
  explicit Buffer(std::size_t size) : data_(size) {}

  const std::byte* data() const noexcept { return data_.data(); }
  std::size_t size() const noexcept { return data_.size(); }
  Bytes& storage() noexcept { return data_; }
  std::span<const std::byte> span() const noexcept { return data_; }

 private:
  Bytes data_;
};

using BufferPtr = std::shared_ptr<const Buffer>;

/// A refcounted window onto immutable bytes.  Copying a view copies a
/// pointer pair and bumps a refcount; the backing storage lives until the
/// last view into it is destroyed.  Views compare by content (packets
/// holding equal payload bytes compare equal regardless of backing).
class BufferView {
 public:
  BufferView() = default;

  /// View a range of a refcounted buffer.
  BufferView(BufferPtr buffer, std::size_t offset, std::size_t length)
      : keepalive_(buffer), data_(buffer ? buffer->data() + offset : nullptr),
        size_(length) {
    if (buffer == nullptr || offset + length > buffer->size()) {
      throw CodecError("BufferView range outside buffer");
    }
  }

  /// View arbitrary bytes kept alive by `keepalive` (type-erased owner).
  BufferView(std::shared_ptr<const void> keepalive, const std::byte* data,
             std::size_t size) noexcept
      : keepalive_(std::move(keepalive)), data_(data), size_(size) {}

  /// Adopt an owned byte vector (one move, no copy).  Implicit so existing
  /// `DataValue{Bytes{...}}` call sites keep compiling unchanged.
  BufferView(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : BufferView(adopt(std::move(bytes))) {}

  /// Borrow bytes whose lifetime the caller guarantees to exceed the view's.
  static BufferView borrowed(std::span<const std::byte> bytes) noexcept {
    return BufferView(nullptr, bytes.data(), bytes.size());
  }

  const std::byte* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  std::span<const std::byte> span() const noexcept { return {data_, size_}; }
  operator std::span<const std::byte>() const noexcept { return span(); }

  /// A sub-window sharing this view's backing storage.
  BufferView subview(std::size_t offset, std::size_t length) const {
    if (offset + length > size_) throw CodecError("subview range outside view");
    return BufferView(keepalive_, data_ + offset, length);
  }

  /// Copy the bytes out into an owned vector (counted as a payload copy).
  Bytes to_bytes() const {
    if (size_ != 0) CopyStats::note(size_);
    return Bytes(data_, data_ + size_);
  }

  const std::shared_ptr<const void>& keepalive() const noexcept { return keepalive_; }

  friend bool operator==(const BufferView& a, const BufferView& b) noexcept {
    return a.size_ == b.size_ &&
           (a.data_ == b.data_ || a.size_ == 0 ||
            std::memcmp(a.data_, b.data_, a.size_) == 0);
  }

 private:
  static BufferView adopt(Bytes bytes) {
    auto owner = std::make_shared<const Buffer>(std::move(bytes));
    return BufferView(owner, owner->data(), owner->size());
  }

  std::shared_ptr<const void> keepalive_;
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Scatter-gather serialization sink.  Small fields accumulate in a scratch
/// block; payloads at or above `kExternalCutoff` are referenced in place.
/// The finished segment list (`segments()`) aliases both the scratch block
/// and every external payload, so it is valid only while the writer and the
/// serialized objects are alive — fd_link holds the PacketPtr across the
/// writev for exactly this reason.
class SegmentWriter {
 public:
  /// Payloads smaller than this are coalesced into scratch: one iovec entry
  /// costs more than memcpy'ing a few dozen bytes.
  static constexpr std::size_t kExternalCutoff = 64;

  struct Segment {
    const std::byte* data;
    std::size_t size;
  };

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void put(T value) {
    static_assert(sizeof(T) <= 8);
    std::byte raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    append_scratch({raw, sizeof(T)});
  }

  /// Header-side raw bytes (format strings, prefixes): copied into scratch,
  /// not counted as payload copies.
  void put_raw(std::span<const std::byte> bytes) { append_scratch(bytes); }

  void put_string_header(std::string_view s) {
    put(static_cast<std::uint32_t>(s.size()));
    append_scratch({reinterpret_cast<const std::byte*>(s.data()), s.size()});
  }

  /// Payload bytes: referenced in place when large enough, otherwise copied
  /// into scratch (and counted).
  void put_payload(std::span<const std::byte> bytes) {
    if (bytes.size() >= kExternalCutoff) {
      total_ += bytes.size();
      pieces_.push_back(Piece{.external = bytes, .scratch_offset = 0, .scratch_size = 0});
    } else {
      if (!bytes.empty()) CopyStats::note(bytes.size());
      append_scratch(bytes);
    }
  }

  /// Total serialized size across all segments.
  std::size_t size() const noexcept { return total_; }

  /// Resolve the segment list.  Call after the last append; the result
  /// aliases the writer's scratch block.
  std::vector<Segment> segments() const {
    std::vector<Segment> out;
    out.reserve(pieces_.size());
    for (const Piece& piece : pieces_) {
      if (piece.external.data() != nullptr || piece.external.size() != 0) {
        if (!piece.external.empty()) {
          out.push_back({piece.external.data(), piece.external.size()});
        }
      } else if (piece.scratch_size != 0) {
        out.push_back({scratch_.data() + piece.scratch_offset, piece.scratch_size});
      }
    }
    return out;
  }

  /// Flatten into one owned block (test / non-writev paths).
  Bytes coalesce() const {
    Bytes out;
    out.reserve(total_);
    for (const Segment& seg : segments()) {
      out.insert(out.end(), seg.data, seg.data + seg.size);
    }
    return out;
  }

 private:
  struct Piece {
    std::span<const std::byte> external;  // empty() -> scratch piece
    std::size_t scratch_offset;
    std::size_t scratch_size;
  };

  void append_scratch(std::span<const std::byte> bytes) {
    total_ += bytes.size();
    if (bytes.empty()) return;
    // Extend the previous scratch piece when contiguous so adjacent small
    // fields collapse into one segment.
    if (!pieces_.empty() && pieces_.back().external.data() == nullptr &&
        pieces_.back().scratch_offset + pieces_.back().scratch_size == scratch_.size()) {
      pieces_.back().scratch_size += bytes.size();
    } else {
      pieces_.push_back(Piece{.external = {},
                              .scratch_offset = scratch_.size(),
                              .scratch_size = bytes.size()});
    }
    scratch_.insert(scratch_.end(), bytes.begin(), bytes.end());
  }

  Bytes scratch_;
  std::vector<Piece> pieces_;
  std::size_t total_ = 0;
};

}  // namespace tbon
