#include "common/datavalue.hpp"

#include <sstream>

namespace tbon {
namespace {

constexpr std::string_view kTypeNames[] = {
    "i32", "i64", "u64", "f64", "str", "bytes", "vi64", "vf64", "vstr",
};

}  // namespace

std::string_view type_name(DataType type) noexcept {
  return kTypeNames[static_cast<std::size_t>(type)];
}

DataType parse_type(std::string_view token) {
  for (std::size_t i = 0; i < std::size(kTypeNames); ++i) {
    if (kTypeNames[i] == token) return static_cast<DataType>(i);
  }
  throw ParseError("unknown format token '" + std::string(token) + "'");
}

DataType type_of(const DataValue& value) noexcept {
  return static_cast<DataType>(value.index());
}

DataFormat::DataFormat(std::string_view format_string) : text_(format_string) {
  std::size_t pos = 0;
  while (pos < format_string.size()) {
    while (pos < format_string.size() && format_string[pos] == ' ') ++pos;
    if (pos >= format_string.size()) break;
    std::size_t end = format_string.find(' ', pos);
    if (end == std::string_view::npos) end = format_string.size();
    fields_.push_back(parse_type(format_string.substr(pos, end - pos)));
    pos = end;
  }
}

bool DataFormat::matches(std::span<const DataValue> values) const noexcept {
  if (values.size() != fields_.size()) return false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (type_of(values[i]) != fields_[i]) return false;
  }
  return true;
}

void pack_values(BinaryWriter& writer, const DataFormat& format,
                 std::span<const DataValue> values) {
  if (!format.matches(values)) {
    throw CodecError("payload does not match format '" + format.to_string() + "'");
  }
  for (const DataValue& v : values) {
    switch (type_of(v)) {
      case DataType::kInt32:
        writer.put(std::get<std::int32_t>(v));
        break;
      case DataType::kInt64:
        writer.put(std::get<std::int64_t>(v));
        break;
      case DataType::kUInt64:
        writer.put(std::get<std::uint64_t>(v));
        break;
      case DataType::kFloat64:
        writer.put(std::get<double>(v));
        break;
      case DataType::kString:
        writer.put_string(std::get<std::string>(v));
        break;
      case DataType::kBytes:
        writer.put_bytes(std::get<Bytes>(v));
        break;
      case DataType::kVecInt64:
        writer.put_vector<std::int64_t>(std::get<std::vector<std::int64_t>>(v));
        break;
      case DataType::kVecFloat64:
        writer.put_vector<double>(std::get<std::vector<double>>(v));
        break;
      case DataType::kVecString: {
        const auto& strings = std::get<std::vector<std::string>>(v);
        writer.put(static_cast<std::uint32_t>(strings.size()));
        for (const auto& s : strings) writer.put_string(s);
        break;
      }
    }
  }
}

std::vector<DataValue> unpack_values(BinaryReader& reader, const DataFormat& format) {
  std::vector<DataValue> values;
  values.reserve(format.arity());
  for (DataType type : format.fields()) {
    switch (type) {
      case DataType::kInt32:
        values.emplace_back(reader.get<std::int32_t>());
        break;
      case DataType::kInt64:
        values.emplace_back(reader.get<std::int64_t>());
        break;
      case DataType::kUInt64:
        values.emplace_back(reader.get<std::uint64_t>());
        break;
      case DataType::kFloat64:
        values.emplace_back(reader.get<double>());
        break;
      case DataType::kString:
        values.emplace_back(reader.get_string());
        break;
      case DataType::kBytes:
        values.emplace_back(reader.get_bytes());
        break;
      case DataType::kVecInt64:
        values.emplace_back(reader.get_vector<std::int64_t>());
        break;
      case DataType::kVecFloat64:
        values.emplace_back(reader.get_vector<double>());
        break;
      case DataType::kVecString: {
        const auto n = reader.get<std::uint32_t>();
        // Every string needs at least its 4-byte length prefix; reject a
        // corrupt count before reserving memory for it.
        if (n > reader.remaining() / 4) {
          throw CodecError("string-vector length exceeds remaining payload");
        }
        std::vector<std::string> strings;
        strings.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) strings.push_back(reader.get_string());
        values.emplace_back(std::move(strings));
        break;
      }
    }
  }
  return values;
}

std::size_t value_payload_bytes(const DataValue& value) noexcept {
  switch (type_of(value)) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return std::get<std::string>(value).size();
    case DataType::kBytes:
      return std::get<Bytes>(value).size();
    case DataType::kVecInt64:
      return std::get<std::vector<std::int64_t>>(value).size() * 8;
    case DataType::kVecFloat64:
      return std::get<std::vector<double>>(value).size() * 8;
    case DataType::kVecString: {
      std::size_t total = 0;
      for (const auto& s : std::get<std::vector<std::string>>(value)) total += s.size();
      return total;
    }
  }
  return 0;
}

std::string value_to_string(const DataValue& value) {
  std::ostringstream out;
  switch (type_of(value)) {
    case DataType::kInt32:
      out << std::get<std::int32_t>(value);
      break;
    case DataType::kInt64:
      out << std::get<std::int64_t>(value);
      break;
    case DataType::kUInt64:
      out << std::get<std::uint64_t>(value);
      break;
    case DataType::kFloat64:
      out << std::get<double>(value);
      break;
    case DataType::kString:
      out << '"' << std::get<std::string>(value) << '"';
      break;
    case DataType::kBytes:
      out << "<" << std::get<Bytes>(value).size() << " bytes>";
      break;
    case DataType::kVecInt64: {
      out << '[';
      const auto& v = std::get<std::vector<std::int64_t>>(value);
      for (std::size_t i = 0; i < v.size(); ++i) out << (i ? ", " : "") << v[i];
      out << ']';
      break;
    }
    case DataType::kVecFloat64: {
      out << '[';
      const auto& v = std::get<std::vector<double>>(value);
      for (std::size_t i = 0; i < v.size(); ++i) out << (i ? ", " : "") << v[i];
      out << ']';
      break;
    }
    case DataType::kVecString: {
      out << '[';
      const auto& v = std::get<std::vector<std::string>>(value);
      for (std::size_t i = 0; i < v.size(); ++i) out << (i ? ", " : "") << '"' << v[i] << '"';
      out << ']';
      break;
    }
  }
  return out.str();
}

}  // namespace tbon
