#include "common/datavalue.hpp"

#include <sstream>

namespace tbon {
namespace {

constexpr std::string_view kTypeNames[] = {
    "i32", "i64", "u64", "f64", "str", "bytes", "vi64", "vf64", "vstr",
};

}  // namespace

std::string_view type_name(DataType type) noexcept {
  return kTypeNames[static_cast<std::size_t>(type)];
}

DataType parse_type(std::string_view token) {
  for (std::size_t i = 0; i < std::size(kTypeNames); ++i) {
    if (kTypeNames[i] == token) return static_cast<DataType>(i);
  }
  throw ParseError("unknown format token '" + std::string(token) + "'");
}

DataType type_of(const DataValue& value) noexcept {
  return static_cast<DataType>(value.index());
}

DataFormat::DataFormat(std::string_view format_string) : text_(format_string) {
  std::size_t pos = 0;
  while (pos < format_string.size()) {
    while (pos < format_string.size() && format_string[pos] == ' ') ++pos;
    if (pos >= format_string.size()) break;
    std::size_t end = format_string.find(' ', pos);
    if (end == std::string_view::npos) end = format_string.size();
    fields_.push_back(parse_type(format_string.substr(pos, end - pos)));
    pos = end;
  }
}

bool DataFormat::matches(std::span<const DataValue> values) const noexcept {
  if (values.size() != fields_.size()) return false;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (type_of(values[i]) != fields_[i]) return false;
  }
  return true;
}

void pack_values(BinaryWriter& writer, const DataFormat& format,
                 std::span<const DataValue> values) {
  if (!format.matches(values)) {
    throw CodecError("payload does not match format '" + format.to_string() + "'");
  }
  for (const DataValue& v : values) {
    switch (type_of(v)) {
      case DataType::kInt32:
        writer.put(std::get<std::int32_t>(v));
        break;
      case DataType::kInt64:
        writer.put(std::get<std::int64_t>(v));
        break;
      case DataType::kUInt64:
        writer.put(std::get<std::uint64_t>(v));
        break;
      case DataType::kFloat64:
        writer.put(std::get<double>(v));
        break;
      case DataType::kString: {
        const auto& s = std::get<std::string>(v);
        if (!s.empty()) CopyStats::note(s.size());
        writer.put_string(s);
        break;
      }
      case DataType::kBytes: {
        const BufferView& view = std::get<BufferView>(v);
        if (!view.empty()) CopyStats::note(view.size());
        writer.put_bytes(view);
        break;
      }
      case DataType::kVecInt64: {
        const auto& vec = std::get<std::vector<std::int64_t>>(v);
        if (!vec.empty()) CopyStats::note(vec.size() * 8);
        writer.put_vector<std::int64_t>(vec);
        break;
      }
      case DataType::kVecFloat64: {
        const auto& vec = std::get<std::vector<double>>(v);
        if (!vec.empty()) CopyStats::note(vec.size() * 8);
        writer.put_vector<double>(vec);
        break;
      }
      case DataType::kVecString: {
        const auto& strings = std::get<std::vector<std::string>>(v);
        writer.put(static_cast<std::uint32_t>(strings.size()));
        for (const auto& s : strings) {
          if (!s.empty()) CopyStats::note(s.size());
          writer.put_string(s);
        }
        break;
      }
    }
  }
}

namespace {

std::span<const std::byte> arithmetic_payload(const void* data, std::size_t bytes) {
  // Little-endian host (static_assert'd in archive.hpp): the in-memory
  // layout of a contiguous arithmetic vector IS its wire form.
  return {static_cast<const std::byte*>(data), bytes};
}

}  // namespace

void pack_values_segments(SegmentWriter& writer, const DataFormat& format,
                          std::span<const DataValue> values) {
  if (!format.matches(values)) {
    throw CodecError("payload does not match format '" + format.to_string() + "'");
  }
  for (const DataValue& v : values) {
    switch (type_of(v)) {
      case DataType::kInt32:
        writer.put(std::get<std::int32_t>(v));
        break;
      case DataType::kInt64:
        writer.put(std::get<std::int64_t>(v));
        break;
      case DataType::kUInt64:
        writer.put(std::get<std::uint64_t>(v));
        break;
      case DataType::kFloat64:
        writer.put(std::get<double>(v));
        break;
      case DataType::kString: {
        const auto& s = std::get<std::string>(v);
        writer.put(static_cast<std::uint32_t>(s.size()));
        writer.put_payload({reinterpret_cast<const std::byte*>(s.data()), s.size()});
        break;
      }
      case DataType::kBytes: {
        const BufferView& view = std::get<BufferView>(v);
        writer.put(static_cast<std::uint32_t>(view.size()));
        writer.put_payload(view);
        break;
      }
      case DataType::kVecInt64: {
        const auto& vec = std::get<std::vector<std::int64_t>>(v);
        writer.put(static_cast<std::uint32_t>(vec.size()));
        writer.put_payload(arithmetic_payload(vec.data(), vec.size() * 8));
        break;
      }
      case DataType::kVecFloat64: {
        const auto& vec = std::get<std::vector<double>>(v);
        writer.put(static_cast<std::uint32_t>(vec.size()));
        writer.put_payload(arithmetic_payload(vec.data(), vec.size() * 8));
        break;
      }
      case DataType::kVecString: {
        const auto& strings = std::get<std::vector<std::string>>(v);
        writer.put(static_cast<std::uint32_t>(strings.size()));
        for (const auto& s : strings) {
          writer.put(static_cast<std::uint32_t>(s.size()));
          writer.put_payload({reinterpret_cast<const std::byte*>(s.data()), s.size()});
        }
        break;
      }
    }
  }
}

namespace {

std::vector<DataValue> unpack_values_impl(BinaryReader& reader, const DataFormat& format,
                                          const BufferView* backing) {
  std::vector<DataValue> values;
  values.reserve(format.arity());
  for (DataType type : format.fields()) {
    switch (type) {
      case DataType::kInt32:
        values.emplace_back(reader.get<std::int32_t>());
        break;
      case DataType::kInt64:
        values.emplace_back(reader.get<std::int64_t>());
        break;
      case DataType::kUInt64:
        values.emplace_back(reader.get<std::uint64_t>());
        break;
      case DataType::kFloat64:
        values.emplace_back(reader.get<double>());
        break;
      case DataType::kString: {
        const auto before = reader.remaining();
        values.emplace_back(reader.get_string());
        if (before > reader.remaining() + 4) CopyStats::note(before - reader.remaining() - 4);
        break;
      }
      case DataType::kBytes: {
        const auto n = reader.get<std::uint32_t>();
        if (backing != nullptr) {
          // Alias the backing frame: no copy, the view pins the frame.
          const std::size_t offset = reader.position();
          reader.skip(n);
          values.emplace_back(backing->subview(offset, n));
        } else {
          if (n != 0) CopyStats::note(n);
          const auto bytes = reader.take_span(n);
          values.emplace_back(BufferView(Bytes(bytes.begin(), bytes.end())));
        }
        break;
      }
      case DataType::kVecInt64: {
        auto vec = reader.get_vector<std::int64_t>();
        if (!vec.empty()) CopyStats::note(vec.size() * 8);
        values.emplace_back(std::move(vec));
        break;
      }
      case DataType::kVecFloat64: {
        auto vec = reader.get_vector<double>();
        if (!vec.empty()) CopyStats::note(vec.size() * 8);
        values.emplace_back(std::move(vec));
        break;
      }
      case DataType::kVecString: {
        const auto n = reader.get<std::uint32_t>();
        // Every string needs at least its 4-byte length prefix; reject a
        // corrupt count before reserving memory for it.
        if (n > reader.remaining() / 4) {
          throw CodecError("string-vector length exceeds remaining payload");
        }
        std::vector<std::string> strings;
        strings.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          strings.push_back(reader.get_string());
          if (!strings.back().empty()) CopyStats::note(strings.back().size());
        }
        values.emplace_back(std::move(strings));
        break;
      }
    }
  }
  return values;
}

}  // namespace

std::vector<DataValue> unpack_values(BinaryReader& reader, const DataFormat& format) {
  return unpack_values_impl(reader, format, nullptr);
}

std::vector<DataValue> unpack_values_backed(BinaryReader& reader,
                                            const DataFormat& format,
                                            const BufferView& backing) {
  return unpack_values_impl(reader, format, &backing);
}

std::size_t skim_values(BinaryReader& reader, const DataFormat& format) {
  std::size_t payload = 0;
  for (DataType type : format.fields()) {
    switch (type) {
      case DataType::kInt32:
        reader.skip(4);
        payload += 4;
        break;
      case DataType::kInt64:
      case DataType::kUInt64:
      case DataType::kFloat64:
        reader.skip(8);
        payload += 8;
        break;
      case DataType::kString:
      case DataType::kBytes: {
        const auto n = reader.get<std::uint32_t>();
        reader.skip(n);
        payload += n;
        break;
      }
      case DataType::kVecInt64:
      case DataType::kVecFloat64: {
        const auto n = reader.get<std::uint32_t>();
        const std::size_t bytes = static_cast<std::size_t>(n) * 8;
        reader.skip(bytes);
        payload += bytes;
        break;
      }
      case DataType::kVecString: {
        const auto n = reader.get<std::uint32_t>();
        if (n > reader.remaining() / 4) {
          throw CodecError("string-vector length exceeds remaining payload");
        }
        for (std::uint32_t i = 0; i < n; ++i) {
          const auto len = reader.get<std::uint32_t>();
          reader.skip(len);
          payload += len;
        }
        break;
      }
    }
  }
  return payload;
}

std::size_t value_payload_bytes(const DataValue& value) noexcept {
  switch (type_of(value)) {
    case DataType::kInt32:
      return 4;
    case DataType::kInt64:
    case DataType::kUInt64:
    case DataType::kFloat64:
      return 8;
    case DataType::kString:
      return std::get<std::string>(value).size();
    case DataType::kBytes:
      return std::get<BufferView>(value).size();
    case DataType::kVecInt64:
      return std::get<std::vector<std::int64_t>>(value).size() * 8;
    case DataType::kVecFloat64:
      return std::get<std::vector<double>>(value).size() * 8;
    case DataType::kVecString: {
      std::size_t total = 0;
      for (const auto& s : std::get<std::vector<std::string>>(value)) total += s.size();
      return total;
    }
  }
  return 0;
}

std::string value_to_string(const DataValue& value) {
  std::ostringstream out;
  switch (type_of(value)) {
    case DataType::kInt32:
      out << std::get<std::int32_t>(value);
      break;
    case DataType::kInt64:
      out << std::get<std::int64_t>(value);
      break;
    case DataType::kUInt64:
      out << std::get<std::uint64_t>(value);
      break;
    case DataType::kFloat64:
      out << std::get<double>(value);
      break;
    case DataType::kString:
      out << '"' << std::get<std::string>(value) << '"';
      break;
    case DataType::kBytes:
      out << "<" << std::get<BufferView>(value).size() << " bytes>";
      break;
    case DataType::kVecInt64: {
      out << '[';
      const auto& v = std::get<std::vector<std::int64_t>>(value);
      for (std::size_t i = 0; i < v.size(); ++i) out << (i ? ", " : "") << v[i];
      out << ']';
      break;
    }
    case DataType::kVecFloat64: {
      out << '[';
      const auto& v = std::get<std::vector<double>>(value);
      for (std::size_t i = 0; i < v.size(); ++i) out << (i ? ", " : "") << v[i];
      out << ']';
      break;
    }
    case DataType::kVecString: {
      out << '[';
      const auto& v = std::get<std::vector<std::string>>(value);
      for (std::size_t i = 0; i < v.size(); ++i) out << (i ? ", " : "") << '"' << v[i] << '"';
      out << ']';
      break;
    }
  }
  return out.str();
}

}  // namespace tbon
