// Error handling primitives for the TBON library.
//
// Construction/configuration failures throw exceptions derived from
// tbon::Error (per C++ Core Guidelines E.2: throw to signal that a function
// can't perform its assigned task).  Hot-path operations that can fail
// routinely (e.g. receive on a closed channel) return std::optional or a
// small Result<T> instead.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace tbon {

/// Base class for all exceptions thrown by the library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A malformed topology specification, filter format string, config file...
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A structurally invalid topology (cycle, multiple roots, empty tree...).
class TopologyError : public Error {
 public:
  explicit TopologyError(const std::string& what)
      : Error("topology error: " + what) {}
};

/// Payload did not match the declared packet format.
class CodecError : public Error {
 public:
  explicit CodecError(const std::string& what) : Error("codec error: " + what) {}
};

/// OS-level transport failure (socketpair, fork, read/write).
class TransportError : public Error {
 public:
  explicit TransportError(const std::string& what)
      : Error("transport error: " + what) {}
};

/// Misuse of the network/stream API (unknown stream, bad endpoint set...).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what)
      : Error("protocol error: " + what) {}
};

/// Unknown filter name, duplicate registration, dlopen failure.
class FilterError : public Error {
 public:
  explicit FilterError(const std::string& what) : Error("filter error: " + what) {}
};

/// Send rejected by flow control: the channel's credit window is exhausted
/// and the policy is fail_fast (only application-facing send paths throw;
/// runtime-internal relays shed and count instead).
class FlowControlError : public Error {
 public:
  explicit FlowControlError(const std::string& what)
      : Error("flow control: " + what) {}
};

/// Lightweight result type for fallible operations on non-exceptional paths.
/// Holds either a value or an error message.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  static Result failure(std::string message) {
    return Result(Failure{std::move(message)});
  }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Value access; throws Error when the result holds a failure.
  const T& value() const& {
    if (!ok()) throw Error(error());
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) throw Error(error());
    return std::get<T>(std::move(data_));
  }

  /// Error message; empty string when the result holds a value.
  const std::string& error() const noexcept {
    static const std::string kEmpty;
    return ok() ? kEmpty : std::get<Failure>(data_).message;
  }

 private:
  struct Failure {
    std::string message;
  };
  explicit Result(Failure f) : data_(std::move(f)) {}
  std::variant<T, Failure> data_;
};

}  // namespace tbon
