// Endian-safe binary serialization.
//
// BinaryWriter appends little-endian fixed-width scalars, length-prefixed
// strings and vectors to a byte buffer; BinaryReader consumes them and
// throws CodecError on truncated or oversized input.  This is the wire
// format used by the socket transport and by packet serialization.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/error.hpp"

namespace tbon {

using Bytes = std::vector<std::byte>;

class BinaryWriter {
 public:
  BinaryWriter() = default;

  /// Append a fixed-width integral or floating scalar, little-endian.
  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void put(T value) {
    static_assert(sizeof(T) <= 8);
    unsigned char raw[sizeof(T)];
    std::memcpy(raw, &value, sizeof(T));
    // The library targets little-endian hosts (x86-64, aarch64-le); a
    // static_assert here would need std::endian, which we check instead.
    static_assert(std::endian::native == std::endian::little,
                  "big-endian hosts need byte swapping here");
    const std::byte* begin = reinterpret_cast<const std::byte*>(raw);
    buffer_.insert(buffer_.end(), begin, begin + sizeof(T));
  }

  /// Append raw bytes without a length prefix.
  void put_raw(std::span<const std::byte> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  /// Append a u32 length prefix followed by the bytes.
  void put_bytes(std::span<const std::byte> bytes) {
    put(static_cast<std::uint32_t>(bytes.size()));
    put_raw(bytes);
  }

  void put_string(std::string_view s) {
    put(static_cast<std::uint32_t>(s.size()));
    const std::byte* begin = reinterpret_cast<const std::byte*>(s.data());
    buffer_.insert(buffer_.end(), begin, begin + s.size());
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  void put_vector(std::span<const T> values) {
    put(static_cast<std::uint32_t>(values.size()));
    for (const T& v : values) put(v);
  }

  const Bytes& bytes() const noexcept { return buffer_; }
  Bytes take() noexcept { return std::move(buffer_); }
  std::size_t size() const noexcept { return buffer_.size(); }

 private:
  Bytes buffer_;
};

class BinaryReader {
 public:
  explicit BinaryReader(std::span<const std::byte> bytes) : data_(bytes) {}

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  T get() {
    require(sizeof(T));
    T value;
    std::memcpy(&value, data_.data() + cursor_, sizeof(T));
    cursor_ += sizeof(T);
    return value;
  }

  Bytes get_bytes() {
    const auto n = get<std::uint32_t>();
    require(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(cursor_),
              data_.begin() + static_cast<std::ptrdiff_t>(cursor_ + n));
    cursor_ += n;
    return out;
  }

  std::string get_string() {
    const auto n = get<std::uint32_t>();
    require(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + cursor_), n);
    cursor_ += n;
    return out;
  }

  template <typename T>
    requires(std::is_arithmetic_v<T>)
  std::vector<T> get_vector() {
    const auto n = get<std::uint32_t>();
    require(static_cast<std::size_t>(n) * sizeof(T));
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(get<T>());
    return out;
  }

  /// Consume `n` bytes and return a span over them (no copy).  The span
  /// aliases the reader's input and is valid only while that input lives.
  std::span<const std::byte> take_span(std::size_t n) {
    require(n);
    const std::span<const std::byte> out = data_.subspan(cursor_, n);
    cursor_ += n;
    return out;
  }

  void skip(std::size_t n) {
    require(n);
    cursor_ += n;
  }

  std::size_t position() const noexcept { return cursor_; }
  std::size_t remaining() const noexcept { return data_.size() - cursor_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  void require(std::size_t n) const {
    if (cursor_ + n > data_.size()) {
      throw CodecError("truncated input: need " + std::to_string(n) + " bytes, have " +
                       std::to_string(data_.size() - cursor_));
    }
  }

  std::span<const std::byte> data_;
  std::size_t cursor_ = 0;
};

}  // namespace tbon
