// Minimal leveled, thread-safe logger.
//
// Levels are filtered at runtime via set_level() or the TBON_LOG environment
// variable (error|warn|info|debug|trace).  The default is `warn` so that
// tests and benchmarks stay quiet.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace tbon::log {

enum class Level : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3, kTrace = 4 };

/// Current global threshold (messages above it are dropped).
Level level() noexcept;

/// Set the global threshold.
void set_level(Level level) noexcept;

/// Parse a level name; returns kWarn for unknown names.
Level parse_level(std::string_view name) noexcept;

/// True when `l` would currently be emitted.
inline bool enabled(Level l) noexcept { return static_cast<int>(l) <= static_cast<int>(level()); }

namespace detail {
void emit(Level level, const std::string& message);

class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  ~LineBuilder() { emit(level_, stream_.str()); }
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace tbon::log

// Stream-style logging macros; the stream expression is not evaluated when
// the level is disabled.
#define TBON_LOG_AT(lvl, expr)                                   \
  do {                                                           \
    if (::tbon::log::enabled(lvl)) {                             \
      ::tbon::log::detail::LineBuilder(lvl) << expr;             \
    }                                                            \
  } while (0)

#define TBON_ERROR(expr) TBON_LOG_AT(::tbon::log::Level::kError, expr)
#define TBON_WARN(expr) TBON_LOG_AT(::tbon::log::Level::kWarn, expr)
#define TBON_INFO(expr) TBON_LOG_AT(::tbon::log::Level::kInfo, expr)
#define TBON_DEBUG(expr) TBON_LOG_AT(::tbon::log::Level::kDebug, expr)
#define TBON_TRACE(expr) TBON_LOG_AT(::tbon::log::Level::kTrace, expr)
