// Monotonic timing helpers shared by the runtime, benches and tests.
#pragma once

#include <ctime>

#include <chrono>
#include <cstdint>

namespace tbon {

/// Nanoseconds since an arbitrary monotonic epoch.
inline std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// CPU time consumed by the calling thread, in nanoseconds.  Unlike wall
/// clock, this is immune to preemption — essential for measuring per-node
/// compute costs when many node threads time-share one core (the
/// critical-path methodology of DESIGN.md §5).
inline std::int64_t thread_cpu_ns() noexcept {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

/// Simple restartable stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}

  void restart() noexcept { start_ = now_ns(); }

  std::int64_t elapsed_ns() const noexcept { return now_ns() - start_; }
  double elapsed_seconds() const noexcept {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::int64_t start_;
};

}  // namespace tbon
