// Execution tracing for critical-path analysis.
//
// The benchmark harness reconstructs the makespan a real cluster would
// achieve from per-node filter execution records (see DESIGN.md §5: this
// machine has one core, so raw wall-clock over N worker threads measures
// serialized, not parallel, execution).  Filters report their compute
// intervals here when tracing is enabled; the sim library turns the records
// plus a network model into a parallel makespan.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tbon {

struct TraceEvent {
  std::uint32_t node_id = 0;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  std::uint64_t bytes_out = 0;   ///< payload bytes this execution forwarded
  std::string label;             ///< e.g. "leaf_compute", "merge_shift"

  std::int64_t duration_ns() const noexcept { return end_ns - start_ns; }
};

/// Process-wide, thread-safe trace sink.  Disabled (and free) by default.
class TraceRecorder {
 public:
  static TraceRecorder& instance();

  void set_enabled(bool enabled);
  bool enabled() const noexcept { return enabled_; }

  void clear();
  void record(TraceEvent event);

  std::vector<TraceEvent> events() const;

  /// Sum of recorded durations for one node (ns).
  std::int64_t node_busy_ns(std::uint32_t node_id) const;

 private:
  mutable std::mutex mutex_;
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace tbon
