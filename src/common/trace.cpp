#include "common/trace.hpp"

namespace tbon {

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* recorder = new TraceRecorder();  // process lifetime
  return *recorder;
}

void TraceRecorder::set_enabled(bool enabled) {
  std::lock_guard<std::mutex> lock(mutex_);
  enabled_ = enabled;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
}

void TraceRecorder::record(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_) return;
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return events_;
}

std::int64_t TraceRecorder::node_busy_ns(std::uint32_t node_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::int64_t total = 0;
  for (const TraceEvent& event : events_) {
    if (event.node_id == node_id) total += event.duration_ns();
  }
  return total;
}

}  // namespace tbon
