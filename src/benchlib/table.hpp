// Table and CSV output shared by the figure-reproduction benches.
//
// Every bench prints (a) a human-readable aligned table matching the rows or
// series the paper reports, and (b) machine-readable CSV lines prefixed with
// "csv," for downstream plotting.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace tbon::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Aligned, human-readable rendering.
  std::string to_string() const;

  /// CSV rendering, each line prefixed with "csv," for easy grep.
  std::string to_csv(const std::string& tag) const;

  /// Print both to stdout.
  void print(const std::string& csv_tag) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style float formatting helper ("%.3f" etc.).
std::string fmt(const char* format, double value);
std::string fmt_int(long long value);

/// Section banner for bench output.
void banner(const std::string& title);

/// Flat key -> number report written as a BENCH_<name>.json artifact (CI
/// uploads it; the gates grep it).  Keys are emitted in insertion order.
class JsonReport {
 public:
  void set(const std::string& key, double value);
  void set(const std::string& key, const std::string& value);

  /// Serialize to `path`; returns false (and warns on stderr) on I/O error.
  bool write(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace tbon::bench
