#include "benchlib/table.hpp"

#include <algorithm>
#include <cstdarg>
#include <sstream>

namespace tbon::bench {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    rule += "  " + std::string(widths[c], '-');
  }
  out << rule << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

std::string Table::to_csv(const std::string& tag) const {
  std::ostringstream out;
  out << "csv," << tag;
  for (const auto& header : headers_) out << ',' << header;
  out << '\n';
  for (const auto& row : rows_) {
    out << "csv," << tag;
    for (const auto& cell : row) out << ',' << cell;
    out << '\n';
  }
  return out.str();
}

void Table::print(const std::string& csv_tag) const {
  std::fputs(to_string().c_str(), stdout);
  std::fputs(to_csv(csv_tag).c_str(), stdout);
  std::fflush(stdout);
}

std::string fmt(const char* format, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), format, value);
  return buffer;
}

std::string fmt_int(long long value) { return std::to_string(value); }

void banner(const std::string& title) {
  std::printf("\n==== %s ====\n\n", title.c_str());
  std::fflush(stdout);
}

void JsonReport::set(const std::string& key, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  entries_.emplace_back(key, buffer);
}

void JsonReport::set(const std::string& key, const std::string& value) {
  std::string quoted = "\"";
  for (const char c : value) {
    if (c == '"' || c == '\\') quoted += '\\';
    quoted += c;
  }
  quoted += '"';
  entries_.emplace_back(key, std::move(quoted));
}

bool JsonReport::write(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "JsonReport: cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs("{\n", file);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    std::fprintf(file, "  \"%s\": %s%s\n", entries_[i].first.c_str(),
                 entries_[i].second.c_str(),
                 i + 1 < entries_.size() ? "," : "");
  }
  std::fputs("}\n", file);
  std::fclose(file);
  std::printf("json report -> %s\n", path.c_str());
  return true;
}

}  // namespace tbon::bench
